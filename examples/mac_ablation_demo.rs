//! Broadcast with and without the ideal-MAC assumption.
//!
//! The paper's simulator assumes collisions away; this demo runs the
//! same broadcast once on the ideal MAC and once on the contention MAC
//! (slotted CSMA) and prints what the assumption hides.
//!
//! Run with: `cargo run --example mac_ablation_demo`

use khop::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let net = gen::geometric(&gen::GeometricConfig::new(120, 100.0, 10.0), &mut rng);
    let k = 1;
    let out = pipeline::run(&net.graph, Algorithm::AcLmst, &PipelineConfig::new(k));
    let c = &out.clustering;
    println!(
        "network: {} nodes, CDS = {} ({} heads + {} gateways)\n",
        net.graph.len(),
        out.cds.size(),
        out.cds.heads.len(),
        out.cds.gateways.len()
    );

    println!(
        "{:<22} {:>6} {:>10} {:>10} {:>9}",
        "scenario", "tx", "collisions", "delivered", "latency"
    );
    for (name, strategy) in [
        ("flood", BroadcastStrategy::BlindFlood),
        ("backbone", BroadcastStrategy::Backbone),
    ] {
        let ideal = broadcast::simulate(&net.graph, c, &out.cds, NodeId(0), strategy);
        println!(
            "{:<22} {:>6} {:>10} {:>10} {:>8}t",
            format!("ideal MAC / {name}"),
            ideal.transmissions,
            0,
            ideal.delivered,
            ideal.latency
        );
        let real = mac::simulate_with_mac(
            &net.graph,
            c,
            &out.cds,
            NodeId(0),
            strategy,
            &MacConfig::default(),
            &mut rng,
        );
        println!(
            "{:<22} {:>6} {:>10} {:>10} {:>8}s",
            format!("CSMA cw=8 / {name}"),
            real.transmissions,
            real.collisions,
            real.delivered,
            real.latency_slots
        );
    }
    println!("\nt = ideal-MAC ticks, s = CSMA slots");
}
