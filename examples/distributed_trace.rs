//! Run the *distributed* protocol (message passing on the
//! discrete-event simulator) and show its per-phase transmission
//! budget — then confirm it reached exactly the same structure as the
//! centralized pipeline.
//!
//! Run with: `cargo run --example distributed_trace`

use khop::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let net = gen::geometric(&gen::GeometricConfig::new(100, 100.0, 6.0), &mut rng);
    let k = 2;

    let run = run_protocol(&net.graph, &ProtocolConfig::new(k, Algorithm::AcLmst));
    println!("distributed AC-LMST on N=100, D=6, k={k}:");
    println!("{}", run.stats.report());

    let central = pipeline::run(&net.graph, Algorithm::AcLmst, &PipelineConfig::new(k));
    assert_eq!(run.heads, central.clustering.heads);
    assert_eq!(run.gateways, central.selection.gateways);
    println!(
        "distributed result identical to centralized pipeline: {} heads, {} gateways",
        run.heads.len(),
        run.gateways.len()
    );
    println!(
        "(per node: {:.1} transmissions to build the whole structure)",
        run.stats.total() as f64 / net.graph.len() as f64
    );
}
