//! Quickstart: build a random ad hoc network, form connected 2-hop
//! clusters with AC-LMST, and inspect the result.
//!
//! Run with: `cargo run --example quickstart`

use khop::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 100 nodes uniformly placed in a 100 x 100 area, transmission
    // range calibrated so the average node degree is 6 — the paper's
    // sparse workload.
    let mut rng = StdRng::seed_from_u64(42);
    let net = gen::geometric(&gen::GeometricConfig::new(100, 100.0, 6.0), &mut rng);
    println!(
        "network: {} nodes, {} links, range {:.2}, avg degree {:.2}",
        net.graph.len(),
        net.graph.edge_count(),
        net.range,
        net.graph.average_degree()
    );

    // Form 2-hop clusters (lowest ID) and connect the clusterheads
    // with the paper's AC-LMST: A-NCR neighbor selection + LMST-based
    // gateway selection.
    let k = 2;
    let out = pipeline::run(&net.graph, Algorithm::AcLmst, &PipelineConfig::new(k));
    println!(
        "k={k}: {} clusterheads, {} gateways, CDS size {}",
        out.clustering.head_count(),
        out.selection.gateways.len(),
        out.cds.size()
    );

    // Every guarantee the paper proves, checked:
    out.clustering
        .verify(&net.graph)
        .expect("clustering invariants");
    out.cds
        .verify(&net.graph, k)
        .expect("Theorem 2: connected k-hop CDS");
    println!("verified: heads are k-hop independent + dominating; CDS connected");

    // Compare all five algorithms on the same clustering.
    println!("\n{:<10} {:>9} {:>6}", "algorithm", "gateways", "CDS");
    for alg in Algorithm::ALL {
        let o = pipeline::run_on(&net.graph, alg, &out.clustering);
        println!(
            "{:<10} {:>9} {:>6}",
            alg.name(),
            o.selection.gateways.len(),
            o.cds.size()
        );
    }
}
