//! The paper's motivating application: broadcast with fewer
//! retransmissions.
//!
//! "The most reliable method of information propagation in an ad hoc
//! network is flooding, but it demands large overhead... If all the
//! hosts are organized into clusters, the information transmission
//! flooding could be confined within each cluster." This example
//! measures exactly that: blind flooding (every node retransmits once)
//! versus backbone broadcast, where only the k-hop CDS retransmits and
//! each clusterhead's local k-hop flood reaches its members.
//!
//! Run with: `cargo run --example broadcast_backbone`

use khop::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Transmissions for CDS-backbone broadcast: the source injects the
/// message; every CDS node retransmits once (that propagates it along
/// the connected backbone *and*, because heads flood their own
/// clusters up to k hops, every member must be reached by relays
/// inside its cluster — nodes on intra-cluster BFS trees also count).
fn backbone_cost(g: &Graph, clustering: &Clustering, cds: &Cds) -> usize {
    // Backbone retransmissions: every CDS node once.
    let mut relays: Vec<NodeId> = cds.nodes();
    // Intra-cluster delivery: within each cluster, the members that
    // must forward so the whole cluster hears the head's k-hop flood:
    // interior nodes of the head-rooted BFS tree (leaves only listen).
    let mut scratch = bfs::BfsScratch::new(g.len());
    for &h in &clustering.heads {
        scratch.run(g, h, clustering.k);
        let mut needed: Vec<NodeId> = Vec::new();
        for &v in scratch.visited() {
            if v == h || clustering.head_of(v) != h {
                continue;
            }
            // v's parent must have transmitted: walk up the tree.
            let mut p = scratch.parent_of(v);
            while p != h {
                needed.push(p);
                p = scratch.parent_of(p);
            }
        }
        needed.sort_unstable();
        needed.dedup();
        relays.extend(needed);
    }
    relays.sort_unstable();
    relays.dedup();
    relays.len()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    println!(
        "{:>4} {:>3} {:>10} {:>10} {:>8}",
        "N", "k", "flooding", "backbone", "saved"
    );
    for n in [50usize, 100, 150, 200] {
        let net = gen::geometric(&gen::GeometricConfig::new(n, 100.0, 6.0), &mut rng);
        for k in [1u32, 2, 3] {
            let out = pipeline::run(&net.graph, Algorithm::AcLmst, &PipelineConfig::new(k));
            out.cds.verify(&net.graph, k).expect("valid CDS");
            let flood = net.graph.len(); // every node retransmits once
            let backbone = backbone_cost(&net.graph, &out.clustering, &out.cds);
            println!(
                "{n:>4} {k:>3} {flood:>10} {backbone:>10} {:>7.1}%",
                100.0 * (flood - backbone) as f64 / flood as f64
            );
        }
    }
    println!("\nbackbone = CDS nodes + intra-cluster relay trees; flooding = N");
}
