//! High-level clustering (§2): apply the clustering recursively over
//! clusterheads to support very large networks.
//!
//! Run with: `cargo run --release --example hierarchical_clustering`

use khop::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(64);
    let net = gen::geometric(&gen::GeometricConfig::new(400, 100.0, 6.0), &mut rng);
    println!(
        "physical network: {} nodes, {} links\n",
        net.graph.len(),
        net.graph.edge_count()
    );

    let h = Hierarchy::build(&net.graph, &[1, 1, 1], MemberPolicy::IdBased);
    println!("level | graph nodes | clusterheads");
    for (i, level) in h.levels.iter().enumerate() {
        println!(
            "{i:>5} | {:>11} | {:>12}",
            level.graph.len(),
            level.clustering.head_count()
        );
        // Theorem 1 at every level: the next level's input (the
        // adjacent cluster graph) is connected.
        assert!(connectivity::is_connected(&level.graph));
    }

    let tops = h.top_heads();
    println!(
        "\ntop-level clusterheads (physical IDs): {:?}",
        &tops[..tops.len().min(10)]
    );
    println!(
        "reduction: {} nodes -> {} super-clusterheads over {} levels",
        net.graph.len(),
        tops.len(),
        h.depth()
    );
}
