//! Compares the three mobility models on the same deployment: edge
//! churn per step, and how the clustering structure responds.
//!
//! Run with: `cargo run --example mobility_models`

use khop::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn drive<M: Mobility>(name: &str, mut net: MobileNetwork<M>, rng: &mut StdRng) {
    let k = 2;
    let mut total_churn = 0usize;
    let mut head_counts = Vec::new();
    for _ in 0..15 {
        total_churn += net.step(1.0, rng).churn();
        let c = clustering::cluster(net.graph(), k, &LowestId, MemberPolicy::IdBased);
        head_counts.push(c.head_count());
    }
    let mean_heads = head_counts.iter().sum::<usize>() as f64 / head_counts.len() as f64;
    println!(
        "{name:<18} | {:>11} | {:>10.1}",
        total_churn, mean_heads
    );
}

fn main() {
    let n = 100usize;
    let mut rng = StdRng::seed_from_u64(2025);
    let base = gen::geometric(&gen::GeometricConfig::new(n, 100.0, 8.0), &mut rng);
    println!("15 steps of 1 s on the same 100-node deployment (k = 2)");
    println!("{:<18} | {:>11} | {:>10}", "model", "edge churn", "mean heads");

    let model = RandomWaypoint::new(n, WaypointConfig::default_for_side(100.0), &mut rng);
    drive(
        "random waypoint",
        MobileNetwork::with_model(base.positions.clone(), base.range, model),
        &mut rng,
    );

    let model = RandomDirection::new(n, DirectionConfig::default_for_side(100.0), &mut rng);
    drive(
        "random direction",
        MobileNetwork::with_model(base.positions.clone(), base.range, model),
        &mut rng,
    );

    let model = GaussMarkov::new(n, GaussMarkovConfig::default_for_side(100.0), &mut rng);
    drive(
        "gauss-markov",
        MobileNetwork::with_model(base.positions.clone(), base.range, model),
        &mut rng,
    );
}
