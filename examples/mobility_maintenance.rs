//! Dynamic scenario: nodes move (random waypoint) and occasionally
//! switch off; the §3.3 maintenance rules repair the structure locally
//! instead of re-running everything.
//!
//! Run with: `cargo run --example mobility_maintenance`

use khop::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let base = gen::geometric(&gen::GeometricConfig::new(80, 100.0, 8.0), &mut rng);
    let mut mobile = MobileNetwork::new(
        base.positions.clone(),
        base.range,
        WaypointConfig::default_for_side(100.0),
        &mut rng,
    );

    let k = 2;
    println!("epoch | churn | heads | gateways | CDS | note");
    for epoch in 0..10 {
        let delta = mobile.step(2.0, &mut rng);
        if !connectivity::is_connected(mobile.graph()) {
            println!(
                "{epoch:>5} | {:>5} | network disconnected, skipping epoch",
                delta.churn()
            );
            continue;
        }
        let out = pipeline::run(mobile.graph(), Algorithm::AcLmst, &PipelineConfig::new(k));
        out.cds.verify(mobile.graph(), k).expect("valid CDS");
        println!(
            "{epoch:>5} | {:>5} | {:>5} | {:>8} | {:>3} | rebuilt after movement",
            delta.churn(),
            out.clustering.head_count(),
            out.selection.gateways.len(),
            out.cds.size()
        );

        // A random node switches off: apply the paper's local fix and
        // report how local it actually was.
        let victim = NodeId(rng.gen_range(0..mobile.graph().len() as u32));
        let report = maintenance::handle_departure(
            mobile.graph(),
            &out.clustering,
            &out.selection,
            Algorithm::AcLmst,
            victim,
        );
        let mut residual = mobile.graph().clone();
        residual.isolate(victim);
        let ok = maintenance::repaired_structures_valid(&residual, &report, &[victim]);
        println!(
            "      |       | node {victim} ({:?}) left: touched {} of {} nodes, escalated={}, valid={}",
            report.role,
            report.touched.len(),
            mobile.graph().len(),
            report.escalated,
            ok,
        );
    }
}
