//! Power-aware clustering (§3.3): rotate the clusterhead role using
//! residual energy as the election priority and compare node lifetime
//! against the static lowest-ID policy.
//!
//! Run with: `cargo run --example energy_rotation`

use khop::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let net = gen::geometric(&gen::GeometricConfig::new(80, 100.0, 8.0), &mut rng);
    let model = EnergyModel {
        initial: 2_000,
        head_cost: 50,
        gateway_cost: 30,
        member_cost: 10,
    };
    let epochs = 200;
    println!(
        "energy model: initial={} head={} gateway={} member={} per epoch\n",
        model.initial, model.head_cost, model.gateway_cost, model.member_cost
    );

    for (name, policy) in [
        ("static lowest-ID", RotationPolicy::StaticLowestId),
        ("residual-energy rotation", RotationPolicy::ResidualEnergy),
    ] {
        let rep = energy::run_lifetime(&net.graph, 2, Algorithm::AcLmst, &model, policy, epochs);
        println!("{name}:");
        println!(
            "  first death: {}",
            rep.first_death_epoch
                .map(|e| format!("epoch {e}"))
                .unwrap_or_else(|| format!("none in {epochs} epochs"))
        );
        println!(
            "  alive after {epochs} epochs: {} / {}",
            rep.alive_curve.last().copied().unwrap_or(0),
            net.graph.len()
        );
        println!(
            "  head-set changes: {}, residual energy min/mean: {} / {:.0}\n",
            rep.head_changes, rep.min_residual, rep.mean_residual
        );
    }
}
