//! The paper's §5 future work in action: a movement-sensitive
//! maintenance policy keeps the connected k-hop clustering alive under
//! node motion, repairing only what broke.
//!
//! Run with: `cargo run --release --example movement_policy`

use khop::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 100;
    let k = 2;
    let mut rng = StdRng::seed_from_u64(77);
    let base = gen::geometric(&gen::GeometricConfig::new(n, 100.0, 10.0), &mut rng);
    let wp = WaypointConfig {
        side: 100.0,
        min_speed: 0.2,
        max_speed: 1.0,
        pause: 2.0,
    };
    let model = mobility::RandomWaypoint::new(n, wp, &mut rng);
    let mut mobile = MobileNetwork::with_model(base.positions.clone(), base.range, model);
    let mut maintained =
        MaintainedCds::build(mobile.graph(), MovementConfig::strict(k, Algorithm::AcLmst));
    println!(
        "initial structure: {} heads + {} gateways = CDS {}\n",
        maintained.cds.heads.len(),
        maintained.cds.gateways.len(),
        maintained.cds.size()
    );

    println!("step | edge churn | repair      | orphans | cost | CDS | saved vs rebuild");
    let mut total_cost = 0usize;
    let mut total_rebuild = 0usize;
    for step in 0..30 {
        let delta = mobile.step(1.0, &mut rng);
        total_rebuild += maintained.rebuild_cost(mobile.graph());
        let r = maintained.step(mobile.graph());
        total_cost += r.cost;
        println!(
            "{step:>4} | {:>10} | {:<11} | {:>7} | {:>4} | {:>3} | {:>5.0}%",
            delta.churn(),
            r.level.name(),
            r.orphans,
            r.cost,
            maintained.cds.size(),
            100.0 * (1.0 - total_cost as f64 / total_rebuild.max(1) as f64),
        );
        // Every repair leaves a verifiable k-hop CDS whenever the
        // network itself is connected.
        if connectivity::is_connected(mobile.graph()) {
            maintained.cds.verify(mobile.graph(), k).unwrap();
        }
    }
    println!(
        "\n30 steps: {total_cost} node-rounds spent vs {total_rebuild} for rebuild-every-step"
    );
}
