//! Energy-aware gateway selection (extension of §3.3's power-aware
//! discussion): LMSTGA over *weighted* virtual links that route around
//! energy-poor relay nodes.
//!
//! Run with: `cargo run --example weighted_gateways`

use khop::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(21);
    let net = gen::geometric(&gen::GeometricConfig::new(100, 100.0, 8.0), &mut rng);
    let k = 2;
    let clustering = clustering::cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);

    // Heterogeneous batteries: relay cost = how depleted a node is.
    let costs: Vec<u64> = (0..net.graph.len())
        .map(|_| rng.gen_range(0..100))
        .collect();

    // Hop-based AC-LMST ignores energy.
    let vg = VirtualGraph::build(&net.graph, &clustering, NeighborRule::Adjacent);
    let hop = gateway::lmstga(&vg, &clustering);
    // Weighted AC-LMST penalizes depleted relays.
    let weighted =
        gateway::lmstga_weighted(&net.graph, &clustering, NeighborRule::Adjacent, &costs);

    for (name, sel) in [("hop-based", &hop), ("energy-aware", &weighted)] {
        let cds = Cds::assemble(&clustering, sel);
        cds.verify(&net.graph, k).expect("connected k-hop CDS");
        println!(
            "{name:<13} gateways: {:>3}   total relay cost: {:>5}   links: {}",
            sel.gateways.len(),
            gateway::selection_relay_cost(sel, &costs),
            sel.links_used.len(),
        );
    }
    println!(
        "\nsame clusterheads, same guarantees (Theorem 2 verified on both);\n\
         the weighted variant shifts the relay burden onto charged nodes."
    );
}
