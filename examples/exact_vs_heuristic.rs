//! How far from optimal are the paper's heuristics? On a small network
//! we can afford the exact minimum k-hop CDS (branch-and-bound) and
//! compare every algorithm of §4 against it.
//!
//! Run with: `cargo run --release --example exact_vs_heuristic`

use khop::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(321);
    let net = gen::geometric(&gen::GeometricConfig::new(24, 100.0, 5.0), &mut rng);
    let k = 1;

    let opt = exact::min_khop_cds(&net.graph, k, &ExactConfig::default());
    assert!(opt.optimal, "step budget exhausted");
    exact::verify_khop_cds(&net.graph, &opt.set, k).unwrap();
    println!(
        "24-node network, k = {k}: exact minimum CDS = {} nodes ({} B&B expansions)\n",
        opt.size(),
        opt.explored
    );

    println!("{:<10} {:>5} {:>7}", "algorithm", "CDS", "ratio");
    println!("{:<10} {:>5} {:>7.3}", "OPT", opt.size(), 1.0);
    for alg in Algorithm::ALL {
        let out = pipeline::run(&net.graph, alg, &PipelineConfig::new(k));
        out.cds.verify(&net.graph, k).unwrap();
        println!(
            "{:<10} {:>5} {:>7.3}",
            alg.name(),
            out.cds.size(),
            out.cds.size() as f64 / opt.size() as f64
        );
    }
    println!(
        "\nnote: the gap is mostly the clustering's fault — heads are fixed\n\
         by the k-hop election before any gateway algorithm runs, so even\n\
         G-MST (the paper's lower bound) cannot reach the true optimum."
    );
}
