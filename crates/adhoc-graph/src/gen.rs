//! Network generators.
//!
//! The paper's workload (§4): `N` nodes placed uniformly at random in a
//! 100×100 area, identical transmission ranges, the range tuned so the
//! **average node degree** hits a target `D` (6 for the sparse series,
//! 10 for the dense one), and instances resampled until connected.
//! [`geometric`] reproduces exactly that. Deterministic topologies for
//! tests live in [`path`], [`cycle`], [`grid`], [`star`], [`complete`].
//!
//! For *changing* positions (mobility, churn experiments),
//! [`SpatialGrid`] maintains the unit-disk graph incrementally and
//! reports each step's edge changes as a [`TopologyDelta`].

use crate::connectivity;
use crate::delta::TopologyDelta;
use crate::geom::{self, Point};
use crate::graph::{Graph, NodeId};
use rand::Rng;
use std::collections::HashMap;

/// Configuration of the random geometric network workload.
#[derive(Clone, Debug)]
pub struct GeometricConfig {
    /// Number of nodes `N`.
    pub n: usize,
    /// Side length of the square deployment area (paper: 100).
    pub side: f64,
    /// Target average node degree `D` (paper: 6 or 10).
    pub target_degree: f64,
    /// Require the sampled network to be connected, resampling node
    /// positions until it is (the paper's theorems assume a connected
    /// `G`). Default `true`.
    pub require_connected: bool,
    /// Iterations of degree calibration (correcting the border effect
    /// of the analytic range formula). Default 3.
    pub calibration_rounds: usize,
    /// Cap on resampling attempts before panicking; guards against
    /// configurations that are almost never connected. Default 10 000.
    pub max_attempts: usize,
}

/// Node count above which [`GeometricConfig::at_scale`] stops
/// requiring a connected sample: at fixed density, large random
/// geometric graphs are almost surely disconnected, so insisting
/// would resample until the attempt cap panics. Every pipeline phase
/// is well-defined per component.
pub const CONNECTED_SAMPLING_LIMIT: usize = 1000;

impl GeometricConfig {
    /// Convenience constructor for the paper's parameters.
    pub fn new(n: usize, side: f64, target_degree: f64) -> Self {
        GeometricConfig {
            n,
            side,
            target_degree,
            require_connected: true,
            calibration_rounds: 3,
            max_attempts: 10_000,
        }
    }

    /// As [`Self::new`], with the workspace's large-`N` sampling
    /// convention applied: connectivity is only required below
    /// [`CONNECTED_SAMPLING_LIMIT`] nodes. The scaling benches and the
    /// CLI use this so `N ∈ 10⁴..10⁵` instances generate instead of
    /// resampling forever.
    pub fn at_scale(n: usize, side: f64, target_degree: f64) -> Self {
        let mut cfg = Self::new(n, side, target_degree);
        cfg.require_connected = n < CONNECTED_SAMPLING_LIMIT;
        cfg
    }
}

/// A generated geometric network: positions, the calibrated range, and
/// the unit-disk connectivity graph.
#[derive(Clone, Debug)]
pub struct GeometricNetwork {
    /// Node positions, indexed by `NodeId`.
    pub positions: Vec<Point>,
    /// Common transmission range after calibration.
    pub range: f64,
    /// Connectivity graph: edge iff Euclidean distance ≤ `range`.
    pub graph: Graph,
    /// How many position sets were rejected (disconnected) before this
    /// one was accepted.
    pub rejected: usize,
}

/// Builds the unit-disk graph of `positions` with range `r`.
///
/// Uses a uniform cell grid with cell side `r`: each node is bucketed,
/// and only the 3×3 block of neighboring cells is scanned per node, so
/// the expected cost is `O(n · expected degree)` instead of the naive
/// all-pairs `O(n²)`. Falls back to the quadratic scan for tiny inputs
/// or degenerate ranges where the grid bookkeeping costs more than it
/// saves. Output is identical to the all-pairs scan (tested).
pub fn unit_disk_graph(positions: &[Point], r: f64) -> Graph {
    if positions.len() < 64 || !r.is_finite() || r <= 0.0 {
        return unit_disk_graph_naive(positions, r);
    }
    let (min_x, max_x) = positions
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.x), hi.max(p.x))
        });
    let (min_y, max_y) = positions
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.y), hi.max(p.y))
        });
    let cols = (((max_x - min_x) / r).floor() as usize + 1).max(1);
    let rows = (((max_y - min_y) / r).floor() as usize + 1).max(1);
    if cols.saturating_mul(rows) > 4 * positions.len() + 1024 {
        // Very sparse deployments relative to r: the grid would be
        // mostly empty cells; the naive scan is cheaper to set up.
        return unit_disk_graph_naive(positions, r);
    }
    let cell_of = |p: &Point| -> (usize, usize) {
        let c = (((p.x - min_x) / r).floor() as usize).min(cols - 1);
        let rw = (((p.y - min_y) / r).floor() as usize).min(rows - 1);
        (rw, c)
    };
    // Counting sort of nodes into cells (flat CSR-style buckets).
    let mut counts = vec![0u32; rows * cols + 1];
    for p in positions {
        let (rw, c) = cell_of(p);
        counts[rw * cols + c + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    let mut bucket: Vec<u32> = vec![0; positions.len()];
    let mut cursor = counts.clone();
    for (i, p) in positions.iter().enumerate() {
        let (rw, c) = cell_of(p);
        let slot = &mut cursor[rw * cols + c];
        bucket[*slot as usize] = i as u32;
        *slot += 1;
    }
    let mut g = Graph::new(positions.len());
    for rw in 0..rows {
        for c in 0..cols {
            let here = &bucket[counts[rw * cols + c] as usize..cursor[rw * cols + c] as usize];
            // Within-cell pairs.
            for (a_idx, &a) in here.iter().enumerate() {
                for &b in &here[a_idx + 1..] {
                    if positions[a as usize].in_range(&positions[b as usize], r) {
                        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                        g.add_edge(NodeId(lo), NodeId(hi));
                    }
                }
            }
            // Forward half of the 8-neighborhood (E, SW, S, SE): each
            // unordered cell pair is visited exactly once.
            for (dr, dc) in [(0i64, 1i64), (1, -1), (1, 0), (1, 1)] {
                let (nr, nc) = (rw as i64 + dr, c as i64 + dc);
                if nr < 0 || nc < 0 || nr as usize >= rows || nc as usize >= cols {
                    continue;
                }
                let idx = nr as usize * cols + nc as usize;
                let there = &bucket[counts[idx] as usize..cursor[idx] as usize];
                for &a in here {
                    for &b in there {
                        if positions[a as usize].in_range(&positions[b as usize], r) {
                            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                            g.add_edge(NodeId(lo), NodeId(hi));
                        }
                    }
                }
            }
        }
    }
    g
}

/// A persistent spatial-hash grid over node positions, maintaining the
/// unit-disk graph **incrementally** as nodes move.
///
/// [`unit_disk_graph`] answers "what is the topology of these
/// positions" from scratch; under mobility that question is asked every
/// beacon period about positions that barely changed. `SpatialGrid`
/// keeps the cell buckets and the graph alive between steps:
/// [`SpatialGrid::update`] re-examines only the nodes that actually
/// moved (an edge can change only if an endpoint moved), scanning the
/// 3×3 cell block around each — `O(moved · local density)` instead of a
/// full rebuild — and reports exactly which edges appeared and vanished
/// as a [`TopologyDelta`], the input of every incremental consumer
/// above (`HeadLabels::apply_delta`, `pipeline::update_all`).
///
/// Cells are hashed by integer cell coordinates, so the grid covers an
/// unbounded plane with memory proportional to *occupied* cells only —
/// unlike the bounding-box counting grid inside [`unit_disk_graph`],
/// it never degrades on sparse deployments.
///
/// The maintained graph is always identical to
/// `unit_disk_graph(positions, r)` on the current positions (tested).
#[derive(Clone, Debug)]
pub struct SpatialGrid {
    r: f64,
    positions: Vec<Point>,
    cells: HashMap<(i64, i64), Vec<u32>>,
    graph: Graph,
}

impl SpatialGrid {
    /// Builds the grid and its unit-disk graph from scratch.
    ///
    /// # Panics
    /// Panics unless `r` is positive and finite (a fixed transmission
    /// range is the model's invariant).
    pub fn build(positions: &[Point], r: f64) -> Self {
        assert!(r.is_finite() && r > 0.0, "range must be positive and finite");
        let mut cells: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
        for (i, p) in positions.iter().enumerate() {
            cells.entry(Self::cell(r, p)).or_default().push(i as u32);
        }
        SpatialGrid {
            r,
            positions: positions.to_vec(),
            cells,
            graph: unit_disk_graph(positions, r),
        }
    }

    #[inline]
    fn cell(r: f64, p: &Point) -> (i64, i64) {
        ((p.x / r).floor() as i64, (p.y / r).floor() as i64)
    }

    /// The maintained unit-disk graph of the current positions.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Current node positions.
    #[inline]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// The transmission range.
    #[inline]
    pub fn range(&self) -> f64 {
        self.r
    }

    /// Moves the nodes to `new_positions` and updates the adjacency
    /// incrementally, returning the edge delta. Cost is proportional to
    /// the number of *moved* nodes times their local density, not to
    /// the network size.
    ///
    /// # Panics
    /// Panics if `new_positions` has a different length than the grid
    /// was built with (the node set is fixed).
    pub fn update(&mut self, new_positions: &[Point]) -> TopologyDelta {
        assert_eq!(
            new_positions.len(),
            self.positions.len(),
            "the node set is fixed; deltas only move nodes"
        );
        let r = self.r;
        // Pass 1: re-bucket every moved node and commit its position,
        // so all range tests below see the *new* geometry.
        let mut moved: Vec<u32> = Vec::new();
        for (i, (&new_p, old_p)) in new_positions
            .iter()
            .zip(self.positions.iter_mut())
            .enumerate()
        {
            if new_p == *old_p {
                continue;
            }
            moved.push(i as u32);
            let (old_c, new_c) = (Self::cell(r, old_p), Self::cell(r, &new_p));
            if old_c != new_c {
                let bucket = self.cells.get_mut(&old_c).expect("node was bucketed");
                let pos = bucket
                    .iter()
                    .position(|&x| x == i as u32)
                    .expect("node in its bucket");
                bucket.swap_remove(pos);
                if bucket.is_empty() {
                    self.cells.remove(&old_c);
                }
                self.cells.entry(new_c).or_default().push(i as u32);
            }
            *old_p = new_p;
        }
        // Pass 2: an edge can change only if an endpoint moved. Each
        // moved node checks its current neighbors for broken links and
        // its 3×3 cell block for new ones; edges whose both endpoints
        // moved are visited twice and deduplicated by `normalize`.
        let mut delta = TopologyDelta::new();
        for &u in &moved {
            let u_id = NodeId(u);
            let pu = self.positions[u as usize];
            for &v in self.graph.neighbors(u_id) {
                if !pu.in_range(&self.positions[v.index()], r) {
                    delta.push_removed(u_id, v);
                }
            }
            let (cx, cy) = Self::cell(r, &pu);
            for dx in -1..=1 {
                for dy in -1..=1 {
                    let Some(bucket) = self.cells.get(&(cx + dx, cy + dy)) else {
                        continue;
                    };
                    for &v in bucket {
                        let v_id = NodeId(v);
                        if v != u
                            && pu.in_range(&self.positions[v as usize], r)
                            && !self.graph.has_edge(u_id, v_id)
                        {
                            delta.push_added(u_id, v_id);
                        }
                    }
                }
            }
        }
        delta.normalize();
        delta.apply_to(&mut self.graph);
        delta
    }
}

/// The reference all-pairs unit-disk construction (`O(n²)`), kept for
/// tiny inputs and as the oracle the grid version is tested against.
pub fn unit_disk_graph_naive(positions: &[Point], r: f64) -> Graph {
    let mut g = Graph::new(positions.len());
    for i in 0..positions.len() {
        for j in (i + 1)..positions.len() {
            if positions[i].in_range(&positions[j], r) {
                g.add_edge(NodeId(i as u32), NodeId(j as u32));
            }
        }
    }
    g
}

/// Samples a random geometric network per `cfg`.
///
/// The transmission range starts at the analytic estimate
/// [`geom::range_for_target_degree`] and is then calibrated: the border
/// effect of a finite square makes the measured mean degree fall short
/// of the analytic one by 10–25%, so each calibration round rescales
/// `r` by `sqrt(target / measured)` and rebuilds the edge set from the
/// *same* positions. After calibration, if connectivity is required and
/// the instance is disconnected, fresh positions are drawn.
///
/// # Panics
/// Panics if `cfg.max_attempts` consecutive instances are disconnected,
/// or on degenerate configurations (`n < 2`, nonpositive degree).
pub fn geometric<R: Rng + ?Sized>(cfg: &GeometricConfig, rng: &mut R) -> GeometricNetwork {
    assert!(cfg.n >= 2, "need at least two nodes");
    let mut rejected = 0usize;
    loop {
        let positions: Vec<Point> = (0..cfg.n)
            .map(|_| Point::new(rng.gen::<f64>() * cfg.side, rng.gen::<f64>() * cfg.side))
            .collect();
        let mut r = geom::range_for_target_degree(cfg.n, cfg.side, cfg.target_degree);
        let mut graph = unit_disk_graph(&positions, r);
        for _ in 0..cfg.calibration_rounds {
            let measured = graph.average_degree();
            if measured <= 0.0 {
                r *= 1.5;
            } else {
                let ratio = (cfg.target_degree / measured).sqrt();
                // Damp extreme corrections so calibration cannot
                // oscillate on small instances.
                r *= ratio.clamp(0.5, 2.0);
            }
            graph = unit_disk_graph(&positions, r);
        }
        if cfg.require_connected && !connectivity::is_connected(&graph) {
            rejected += 1;
            assert!(
                rejected < cfg.max_attempts,
                "exceeded {} attempts without a connected instance \
                 (n={}, D={}): the configuration is too sparse",
                cfg.max_attempts,
                cfg.n,
                cfg.target_degree
            );
            continue;
        }
        return GeometricNetwork {
            positions,
            range: r,
            graph,
            rejected,
        };
    }
}

/// Quasi-unit-disk parameters: links are certain up to `inner`,
/// impossible beyond `outer`, and exist with probability `p_gray` in
/// the gray zone between — the standard model for radios whose
/// coverage is not a perfect disk (fading, obstacles, antenna
/// anisotropy).
#[derive(Clone, Copy, Debug)]
pub struct QuasiUdgConfig {
    /// Certain-link radius.
    pub inner: f64,
    /// Maximum-link radius (`>= inner`).
    pub outer: f64,
    /// Link probability in the gray zone `[inner, outer]`.
    pub p_gray: f64,
}

impl QuasiUdgConfig {
    /// Validates and builds the config.
    ///
    /// # Panics
    /// Panics on `outer < inner`, non-finite radii, or `p_gray`
    /// outside `[0, 1]`.
    pub fn new(inner: f64, outer: f64, p_gray: f64) -> Self {
        assert!(
            inner.is_finite() && outer.is_finite() && inner >= 0.0 && outer >= inner,
            "need 0 <= inner <= outer"
        );
        assert!((0.0..=1.0).contains(&p_gray), "p_gray must be in [0, 1]");
        QuasiUdgConfig {
            inner,
            outer,
            p_gray,
        }
    }
}

/// Builds a quasi-unit-disk graph over `positions`.
///
/// With `inner == outer` (or `p_gray ∈ {0, 1}` degenerating the gray
/// zone) this reduces exactly to [`unit_disk_graph`]. The result is
/// still an *undirected* graph: a gray-zone link is either present in
/// both directions or absent (one Bernoulli draw per pair, drawn in
/// `(i, j)` order so runs are reproducible).
pub fn quasi_unit_disk_graph<R: Rng + ?Sized>(
    positions: &[Point],
    cfg: &QuasiUdgConfig,
    rng: &mut R,
) -> Graph {
    let mut g = Graph::new(positions.len());
    for i in 0..positions.len() {
        for j in (i + 1)..positions.len() {
            let d = positions[i].distance(&positions[j]);
            let connect = if d <= cfg.inner {
                true
            } else if d <= cfg.outer {
                rng.gen::<f64>() < cfg.p_gray
            } else {
                false
            };
            if connect {
                g.add_edge(NodeId(i as u32), NodeId(j as u32));
            }
        }
    }
    g
}

/// Samples a connected quasi-UDG network: positions drawn like
/// [`geometric`], the *inner* radius calibrated to the target degree
/// with the gray zone scaled by `outer_ratio` (`outer = inner *
/// outer_ratio`). Resamples positions until connected.
///
/// # Panics
/// As [`geometric`], plus degenerate `outer_ratio < 1`.
pub fn quasi_geometric<R: Rng + ?Sized>(
    cfg: &GeometricConfig,
    outer_ratio: f64,
    p_gray: f64,
    rng: &mut R,
) -> GeometricNetwork {
    assert!(outer_ratio >= 1.0, "outer_ratio must be >= 1");
    assert!(cfg.n >= 2, "need at least two nodes");
    let mut rejected = 0usize;
    loop {
        let positions: Vec<Point> = (0..cfg.n)
            .map(|_| Point::new(rng.gen::<f64>() * cfg.side, rng.gen::<f64>() * cfg.side))
            .collect();
        let mut r = geom::range_for_target_degree(cfg.n, cfg.side, cfg.target_degree);
        let mut graph =
            quasi_unit_disk_graph(&positions, &QuasiUdgConfig::new(r, r * outer_ratio, p_gray), rng);
        for _ in 0..cfg.calibration_rounds {
            let measured = graph.average_degree();
            if measured <= 0.0 {
                r *= 1.5;
            } else {
                let ratio = (cfg.target_degree / measured).sqrt();
                r *= ratio.clamp(0.5, 2.0);
            }
            graph = quasi_unit_disk_graph(
                &positions,
                &QuasiUdgConfig::new(r, r * outer_ratio, p_gray),
                rng,
            );
        }
        if cfg.require_connected && !connectivity::is_connected(&graph) {
            rejected += 1;
            assert!(
                rejected < cfg.max_attempts,
                "exceeded {} attempts without a connected quasi-UDG instance",
                cfg.max_attempts
            );
            continue;
        }
        return GeometricNetwork {
            positions,
            range: r,
            graph,
            rejected,
        };
    }
}

/// Path graph `0 - 1 - … - (n-1)`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(NodeId(i as u32 - 1), NodeId(i as u32));
    }
    g
}

/// Cycle graph on `n >= 3` nodes.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut g = path(n);
    g.add_edge(NodeId(0), NodeId(n as u32 - 1));
    g
}

/// `rows x cols` grid graph; node `(r, c)` has ID `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = (r * cols + c) as u32;
            if c + 1 < cols {
                g.add_edge(NodeId(id), NodeId(id + 1));
            }
            if r + 1 < rows {
                g.add_edge(NodeId(id), NodeId(id + cols as u32));
            }
        }
    }
    g
}

/// Star: node 0 is the hub of `n - 1` leaves.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(NodeId(0), NodeId(i as u32));
    }
    g
}

/// Complete graph on `n` nodes.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(NodeId(i as u32), NodeId(j as u32));
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unit_disk_edges_respect_range() {
        let pos = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(3.0, 0.0),
        ];
        let g = unit_disk_graph(&pos, 1.5);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(0), NodeId(2)));
        assert!(!g.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn geometric_hits_target_degree_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = GeometricConfig::new(150, 100.0, 6.0);
        let net = geometric(&cfg, &mut rng);
        let d = net.graph.average_degree();
        assert!(
            (d - 6.0).abs() < 1.0,
            "calibrated degree {d} too far from target 6"
        );
        assert!(connectivity::is_connected(&net.graph));
        net.graph.check_invariants().unwrap();
    }

    #[test]
    fn geometric_dense_variant() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = GeometricConfig::new(100, 100.0, 10.0);
        let net = geometric(&cfg, &mut rng);
        let d = net.graph.average_degree();
        assert!((d - 10.0).abs() < 1.5, "calibrated degree {d}");
    }

    #[test]
    fn geometric_without_connectivity_requirement() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cfg = GeometricConfig::new(30, 100.0, 3.0);
        cfg.require_connected = false;
        let net = geometric(&cfg, &mut rng);
        assert_eq!(net.rejected, 0);
        assert_eq!(net.graph.len(), 30);
    }

    #[test]
    fn geometric_is_reproducible_from_seed() {
        let cfg = GeometricConfig::new(50, 100.0, 6.0);
        let a = geometric(&cfg, &mut StdRng::seed_from_u64(9));
        let b = geometric(&cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.range, b.range);
        let ea: Vec<_> = a.graph.edges().collect();
        let eb: Vec<_> = b.graph.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn geometric_rejects_tiny_n() {
        let mut rng = StdRng::seed_from_u64(0);
        geometric(&GeometricConfig::new(1, 100.0, 6.0), &mut rng);
    }

    #[test]
    fn deterministic_topologies() {
        let p = path(4);
        assert_eq!(p.edge_count(), 3);
        let c = cycle(4);
        assert_eq!(c.edge_count(), 4);
        assert!(c.has_edge(NodeId(0), NodeId(3)));
        let g = grid(2, 3);
        assert_eq!(g.edge_count(), 7);
        assert!(g.has_edge(NodeId(0), NodeId(3)));
        assert!(g.has_edge(NodeId(1), NodeId(2)));
        let s = star(5);
        assert_eq!(s.edge_count(), 4);
        assert_eq!(s.degree(NodeId(0)), 4);
        let k = complete(4);
        assert_eq!(k.edge_count(), 6);
        for t in [&p, &c, &g, &s, &k] {
            t.check_invariants().unwrap();
            assert!(connectivity::is_connected(t));
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn cycle_too_small_panics() {
        cycle(2);
    }

    #[test]
    fn grid_udg_matches_naive_oracle() {
        let mut rng = StdRng::seed_from_u64(99);
        for n in [64usize, 150, 400] {
            for r in [3.0f64, 9.0, 25.0, 80.0, 200.0] {
                let pos: Vec<Point> = (0..n)
                    .map(|_| Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0))
                    .collect();
                let fast = unit_disk_graph(&pos, r);
                let slow = unit_disk_graph_naive(&pos, r);
                assert_eq!(
                    fast.edges().collect::<Vec<_>>(),
                    slow.edges().collect::<Vec<_>>(),
                    "n={n} r={r}"
                );
                fast.check_invariants().unwrap();
            }
        }
    }

    #[test]
    fn grid_udg_handles_collinear_and_identical_points() {
        // All nodes on one horizontal line (degenerate y-extent) plus
        // exact duplicates.
        let mut pos: Vec<Point> = (0..70).map(|i| Point::new(i as f64, 5.0)).collect();
        pos.push(Point::new(3.0, 5.0)); // duplicate position of node 3
        let fast = unit_disk_graph(&pos, 1.5);
        let slow = unit_disk_graph_naive(&pos, 1.5);
        assert_eq!(
            fast.edges().collect::<Vec<_>>(),
            slow.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn grid_udg_zero_and_infinite_range() {
        let pos: Vec<Point> = (0..80).map(|i| Point::new(i as f64, 0.0)).collect();
        assert_eq!(unit_disk_graph(&pos, 0.0).edge_count(), 0);
        let all = unit_disk_graph(&pos, 1e9);
        assert_eq!(all.edge_count(), 80 * 79 / 2);
    }

    /// Random-walks a point set and checks after every step that the
    /// incrementally maintained grid graph equals a from-scratch
    /// rebuild and that the reported delta is exactly the difference.
    #[test]
    fn spatial_grid_matches_rebuild_under_random_motion() {
        let mut rng = StdRng::seed_from_u64(12);
        for (n, r, step) in [(40usize, 12.0, 3.0), (120, 9.0, 1.5), (80, 25.0, 10.0)] {
            let mut pos: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0))
                .collect();
            let mut grid = SpatialGrid::build(&pos, r);
            assert_eq!(
                grid.graph().edges().collect::<Vec<_>>(),
                unit_disk_graph(&pos, r).edges().collect::<Vec<_>>()
            );
            for round in 0..12 {
                let before = grid.graph().clone();
                // Move a random subset (sometimes everyone, sometimes
                // a handful; every third round nobody).
                let movers = match round % 3 {
                    0 => 0,
                    1 => n / 8 + 1,
                    _ => n,
                };
                for _ in 0..movers {
                    let i = rng.gen_range(0..n);
                    pos[i].x = (pos[i].x + (rng.gen::<f64>() - 0.5) * step).clamp(0.0, 100.0);
                    pos[i].y = (pos[i].y + (rng.gen::<f64>() - 0.5) * step).clamp(0.0, 100.0);
                }
                let delta = grid.update(&pos);
                let oracle = unit_disk_graph(&pos, r);
                assert_eq!(
                    grid.graph().edges().collect::<Vec<_>>(),
                    oracle.edges().collect::<Vec<_>>(),
                    "n={n} r={r} round={round}"
                );
                assert_eq!(
                    delta,
                    crate::delta::TopologyDelta::between(&before, &oracle)
                );
                if movers == 0 {
                    assert!(delta.is_empty());
                }
                grid.graph().check_invariants().unwrap();
            }
        }
    }

    #[test]
    fn spatial_grid_handles_cell_crossings_and_duplicates() {
        // Nodes stacked on one point, then dispersed across many cells.
        let pos = vec![Point::new(5.0, 5.0); 6];
        let mut grid = SpatialGrid::build(&pos, 2.0);
        assert_eq!(grid.graph().edge_count(), 15);
        let spread: Vec<Point> = (0..6).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        let delta = grid.update(&spread);
        assert_eq!(delta.removed.len(), 15);
        assert!(delta.added.is_empty());
        assert_eq!(grid.graph().edge_count(), 0);
        assert_eq!(grid.positions(), &spread[..]);
        assert_eq!(grid.range(), 2.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn spatial_grid_rejects_degenerate_range() {
        SpatialGrid::build(&[Point::new(0.0, 0.0)], 0.0);
    }

    #[test]
    fn quasi_udg_reduces_to_udg_when_zone_empty() {
        let mut rng = StdRng::seed_from_u64(5);
        let pos: Vec<Point> = (0..30)
            .map(|_| Point::new(rng.gen::<f64>() * 50.0, rng.gen::<f64>() * 50.0))
            .collect();
        let udg = unit_disk_graph(&pos, 12.0);
        let q = quasi_unit_disk_graph(&pos, &QuasiUdgConfig::new(12.0, 12.0, 0.5), &mut rng);
        let eu: Vec<_> = udg.edges().collect();
        let eq: Vec<_> = q.edges().collect();
        assert_eq!(eu, eq);
    }

    #[test]
    fn quasi_udg_bracketed_by_inner_and_outer_disks() {
        let mut rng = StdRng::seed_from_u64(6);
        let pos: Vec<Point> = (0..40)
            .map(|_| Point::new(rng.gen::<f64>() * 60.0, rng.gen::<f64>() * 60.0))
            .collect();
        let cfg = QuasiUdgConfig::new(8.0, 16.0, 0.5);
        let q = quasi_unit_disk_graph(&pos, &cfg, &mut rng);
        let lower = unit_disk_graph(&pos, 8.0);
        let upper = unit_disk_graph(&pos, 16.0);
        for (u, v) in lower.edges() {
            assert!(q.has_edge(u, v), "certain link ({u:?},{v:?}) missing");
        }
        for (u, v) in q.edges() {
            assert!(upper.has_edge(u, v), "link ({u:?},{v:?}) beyond outer");
        }
        q.check_invariants().unwrap();
    }

    #[test]
    fn quasi_udg_gray_probabilities_are_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        let pos: Vec<Point> = (0..30)
            .map(|_| Point::new(rng.gen::<f64>() * 60.0, rng.gen::<f64>() * 60.0))
            .collect();
        let all = quasi_unit_disk_graph(&pos, &QuasiUdgConfig::new(8.0, 16.0, 1.0), &mut rng);
        let none = quasi_unit_disk_graph(&pos, &QuasiUdgConfig::new(8.0, 16.0, 0.0), &mut rng);
        let outer: Vec<_> = unit_disk_graph(&pos, 16.0).edges().collect();
        let inner: Vec<_> = unit_disk_graph(&pos, 8.0).edges().collect();
        assert_eq!(all.edges().collect::<Vec<_>>(), outer);
        assert_eq!(none.edges().collect::<Vec<_>>(), inner);
    }

    #[test]
    fn quasi_geometric_is_connected_and_calibrated() {
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = GeometricConfig::new(100, 100.0, 6.0);
        let net = quasi_geometric(&cfg, 1.5, 0.5, &mut rng);
        assert!(connectivity::is_connected(&net.graph));
        let d = net.graph.average_degree();
        assert!((d - 6.0).abs() < 1.5, "calibrated quasi-UDG degree {d}");
    }

    #[test]
    #[should_panic(expected = "p_gray")]
    fn quasi_udg_rejects_bad_probability() {
        QuasiUdgConfig::new(1.0, 2.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "inner <= outer")]
    fn quasi_udg_rejects_inverted_radii() {
        QuasiUdgConfig::new(3.0, 2.0, 0.5);
    }
}
