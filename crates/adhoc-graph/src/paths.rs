//! Helpers for node-sequence paths.
//!
//! A path is represented as a `Vec<NodeId>` / `&[NodeId]` including both
//! endpoints; a single node is a zero-hop path.

use crate::bfs::Adjacency;
use crate::graph::NodeId;

/// Number of hops of a path (`len - 1`; zero for empty or singleton).
pub fn hop_count(path: &[NodeId]) -> u32 {
    path.len().saturating_sub(1) as u32
}

/// Interior nodes of the path (everything except the two endpoints).
/// These are the nodes the gateway algorithms mark.
pub fn interior(path: &[NodeId]) -> &[NodeId] {
    if path.len() <= 2 {
        &[]
    } else {
        &path[1..path.len() - 1]
    }
}

/// In-place shortcut pass for hierarchical routing walks: truncates
/// `walk` at the **first** time it passes through `target` (the
/// standard "stop early when the route already reached the
/// destination" rule — ascending toward a clusterhead or crossing a
/// gateway path can touch the destination long before the formal
/// descent does), then collapses consecutive duplicates left by
/// segment joins. A walk that never visits `target` only loses its
/// consecutive duplicates.
pub fn shortcut_walk(walk: &mut Vec<NodeId>, target: NodeId) {
    if let Some(i) = walk.iter().position(|&v| v == target) {
        walk.truncate(i + 1);
    }
    walk.dedup();
}

/// Whether `path` is a simple walk along existing edges of `g`.
pub fn is_valid_path<G: Adjacency>(g: &G, path: &[NodeId]) -> bool {
    if path.is_empty() {
        return false;
    }
    let distinct: std::collections::HashSet<_> = path.iter().collect();
    if distinct.len() != path.len() {
        return false;
    }
    path.windows(2)
        .all(|w| g.adj(w[0]).binary_search(&w[1]).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn hop_count_basics() {
        assert_eq!(hop_count(&[]), 0);
        assert_eq!(hop_count(&[NodeId(0)]), 0);
        assert_eq!(hop_count(&[NodeId(0), NodeId(1), NodeId(2)]), 2);
    }

    #[test]
    fn interior_excludes_endpoints() {
        let p = [NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        assert_eq!(interior(&p), &[NodeId(1), NodeId(2)]);
        assert!(interior(&p[..2]).is_empty());
        assert!(interior(&p[..1]).is_empty());
    }

    #[test]
    fn shortcut_truncates_at_first_visit() {
        // Ascent 2-1-0 then descent 0-1: the walk passes through the
        // destination 1 on the way up, so everything after the first
        // visit is cut.
        let mut w = vec![NodeId(2), NodeId(1), NodeId(0), NodeId(1)];
        shortcut_walk(&mut w, NodeId(1));
        assert_eq!(w, vec![NodeId(2), NodeId(1)]);
        // No visit of the target: only consecutive duplicates collapse.
        let mut w = vec![NodeId(2), NodeId(2), NodeId(3), NodeId(4)];
        shortcut_walk(&mut w, NodeId(9));
        assert_eq!(w, vec![NodeId(2), NodeId(3), NodeId(4)]);
        // Target first: degenerates to the trivial walk.
        let mut w = vec![NodeId(5), NodeId(6)];
        shortcut_walk(&mut w, NodeId(5));
        assert_eq!(w, vec![NodeId(5)]);
    }

    #[test]
    fn validity() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(is_valid_path(&g, &[NodeId(0), NodeId(1), NodeId(2)]));
        assert!(!is_valid_path(&g, &[NodeId(0), NodeId(2)]));
        assert!(!is_valid_path(&g, &[])); // empty
        assert!(is_valid_path(&g, &[NodeId(3)])); // singleton
                                                  // Repeated node => not simple.
        assert!(!is_valid_path(&g, &[NodeId(0), NodeId(1), NodeId(0)]));
    }
}
