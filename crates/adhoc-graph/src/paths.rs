//! Helpers for node-sequence paths.
//!
//! A path is represented as a `Vec<NodeId>` / `&[NodeId]` including both
//! endpoints; a single node is a zero-hop path.

use crate::bfs::Adjacency;
use crate::graph::NodeId;

/// Number of hops of a path (`len - 1`; zero for empty or singleton).
pub fn hop_count(path: &[NodeId]) -> u32 {
    path.len().saturating_sub(1) as u32
}

/// Interior nodes of the path (everything except the two endpoints).
/// These are the nodes the gateway algorithms mark.
pub fn interior(path: &[NodeId]) -> &[NodeId] {
    if path.len() <= 2 {
        &[]
    } else {
        &path[1..path.len() - 1]
    }
}

/// Whether `path` is a simple walk along existing edges of `g`.
pub fn is_valid_path<G: Adjacency>(g: &G, path: &[NodeId]) -> bool {
    if path.is_empty() {
        return false;
    }
    let distinct: std::collections::HashSet<_> = path.iter().collect();
    if distinct.len() != path.len() {
        return false;
    }
    path.windows(2)
        .all(|w| g.adj(w[0]).binary_search(&w[1]).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn hop_count_basics() {
        assert_eq!(hop_count(&[]), 0);
        assert_eq!(hop_count(&[NodeId(0)]), 0);
        assert_eq!(hop_count(&[NodeId(0), NodeId(1), NodeId(2)]), 2);
    }

    #[test]
    fn interior_excludes_endpoints() {
        let p = [NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        assert_eq!(interior(&p), &[NodeId(1), NodeId(2)]);
        assert!(interior(&p[..2]).is_empty());
        assert!(interior(&p[..1]).is_empty());
    }

    #[test]
    fn validity() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(is_valid_path(&g, &[NodeId(0), NodeId(1), NodeId(2)]));
        assert!(!is_valid_path(&g, &[NodeId(0), NodeId(2)]));
        assert!(!is_valid_path(&g, &[])); // empty
        assert!(is_valid_path(&g, &[NodeId(3)])); // singleton
                                                  // Repeated node => not simple.
        assert!(!is_valid_path(&g, &[NodeId(0), NodeId(1), NodeId(0)]));
    }
}
