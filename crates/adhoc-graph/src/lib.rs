//! Graph substrate for ad hoc network algorithms.
//!
//! This crate provides the foundations used by the connected k-hop
//! clustering implementation (`adhoc-cluster`) and the discrete-event
//! simulator (`adhoc-sim`):
//!
//! * [`Graph`] — an undirected graph with sorted adjacency lists, the
//!   canonical in-memory representation. Sorted lists make every
//!   traversal deterministic, which the clustering pipeline relies on
//!   (all shortest-path tie-breaking is by node ID).
//! * [`Csr`] — a compressed sparse row snapshot of a [`Graph`] for hot
//!   read-only traversals (Monte-Carlo sweeps in the benchmark harness).
//! * [`gen`] — network generators: random geometric graphs in a square
//!   deployment area with a transmission range calibrated to a target
//!   average degree (the workload of the paper's §4), plus deterministic
//!   topologies for tests.
//! * [`bfs`] — breadth-first search: full and hop-bounded distances,
//!   k-hop neighborhoods, reusable scratch buffers, canonical
//!   (lexicographically smallest) shortest paths.
//! * [`labels`] — per-clusterhead distance labels, the single-sweep
//!   substrate of the evaluation engine (`adhoc-cluster::pipeline`'s
//!   `run_all`): the dense flat-arena [`HeadLabels`], the ball-indexed
//!   [`labels::SparseHeadLabels`] for large `N`, and the
//!   [`labels::LabelStore`] facade that lets every consumer run off
//!   either layout.
//! * [`mst`] — Kruskal and Prim minimum spanning trees over abstract
//!   weights, and [`unionfind::UnionFind`].
//! * [`lmst`] — the Li/Hou/Sha local minimum spanning tree rule, both in
//!   its original geometric topology-control form and generalized over
//!   abstract weighted neighborhoods (the form the paper's LMSTGA
//!   gateway algorithm instantiates on "virtual links").
//! * [`connectivity`] — components and connectivity predicates.
//! * [`obs`] — the hand-rolled observability core (atomic counters,
//!   power-of-two latency histograms, span timers, a bounded event
//!   ring) behind the disabled-by-default [`Metrics`] handle every
//!   layer of the stack reports into.
//!
//! # Example
//!
//! ```
//! use adhoc_graph::{Graph, NodeId, bfs};
//!
//! let mut g = Graph::new(4);
//! g.add_edge(NodeId(0), NodeId(1));
//! g.add_edge(NodeId(1), NodeId(2));
//! g.add_edge(NodeId(2), NodeId(3));
//! let dist = bfs::distances(&g, NodeId(0));
//! assert_eq!(dist[3], 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod connectivity;
pub mod csr;
pub mod delta;
pub mod dijkstra;
pub mod gen;
pub mod geom;
pub mod graph;
pub mod io;
pub mod labels;
pub mod lmst;
pub mod metrics;
pub mod mst;
pub mod obs;
pub mod par;
pub mod paths;
pub mod subgraph;
pub mod unionfind;

pub use csr::Csr;
pub use delta::TopologyDelta;
pub use geom::Point;
pub use graph::{Graph, NodeId};
pub use labels::{HeadLabels, LabelMode, LabelStore, SparseHeadLabels};
pub use obs::{Metrics, MetricsSnapshot};
pub use par::Parallelism;
