//! Topology deltas — the currency of the incremental update engine.
//!
//! Under churn (mobility, departures, arrivals) the topology changes a
//! few edges per beacon period while everything else stays put. A
//! [`TopologyDelta`] records exactly those changes as explicit edge
//! lists, so every layer above the graph can pay costs proportional to
//! *what changed* instead of to the whole network:
//!
//! * [`gen::SpatialGrid`](crate::gen::SpatialGrid) produces deltas from
//!   moved node positions;
//! * [`HeadLabels::dirty_slots`](crate::labels::HeadLabels::dirty_slots)
//!   consumes them to find the clusterheads whose `2k+1` balls a change
//!   touched;
//! * `adhoc-cluster::pipeline::update_all` refreshes only the virtual
//!   links and selections those dirty heads own.
//!
//! Edges are always normalized `(a, b)` with `a < b`, each list sorted
//! ascending and duplicate-free, so two deltas describing the same
//! change compare equal.

use crate::graph::{Graph, NodeId};

/// An edge-level difference between two topologies over the same node
/// set: the edges that appeared and the edges that vanished.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TopologyDelta {
    /// Edges present after but not before, `(a, b)` with `a < b`,
    /// ascending and duplicate-free.
    pub added: Vec<(NodeId, NodeId)>,
    /// Edges present before but not after, same normalization.
    pub removed: Vec<(NodeId, NodeId)>,
}

impl TopologyDelta {
    /// An empty delta (no change).
    pub fn new() -> Self {
        TopologyDelta::default()
    }

    /// Diffs two snapshots edge by edge. `before` and `after` must have
    /// the same node count (nodes never change identity; departures are
    /// modeled by isolation).
    ///
    /// # Panics
    /// Panics if the node counts differ.
    pub fn between(before: &Graph, after: &Graph) -> Self {
        assert_eq!(
            before.len(),
            after.len(),
            "deltas are over a fixed node set"
        );
        let mut delta = TopologyDelta::default();
        for (u, v) in before.edges() {
            if !after.has_edge(u, v) {
                delta.removed.push((u, v));
            }
        }
        for (u, v) in after.edges() {
            if !before.has_edge(u, v) {
                delta.added.push((u, v));
            }
        }
        // `Graph::edges` yields ascending normalized pairs already.
        delta
    }

    /// The delta of node `u` switching off: all its incident edges
    /// removed, nothing added (`g` is the topology *before* departure).
    pub fn isolating(g: &Graph, u: NodeId) -> Self {
        let removed = g
            .neighbors(u)
            .iter()
            .map(|&v| if u < v { (u, v) } else { (v, u) })
            .collect::<Vec<_>>();
        let mut delta = TopologyDelta {
            added: Vec::new(),
            removed,
        };
        delta.normalize();
        delta
    }

    /// Records an added edge (any endpoint order).
    pub fn push_added(&mut self, u: NodeId, v: NodeId) {
        self.added.push(if u < v { (u, v) } else { (v, u) });
    }

    /// Records a removed edge (any endpoint order).
    pub fn push_removed(&mut self, u: NodeId, v: NodeId) {
        self.removed.push(if u < v { (u, v) } else { (v, u) });
    }

    /// Sorts both lists ascending and drops duplicates (producers that
    /// may visit an edge from both endpoints call this once at the end).
    pub fn normalize(&mut self) {
        self.added.sort_unstable();
        self.added.dedup();
        self.removed.sort_unstable();
        self.removed.dedup();
    }

    /// Total churn: number of edge changes.
    pub fn churn(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Whether nothing changed.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Every endpoint of every changed edge (with repetitions) — the
    /// nodes whose neighborhoods the delta touched.
    pub fn endpoints(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.added
            .iter()
            .chain(self.removed.iter())
            .flat_map(|&(a, b)| [a, b])
    }

    /// Applies the delta to `g` in place (removals first; the two
    /// lists are disjoint for any real diff).
    ///
    /// # Panics
    /// Panics if an added edge already exists or a removed edge is
    /// absent — a delta must match the graph it is applied to.
    pub fn apply_to(&self, g: &mut Graph) {
        for &(a, b) in &self.removed {
            assert!(g.remove_edge(a, b), "removed edge ({a:?},{b:?}) absent");
        }
        for &(a, b) in &self.added {
            g.add_edge(a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn between_and_apply_round_trip() {
        let before = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let after = Graph::from_edges(5, &[(1, 2), (2, 3), (3, 4), (0, 4)]);
        let delta = TopologyDelta::between(&before, &after);
        assert_eq!(delta.added, vec![(NodeId(0), NodeId(4)), (NodeId(2), NodeId(3))]);
        assert_eq!(delta.removed, vec![(NodeId(0), NodeId(1))]);
        assert_eq!(delta.churn(), 3);
        assert!(!delta.is_empty());
        let mut g = before.clone();
        delta.apply_to(&mut g);
        assert_eq!(
            g.edges().collect::<Vec<_>>(),
            after.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn identical_graphs_give_empty_delta() {
        let g = gen::grid(3, 3);
        let d = TopologyDelta::between(&g, &g);
        assert!(d.is_empty());
        assert_eq!(d.churn(), 0);
        assert_eq!(d.endpoints().count(), 0);
    }

    #[test]
    fn isolating_lists_incident_edges() {
        let g = gen::star(5);
        let d = TopologyDelta::isolating(&g, NodeId(0));
        assert!(d.added.is_empty());
        assert_eq!(d.removed.len(), 4);
        let mut g2 = g.clone();
        d.apply_to(&mut g2);
        assert_eq!(g2.degree(NodeId(0)), 0);
        assert_eq!(g2.edge_count(), 0);
        // A leaf's isolation removes exactly its one edge.
        let d3 = TopologyDelta::isolating(&g, NodeId(3));
        assert_eq!(d3.removed, vec![(NodeId(0), NodeId(3))]);
    }

    #[test]
    fn normalization_dedups_and_orients() {
        let mut d = TopologyDelta::new();
        d.push_added(NodeId(4), NodeId(1));
        d.push_added(NodeId(1), NodeId(4));
        d.push_removed(NodeId(3), NodeId(0));
        d.normalize();
        assert_eq!(d.added, vec![(NodeId(1), NodeId(4))]);
        assert_eq!(d.removed, vec![(NodeId(0), NodeId(3))]);
        let ends: Vec<NodeId> = d.endpoints().collect();
        assert_eq!(ends, vec![NodeId(1), NodeId(4), NodeId(0), NodeId(3)]);
    }

    #[test]
    #[should_panic(expected = "fixed node set")]
    fn between_rejects_mismatched_sizes() {
        TopologyDelta::between(&Graph::new(3), &Graph::new(4));
    }

    #[test]
    #[should_panic(expected = "absent")]
    fn apply_rejects_stale_removal() {
        let mut g = Graph::new(3);
        let mut d = TopologyDelta::new();
        d.push_removed(NodeId(0), NodeId(1));
        d.apply_to(&mut g);
    }
}
