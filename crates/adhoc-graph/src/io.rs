//! Plain-text network I/O.
//!
//! A deliberately simple, diff-friendly format so topologies can be
//! checked into test fixtures, exchanged with plotting scripts, or fed
//! to the CLI:
//!
//! ```text
//! # comment lines start with '#'
//! nodes <n>
//! pos <id> <x> <y>        (optional, one per node)
//! edge <u> <v>
//! ```

use crate::geom::Point;
use crate::graph::{Graph, NodeId};
use std::io::{BufRead, Write};

/// A parsed network file: a graph and optional positions.
#[derive(Clone, Debug)]
pub struct NetworkFile {
    /// The topology.
    pub graph: Graph,
    /// Node positions if the file carried `pos` lines (all-or-none).
    pub positions: Option<Vec<Point>>,
}

/// Serializes a graph (and optional positions) to the text format.
pub fn write_network<W: Write>(
    w: &mut W,
    graph: &Graph,
    positions: Option<&[Point]>,
) -> std::io::Result<()> {
    writeln!(w, "# khop network file")?;
    writeln!(w, "nodes {}", graph.len())?;
    if let Some(pos) = positions {
        assert_eq!(pos.len(), graph.len(), "one position per node");
        for (i, p) in pos.iter().enumerate() {
            writeln!(w, "pos {i} {} {}", p.x, p.y)?;
        }
    }
    for (u, v) in graph.edges() {
        writeln!(w, "edge {u} {v}")?;
    }
    Ok(())
}

/// Parses the text format.
///
/// # Errors
/// Returns `InvalidData` on malformed lines, out-of-range endpoints,
/// duplicate edges, or a partial position set.
pub fn read_network<R: BufRead>(r: &mut R) -> std::io::Result<NetworkFile> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let mut graph: Option<Graph> = None;
    let mut positions: Vec<(usize, Point)> = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let tag = it.next().expect("nonempty line");
        let mut num = |what: &str| -> std::io::Result<f64> {
            it.next()
                .ok_or_else(|| bad(format!("line {}: missing {what}", lineno + 1)))?
                .parse::<f64>()
                .map_err(|e| bad(format!("line {}: {what}: {e}", lineno + 1)))
        };
        match tag {
            "nodes" => {
                let n = num("count")? as usize;
                graph = Some(Graph::new(n));
            }
            "pos" => {
                let id = num("id")? as usize;
                let x = num("x")?;
                let y = num("y")?;
                positions.push((id, Point::new(x, y)));
            }
            "edge" => {
                let g = graph
                    .as_mut()
                    .ok_or_else(|| bad(format!("line {}: edge before nodes", lineno + 1)))?;
                let u = num("u")? as u32;
                let v = num("v")? as u32;
                if u as usize >= g.len() || v as usize >= g.len() || u == v {
                    return Err(bad(format!("line {}: bad edge {u}-{v}", lineno + 1)));
                }
                if g.has_edge(NodeId(u), NodeId(v)) {
                    return Err(bad(format!("line {}: duplicate edge {u}-{v}", lineno + 1)));
                }
                g.add_edge(NodeId(u), NodeId(v));
            }
            other => return Err(bad(format!("line {}: unknown tag {other}", lineno + 1))),
        }
    }
    let graph = graph.ok_or_else(|| bad("missing 'nodes' line".into()))?;
    let positions = if positions.is_empty() {
        None
    } else {
        if positions.len() != graph.len() {
            return Err(bad(format!(
                "{} positions for {} nodes",
                positions.len(),
                graph.len()
            )));
        }
        let mut out = vec![Point::default(); graph.len()];
        let mut seen = vec![false; graph.len()];
        for (id, p) in positions {
            if id >= out.len() || seen[id] {
                return Err(bad(format!("bad or duplicate position id {id}")));
            }
            out[id] = p;
            seen[id] = true;
        }
        Some(out)
    };
    Ok(NetworkFile { graph, positions })
}

/// Convenience: write to a file path.
pub fn save(
    path: &std::path::Path,
    graph: &Graph,
    positions: Option<&[Point]>,
) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_network(&mut f, graph, positions)
}

/// Convenience: read from a file path.
pub fn load(path: &std::path::Path) -> std::io::Result<NetworkFile> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    read_network(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn round_trip(graph: &Graph, positions: Option<&[Point]>) -> NetworkFile {
        let mut buf = Vec::new();
        write_network(&mut buf, graph, positions).unwrap();
        read_network(&mut std::io::Cursor::new(buf)).unwrap()
    }

    #[test]
    fn round_trip_topology_only() {
        let g = gen::grid(3, 4);
        let parsed = round_trip(&g, None);
        assert!(parsed.positions.is_none());
        assert_eq!(parsed.graph.len(), g.len());
        let a: Vec<_> = g.edges().collect();
        let b: Vec<_> = parsed.graph.edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn round_trip_with_positions() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let net = gen::geometric(&gen::GeometricConfig::new(30, 100.0, 6.0), &mut rng);
        let parsed = round_trip(&net.graph, Some(&net.positions));
        let pos = parsed.positions.unwrap();
        for (a, b) in net.positions.iter().zip(&pos) {
            assert!((a.x - b.x).abs() < 1e-9);
            assert!((a.y - b.y).abs() < 1e-9);
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\nnodes 3\n# middle\nedge 0 1\nedge 1 2\n";
        let parsed = read_network(&mut std::io::Cursor::new(text)).unwrap();
        assert_eq!(parsed.graph.edge_count(), 2);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "edge 0 1\n",                    // edge before nodes
            "nodes 2\nedge 0 5\n",           // out of range
            "nodes 2\nedge 0 0\n",           // self loop
            "nodes 2\nedge 0 1\nedge 1 0\n", // duplicate
            "nodes 2\nwat 1\n",              // unknown tag
            "nodes 2\npos 0 1.0 2.0\n",      // partial positions
            "nodes x\n",                     // unparsable count
        ] {
            assert!(
                read_network(&mut std::io::Cursor::new(bad)).is_err(),
                "accepted malformed input: {bad:?}"
            );
        }
    }

    #[test]
    fn file_save_load() {
        let g = gen::cycle(5);
        let dir = std::env::temp_dir().join("adhoc-graph-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.txt");
        save(&path, &g, None).unwrap();
        let parsed = load(&path).unwrap();
        assert_eq!(parsed.graph.edge_count(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }
}
