//! Undirected graph with sorted adjacency lists.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node, a dense index in `0..Graph::len()`.
///
/// The paper's algorithms use node IDs both as identity and as priority
/// (lowest-ID clustering, ID-based tie-breaking of shortest paths and
/// LMST weights), so `NodeId` derives a total order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The adjacency-array index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// An undirected simple graph over nodes `0..n`.
///
/// Neighbor lists are kept sorted in ascending ID order. This makes all
/// traversals of the graph deterministic: BFS discovers equal-distance
/// nodes in ID order, which is exactly the tie-breaking rule the
/// clustering pipeline documents ("lexicographic shortest paths").
///
/// Self-loops and parallel edges are rejected.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    edges: usize,
}

impl Clone for Graph {
    fn clone(&self) -> Self {
        Graph {
            adj: self.adj.clone(),
            edges: self.edges,
        }
    }

    /// `clone_from` reuses both the outer adjacency vector and every
    /// per-node neighbor list already allocated in `self` — long-lived
    /// consumers that re-sync with snapshots every step (the churn
    /// engine) copy without reallocating.
    fn clone_from(&mut self, source: &Self) {
        self.adj.clone_from(&source.adj);
        self.edges = source.edges;
    }
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Builds a graph from an edge list. Duplicate edges are ignored.
    ///
    /// # Panics
    /// Panics if any endpoint is out of range or an edge is a self-loop.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut g = Graph::new(n);
        for &(a, b) in edges {
            let (a, b) = (NodeId(a), NodeId(b));
            if !g.has_edge(a, b) {
                g.add_edge(a, b);
            }
        }
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Iterator over all node IDs.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len() as u32).map(NodeId)
    }

    /// The sorted neighbor list of `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adj[u.index()]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u.index()].len()
    }

    /// Mean degree over all nodes (`0.0` for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.edges as f64 / self.adj.len() as f64
        }
    }

    /// Whether the undirected edge `(u, v)` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u.index()].binary_search(&v).is_ok()
    }

    /// Inserts the undirected edge `(u, v)`, keeping adjacency sorted.
    ///
    /// # Panics
    /// Panics on self-loops, out-of-range endpoints, or duplicates.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert_ne!(u, v, "self-loop {u:?}");
        assert!(u.index() < self.adj.len(), "node {u:?} out of range");
        assert!(v.index() < self.adj.len(), "node {v:?} out of range");
        let pos_v = self.adj[u.index()]
            .binary_search(&v)
            .expect_err("duplicate edge");
        self.adj[u.index()].insert(pos_v, v);
        let pos_u = self.adj[v.index()]
            .binary_search(&u)
            .expect_err("duplicate edge");
        self.adj[v.index()].insert(pos_u, u);
        self.edges += 1;
    }

    /// Removes the undirected edge `(u, v)` if present; returns whether
    /// an edge was removed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let Ok(pos_v) = self.adj[u.index()].binary_search(&v) else {
            return false;
        };
        self.adj[u.index()].remove(pos_v);
        let pos_u = self.adj[v.index()]
            .binary_search(&u)
            .expect("asymmetric adjacency");
        self.adj[v.index()].remove(pos_u);
        self.edges -= 1;
        true
    }

    /// Detaches `u` from all of its neighbors (models a node switching
    /// off; the node keeps its ID so indices stay stable).
    ///
    /// Returns the neighbors it had.
    pub fn isolate(&mut self, u: NodeId) -> Vec<NodeId> {
        let former = std::mem::take(&mut self.adj[u.index()]);
        for &v in &former {
            let pos = self.adj[v.index()]
                .binary_search(&u)
                .expect("asymmetric adjacency");
            self.adj[v.index()].remove(pos);
        }
        self.edges -= former.len();
        former
    }

    /// Iterator over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, ns)| {
            let u = NodeId(u as u32);
            ns.iter()
                .copied()
                .filter_map(move |v| (u < v).then_some((u, v)))
        })
    }

    /// Appends a new isolated node and returns its ID.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        NodeId(self.adj.len() as u32 - 1)
    }

    /// Checks internal invariants (sorted, symmetric, loop-free
    /// adjacency; consistent edge count). Used by tests and debug
    /// assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut count = 0usize;
        for (u, ns) in self.adj.iter().enumerate() {
            let u = NodeId(u as u32);
            if !ns.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("adjacency of {u:?} not strictly sorted"));
            }
            for &v in ns {
                if v == u {
                    return Err(format!("self-loop at {u:?}"));
                }
                if v.index() >= self.adj.len() {
                    return Err(format!("neighbor {v:?} of {u:?} out of range"));
                }
                if self.adj[v.index()].binary_search(&u).is_err() {
                    return Err(format!("edge ({u:?},{v:?}) not symmetric"));
                }
                count += 1;
            }
        }
        if count != 2 * self.edges {
            return Err(format!(
                "edge count {} inconsistent with adjacency ({})",
                self.edges,
                count / 2
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_graph_is_edgeless() {
        let g = Graph::new(5);
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.is_empty());
        for u in g.nodes() {
            assert_eq!(g.degree(u), 0);
        }
        g.check_invariants().unwrap();
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert!(g.is_empty());
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn add_edge_keeps_sorted_adjacency() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(2), NodeId(0));
        g.add_edge(NodeId(2), NodeId(3));
        g.add_edge(NodeId(2), NodeId(1));
        assert_eq!(g.neighbors(NodeId(2)), &[NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(g.edge_count(), 3);
        g.check_invariants().unwrap();
    }

    #[test]
    fn has_edge_is_symmetric() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(2));
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(g.has_edge(NodeId(2), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(1), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_panics() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(5));
    }

    #[test]
    fn remove_edge() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        assert!(g.remove_edge(NodeId(1), NodeId(0)));
        assert!(!g.remove_edge(NodeId(1), NodeId(0)));
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(2)));
        g.check_invariants().unwrap();
    }

    #[test]
    fn isolate_detaches_node() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(1), NodeId(2));
        let former = g.isolate(NodeId(0));
        assert_eq!(former, vec![NodeId(1), NodeId(2)]);
        assert_eq!(g.degree(NodeId(0)), 0);
        assert_eq!(g.edge_count(), 1);
        g.check_invariants().unwrap();
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(3), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(0), NodeId(1));
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(
            edges,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(1), NodeId(3)),
            ]
        );
    }

    #[test]
    fn from_edges_ignores_duplicates() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
        assert_eq!(g.edge_count(), 2);
        g.check_invariants().unwrap();
    }

    #[test]
    fn average_degree_path() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!((g.average_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn add_node_extends_graph() {
        let mut g = Graph::new(1);
        let v = g.add_node();
        assert_eq!(v, NodeId(1));
        g.add_edge(NodeId(0), v);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn node_id_ordering_and_display() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(format!("{}", NodeId(7)), "7");
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
        assert_eq!(NodeId::from(3u32), NodeId(3));
    }
}
