//! Minimum spanning trees (Kruskal and Prim) over abstract weights.
//!
//! The clustering pipeline runs MSTs over *virtual graphs* whose
//! vertices are clusterheads and whose weights are
//! `(hop count, max id, min id)` triples (distinct by construction, as
//! in Li/Hou/Sha's LMST), so the algorithms here are generic over any
//! `Ord` weight.

use crate::graph::NodeId;
use crate::unionfind::UnionFind;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An undirected weighted edge between graph nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeightedEdge<W> {
    /// One endpoint.
    pub a: NodeId,
    /// Other endpoint.
    pub b: NodeId,
    /// Edge weight.
    pub weight: W,
}

impl<W> WeightedEdge<W> {
    /// Creates an edge.
    pub fn new(a: NodeId, b: NodeId, weight: W) -> Self {
        WeightedEdge { a, b, weight }
    }
}

/// Kruskal's algorithm over `n` vertices.
///
/// Returns the chosen edges of a minimum spanning *forest* (a tree per
/// connected component). Edges are considered in `(weight, a, b)` order
/// so the result is deterministic even with equal weights.
pub fn kruskal<W: Ord + Copy>(n: usize, edges: &[WeightedEdge<W>]) -> Vec<WeightedEdge<W>> {
    let mut order: Vec<&WeightedEdge<W>> = edges.iter().collect();
    order.sort_by_key(|e| (e.weight, e.a, e.b));
    let mut uf = UnionFind::new(n);
    let mut out = Vec::new();
    for e in order {
        if uf.union(e.a.index(), e.b.index()) {
            out.push(*e);
            if out.len() + 1 == n {
                break;
            }
        }
    }
    out
}

/// Prim's algorithm on an adjacency-list weighted graph of `n` local
/// vertices (indices `0..n`), rooted at `root`.
///
/// Returns tree edges as `(parent, child)` index pairs covering the
/// component of `root`. Deterministic: ties in the heap fall back to
/// vertex indices.
pub fn prim<W: Ord + Copy>(n: usize, adj: &[Vec<(u32, W)>], root: u32) -> Vec<(u32, u32)> {
    assert_eq!(adj.len(), n);
    assert!((root as usize) < n);
    let mut in_tree = vec![false; n];
    let mut out = Vec::with_capacity(n.saturating_sub(1));
    // Heap entries: Reverse((weight, child, parent)).
    let mut heap: BinaryHeap<Reverse<(W, u32, u32)>> = BinaryHeap::new();
    in_tree[root as usize] = true;
    for &(v, w) in &adj[root as usize] {
        heap.push(Reverse((w, v, root)));
    }
    while let Some(Reverse((_, v, p))) = heap.pop() {
        if in_tree[v as usize] {
            continue;
        }
        in_tree[v as usize] = true;
        out.push((p, v));
        for &(u, w) in &adj[v as usize] {
            if !in_tree[u as usize] {
                heap.push(Reverse((w, u, v)));
            }
        }
    }
    out
}

/// Total weight helper for tests and benches.
pub fn total_weight<W: Copy + std::iter::Sum>(edges: &[WeightedEdge<W>]) -> W {
    edges.iter().map(|e| e.weight).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn we(a: u32, b: u32, w: u32) -> WeightedEdge<u32> {
        WeightedEdge::new(NodeId(a), NodeId(b), w)
    }

    #[test]
    fn kruskal_triangle_drops_heaviest() {
        let edges = [we(0, 1, 1), we(1, 2, 2), we(0, 2, 3)];
        let mst = kruskal(3, &edges);
        assert_eq!(mst.len(), 2);
        assert_eq!(total_weight(&mst), 3);
        assert!(!mst.iter().any(|e| e.weight == 3));
    }

    #[test]
    fn kruskal_disconnected_gives_forest() {
        let edges = [we(0, 1, 5), we(2, 3, 7)];
        let mst = kruskal(4, &edges);
        assert_eq!(mst.len(), 2);
    }

    #[test]
    fn kruskal_equal_weights_deterministic() {
        let edges = [we(2, 3, 1), we(0, 1, 1), we(1, 2, 1), we(0, 3, 1)];
        let a = kruskal(4, &edges);
        let b = kruskal(4, &edges);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        // Sorted tie-break: (1,0,1) then (1,1,2) then (1,2,3).
        assert_eq!(a[0], we(0, 1, 1));
    }

    #[test]
    fn kruskal_classic_example() {
        // Known MST weight 4+8+7+9+2+4+1+2 = 37 (CLRS figure).
        let raw = [
            (0u32, 1u32, 4u32),
            (0, 7, 8),
            (1, 7, 11),
            (1, 2, 8),
            (7, 8, 7),
            (7, 6, 1),
            (8, 6, 6),
            (8, 2, 2),
            (2, 3, 7),
            (2, 5, 4),
            (6, 5, 2),
            (3, 5, 14),
            (3, 4, 9),
            (5, 4, 10),
        ];
        let edges: Vec<_> = raw.iter().map(|&(a, b, w)| we(a, b, w)).collect();
        let mst = kruskal(9, &edges);
        assert_eq!(mst.len(), 8);
        assert_eq!(total_weight(&mst), 37);
    }

    #[test]
    fn prim_matches_kruskal_weight() {
        let raw = [
            (0u32, 1u32, 4u32),
            (0, 2, 3),
            (1, 2, 1),
            (1, 3, 2),
            (2, 3, 4),
            (3, 4, 2),
        ];
        let edges: Vec<_> = raw.iter().map(|&(a, b, w)| we(a, b, w)).collect();
        let kw = total_weight(&kruskal(5, &edges));

        let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); 5];
        for &(a, b, w) in &raw {
            adj[a as usize].push((b, w));
            adj[b as usize].push((a, w));
        }
        let tree = prim(5, &adj, 0);
        assert_eq!(tree.len(), 4);
        let pw: u32 = tree
            .iter()
            .map(|&(p, c)| {
                adj[p as usize]
                    .iter()
                    .find(|&&(v, _)| v == c)
                    .map(|&(_, w)| w)
                    .unwrap()
            })
            .sum();
        assert_eq!(pw, kw);
    }

    #[test]
    fn prim_covers_only_roots_component() {
        let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); 4];
        adj[0].push((1, 1));
        adj[1].push((0, 1));
        adj[2].push((3, 1));
        adj[3].push((2, 1));
        let tree = prim(4, &adj, 0);
        assert_eq!(tree, vec![(0, 1)]);
    }

    #[test]
    fn prim_single_vertex() {
        let adj: Vec<Vec<(u32, u32)>> = vec![Vec::new()];
        assert!(prim(1, &adj, 0).is_empty());
    }

    #[test]
    fn kruskal_empty() {
        let mst = kruskal::<u32>(0, &[]);
        assert!(mst.is_empty());
    }
}
