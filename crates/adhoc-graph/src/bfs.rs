//! Breadth-first search: distances, hop-bounded exploration, k-hop
//! neighborhoods, and canonical shortest paths.
//!
//! Everything here is deterministic: adjacency lists are sorted, so two
//! runs (or two different nodes simulating each other's computation, as
//! the localized algorithms of the paper require) always agree.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Distance label of an unreached node.
pub const UNREACHED: u32 = u32::MAX;

/// Read-only adjacency abstraction so BFS runs on both [`Graph`] and
/// [`crate::Csr`].
pub trait Adjacency {
    /// Number of nodes.
    fn node_count(&self) -> usize;
    /// Sorted neighbor list of `u`.
    fn adj(&self, u: NodeId) -> &[NodeId];
}

impl Adjacency for Graph {
    #[inline]
    fn node_count(&self) -> usize {
        self.len()
    }
    #[inline]
    fn adj(&self, u: NodeId) -> &[NodeId] {
        self.neighbors(u)
    }
}

/// Read-only hop-distance labels rooted at some source.
///
/// The canonical-path walk ([`lexico_path_from_labels`]) only needs
/// `dist` lookups, so it runs equally off a fresh [`BfsScratch`] run or
/// a stored row of [`crate::labels::HeadLabels`].
pub trait DistLabels {
    /// Distance of `v` from the label source (`UNREACHED` if outside
    /// the labeled ball).
    fn dist(&self, v: NodeId) -> u32;
}

impl DistLabels for BfsScratch {
    #[inline]
    fn dist(&self, v: NodeId) -> u32 {
        self.dist[v.index()]
    }
}

/// Hop distances from `src` to every node (`UNREACHED` if disconnected).
pub fn distances<G: Adjacency>(g: &G, src: NodeId) -> Vec<u32> {
    let mut scratch = BfsScratch::new(g.node_count());
    scratch.run(g, src, u32::MAX);
    let mut out = vec![UNREACHED; g.node_count()];
    for &v in scratch.visited() {
        out[v.index()] = scratch.dist(v);
    }
    out
}

/// Reusable BFS state.
///
/// Hot sweeps (the Monte-Carlo harness runs BFS from every clusterhead
/// of every replicate) reuse one scratch per thread; reset cost is
/// proportional to the previously *visited* set, not to `n`
/// ("touched-list reset", per the hpc-parallel guidance of avoiding
/// re-zeroing large buffers).
#[derive(Clone, Debug)]
pub struct BfsScratch {
    dist: Vec<u32>,
    parent: Vec<NodeId>,
    queue: VecDeque<NodeId>,
    visited: Vec<NodeId>,
}

impl BfsScratch {
    /// Creates scratch able to traverse graphs of up to `n` nodes.
    pub fn new(n: usize) -> Self {
        BfsScratch {
            dist: vec![UNREACHED; n],
            parent: vec![NodeId(u32::MAX); n],
            queue: VecDeque::new(),
            visited: Vec::new(),
        }
    }

    /// Grows the scratch if the graph is larger than any seen before.
    fn ensure(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, UNREACHED);
            self.parent.resize(n, NodeId(u32::MAX));
        }
    }

    /// Runs BFS from `src`, exploring nodes at distance `<= max_hops`.
    ///
    /// After the call, [`Self::visited`] lists all reached nodes in
    /// discovery order (`src` first; within a hop level, nodes appear in
    /// the deterministic order induced by sorted adjacency), and
    /// [`Self::dist`] / [`Self::parent_of`] are valid for them.
    ///
    /// The parent of a node `v` is the *smallest-ID* predecessor at
    /// distance `dist(v) - 1`: because the frontier is processed in
    /// ascending discovery order and adjacency is sorted, the first
    /// discoverer of `v` is the smallest-ID candidate. This is the
    /// tie-breaking rule all shortest-path users of this crate share.
    pub fn run<G: Adjacency>(&mut self, g: &G, src: NodeId, max_hops: u32) {
        self.ensure(g.node_count());
        // Reset only what the previous run dirtied.
        for &v in &self.visited {
            self.dist[v.index()] = UNREACHED;
            self.parent[v.index()] = NodeId(u32::MAX);
        }
        self.visited.clear();
        self.queue.clear();

        self.dist[src.index()] = 0;
        self.parent[src.index()] = src;
        self.queue.push_back(src);
        self.visited.push(src);
        while let Some(u) = self.queue.pop_front() {
            let du = self.dist[u.index()];
            if du == max_hops {
                continue;
            }
            // `parent` must be the first discoverer. The frontier at
            // distance du is dequeued in discovery order, and each
            // node's neighbors are scanned in ascending ID order, so
            // the first discoverer of v minimizes (discovery order of
            // parent, nothing else). To make the parent the *smallest
            // ID* among same-level predecessors we do a second pass
            // below only where it matters (canonical paths walk
            // distances, not parents), so first-discoverer is enough
            // for tree queries and is documented as such.
            for &v in g.adj(u) {
                if self.dist[v.index()] == UNREACHED {
                    self.dist[v.index()] = du + 1;
                    self.parent[v.index()] = u;
                    self.queue.push_back(v);
                    self.visited.push(v);
                }
            }
        }
    }

    /// Runs a **multi-source** bounded BFS: every node of `sources`
    /// starts at distance 0, and [`Self::dist`] afterwards holds each
    /// node's hop distance to the *nearest* source (`UNREACHED` beyond
    /// `max_hops`). Duplicate sources are tolerated.
    ///
    /// Determinism matches [`Self::run`]: the initial frontier is
    /// seeded in the order `sources` lists them, so callers that need
    /// a canonical discovery order pass sources ascending.
    pub fn run_multi<G: Adjacency>(&mut self, g: &G, sources: &[NodeId], max_hops: u32) {
        self.ensure(g.node_count());
        for &v in &self.visited {
            self.dist[v.index()] = UNREACHED;
            self.parent[v.index()] = NodeId(u32::MAX);
        }
        self.visited.clear();
        self.queue.clear();

        for &s in sources {
            if self.dist[s.index()] == UNREACHED {
                self.dist[s.index()] = 0;
                self.parent[s.index()] = s;
                self.queue.push_back(s);
                self.visited.push(s);
            }
        }
        while let Some(u) = self.queue.pop_front() {
            let du = self.dist[u.index()];
            if du == max_hops {
                continue;
            }
            for &v in g.adj(u) {
                if self.dist[v.index()] == UNREACHED {
                    self.dist[v.index()] = du + 1;
                    self.parent[v.index()] = u;
                    self.queue.push_back(v);
                    self.visited.push(v);
                }
            }
        }
    }

    /// Distance of `v` from the last run's source (`UNREACHED` if the
    /// node was not reached within the hop bound).
    #[inline]
    pub fn dist(&self, v: NodeId) -> u32 {
        self.dist[v.index()]
    }

    /// The BFS-tree predecessor of `v` (the source is its own parent).
    ///
    /// # Panics
    /// Panics if `v` was not visited in the last run.
    pub fn parent_of(&self, v: NodeId) -> NodeId {
        assert_ne!(self.dist[v.index()], UNREACHED, "{v:?} not visited");
        self.parent[v.index()]
    }

    /// Nodes reached by the last run, in discovery order (source first).
    #[inline]
    pub fn visited(&self) -> &[NodeId] {
        &self.visited
    }

    /// Extracts the BFS-tree path from the last run's source to `v`
    /// (inclusive of both endpoints), or `None` if `v` was unreached.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[v.index()] == UNREACHED {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while self.parent[cur.index()] != cur {
            cur = self.parent[cur.index()];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// All nodes within `k` hops of `src` (excluding `src` itself), sorted
/// by ID. This is the paper's "k-hop neighborhood".
pub fn khop_neighborhood<G: Adjacency>(g: &G, src: NodeId, k: u32) -> Vec<NodeId> {
    let mut scratch = BfsScratch::new(g.node_count());
    khop_neighborhood_with(&mut scratch, g, src, k)
}

/// Scratch-reusing variant of [`khop_neighborhood`].
pub fn khop_neighborhood_with<G: Adjacency>(
    scratch: &mut BfsScratch,
    g: &G,
    src: NodeId,
    k: u32,
) -> Vec<NodeId> {
    scratch.run(g, src, k);
    let mut out: Vec<NodeId> = scratch
        .visited()
        .iter()
        .copied()
        .filter(|&v| v != src)
        .collect();
    out.sort_unstable();
    out
}

/// The lexicographically smallest shortest path from `from` to `to`,
/// as a node sequence including both endpoints; `None` if disconnected
/// or longer than `max_hops`.
///
/// Construction: BFS from `to` labels every node with its distance to
/// `to`; the path then greedily walks from `from`, at each step taking
/// the smallest-ID neighbor whose label decreases. Among all shortest
/// paths this selects the unique lexicographically smallest node
/// sequence, so any two parties that know the graph (or the relevant
/// ball of it) agree on the path — the property the paper's mesh
/// gateway rule ("exactly one path by gateways between two neighboring
/// clusterheads") and LMSTGA virtual links need.
pub fn lexico_shortest_path<G: Adjacency>(
    g: &G,
    from: NodeId,
    to: NodeId,
    max_hops: u32,
) -> Option<Vec<NodeId>> {
    let mut scratch = BfsScratch::new(g.node_count());
    scratch.run(g, to, max_hops);
    lexico_path_from_labels(g, from, to, &scratch)
}

/// As [`lexico_shortest_path`], but reusing labels already rooted at
/// `to` — a [`BfsScratch`] after `run(g, to, ..)` or a stored
/// [`crate::labels::HeadLabels`] row.
///
/// # Panics
/// Panics if `labels` is not rooted at `to`.
pub fn lexico_path_from_labels<G: Adjacency, L: DistLabels>(
    g: &G,
    from: NodeId,
    to: NodeId,
    labels: &L,
) -> Option<Vec<NodeId>> {
    let mut path = Vec::new();
    lexico_path_append(g, from, to, labels, &mut path).then_some(path)
}

/// Arena-friendly variant of [`lexico_path_from_labels`]: appends the
/// path to `out` and returns whether `from` was reachable (on `false`,
/// `out` is unchanged). Callers building many paths share one backing
/// vector and record `(offset, len)` slices instead of allocating a
/// `Vec` per path.
///
/// # Panics
/// Panics if `labels` is not rooted at `to`.
pub fn lexico_path_append<G: Adjacency, L: DistLabels>(
    g: &G,
    from: NodeId,
    to: NodeId,
    labels: &L,
    out: &mut Vec<NodeId>,
) -> bool {
    assert_eq!(labels.dist(to), 0, "labels must be rooted at `to`");
    let d = labels.dist(from);
    if d == UNREACHED {
        return false;
    }
    out.reserve(d as usize + 1);
    let mut cur = from;
    out.push(cur);
    while cur != to {
        let next = lexico_next_hop(g, cur, labels)
            .expect("distance labels must decrease along some neighbor");
        out.push(next);
        cur = next;
    }
    true
}

/// The single canonical step toward the labels' root: the smallest-ID
/// neighbor of `from` whose distance label decreases — the per-hop
/// decision rule of [`lexico_path_from_labels`], exposed for callers
/// that inspect one step of a canonical walk. Returns `None` when
/// `from` is the root itself or outside the labeled ball.
///
/// All hops of one walk must read the **same** label source: chaining
/// steps across *different* sources (e.g. storing each node's next
/// hop toward its own clusterhead and then following those pointers
/// along someone else's path) silently leaves the original walk at
/// the first node rooted elsewhere — which is why the route plan
/// stores whole ascent paths instead of per-node pointers.
#[inline]
pub fn lexico_next_hop<G: Adjacency, L: DistLabels>(
    g: &G,
    from: NodeId,
    labels: &L,
) -> Option<NodeId> {
    let d = labels.dist(from);
    if d == 0 || d == UNREACHED {
        return None;
    }
    g.adj(from)
        .iter()
        .copied()
        .find(|&w| labels.dist(w) == d - 1)
}

/// Eccentricity of `src` (max distance to any reachable node).
pub fn eccentricity<G: Adjacency>(g: &G, src: NodeId) -> u32 {
    let mut scratch = BfsScratch::new(g.node_count());
    scratch.run(g, src, u32::MAX);
    scratch
        .visited()
        .iter()
        .map(|&v| scratch.dist(v))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<_> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn distances_on_path() {
        let g = path_graph(5);
        let d = distances(&g, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn distances_disconnected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let d = distances(&g, NodeId(0));
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHED);
        assert_eq!(d[3], UNREACHED);
    }

    #[test]
    fn multi_source_bfs_takes_nearest_source() {
        // Sources at both ends of a 7-path: every node's distance is
        // to its nearer end, and duplicate sources are tolerated.
        let g = path_graph(7);
        let mut s = BfsScratch::new(g.len());
        s.run_multi(&g, &[NodeId(0), NodeId(6), NodeId(0)], 3);
        assert_eq!(s.dist(NodeId(0)), 0);
        assert_eq!(s.dist(NodeId(6)), 0);
        assert_eq!(s.dist(NodeId(2)), 2);
        assert_eq!(s.dist(NodeId(4)), 2);
        assert_eq!(s.dist(NodeId(3)), 3);
        assert_eq!(s.visited().len(), 7);
        // Bounded: hop budget 1 reaches only the ends and their
        // neighbors, and re-running resets prior state.
        s.run_multi(&g, &[NodeId(0), NodeId(6)], 1);
        assert_eq!(s.visited().len(), 4);
        assert_eq!(s.dist(NodeId(3)), UNREACHED);
        // Empty source set: nothing visited.
        s.run_multi(&g, &[], 3);
        assert!(s.visited().is_empty());
    }

    #[test]
    fn bounded_bfs_stops_at_max_hops() {
        let g = path_graph(6);
        let mut s = BfsScratch::new(g.len());
        s.run(&g, NodeId(0), 2);
        assert_eq!(s.visited().len(), 3);
        assert_eq!(s.dist(NodeId(2)), 2);
        assert_eq!(s.dist(NodeId(3)), UNREACHED);
    }

    #[test]
    fn scratch_reuse_resets_previous_run() {
        let g = path_graph(6);
        let mut s = BfsScratch::new(g.len());
        s.run(&g, NodeId(0), u32::MAX);
        s.run(&g, NodeId(5), 1);
        assert_eq!(s.dist(NodeId(5)), 0);
        assert_eq!(s.dist(NodeId(4)), 1);
        assert_eq!(s.dist(NodeId(0)), UNREACHED);
        assert_eq!(s.visited(), &[NodeId(5), NodeId(4)]);
    }

    #[test]
    fn khop_neighborhood_excludes_source_and_is_sorted() {
        // star: 0 center, leaves 1..=4; plus 5 hanging off 4.
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (4, 5)]);
        let n1 = khop_neighborhood(&g, NodeId(0), 1);
        assert_eq!(n1, vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
        let n2 = khop_neighborhood(&g, NodeId(0), 2);
        assert_eq!(n2.len(), 5);
        let from_leaf = khop_neighborhood(&g, NodeId(5), 1);
        assert_eq!(from_leaf, vec![NodeId(4)]);
    }

    #[test]
    fn path_to_follows_bfs_tree() {
        let g = path_graph(4);
        let mut s = BfsScratch::new(g.len());
        s.run(&g, NodeId(0), u32::MAX);
        assert_eq!(
            s.path_to(NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(s.path_to(NodeId(0)).unwrap(), vec![NodeId(0)]);
    }

    #[test]
    fn path_to_unreachable_is_none() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let mut s = BfsScratch::new(g.len());
        s.run(&g, NodeId(0), u32::MAX);
        assert!(s.path_to(NodeId(2)).is_none());
    }

    #[test]
    fn lexico_path_prefers_smaller_ids() {
        // Two shortest 0->3 paths: 0-1-3 and 0-2-3. Lexicographic rule
        // must choose the one through 1.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let p = lexico_shortest_path(&g, NodeId(0), NodeId(3), u32::MAX).unwrap();
        assert_eq!(p, vec![NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn lexico_path_is_shortest() {
        // A long detour 0-4-5-3 exists but shortest is 0-1-3.
        let g = Graph::from_edges(6, &[(0, 1), (1, 3), (0, 4), (4, 5), (5, 3)]);
        let p = lexico_shortest_path(&g, NodeId(0), NodeId(3), u32::MAX).unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn lexico_path_respects_bound() {
        let g = path_graph(5);
        assert!(lexico_shortest_path(&g, NodeId(0), NodeId(4), 3).is_none());
        assert!(lexico_shortest_path(&g, NodeId(0), NodeId(4), 4).is_some());
    }

    #[test]
    fn lexico_path_to_self() {
        let g = path_graph(2);
        let p = lexico_shortest_path(&g, NodeId(1), NodeId(1), 0).unwrap();
        assert_eq!(p, vec![NodeId(1)]);
    }

    #[test]
    fn lexico_path_agreement_between_endpoints() {
        // The path computed from a->b must be the reverse of b->a after
        // canonicalization by the caller convention (min endpoint
        // first). Here we just check both directions give valid
        // shortest paths of the same length.
        let g = Graph::from_edges(7, &[(0, 2), (0, 5), (2, 3), (5, 6), (3, 1), (6, 1), (2, 6)]);
        let ab = lexico_shortest_path(&g, NodeId(0), NodeId(1), u32::MAX).unwrap();
        let ba = lexico_shortest_path(&g, NodeId(1), NodeId(0), u32::MAX).unwrap();
        assert_eq!(ab.len(), ba.len());
    }

    #[test]
    fn lexico_next_hop_matches_path_walk() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut s = BfsScratch::new(g.len());
        s.run(&g, NodeId(3), u32::MAX);
        assert_eq!(lexico_next_hop(&g, NodeId(0), &s), Some(NodeId(1)));
        assert_eq!(lexico_next_hop(&g, NodeId(1), &s), Some(NodeId(3)));
        assert_eq!(lexico_next_hop(&g, NodeId(3), &s), None, "root has no step");
    }

    #[test]
    fn lexico_next_hop_outside_ball_is_none() {
        let g = path_graph(6);
        let mut s = BfsScratch::new(g.len());
        s.run(&g, NodeId(0), 2);
        assert_eq!(lexico_next_hop(&g, NodeId(5), &s), None);
        assert_eq!(lexico_next_hop(&g, NodeId(2), &s), Some(NodeId(1)));
    }

    #[test]
    fn eccentricity_of_path_ends() {
        let g = path_graph(5);
        assert_eq!(eccentricity(&g, NodeId(0)), 4);
        assert_eq!(eccentricity(&g, NodeId(2)), 2);
    }

    #[test]
    fn parent_of_source_is_itself() {
        let g = path_graph(3);
        let mut s = BfsScratch::new(g.len());
        s.run(&g, NodeId(1), u32::MAX);
        assert_eq!(s.parent_of(NodeId(1)), NodeId(1));
        assert_eq!(s.parent_of(NodeId(0)), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "not visited")]
    fn parent_of_unvisited_panics() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let mut s = BfsScratch::new(g.len());
        s.run(&g, NodeId(0), u32::MAX);
        s.parent_of(NodeId(2));
    }

    #[test]
    fn scratch_grows_for_larger_graphs() {
        let small = path_graph(2);
        let big = path_graph(10);
        let mut s = BfsScratch::new(small.len());
        s.run(&small, NodeId(0), u32::MAX);
        s.run(&big, NodeId(0), u32::MAX);
        assert_eq!(s.dist(NodeId(9)), 9);
    }
}
