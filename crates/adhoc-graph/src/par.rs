//! Deterministic scoped worker pool — the one chunking loop every
//! parallel build/repair/serve path in the workspace shares.
//!
//! The pattern (proven bit-identical in the route-serving engine and
//! the Monte-Carlo harness before it was extracted here) is:
//!
//! 1. split a unit range `0..units` into at most `workers` contiguous
//!    chunks;
//! 2. split the payload ([`Split`]) along the same boundaries, so each
//!    worker owns a **disjoint** slice of every input and output;
//! 3. run one scoped thread per chunk, each with its own scratch;
//! 4. join in chunk order and hand the per-chunk results back as a
//!    `Vec` in that same order.
//!
//! Because each worker writes only its own pre-partitioned slice and
//! per-chunk results are merged in chunk order, the output of
//! [`scoped_chunks`] is **bit-identical for every worker count** —
//! there is no reduction whose order could float. That determinism is
//! the contract the `parallel_equivalence` proptests pin across the
//! label, hub, plan, and serving layers.
//!
//! Worker counts come from [`Parallelism`]: explicit (`--workers` on
//! the CLIs), the `KHOP_WORKERS` environment variable, or the
//! machine's available cores.

/// A worker-count policy. `workers == 1` means "run inline on the
/// caller's thread" — every parallel path in the workspace degrades to
/// its original serial loop at 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parallelism {
    workers: usize,
}

impl Parallelism {
    /// Exactly `workers` workers (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Parallelism {
            workers: workers.max(1),
        }
    }

    /// Single-threaded.
    pub const fn serial() -> Self {
        Parallelism { workers: 1 }
    }

    /// One worker per available core.
    pub fn available() -> Self {
        Parallelism::new(
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1),
        )
    }

    /// The `KHOP_WORKERS` environment variable if set and parseable,
    /// otherwise [`Parallelism::available`]. This is the default that
    /// flows from the CLIs into `EvalScratch`, `ChurnEngine`, and plan
    /// compilation.
    pub fn from_env() -> Self {
        std::env::var("KHOP_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(Parallelism::new)
            .unwrap_or_else(Parallelism::available)
    }

    /// The configured worker count (always ≥ 1).
    pub fn workers(self) -> usize {
        self.workers
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::from_env()
    }
}

/// Payload that can be cut at a unit boundary. [`scoped_chunks`] splits
/// its data along the same chunk boundaries as the unit range, so each
/// worker receives exactly its chunk's share of every input and output
/// buffer.
pub trait Split: Sized + Send {
    /// Splits `self` at unit index `at`, returning the `[0, at)` and
    /// `[at, len)` parts.
    fn split(self, at: usize) -> (Self, Self);
}

impl Split for () {
    fn split(self, _at: usize) -> (Self, Self) {
        ((), ())
    }
}

impl<T: Sync> Split for &[T] {
    fn split(self, at: usize) -> (Self, Self) {
        self.split_at(at)
    }
}

impl<T: Send> Split for &mut [T] {
    fn split(self, at: usize) -> (Self, Self) {
        self.split_at_mut(at)
    }
}

impl<T: Send> Split for Vec<T> {
    fn split(mut self, at: usize) -> (Self, Self) {
        let tail = self.split_off(at);
        (self, tail)
    }
}

/// A payload whose backing buffer holds `stride` elements per unit —
/// e.g. the dense label arena's row-major `h × n` distance matrix,
/// where one unit (a head row) spans `n` entries.
pub struct Strided<S> {
    /// The backing payload.
    pub data: S,
    /// Buffer elements per unit.
    pub stride: usize,
}

impl<S> Strided<S> {
    /// Wraps `data` with `stride` elements per unit.
    pub fn new(data: S, stride: usize) -> Self {
        Strided { data, stride }
    }
}

impl<S: Split> Split for Strided<S> {
    fn split(self, at: usize) -> (Self, Self) {
        let (head, tail) = self.data.split(at * self.stride);
        (
            Strided {
                data: head,
                stride: self.stride,
            },
            Strided {
                data: tail,
                stride: self.stride,
            },
        )
    }
}

impl<A: Split, B: Split> Split for (A, B) {
    fn split(self, at: usize) -> (Self, Self) {
        let (a0, a1) = self.0.split(at);
        let (b0, b1) = self.1.split(at);
        ((a0, b0), (a1, b1))
    }
}

impl<A: Split, B: Split, C: Split> Split for (A, B, C) {
    fn split(self, at: usize) -> (Self, Self) {
        let (a0, a1) = self.0.split(at);
        let (b0, b1) = self.1.split(at);
        let (c0, c1) = self.2.split(at);
        ((a0, b0, c0), (a1, b1, c1))
    }
}

/// Runs `f` over at most `workers` contiguous chunks of the unit range
/// `0..units`, splitting `data` along the same boundaries, and returns
/// the per-chunk results **in chunk order**.
///
/// `f(offset, take, chunk)` processes units `offset..offset + take`
/// with `chunk` holding exactly that range's share of the payload.
/// With an effective worker count of 1 (one worker, zero or one
/// units), `f` runs inline on the caller's thread — no threads are
/// spawned and the call is exactly the serial loop.
///
/// Determinism: chunk boundaries depend only on `(workers, units)`,
/// each worker writes only its own disjoint payload share, and results
/// come back in chunk order — so any *output written through the
/// payload* is bit-identical for every worker count, and any
/// order-sensitive merge of the returned fragments sees them in the
/// same order a serial loop would produce them.
pub fn scoped_chunks<D, R, F>(workers: usize, units: usize, data: D, f: F) -> Vec<R>
where
    D: Split,
    R: Send,
    F: Fn(usize, usize, D) -> R + Sync,
{
    let workers = workers.min(units).max(1);
    if workers <= 1 {
        return vec![f(0, units, data)];
    }
    let chunk = units.div_ceil(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::with_capacity(workers);
        let mut rest = data;
        let mut offset = 0usize;
        while offset < units {
            let take = chunk.min(units - offset);
            let (head, tail) = rest.split(take);
            rest = tail;
            let off = offset;
            handles.push(scope.spawn(move || f(off, take, head)));
            offset += take;
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_clamps_and_reads_env() {
        assert_eq!(Parallelism::new(0).workers(), 1);
        assert_eq!(Parallelism::new(7).workers(), 7);
        assert_eq!(Parallelism::serial().workers(), 1);
        assert!(Parallelism::available().workers() >= 1);
    }

    #[test]
    fn chunks_cover_the_range_disjointly_in_order() {
        for units in [0usize, 1, 2, 3, 7, 8, 100] {
            for workers in [1usize, 2, 3, 8, 16] {
                let spans = scoped_chunks(workers, units, (), |off, take, ()| (off, take));
                // In order, contiguous, covering exactly 0..units.
                let mut expect = 0usize;
                for &(off, take) in &spans {
                    assert_eq!(off, expect, "workers={workers} units={units}");
                    expect += take;
                }
                assert_eq!(expect, units);
                assert!(spans.len() <= workers.max(1));
            }
        }
    }

    #[test]
    fn mut_slices_are_written_disjointly() {
        let mut out = vec![0usize; 37];
        scoped_chunks(4, 37, &mut out[..], |off, take, chunk: &mut [usize]| {
            assert_eq!(chunk.len(), take);
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = off + i + 1;
            }
        });
        let expect: Vec<usize> = (1..=37).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn strided_and_tuple_payloads_split_on_unit_boundaries() {
        let stride = 3usize;
        let units = 5usize;
        let mut rows = vec![0u32; units * stride];
        let ids: Vec<u32> = (0..units as u32).collect();
        let frags = scoped_chunks(
            2,
            units,
            (Strided::new(&mut rows[..], stride), &ids[..]),
            |off, take, (rows, ids): (Strided<&mut [u32]>, &[u32])| {
                assert_eq!(rows.data.len(), take * stride);
                assert_eq!(ids.len(), take);
                for (i, &id) in ids.iter().enumerate() {
                    assert_eq!(id as usize, off + i);
                    rows.data[i * stride..(i + 1) * stride].fill(id + 1);
                }
                take
            },
        );
        assert_eq!(frags.iter().sum::<usize>(), units);
        for u in 0..units {
            assert!(rows[u * stride..(u + 1) * stride]
                .iter()
                .all(|&v| v == u as u32 + 1));
        }
    }

    #[test]
    fn results_merge_identically_for_any_worker_count() {
        let data: Vec<u64> = (0..1000u64).map(|x| x.wrapping_mul(0x9E3779B9)).collect();
        let serial: Vec<u64> = scoped_chunks(1, data.len(), &data[..], |_, _, c: &[u64]| c.to_vec())
            .into_iter()
            .flatten()
            .collect();
        for workers in [2usize, 3, 8] {
            let par: Vec<u64> =
                scoped_chunks(workers, data.len(), &data[..], |_, _, c: &[u64]| c.to_vec())
                    .into_iter()
                    .flatten()
                    .collect();
            assert_eq!(par, serial, "{workers} workers");
        }
    }

    #[test]
    fn vec_payload_moves_ownership_per_chunk() {
        let payload: Vec<String> = (0..10).map(|i| format!("item{i}")).collect();
        let got: Vec<String> =
            scoped_chunks(3, 10, payload, |_, _, chunk: Vec<String>| chunk.join(","))
                .join(",")
                .split(',')
                .map(str::to_string)
                .collect();
        let expect: Vec<String> = (0..10).map(|i| format!("item{i}")).collect();
        assert_eq!(got, expect);
    }
}
