//! Plane geometry for node deployments.

use serde::{Deserialize, Serialize};

/// A point in the deployment plane (the paper uses a 100x100 area).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance; preferred in hot loops (range tests
    /// compare against `r*r` and avoid the square root).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Whether `other` is within transmission range `r` (inclusive).
    #[inline]
    pub fn in_range(&self, other: &Point, r: f64) -> bool {
        self.distance_sq(other) <= r * r
    }
}

/// Expected transmission range giving mean degree `d` for `n` uniform
/// points in a `side x side` square, from the area-ratio estimate
/// `E[deg] = (n-1) * pi r^2 / side^2` (border effects ignored; the
/// generator calibrates the residual numerically).
pub fn range_for_target_degree(n: usize, side: f64, d: f64) -> f64 {
    assert!(n > 1, "need at least two nodes");
    assert!(d > 0.0, "target degree must be positive");
    side * (d / ((n - 1) as f64 * std::f64::consts::PI)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-0.5, 7.25);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn in_range_boundary_is_inclusive() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 0.0);
        assert!(a.in_range(&b, 2.0));
        assert!(!a.in_range(&b, 1.999));
    }

    #[test]
    fn range_formula_recovers_degree() {
        // Invert the formula: with r from the helper, the implied
        // expected degree must round-trip.
        let n = 100;
        let side = 100.0;
        let d = 6.0;
        let r = range_for_target_degree(n, side, d);
        let implied = (n - 1) as f64 * std::f64::consts::PI * r * r / (side * side);
        assert!((implied - d).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn range_rejects_single_node() {
        range_for_target_degree(1, 100.0, 6.0);
    }
}
