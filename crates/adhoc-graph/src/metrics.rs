//! Topology metrics for workload characterization.
//!
//! The evaluation's sparse/dense split (D = 6 vs 10) is defined by
//! average degree; these metrics characterize the sampled instances
//! beyond that — diameter (bounds the number of clustering rounds),
//! degree distribution (border effects of the square area), and local
//! clustering coefficient (unit-disk graphs are highly clustered,
//! which is exactly why A-NCR finds many adjacent clusters).

use crate::bfs::{Adjacency, BfsScratch};
use crate::graph::NodeId;

/// Longest shortest path over all reachable pairs; `None` for an empty
/// graph. Disconnected pairs are ignored (per-component diameter max).
pub fn diameter<G: Adjacency>(g: &G) -> Option<u32> {
    let n = g.node_count();
    if n == 0 {
        return None;
    }
    let mut scratch = BfsScratch::new(n);
    let mut best = 0;
    for u in (0..n as u32).map(NodeId) {
        scratch.run(g, u, u32::MAX);
        for &v in scratch.visited() {
            best = best.max(scratch.dist(v));
        }
    }
    Some(best)
}

/// Smallest eccentricity over all nodes (the center's eccentricity);
/// `None` for an empty graph. For disconnected graphs this is the
/// radius of the most compact component view (unreached nodes are
/// ignored per source).
pub fn radius<G: Adjacency>(g: &G) -> Option<u32> {
    let n = g.node_count();
    if n == 0 {
        return None;
    }
    let mut scratch = BfsScratch::new(n);
    let mut best = u32::MAX;
    for u in (0..n as u32).map(NodeId) {
        scratch.run(g, u, u32::MAX);
        let ecc = scratch
            .visited()
            .iter()
            .map(|&v| scratch.dist(v))
            .max()
            .unwrap_or(0);
        best = best.min(ecc);
    }
    Some(best)
}

/// Histogram of node degrees: `hist[d]` = number of nodes with degree
/// `d`.
pub fn degree_histogram<G: Adjacency>(g: &G) -> Vec<usize> {
    let mut hist = Vec::new();
    for u in (0..g.node_count() as u32).map(NodeId) {
        let d = g.adj(u).len();
        if hist.len() <= d {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Local clustering coefficient of `u`: closed neighbor pairs over all
/// neighbor pairs (0 for degree < 2).
pub fn local_clustering<G: Adjacency>(g: &G, u: NodeId) -> f64 {
    let ns = g.adj(u);
    if ns.len() < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for (i, &a) in ns.iter().enumerate() {
        for &b in &ns[i + 1..] {
            if g.adj(a).binary_search(&b).is_ok() {
                closed += 1;
            }
        }
    }
    let pairs = ns.len() * (ns.len() - 1) / 2;
    closed as f64 / pairs as f64
}

/// Mean local clustering coefficient over all nodes.
pub fn average_clustering<G: Adjacency>(g: &G) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    (0..n as u32)
        .map(|u| local_clustering(g, NodeId(u)))
        .sum::<f64>()
        / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::graph::Graph;

    #[test]
    fn diameter_and_radius_of_path() {
        let g = gen::path(5);
        assert_eq!(diameter(&g), Some(4));
        assert_eq!(radius(&g), Some(2)); // center node 2
    }

    #[test]
    fn diameter_of_complete_graph_is_one() {
        let g = gen::complete(5);
        assert_eq!(diameter(&g), Some(1));
        assert_eq!(radius(&g), Some(1));
    }

    #[test]
    fn empty_graph_metrics() {
        let g = Graph::new(0);
        assert_eq!(diameter(&g), None);
        assert_eq!(radius(&g), None);
        assert!(degree_histogram(&g).is_empty());
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn degree_histogram_star() {
        let g = gen::star(5);
        let h = degree_histogram(&g);
        assert_eq!(h[1], 4); // leaves
        assert_eq!(h[4], 1); // hub
        assert_eq!(h.iter().sum::<usize>(), 5);
    }

    #[test]
    fn clustering_coefficients() {
        // Triangle: fully clustered.
        let tri = gen::complete(3);
        assert_eq!(local_clustering(&tri, NodeId(0)), 1.0);
        assert_eq!(average_clustering(&tri), 1.0);
        // Star: hub neighbors never adjacent.
        let star = gen::star(5);
        assert_eq!(local_clustering(&star, NodeId(0)), 0.0);
        assert_eq!(average_clustering(&star), 0.0);
        // Leaf (degree 1): defined as 0.
        assert_eq!(local_clustering(&star, NodeId(1)), 0.0);
    }

    #[test]
    fn unit_disk_graphs_are_highly_clustered() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let net = gen::geometric(&gen::GeometricConfig::new(100, 100.0, 8.0), &mut rng);
        let cc = average_clustering(&net.graph);
        // Unit-disk expectation ~0.58; anything above Erdős–Rényi
        // levels (~ D/N = 0.08) confirms geometric structure.
        assert!(cc > 0.4, "clustering coefficient {cc} suspiciously low");
    }

    #[test]
    fn diameter_ignores_disconnection() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(diameter(&g), Some(2));
    }
}
