//! Weighted shortest paths (Dijkstra) with deterministic tie-breaking.
//!
//! The paper measures virtual distance in hops, but §3.3's power-aware
//! discussion motivates weighted variants (e.g. energy-cost links).
//! This module provides the weighted counterpart of [`crate::bfs`]:
//! same canonical tie-breaking (smaller node ID wins among equal-cost
//! alternatives), so weighted pipelines keep the determinism the rest
//! of the stack relies on.

use crate::bfs::Adjacency;
use crate::graph::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Cost label of an unreached node.
pub const UNREACHED_COST: u64 = u64::MAX;

/// Dijkstra from `src` with per-edge weights from `weight`.
///
/// Returns `(cost, parent)` arrays; `parent[src] == src`, unreached
/// nodes have `UNREACHED_COST` and an undefined parent. Among multiple
/// optimal predecessors the smallest `(cost, id)` settles first, so
/// the parent tree is deterministic.
///
/// # Panics
/// Panics if `weight` returns 0 for some edge when `strict_positive`
/// would be violated — weights must be `>= 1` to keep the canonical
/// tie-break meaningful.
pub fn dijkstra<G, W>(g: &G, src: NodeId, weight: W) -> (Vec<u64>, Vec<NodeId>)
where
    G: Adjacency,
    W: Fn(NodeId, NodeId) -> u64,
{
    let n = g.node_count();
    let mut cost = vec![UNREACHED_COST; n];
    let mut parent = vec![NodeId(u32::MAX); n];
    let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
    cost[src.index()] = 0;
    parent[src.index()] = src;
    heap.push(Reverse((0, src)));
    while let Some(Reverse((c, u))) = heap.pop() {
        if c > cost[u.index()] {
            continue; // stale entry
        }
        for &v in g.adj(u) {
            let w = weight(u, v);
            assert!(w >= 1, "edge weights must be >= 1");
            let nc = c + w;
            let better = nc < cost[v.index()] || (nc == cost[v.index()] && u < parent[v.index()]);
            if better {
                cost[v.index()] = nc;
                parent[v.index()] = u;
                heap.push(Reverse((nc, v)));
            }
        }
    }
    (cost, parent)
}

/// Extracts the path from `src` (implicit in the arrays) to `dst`, or
/// `None` if unreached.
pub fn extract_path(parent: &[NodeId], cost: &[u64], dst: NodeId) -> Option<Vec<NodeId>> {
    if cost[dst.index()] == UNREACHED_COST {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while parent[cur.index()] != cur {
        cur = parent[cur.index()];
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;
    use crate::graph::Graph;

    #[test]
    fn unit_weights_match_bfs() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (5, 3), (5, 6)]);
        let (cost, _) = dijkstra(&g, NodeId(0), |_, _| 1);
        let dist = bfs::distances(&g, NodeId(0));
        for v in 0..7 {
            if dist[v] == bfs::UNREACHED {
                assert_eq!(cost[v], UNREACHED_COST);
            } else {
                assert_eq!(cost[v], u64::from(dist[v]));
            }
        }
    }

    #[test]
    fn weights_reroute_paths() {
        // 0-1-3 (weights 1+10), 0-2-3 (weights 2+2): weighted prefers
        // the 0-2-3 route even though both are 2 hops.
        let g = Graph::from_edges(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
        let w = |a: NodeId, b: NodeId| -> u64 {
            match (a.0.min(b.0), a.0.max(b.0)) {
                (0, 1) => 1,
                (1, 3) => 10,
                (0, 2) => 2,
                (2, 3) => 2,
                _ => unreachable!(),
            }
        };
        let (cost, parent) = dijkstra(&g, NodeId(0), w);
        assert_eq!(cost[3], 4);
        assert_eq!(
            extract_path(&parent, &cost, NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn equal_cost_prefers_smaller_parent() {
        // Two equal-cost routes 0-1-3 and 0-2-3: parent of 3 must be 1.
        let g = Graph::from_edges(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
        let (cost, parent) = dijkstra(&g, NodeId(0), |_, _| 1);
        assert_eq!(cost[3], 2);
        assert_eq!(parent[3], NodeId(1));
    }

    #[test]
    fn unreached_nodes() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let (cost, parent) = dijkstra(&g, NodeId(0), |_, _| 1);
        assert_eq!(cost[2], UNREACHED_COST);
        assert!(extract_path(&parent, &cost, NodeId(2)).is_none());
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn zero_weight_panics() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        dijkstra(&g, NodeId(0), |_, _| 0);
    }

    #[test]
    fn path_to_source_is_singleton() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let (cost, parent) = dijkstra(&g, NodeId(1), |_, _| 3);
        assert_eq!(
            extract_path(&parent, &cost, NodeId(1)).unwrap(),
            vec![NodeId(1)]
        );
        assert_eq!(cost[0], 3);
    }
}
