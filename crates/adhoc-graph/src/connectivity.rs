//! Connected components and connectivity predicates.

use crate::bfs::{Adjacency, BfsScratch, UNREACHED};
use crate::graph::NodeId;

/// Whether the whole graph is connected (the empty graph and the
/// single-node graph count as connected).
pub fn is_connected<G: Adjacency>(g: &G) -> bool {
    let n = g.node_count();
    if n <= 1 {
        return true;
    }
    let mut scratch = BfsScratch::new(n);
    scratch.run(g, NodeId(0), u32::MAX);
    scratch.visited().len() == n
}

/// Component label of every node (labels are dense, in order of the
/// smallest node ID of each component).
pub fn components<G: Adjacency>(g: &G) -> Vec<u32> {
    let n = g.node_count();
    let mut label = vec![u32::MAX; n];
    let mut scratch = BfsScratch::new(n);
    let mut next = 0;
    for u in 0..n as u32 {
        if label[u as usize] != u32::MAX {
            continue;
        }
        scratch.run(g, NodeId(u), u32::MAX);
        for &v in scratch.visited() {
            label[v.index()] = next;
        }
        next += 1;
    }
    label
}

/// Number of connected components.
pub fn component_count<G: Adjacency>(g: &G) -> usize {
    components(g).iter().map(|&l| l + 1).max().unwrap_or(0) as usize
}

/// Whether a *subset* of nodes induces a connected subgraph of `g`.
///
/// This is the check behind the paper's Theorems 1 and 2: the
/// clusterheads plus the selected gateways, with the links among them
/// in the original network `G`, must form a connected graph. The empty
/// set and singletons are connected.
pub fn is_subset_connected<G: Adjacency>(g: &G, subset: &[NodeId]) -> bool {
    if subset.len() <= 1 {
        return true;
    }
    let n = g.node_count();
    let mut in_set = vec![false; n];
    for &v in subset {
        in_set[v.index()] = true;
    }
    // BFS restricted to subset members.
    let mut seen = vec![false; n];
    let mut stack = vec![subset[0]];
    seen[subset[0].index()] = true;
    let mut reached = 0usize;
    while let Some(u) = stack.pop() {
        reached += 1;
        for &v in g.adj(u) {
            if in_set[v.index()] && !seen[v.index()] {
                seen[v.index()] = true;
                stack.push(v);
            }
        }
    }
    reached == subset.len()
}

/// Hop distance from every node to the nearest member of `set`
/// (multi-source BFS). `UNREACHED` where no member is reachable.
///
/// Used to verify k-hop domination: `set` k-hop-dominates the graph iff
/// every entry is `<= k`.
pub fn distance_to_set<G: Adjacency>(g: &G, set: &[NodeId]) -> Vec<u32> {
    let n = g.node_count();
    let mut dist = vec![UNREACHED; n];
    let mut queue = std::collections::VecDeque::new();
    for &s in set {
        if dist[s.index()] != 0 {
            dist[s.index()] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for &v in g.adj(u) {
            if dist[v.index()] == UNREACHED {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn trivial_graphs_are_connected() {
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::new(1)));
        assert!(!is_connected(&Graph::new(2)));
    }

    #[test]
    fn path_is_connected_until_cut() {
        let mut g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(is_connected(&g));
        g.remove_edge(NodeId(1), NodeId(2));
        assert!(!is_connected(&g));
    }

    #[test]
    fn components_labeling() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3), (3, 4)]);
        let labels = components(&g);
        assert_eq!(labels, vec![0, 0, 1, 1, 1, 2]);
        assert_eq!(component_count(&g), 3);
    }

    #[test]
    fn component_count_empty() {
        assert_eq!(component_count(&Graph::new(0)), 0);
    }

    #[test]
    fn subset_connectivity() {
        // 0-1-2-3-4 path.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert!(is_subset_connected(&g, &[NodeId(1), NodeId(2), NodeId(3)]));
        // 1 and 3 are not adjacent: the induced subgraph {1,3} is
        // disconnected even though a path exists through 2.
        assert!(!is_subset_connected(&g, &[NodeId(1), NodeId(3)]));
        assert!(is_subset_connected(&g, &[]));
        assert!(is_subset_connected(&g, &[NodeId(4)]));
    }

    #[test]
    fn distance_to_set_multi_source() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let d = distance_to_set(&g, &[NodeId(0), NodeId(5)]);
        assert_eq!(d, vec![0, 1, 2, 2, 1, 0]);
    }

    #[test]
    fn distance_to_set_unreachable() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let d = distance_to_set(&g, &[NodeId(0)]);
        assert_eq!(d[2], UNREACHED);
    }

    #[test]
    fn distance_to_empty_set() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let d = distance_to_set(&g, &[]);
        assert!(d.iter().all(|&x| x == UNREACHED));
    }
}
