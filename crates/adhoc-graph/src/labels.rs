//! Shared per-head BFS labels — the single-sweep substrate of the
//! evaluation engine.
//!
//! The paper's locality argument (§3.2) is that every clusterhead only
//! needs its `2k+1`-hop ball to select neighbor clusterheads and
//! realize virtual links. The Monte-Carlo harness previously re-ran
//! that ball exploration once per algorithm (~5× per replicate);
//! [`HeadLabels`] runs **one** hop-bounded BFS per head and stores the
//! distance labels in a flat arena (row-major, one row of `n` distances
//! per head) that every downstream consumer — the NC relation, both
//! virtual graphs, G-MST's complete link set — reads without further
//! traversal.
//!
//! Only distance labels are stored: the canonical (lexicographically
//! smallest) shortest paths all shortest-path consumers share are
//! derived by the greedy label walk of
//! [`lexico_path_from_labels`](crate::bfs::lexico_path_from_labels),
//! which needs distances alone. BFS-tree parent pointers are
//! deliberately *not* kept — the first-discoverer parent is not the
//! canonical-path predecessor, so storing it would invite misuse.
//!
//! The struct is designed for reuse across Monte-Carlo replicates:
//! [`HeadLabels::rebuild`] resets only the entries the previous build
//! dirtied (touched-list reset via the per-head ball lists) and grows
//! its buffers monotonically, so a worker thread pays no per-replicate
//! allocation once warm.

use crate::bfs::{Adjacency, DistLabels, UNREACHED};
use crate::delta::TopologyDelta;
use crate::graph::NodeId;

/// Sentinel slot for "this node is not a head".
const NO_SLOT: u32 = u32::MAX;

/// Hop-distance labels from every clusterhead, in one flat arena.
///
/// Rows are indexed by *slot* — the position of the head in the sorted
/// head list the labels were built from ([`HeadLabels::heads`]).
#[derive(Clone, Debug, Default)]
pub struct HeadLabels {
    /// Node count of the graph of the last build (row stride).
    n: usize,
    /// Hop bound of the last build (`u32::MAX` = unbounded).
    bound: u32,
    /// The sources, in the order given to the last build.
    heads: Vec<NodeId>,
    /// Node-indexed inverse of `heads` (`NO_SLOT` for non-heads).
    slot_of: Vec<u32>,
    /// Row-major `heads.len() × n` distances; `UNREACHED` outside each
    /// head's ball. Entries beyond the current logical size are kept
    /// `UNREACHED` so the arena can shrink logically without a sweep.
    dist: Vec<u32>,
    /// Concatenated per-head balls (visited nodes in discovery order;
    /// doubles as the BFS queue during a build).
    balls: Vec<NodeId>,
    /// `heads.len() + 1` offsets into `balls`.
    ball_offsets: Vec<u32>,
    /// Whether the last build stopped each BFS at the farthest head
    /// ([`Self::rebuild_reaching_heads`]), leaving balls *partial* —
    /// such labels cannot drive delta-based dirtiness reasoning.
    stopped_at_heads: bool,
    /// Previous balls/offsets while [`Self::apply_delta`] writes the
    /// new concatenated list (kept so incremental steps allocate
    /// nothing once warm).
    prev_balls: Vec<NodeId>,
    prev_offsets: Vec<u32>,
}

impl HeadLabels {
    /// Builds labels from scratch: one BFS per head, exploring to
    /// `bound` hops (`u32::MAX` = whole component).
    pub fn build<G: Adjacency>(g: &G, heads: &[NodeId], bound: u32) -> Self {
        let mut labels = HeadLabels::default();
        labels.rebuild(g, heads, bound);
        labels
    }

    /// Rebuilds the labels for a (possibly different) graph and head
    /// set, reusing every allocation. Reset cost is proportional to
    /// what the previous build actually touched, not to `heads × n`.
    pub fn rebuild<G: Adjacency>(&mut self, g: &G, heads: &[NodeId], bound: u32) {
        self.rebuild_inner(g, heads, bound, false);
    }

    /// Unbounded rebuild that stops each head's BFS as soon as every
    /// other head has been labeled — the cheapest build that still
    /// supports all head-to-head queries (NC relation, G-MST edges)
    /// and every canonical inter-head path walk.
    ///
    /// Every labeled distance is exact, and all nodes at distance
    /// *strictly below* the farthest head are guaranteed labeled (BFS
    /// completes a level before the next one starts), which is exactly
    /// what the decreasing-label path walk needs. [`Self::ball`] may
    /// however omit nodes at or beyond the farthest head's level, so
    /// callers that need full balls must use [`Self::rebuild`].
    pub fn rebuild_reaching_heads<G: Adjacency>(&mut self, g: &G, heads: &[NodeId]) {
        self.rebuild_inner(g, heads, u32::MAX, true);
    }

    fn rebuild_inner<G: Adjacency>(
        &mut self,
        g: &G,
        heads: &[NodeId],
        bound: u32,
        stop_at_heads: bool,
    ) {
        // Undo the previous build while its row stride is still valid.
        for slot in 0..self.heads.len() {
            let base = slot * self.n;
            let (lo, hi) = (
                self.ball_offsets[slot] as usize,
                self.ball_offsets[slot + 1] as usize,
            );
            for &v in &self.balls[lo..hi] {
                self.dist[base + v.index()] = UNREACHED;
            }
        }
        for &h in &self.heads {
            if h.index() < self.slot_of.len() {
                self.slot_of[h.index()] = NO_SLOT;
            }
        }
        self.balls.clear();
        self.ball_offsets.clear();

        self.n = g.node_count();
        self.bound = bound;
        self.heads.clear();
        self.heads.extend_from_slice(heads);
        if self.slot_of.len() < self.n {
            self.slot_of.resize(self.n, NO_SLOT);
        }
        let rows = self.heads.len() * self.n;
        if self.dist.len() < rows {
            self.dist.resize(rows, UNREACHED);
        }
        for (slot, &h) in self.heads.iter().enumerate() {
            debug_assert_eq!(self.slot_of[h.index()], NO_SLOT, "duplicate head {h:?}");
            self.slot_of[h.index()] = slot as u32;
        }

        // One bounded BFS per head. The concatenated ball list is the
        // BFS queue itself (discovery order == FIFO order), so no
        // auxiliary queue allocation exists at all.
        self.stopped_at_heads = stop_at_heads;
        self.ball_offsets.push(0);
        for slot in 0..self.heads.len() {
            self.sweep_head(g, slot, stop_at_heads);
            self.ball_offsets.push(self.balls.len() as u32);
        }
    }

    /// Runs one head's bounded BFS, appending its ball to `self.balls`
    /// (the tail of which doubles as the queue). The head's distance
    /// row must be all-`UNREACHED` on entry.
    fn sweep_head<G: Adjacency>(&mut self, g: &G, slot: usize, stop_at_heads: bool) {
        let h = self.heads[slot];
        let base = slot * self.n;
        let start = self.balls.len();
        self.dist[base + h.index()] = 0;
        self.balls.push(h);
        // Other heads this BFS still has to label before it may
        // stop early (`usize::MAX` disables early stopping).
        let mut heads_left = if stop_at_heads {
            self.heads.len() - 1
        } else {
            usize::MAX
        };
        let mut qi = start;
        'bfs: while qi < self.balls.len() && heads_left > 0 {
            let u = self.balls[qi];
            qi += 1;
            let du = self.dist[base + u.index()];
            if du == self.bound {
                continue;
            }
            for &v in g.adj(u) {
                if self.dist[base + v.index()] == UNREACHED {
                    self.dist[base + v.index()] = du + 1;
                    self.balls.push(v);
                    if stop_at_heads && self.slot_of[v.index()] != NO_SLOT {
                        heads_left -= 1;
                        if heads_left == 0 {
                            break 'bfs;
                        }
                    }
                }
            }
        }
    }

    /// The slots (ascending) whose labels a topology delta can have
    /// changed: head `h` is *dirty* iff some changed edge has an
    /// endpoint inside `h`'s current ball.
    ///
    /// Why that test is sound for a whole batch of changes: a label of
    /// `h` changes only if some node's distance to `h` crosses or moves
    /// within the bound. A distance that *decreased* did so along a new
    /// path whose first added edge `(u, v)` is reached from `h` by
    /// surviving old edges — so `u` was already in the old ball. A
    /// distance that *increased* had every old shortest path broken, and
    /// any such path lies entirely inside the old ball, so the removed
    /// edge's endpoints are labeled. Either way the dirtiness shows up
    /// against the **old** labels, which is what this reads.
    ///
    /// # Panics
    /// Panics on labels built by [`Self::rebuild_reaching_heads`]
    /// (partial balls cannot certify cleanliness) and on deltas whose
    /// endpoints exceed the labeled node count.
    pub fn dirty_slots(&self, delta: &TopologyDelta) -> Vec<usize> {
        assert!(
            !self.stopped_at_heads,
            "delta updates need full-ball labels (use `rebuild`, not \
             `rebuild_reaching_heads`)"
        );
        let mut dirty = Vec::new();
        for slot in 0..self.heads.len() {
            let base = slot * self.n;
            if delta
                .endpoints()
                .any(|v| self.dist[base + v.index()] != UNREACHED)
            {
                dirty.push(slot);
            }
        }
        dirty
    }

    /// Re-labels exactly the `dirty` slots (from [`Self::dirty_slots`])
    /// against the post-delta graph `g`, leaving clean rows untouched —
    /// the labels end up identical to a full [`Self::rebuild`] on `g`
    /// (pinned by tests) at the cost of one bounded BFS per *dirty*
    /// head instead of one per head.
    ///
    /// Call sequence: `let dirty = labels.dirty_slots(&delta);` against
    /// the old graph's labels, apply the delta to the graph, then
    /// `labels.apply_delta(&g, &dirty)`.
    ///
    /// # Panics
    /// Panics if `g`'s node count differs from the labeled one (node
    /// sets never change under a delta; departures isolate), or if
    /// `dirty` is not ascending and in range.
    pub fn apply_delta<G: Adjacency>(&mut self, g: &G, dirty: &[usize]) {
        assert_eq!(g.node_count(), self.n, "deltas keep the node set");
        debug_assert!(
            dirty.windows(2).all(|w| w[0] < w[1]),
            "dirty slots must be ascending and unique"
        );
        if dirty.is_empty() {
            return;
        }
        // Touched-entry reset of the dirty rows only.
        for &slot in dirty {
            assert!(slot < self.heads.len(), "dirty slot out of range");
            let base = slot * self.n;
            let (lo, hi) = (
                self.ball_offsets[slot] as usize,
                self.ball_offsets[slot + 1] as usize,
            );
            for &v in &self.balls[lo..hi] {
                self.dist[base + v.index()] = UNREACHED;
            }
        }
        // Rebuild the concatenated ball list: clean rows are copied
        // byte-for-byte, dirty rows re-run their bounded BFS.
        std::mem::swap(&mut self.balls, &mut self.prev_balls);
        std::mem::swap(&mut self.ball_offsets, &mut self.prev_offsets);
        self.balls.clear();
        self.ball_offsets.clear();
        self.ball_offsets.push(0);
        let mut next_dirty = 0usize;
        for slot in 0..self.heads.len() {
            if next_dirty < dirty.len() && dirty[next_dirty] == slot {
                next_dirty += 1;
                self.sweep_head(g, slot, false);
            } else {
                let (lo, hi) = (
                    self.prev_offsets[slot] as usize,
                    self.prev_offsets[slot + 1] as usize,
                );
                let seg = &self.prev_balls[lo..hi];
                self.balls.extend_from_slice(seg);
            }
            self.ball_offsets.push(self.balls.len() as u32);
        }
    }

    /// Bytes of heap memory the label arenas currently hold (capacity,
    /// not logical size). This is the footprint the ROADMAP's
    /// dense-vs-sparse layout decision needs data on: the dominant term
    /// is the `heads × n × 4`-byte distance arena.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.dist.capacity() * size_of::<u32>()
            + (self.balls.capacity() + self.prev_balls.capacity() + self.heads.capacity())
                * size_of::<NodeId>()
            + (self.ball_offsets.capacity() + self.prev_offsets.capacity()) * size_of::<u32>()
            + self.slot_of.capacity() * size_of::<u32>()
    }

    /// The heads the labels were built from, in slot order.
    #[inline]
    pub fn heads(&self) -> &[NodeId] {
        &self.heads
    }

    /// The hop bound of the last build (`u32::MAX` = unbounded).
    #[inline]
    pub fn bound(&self) -> u32 {
        self.bound
    }

    /// Node count of the graph of the last build.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The slot of `head`, or `None` if it is not a labeled source.
    #[inline]
    pub fn slot(&self, head: NodeId) -> Option<usize> {
        match self.slot_of.get(head.index()) {
            Some(&s) if s != NO_SLOT => Some(s as usize),
            _ => None,
        }
    }

    /// Hop distance from the head in `slot` to `v` (`UNREACHED` if `v`
    /// is outside the head's ball).
    #[inline]
    pub fn dist(&self, slot: usize, v: NodeId) -> u32 {
        self.dist[slot * self.n + v.index()]
    }

    /// Hop distance between two labeled heads (`UNREACHED` if beyond
    /// the bound or disconnected).
    ///
    /// # Panics
    /// Panics if `a` is not a labeled head.
    pub fn head_dist(&self, a: NodeId, b: NodeId) -> u32 {
        let slot = self
            .slot(a)
            .unwrap_or_else(|| panic!("{a:?} is not a labeled head"));
        self.dist(slot, b)
    }

    /// The ball of the head in `slot`: every node within the bound, in
    /// BFS discovery order (the head itself first).
    pub fn ball(&self, slot: usize) -> &[NodeId] {
        let (lo, hi) = (
            self.ball_offsets[slot] as usize,
            self.ball_offsets[slot + 1] as usize,
        );
        &self.balls[lo..hi]
    }

    /// The distance row of `slot` as a [`DistLabels`] view, usable with
    /// [`crate::bfs::lexico_path_from_labels`].
    #[inline]
    pub fn row(&self, slot: usize) -> HeadRow<'_> {
        HeadRow {
            dist: &self.dist[slot * self.n..(slot + 1) * self.n],
        }
    }
}

/// One head's distance row (a borrowed [`DistLabels`] view).
#[derive(Clone, Copy, Debug)]
pub struct HeadRow<'a> {
    dist: &'a [u32],
}

impl DistLabels for HeadRow<'_> {
    #[inline]
    fn dist(&self, v: NodeId) -> u32 {
        self.dist[v.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::{self, BfsScratch};
    use crate::gen;
    use crate::graph::Graph;

    fn assert_matches_scratch(g: &Graph, heads: &[NodeId], bound: u32, labels: &HeadLabels) {
        let mut scratch = BfsScratch::new(g.len());
        for (slot, &h) in heads.iter().enumerate() {
            scratch.run(g, h, bound);
            for v in g.nodes() {
                assert_eq!(
                    labels.dist(slot, v),
                    scratch.dist(v),
                    "head {h:?} node {v:?}"
                );
            }
            assert_eq!(labels.ball(slot), scratch.visited());
        }
    }

    #[test]
    fn labels_match_per_head_bfs() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let net = gen::geometric(&gen::GeometricConfig::new(60, 100.0, 6.0), &mut rng);
        let heads = vec![NodeId(0), NodeId(7), NodeId(33)];
        for bound in [1, 3, u32::MAX] {
            let labels = HeadLabels::build(&net.graph, &heads, bound);
            assert_matches_scratch(&net.graph, &heads, bound, &labels);
        }
    }

    #[test]
    fn slots_and_head_dist() {
        let g = gen::path(6);
        let heads = vec![NodeId(0), NodeId(4)];
        let labels = HeadLabels::build(&g, &heads, u32::MAX);
        assert_eq!(labels.slot(NodeId(0)), Some(0));
        assert_eq!(labels.slot(NodeId(4)), Some(1));
        assert_eq!(labels.slot(NodeId(2)), None);
        assert_eq!(labels.head_dist(NodeId(0), NodeId(4)), 4);
        assert_eq!(labels.head_dist(NodeId(4), NodeId(0)), 4);
        assert_eq!(labels.heads(), &heads[..]);
        assert_eq!(labels.bound(), u32::MAX);
        assert_eq!(labels.node_count(), 6);
    }

    #[test]
    fn bounded_ball_excludes_far_nodes() {
        let g = gen::path(8);
        let labels = HeadLabels::build(&g, &[NodeId(0)], 2);
        assert_eq!(labels.dist(0, NodeId(2)), 2);
        assert_eq!(labels.dist(0, NodeId(3)), UNREACHED);
        assert_eq!(labels.ball(0), &[NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn rebuild_resets_across_graphs_of_different_size() {
        let big = gen::path(12);
        let small = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let mut labels = HeadLabels::build(&big, &[NodeId(0), NodeId(6), NodeId(11)], u32::MAX);
        labels.rebuild(&small, &[NodeId(2)], 1);
        assert_eq!(labels.heads(), &[NodeId(2)]);
        assert_eq!(labels.slot(NodeId(0)), None, "old head slots reset");
        assert_eq!(labels.dist(0, NodeId(3)), 1);
        assert_eq!(labels.dist(0, NodeId(0)), UNREACHED);
        assert_matches_scratch(&small, &[NodeId(2)], 1, &labels);
        // And back up to the larger graph again.
        labels.rebuild(&big, &[NodeId(3), NodeId(9)], 3);
        assert_matches_scratch(&big, &[NodeId(3), NodeId(9)], 3, &labels);
    }

    #[test]
    fn row_drives_lexico_paths() {
        // Two shortest 0->3 paths; the label walk must pick the one
        // through 1, identical to the scratch-based construction.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let labels = HeadLabels::build(&g, &[NodeId(3)], u32::MAX);
        let p = bfs::lexico_path_from_labels(&g, NodeId(0), NodeId(3), &labels.row(0)).unwrap();
        assert_eq!(p, vec![NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn reaching_heads_labels_support_head_queries_and_walks() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        let net = gen::geometric(&gen::GeometricConfig::new(80, 100.0, 6.0), &mut rng);
        let heads = vec![NodeId(0), NodeId(5), NodeId(41), NodeId(77)];
        let full = HeadLabels::build(&net.graph, &heads, u32::MAX);
        let mut lazy = HeadLabels::default();
        lazy.rebuild_reaching_heads(&net.graph, &heads);
        for (slot, &h) in heads.iter().enumerate() {
            // Head-to-head distances agree with the full build.
            for &o in &heads {
                assert_eq!(lazy.dist(slot, o), full.dist(slot, o), "{h:?} -> {o:?}");
            }
            // Every labeled node is labeled with its exact distance.
            for &v in lazy.ball(slot) {
                assert_eq!(lazy.dist(slot, v), full.dist(slot, v));
            }
            // Canonical inter-head walks agree with the full build.
            for &a in &heads {
                if a == h {
                    continue;
                }
                let p1 =
                    bfs::lexico_path_from_labels(&net.graph, a, h, &lazy.row(slot)).unwrap();
                let p2 =
                    bfs::lexico_path_from_labels(&net.graph, a, h, &full.row(slot)).unwrap();
                assert_eq!(p1, p2, "walk {a:?} -> {h:?}");
            }
        }
    }

    #[test]
    fn reaching_heads_single_head_skips_exploration() {
        let g = gen::path(9);
        let mut labels = HeadLabels::default();
        labels.rebuild_reaching_heads(&g, &[NodeId(4)]);
        assert_eq!(labels.ball(0), &[NodeId(4)]);
        assert_eq!(labels.dist(0, NodeId(4)), 0);
    }

    /// Drives a random delta sequence and checks after every step that
    /// dirty-slot detection plus per-row repair reproduces a full
    /// rebuild bit-for-bit (dist rows *and* ball lists).
    #[test]
    fn apply_delta_matches_full_rebuild() {
        use crate::delta::TopologyDelta;
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        for bound in [2u32, 5, u32::MAX] {
            let net = gen::geometric(&gen::GeometricConfig::new(70, 100.0, 6.0), &mut rng);
            let mut g = net.graph.clone();
            let heads = vec![NodeId(0), NodeId(9), NodeId(25), NodeId(48), NodeId(69)];
            let mut labels = HeadLabels::build(&g, &heads, bound);
            for _ in 0..15 {
                // Random flips: toggle a few node pairs.
                let mut delta = TopologyDelta::new();
                for _ in 0..rng.gen_range(1..6) {
                    let a = NodeId(rng.gen_range(0..70u32));
                    let b = NodeId(rng.gen_range(0..70u32));
                    if a == b {
                        continue;
                    }
                    if g.has_edge(a, b) {
                        g.remove_edge(a, b);
                        delta.push_removed(a, b);
                    } else {
                        g.add_edge(a, b);
                        delta.push_added(a, b);
                    }
                }
                delta.normalize();
                let dirty = labels.dirty_slots(&delta);
                labels.apply_delta(&g, &dirty);
                let fresh = HeadLabels::build(&g, &heads, bound);
                for (slot, &h) in heads.iter().enumerate() {
                    for v in g.nodes() {
                        assert_eq!(
                            labels.dist(slot, v),
                            fresh.dist(slot, v),
                            "bound {bound} head {h:?} node {v:?}"
                        );
                    }
                    assert_eq!(labels.ball(slot), fresh.ball(slot), "head {h:?}");
                }
            }
        }
    }

    #[test]
    fn empty_delta_dirties_nothing() {
        use crate::delta::TopologyDelta;
        let g = gen::path(9);
        let mut labels = HeadLabels::build(&g, &[NodeId(0), NodeId(4), NodeId(8)], 3);
        let dirty = labels.dirty_slots(&TopologyDelta::new());
        assert!(dirty.is_empty());
        let before = labels.clone();
        labels.apply_delta(&g, &dirty);
        assert_eq!(labels.ball(1), before.ball(1));
    }

    #[test]
    fn faraway_change_leaves_bounded_ball_clean() {
        use crate::delta::TopologyDelta;
        // Heads 0 and 11 with bound 2 on a path: a flip at the far end
        // must dirty only the nearby head.
        let mut g = gen::path(12);
        let labels = HeadLabels::build(&g, &[NodeId(0), NodeId(11)], 2);
        let mut delta = TopologyDelta::new();
        g.remove_edge(NodeId(10), NodeId(11));
        delta.push_removed(NodeId(10), NodeId(11));
        assert_eq!(labels.dirty_slots(&delta), vec![1]);
        let mut inc = labels.clone();
        inc.apply_delta(&g, &[1]);
        assert_eq!(inc.dist(1, NodeId(10)), UNREACHED);
        assert_eq!(inc.ball(1), &[NodeId(11)]);
        assert_eq!(inc.ball(0), labels.ball(0), "clean row untouched");
    }

    #[test]
    #[should_panic(expected = "full-ball labels")]
    fn reaching_heads_labels_reject_deltas() {
        use crate::delta::TopologyDelta;
        let g = gen::path(9);
        let mut labels = HeadLabels::default();
        labels.rebuild_reaching_heads(&g, &[NodeId(0), NodeId(8)]);
        let mut d = TopologyDelta::new();
        d.push_added(NodeId(0), NodeId(5));
        labels.dirty_slots(&d);
    }

    #[test]
    fn memory_bytes_tracks_arena_growth() {
        let small = HeadLabels::build(&gen::path(4), &[NodeId(0)], 1);
        let big = HeadLabels::build(
            &gen::grid(10, 10),
            &[NodeId(0), NodeId(34), NodeId(67), NodeId(99)],
            u32::MAX,
        );
        assert!(small.memory_bytes() > 0);
        assert!(
            big.memory_bytes() >= 4 * 100 * 4,
            "dense arena dominates: {} bytes",
            big.memory_bytes()
        );
        assert!(big.memory_bytes() > small.memory_bytes());
    }

    #[test]
    fn disconnected_pairs_are_unreached() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let labels = HeadLabels::build(&g, &[NodeId(0), NodeId(2)], u32::MAX);
        assert_eq!(labels.head_dist(NodeId(0), NodeId(2)), UNREACHED);
        assert_eq!(labels.dist(0, NodeId(1)), 1);
    }
}
