//! Shared per-head BFS labels — the single-sweep substrate of the
//! evaluation engine.
//!
//! The paper's locality argument (§3.2) is that every clusterhead only
//! needs its `2k+1`-hop ball to select neighbor clusterheads and
//! realize virtual links. The Monte-Carlo harness previously re-ran
//! that ball exploration once per algorithm (~5× per replicate);
//! [`HeadLabels`] runs **one** hop-bounded BFS per head and stores the
//! distance labels in a flat arena (row-major, one row of `n` distances
//! per head) that every downstream consumer — the NC relation, both
//! virtual graphs, G-MST's complete link set — reads without further
//! traversal.
//!
//! Only distance labels are stored: the canonical (lexicographically
//! smallest) shortest paths all shortest-path consumers share are
//! derived by the greedy label walk of
//! [`lexico_path_from_labels`](crate::bfs::lexico_path_from_labels),
//! which needs distances alone. BFS-tree parent pointers are
//! deliberately *not* kept — the first-discoverer parent is not the
//! canonical-path predecessor, so storing it would invite misuse.
//!
//! The struct is designed for reuse across Monte-Carlo replicates:
//! [`HeadLabels::rebuild`] resets only the entries the previous build
//! dirtied (touched-list reset via the per-head ball lists) and grows
//! its buffers monotonically, so a worker thread pays no per-replicate
//! allocation once warm.

use crate::bfs::{Adjacency, DistLabels, UNREACHED};
use crate::delta::TopologyDelta;
use crate::graph::NodeId;
use crate::par::{self, Parallelism, Strided};

/// Sentinel slot for "this node is not a head".
const NO_SLOT: u32 = u32::MAX;

/// Hop-distance labels from every clusterhead, in one flat arena.
///
/// Rows are indexed by *slot* — the position of the head in the sorted
/// head list the labels were built from ([`HeadLabels::heads`]).
#[derive(Clone, Debug, Default)]
pub struct HeadLabels {
    /// Node count of the graph of the last build (row stride).
    n: usize,
    /// Hop bound of the last build (`u32::MAX` = unbounded).
    bound: u32,
    /// The sources, in the order given to the last build.
    heads: Vec<NodeId>,
    /// Node-indexed inverse of `heads` (`NO_SLOT` for non-heads).
    slot_of: Vec<u32>,
    /// Row-major `heads.len() × n` distances; `UNREACHED` outside each
    /// head's ball. Entries beyond the current logical size are kept
    /// `UNREACHED` so the arena can shrink logically without a sweep.
    dist: Vec<u32>,
    /// Concatenated per-head balls (visited nodes in discovery order;
    /// doubles as the BFS queue during a build).
    balls: Vec<NodeId>,
    /// `heads.len() + 1` offsets into `balls`.
    ball_offsets: Vec<u32>,
    /// Whether the last build stopped each BFS at the farthest head
    /// ([`Self::rebuild_reaching_heads`]), leaving balls *partial* —
    /// such labels cannot drive delta-based dirtiness reasoning.
    stopped_at_heads: bool,
    /// Previous balls/offsets while [`Self::apply_delta`] writes the
    /// new concatenated list (kept so incremental steps allocate
    /// nothing once warm).
    prev_balls: Vec<NodeId>,
    prev_offsets: Vec<u32>,
    /// Full-arena rebuilds performed so far (every [`Self::rebuild`]
    /// and [`Self::rebuild_reaching_heads`]; incremental paths —
    /// [`Self::apply_delta`], [`Self::add_head_row`],
    /// [`Self::remove_head_row`] — never bump it). Tests pin that
    /// head-set changes stay off the rebuild path by watching this.
    rebuilds: u64,
}

impl HeadLabels {
    /// Builds labels from scratch: one BFS per head, exploring to
    /// `bound` hops (`u32::MAX` = whole component).
    pub fn build<G: Adjacency>(g: &G, heads: &[NodeId], bound: u32) -> Self {
        let mut labels = HeadLabels::default();
        labels.rebuild(g, heads, bound);
        labels
    }

    /// Rebuilds the labels for a (possibly different) graph and head
    /// set, reusing every allocation. Reset cost is proportional to
    /// what the previous build actually touched, not to `heads × n`.
    pub fn rebuild<G: Adjacency>(&mut self, g: &G, heads: &[NodeId], bound: u32) {
        self.rebuild_inner(g, heads, bound, false);
    }

    /// Unbounded rebuild that stops each head's BFS as soon as every
    /// other head has been labeled — the cheapest build that still
    /// supports all head-to-head queries (NC relation, G-MST edges)
    /// and every canonical inter-head path walk.
    ///
    /// Every labeled distance is exact, and all nodes at distance
    /// *strictly below* the farthest head are guaranteed labeled (BFS
    /// completes a level before the next one starts), which is exactly
    /// what the decreasing-label path walk needs. [`Self::ball`] may
    /// however omit nodes at or beyond the farthest head's level, so
    /// callers that need full balls must use [`Self::rebuild`].
    pub fn rebuild_reaching_heads<G: Adjacency>(&mut self, g: &G, heads: &[NodeId]) {
        self.rebuild_inner(g, heads, u32::MAX, true);
    }

    fn rebuild_inner<G: Adjacency>(
        &mut self,
        g: &G,
        heads: &[NodeId],
        bound: u32,
        stop_at_heads: bool,
    ) {
        self.prepare_rebuild(g.node_count(), heads, bound, stop_at_heads);

        // One bounded BFS per head. The concatenated ball list is the
        // BFS queue itself (discovery order == FIFO order), so no
        // auxiliary queue allocation exists at all.
        self.ball_offsets.push(0);
        for slot in 0..self.heads.len() {
            self.sweep_head(g, slot, stop_at_heads);
            self.ball_offsets.push(self.balls.len() as u32);
        }
    }

    /// Shared rebuild preamble: undoes the previous build
    /// (touched-entry reset), adopts the new graph size / head set /
    /// bound, and leaves every adopted row all-`UNREACHED` with the
    /// ball arenas cleared — ready for the sweeps, serial or chunked.
    fn prepare_rebuild(&mut self, n: usize, heads: &[NodeId], bound: u32, stop_at_heads: bool) {
        self.rebuilds += 1;
        // Undo the previous build while its row stride is still valid.
        for slot in 0..self.heads.len() {
            let base = slot * self.n;
            let (lo, hi) = (
                self.ball_offsets[slot] as usize,
                self.ball_offsets[slot + 1] as usize,
            );
            for &v in &self.balls[lo..hi] {
                self.dist[base + v.index()] = UNREACHED;
            }
        }
        for &h in &self.heads {
            if h.index() < self.slot_of.len() {
                self.slot_of[h.index()] = NO_SLOT;
            }
        }
        self.balls.clear();
        self.ball_offsets.clear();

        self.n = n;
        self.bound = bound;
        self.heads.clear();
        self.heads.extend_from_slice(heads);
        if self.slot_of.len() < self.n {
            self.slot_of.resize(self.n, NO_SLOT);
        }
        let rows = self.heads.len() * self.n;
        if self.dist.len() < rows {
            self.dist.resize(rows, UNREACHED);
        }
        for (slot, &h) in self.heads.iter().enumerate() {
            debug_assert_eq!(self.slot_of[h.index()], NO_SLOT, "duplicate head {h:?}");
            self.slot_of[h.index()] = slot as u32;
        }
        self.stopped_at_heads = stop_at_heads;
    }

    /// [`Self::rebuild`] with an explicit worker count: the per-head
    /// bounded-BFS sweeps fan out over `par` workers, each writing its
    /// own disjoint row range of the dense arena and collecting a
    /// per-worker ball fragment that is merged in slot order — the
    /// resulting arenas are **bit-identical** to a serial rebuild for
    /// every worker count (pinned by tests). At one worker this *is*
    /// the serial rebuild (same code path, warm allocations intact).
    pub fn rebuild_with<G: Adjacency + Sync>(
        &mut self,
        g: &G,
        heads: &[NodeId],
        bound: u32,
        par: Parallelism,
    ) {
        if par.workers() <= 1 || heads.len() < 2 {
            self.rebuild_inner(g, heads, bound, false);
            return;
        }
        self.prepare_rebuild(g.node_count(), heads, bound, false);
        let n = self.n;
        let rows = self.heads.len();
        let heads_list: &[NodeId] = &self.heads;
        let frags = par::scoped_chunks(
            par.workers(),
            rows,
            Strided::new(&mut self.dist[..rows * n], n),
            |off, take, chunk: Strided<&mut [u32]>| {
                let mut balls = Vec::new();
                let mut offsets = Vec::with_capacity(take + 1);
                offsets.push(0u32);
                for i in 0..take {
                    let row = &mut chunk.data[i * n..(i + 1) * n];
                    sweep_row(g, heads_list[off + i], bound, row, &mut balls);
                    offsets.push(balls.len() as u32);
                }
                (balls, offsets)
            },
        );
        self.ball_offsets.push(0);
        for (balls, offsets) in frags {
            let base = self.balls.len() as u32;
            self.balls.extend_from_slice(&balls);
            self.ball_offsets
                .extend(offsets[1..].iter().map(|&w| base + w));
        }
    }

    /// Runs one head's bounded BFS, appending its ball to `self.balls`
    /// (the tail of which doubles as the queue). The head's distance
    /// row must be all-`UNREACHED` on entry.
    fn sweep_head<G: Adjacency>(&mut self, g: &G, slot: usize, stop_at_heads: bool) {
        if !stop_at_heads {
            // The common full-ball sweep is the shared free function the
            // chunked rebuild/repair paths also run — one code path, so
            // serial and parallel builds are bit-identical by
            // construction.
            let base = slot * self.n;
            let row = &mut self.dist[base..base + self.n];
            sweep_row(g, self.heads[slot], self.bound, row, &mut self.balls);
            return;
        }
        let h = self.heads[slot];
        let base = slot * self.n;
        let start = self.balls.len();
        self.dist[base + h.index()] = 0;
        self.balls.push(h);
        // Other heads this BFS still has to label before it may
        // stop early (`usize::MAX` disables early stopping).
        let mut heads_left = if stop_at_heads {
            self.heads.len() - 1
        } else {
            usize::MAX
        };
        let mut qi = start;
        'bfs: while qi < self.balls.len() && heads_left > 0 {
            let u = self.balls[qi];
            qi += 1;
            let du = self.dist[base + u.index()];
            if du == self.bound {
                continue;
            }
            for &v in g.adj(u) {
                if self.dist[base + v.index()] == UNREACHED {
                    self.dist[base + v.index()] = du + 1;
                    self.balls.push(v);
                    if stop_at_heads && self.slot_of[v.index()] != NO_SLOT {
                        heads_left -= 1;
                        if heads_left == 0 {
                            break 'bfs;
                        }
                    }
                }
            }
        }
    }

    /// The slots (ascending) whose labels a topology delta can have
    /// changed: head `h` is *dirty* iff some changed edge has an
    /// endpoint inside `h`'s current ball.
    ///
    /// Why that test is sound for a whole batch of changes: a label of
    /// `h` changes only if some node's distance to `h` crosses or moves
    /// within the bound. A distance that *decreased* did so along a new
    /// path whose first added edge `(u, v)` is reached from `h` by
    /// surviving old edges — so `u` was already in the old ball. A
    /// distance that *increased* had every old shortest path broken, and
    /// any such path lies entirely inside the old ball, so the removed
    /// edge's endpoints are labeled. Either way the dirtiness shows up
    /// against the **old** labels, which is what this reads.
    ///
    /// # Panics
    /// Panics on labels built by [`Self::rebuild_reaching_heads`]
    /// (partial balls cannot certify cleanliness) and on deltas whose
    /// endpoints exceed the labeled node count.
    pub fn dirty_slots(&self, delta: &TopologyDelta) -> Vec<usize> {
        assert!(
            !self.stopped_at_heads,
            "delta updates need full-ball labels (use `rebuild`, not \
             `rebuild_reaching_heads`)"
        );
        let mut dirty = Vec::new();
        for slot in 0..self.heads.len() {
            let base = slot * self.n;
            if delta
                .endpoints()
                .any(|v| self.dist[base + v.index()] != UNREACHED)
            {
                dirty.push(slot);
            }
        }
        dirty
    }

    /// Re-labels exactly the `dirty` slots (from [`Self::dirty_slots`])
    /// against the post-delta graph `g`, leaving clean rows untouched —
    /// the labels end up identical to a full [`Self::rebuild`] on `g`
    /// (pinned by tests) at the cost of one bounded BFS per *dirty*
    /// head instead of one per head.
    ///
    /// Call sequence: `let dirty = labels.dirty_slots(&delta);` against
    /// the old graph's labels, apply the delta to the graph, then
    /// `labels.apply_delta(&g, &dirty)`.
    ///
    /// # Panics
    /// Panics if `g`'s node count differs from the labeled one (node
    /// sets never change under a delta; departures isolate), or if
    /// `dirty` is not ascending and in range.
    pub fn apply_delta<G: Adjacency>(&mut self, g: &G, dirty: &[usize]) {
        assert_eq!(g.node_count(), self.n, "deltas keep the node set");
        debug_assert!(
            dirty.windows(2).all(|w| w[0] < w[1]),
            "dirty slots must be ascending and unique"
        );
        if dirty.is_empty() {
            return;
        }
        // Touched-entry reset of the dirty rows only.
        for &slot in dirty {
            assert!(slot < self.heads.len(), "dirty slot out of range");
            let base = slot * self.n;
            let (lo, hi) = (
                self.ball_offsets[slot] as usize,
                self.ball_offsets[slot + 1] as usize,
            );
            for &v in &self.balls[lo..hi] {
                self.dist[base + v.index()] = UNREACHED;
            }
        }
        // Rebuild the concatenated ball list: clean rows are copied
        // byte-for-byte, dirty rows re-run their bounded BFS.
        std::mem::swap(&mut self.balls, &mut self.prev_balls);
        std::mem::swap(&mut self.ball_offsets, &mut self.prev_offsets);
        self.balls.clear();
        self.ball_offsets.clear();
        self.ball_offsets.push(0);
        let mut next_dirty = 0usize;
        for slot in 0..self.heads.len() {
            if next_dirty < dirty.len() && dirty[next_dirty] == slot {
                next_dirty += 1;
                self.sweep_head(g, slot, false);
            } else {
                let (lo, hi) = (
                    self.prev_offsets[slot] as usize,
                    self.prev_offsets[slot + 1] as usize,
                );
                let seg = &self.prev_balls[lo..hi];
                self.balls.extend_from_slice(seg);
            }
            self.ball_offsets.push(self.balls.len() as u32);
        }
    }

    /// [`Self::apply_delta`] with an explicit worker count: the dirty
    /// rows' bounded-BFS re-sweeps fan out over `par` workers, each
    /// owning a disjoint set of row slices gathered from the dense
    /// arena, then the ball list is spliced in slot order —
    /// bit-identical to the serial repair for every worker count
    /// (pinned by tests).
    pub fn apply_delta_with<G: Adjacency + Sync>(
        &mut self,
        g: &G,
        dirty: &[usize],
        par: Parallelism,
    ) {
        if par.workers() <= 1 || dirty.len() < 2 {
            self.apply_delta(g, dirty);
            return;
        }
        assert_eq!(g.node_count(), self.n, "deltas keep the node set");
        debug_assert!(
            dirty.windows(2).all(|w| w[0] < w[1]),
            "dirty slots must be ascending and unique"
        );
        // Touched-entry reset of the dirty rows only.
        for &slot in dirty {
            assert!(slot < self.heads.len(), "dirty slot out of range");
            let base = slot * self.n;
            let (lo, hi) = (
                self.ball_offsets[slot] as usize,
                self.ball_offsets[slot + 1] as usize,
            );
            for &v in &self.balls[lo..hi] {
                self.dist[base + v.index()] = UNREACHED;
            }
        }
        // Gather each dirty row as its own disjoint `&mut` slice (a
        // sequential `split_at_mut` walk — safe code only), then fan
        // the re-sweeps out.
        let n = self.n;
        let bound = self.bound;
        let dirty_heads: Vec<NodeId> = dirty.iter().map(|&s| self.heads[s]).collect();
        let mut rows: Vec<&mut [u32]> = Vec::with_capacity(dirty.len());
        let mut rest: &mut [u32] = &mut self.dist;
        let mut consumed = 0usize;
        for &slot in dirty {
            let (_, tail) = rest.split_at_mut(slot * n - consumed);
            let (row, tail) = tail.split_at_mut(n);
            rows.push(row);
            rest = tail;
            consumed = (slot + 1) * n;
        }
        let frags = par::scoped_chunks(
            par.workers(),
            dirty.len(),
            rows,
            |off, _take, mut chunk: Vec<&mut [u32]>| {
                let mut balls = Vec::new();
                let mut offsets = Vec::with_capacity(chunk.len() + 1);
                offsets.push(0u32);
                for (i, row) in chunk.iter_mut().enumerate() {
                    sweep_row(g, dirty_heads[off + i], bound, row, &mut balls);
                    offsets.push(balls.len() as u32);
                }
                (balls, offsets)
            },
        );
        // Flatten the fragments into one dirty-indexed ball list ...
        let mut dirty_balls: Vec<NodeId> = Vec::new();
        let mut dirty_bo: Vec<u32> = Vec::with_capacity(dirty.len() + 1);
        dirty_bo.push(0);
        for (balls, offsets) in &frags {
            let base = dirty_balls.len() as u32;
            dirty_balls.extend_from_slice(balls);
            dirty_bo.extend(offsets[1..].iter().map(|&w| base + w));
        }
        // ... and splice: clean rows are copied byte-for-byte, dirty
        // rows come from their freshly swept fragments, in slot order.
        std::mem::swap(&mut self.balls, &mut self.prev_balls);
        std::mem::swap(&mut self.ball_offsets, &mut self.prev_offsets);
        self.balls.clear();
        self.ball_offsets.clear();
        self.ball_offsets.push(0);
        let mut next_dirty = 0usize;
        for slot in 0..self.heads.len() {
            if next_dirty < dirty.len() && dirty[next_dirty] == slot {
                let (lo, hi) = (
                    dirty_bo[next_dirty] as usize,
                    dirty_bo[next_dirty + 1] as usize,
                );
                self.balls.extend_from_slice(&dirty_balls[lo..hi]);
                next_dirty += 1;
            } else {
                let (lo, hi) = (
                    self.prev_offsets[slot] as usize,
                    self.prev_offsets[slot + 1] as usize,
                );
                self.balls.extend_from_slice(&self.prev_balls[lo..hi]);
            }
            self.ball_offsets.push(self.balls.len() as u32);
        }
    }

    /// Incrementally inserts a label row for a **new** head `h`,
    /// keeping the head list ascending. Costs one bounded BFS (the new
    /// row) plus an arena splice; no existing row is re-swept, because
    /// full-ball sweeps never stop at heads — the label of every other
    /// head is independent of the head set. The result is identical to
    /// a full [`Self::rebuild`] with `h` in the head list (pinned by
    /// tests). Returns the new head's slot.
    ///
    /// # Panics
    /// Panics if `h` is already a head or beyond the labeled nodes, if
    /// the labels were built by [`Self::rebuild_reaching_heads`]
    /// (partial balls), if no build ran yet, or if `g`'s node count
    /// differs from the labeled one.
    pub fn add_head_row<G: Adjacency>(&mut self, g: &G, h: NodeId) -> usize {
        assert!(
            !self.stopped_at_heads,
            "incremental head rows need full-ball labels (use `rebuild`, \
             not `rebuild_reaching_heads`)"
        );
        assert_eq!(g.node_count(), self.n, "head-set changes keep the node set");
        assert!(h.index() < self.n, "head {h:?} beyond labeled nodes");
        assert_eq!(
            self.ball_offsets.len(),
            self.heads.len() + 1,
            "add_head_row needs built labels"
        );
        let slot = match self.heads.binary_search(&h) {
            Ok(_) => panic!("{h:?} is already a head"),
            Err(s) => s,
        };
        let old_rows = self.heads.len();
        for &hd in &self.heads[slot..] {
            self.slot_of[hd.index()] += 1;
        }
        self.heads.insert(slot, h);
        self.slot_of[h.index()] = slot as u32;

        // Open an all-`UNREACHED` row at `slot` in the dense arena.
        let rows = self.heads.len() * self.n;
        if self.dist.len() < rows {
            self.dist.resize(rows, UNREACHED);
        }
        self.dist
            .copy_within(slot * self.n..old_rows * self.n, (slot + 1) * self.n);
        self.dist[slot * self.n..(slot + 1) * self.n].fill(UNREACHED);

        // Splice the ball list: clean segments are copied, the new row
        // runs its one bounded BFS (same warm-buffer pattern as
        // `apply_delta`).
        std::mem::swap(&mut self.balls, &mut self.prev_balls);
        std::mem::swap(&mut self.ball_offsets, &mut self.prev_offsets);
        self.balls.clear();
        self.ball_offsets.clear();
        self.ball_offsets.push(0);
        for s in 0..self.heads.len() {
            if s == slot {
                self.sweep_head(g, s, false);
            } else {
                let old = if s < slot { s } else { s - 1 };
                let (lo, hi) = (
                    self.prev_offsets[old] as usize,
                    self.prev_offsets[old + 1] as usize,
                );
                self.balls.extend_from_slice(&self.prev_balls[lo..hi]);
            }
            self.ball_offsets.push(self.balls.len() as u32);
        }
        slot
    }

    /// Incrementally removes the label row of head `h`: a
    /// touched-entry reset of the departing row plus an arena splice —
    /// no BFS at all, and no other row changes (same independence
    /// argument as [`Self::add_head_row`]). Identical to a full
    /// [`Self::rebuild`] without `h` (pinned by tests). Returns the
    /// removed head's former slot.
    ///
    /// # Panics
    /// Panics if `h` is not a head or if the labels were built by
    /// [`Self::rebuild_reaching_heads`].
    pub fn remove_head_row(&mut self, h: NodeId) -> usize {
        assert!(
            !self.stopped_at_heads,
            "incremental head rows need full-ball labels (use `rebuild`, \
             not `rebuild_reaching_heads`)"
        );
        let slot = self
            .heads
            .binary_search(&h)
            .unwrap_or_else(|_| panic!("{h:?} is not a head"));
        let old_rows = self.heads.len();
        // Touched-entry reset of the departing row, then close the
        // row gap.
        let base = slot * self.n;
        let (lo, hi) = (
            self.ball_offsets[slot] as usize,
            self.ball_offsets[slot + 1] as usize,
        );
        for i in lo..hi {
            let v = self.balls[i];
            self.dist[base + v.index()] = UNREACHED;
        }
        if slot + 1 < old_rows {
            self.dist
                .copy_within((slot + 1) * self.n..old_rows * self.n, slot * self.n);
            // The move leaves a stale copy of the old last row beyond
            // the new logical size; restore the beyond-logical
            // all-`UNREACHED` invariant via that head's ball.
            let stale_base = (old_rows - 1) * self.n;
            let (slo, shi) = (
                self.ball_offsets[old_rows - 1] as usize,
                self.ball_offsets[old_rows] as usize,
            );
            for i in slo..shi {
                let v = self.balls[i];
                self.dist[stale_base + v.index()] = UNREACHED;
            }
        }
        self.slot_of[h.index()] = NO_SLOT;
        for &hd in &self.heads[slot + 1..] {
            self.slot_of[hd.index()] -= 1;
        }
        self.heads.remove(slot);

        std::mem::swap(&mut self.balls, &mut self.prev_balls);
        std::mem::swap(&mut self.ball_offsets, &mut self.prev_offsets);
        self.balls.clear();
        self.ball_offsets.clear();
        self.ball_offsets.push(0);
        for s in 0..self.heads.len() {
            let old = if s < slot { s } else { s + 1 };
            let (lo, hi) = (
                self.prev_offsets[old] as usize,
                self.prev_offsets[old + 1] as usize,
            );
            self.balls.extend_from_slice(&self.prev_balls[lo..hi]);
            self.ball_offsets.push(self.balls.len() as u32);
        }
        slot
    }

    /// Full-arena rebuilds performed over this value's lifetime.
    /// Incremental paths (`apply_delta`, `add_head_row`,
    /// `remove_head_row`) never bump it — the churn engine's
    /// no-rebuild-on-head-set-change contract is pinned against this.
    #[inline]
    pub fn rebuild_count(&self) -> u64 {
        self.rebuilds
    }

    /// Bytes of heap memory the label arenas currently hold (capacity,
    /// not logical size). This is the footprint the ROADMAP's
    /// dense-vs-sparse layout decision needs data on: the dominant term
    /// is the `heads × n × 4`-byte distance arena.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.dist.capacity() * size_of::<u32>()
            + (self.balls.capacity() + self.prev_balls.capacity() + self.heads.capacity())
                * size_of::<NodeId>()
            + (self.ball_offsets.capacity() + self.prev_offsets.capacity()) * size_of::<u32>()
            + self.slot_of.capacity() * size_of::<u32>()
    }

    /// The heads the labels were built from, in slot order.
    #[inline]
    pub fn heads(&self) -> &[NodeId] {
        &self.heads
    }

    /// The hop bound of the last build (`u32::MAX` = unbounded).
    #[inline]
    pub fn bound(&self) -> u32 {
        self.bound
    }

    /// Node count of the graph of the last build.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The slot of `head`, or `None` if it is not a labeled source.
    #[inline]
    pub fn slot(&self, head: NodeId) -> Option<usize> {
        match self.slot_of.get(head.index()) {
            Some(&s) if s != NO_SLOT => Some(s as usize),
            _ => None,
        }
    }

    /// Hop distance from the head in `slot` to `v` (`UNREACHED` if `v`
    /// is outside the head's ball).
    #[inline]
    pub fn dist(&self, slot: usize, v: NodeId) -> u32 {
        self.dist[slot * self.n + v.index()]
    }

    /// Hop distance between two labeled heads (`UNREACHED` if beyond
    /// the bound or disconnected).
    ///
    /// # Panics
    /// Panics if `a` is not a labeled head.
    pub fn head_dist(&self, a: NodeId, b: NodeId) -> u32 {
        let slot = self
            .slot(a)
            .unwrap_or_else(|| panic!("{a:?} is not a labeled head"));
        self.dist(slot, b)
    }

    /// The *other* labeled heads within `bound` hops of the head in
    /// `slot`, in head-list order (ascending when the labels were built
    /// from a sorted head list, as the pipeline always does). This is
    /// the NC-relation row the adjacency layer reads; the sparse layout
    /// answers it from the ball instead of probing every head, so the
    /// shared derivation goes through [`LabelStore::heads_within`].
    pub fn heads_within(&self, slot: usize, bound: u32) -> Vec<NodeId> {
        let h = self.heads[slot];
        self.heads
            .iter()
            .copied()
            .filter(|&o| o != h && self.dist(slot, o) <= bound)
            .collect()
    }

    /// The ball of the head in `slot`: every node within the bound, in
    /// BFS discovery order (the head itself first).
    pub fn ball(&self, slot: usize) -> &[NodeId] {
        let (lo, hi) = (
            self.ball_offsets[slot] as usize,
            self.ball_offsets[slot + 1] as usize,
        );
        &self.balls[lo..hi]
    }

    /// The distance row of `slot` as a [`DistLabels`] view, usable with
    /// [`crate::bfs::lexico_path_from_labels`].
    #[inline]
    pub fn row(&self, slot: usize) -> HeadRow<'_> {
        HeadRow {
            dist: &self.dist[slot * self.n..(slot + 1) * self.n],
        }
    }
}

/// One head's distance row (a borrowed [`DistLabels`] view).
#[derive(Clone, Copy, Debug)]
pub struct HeadRow<'a> {
    dist: &'a [u32],
}

impl DistLabels for HeadRow<'_> {
    #[inline]
    fn dist(&self, v: NodeId) -> u32 {
        self.dist[v.index()]
    }
}

/// One full-ball bounded BFS from `h` into an all-`UNREACHED` dense
/// `row`, appending the ball (discovery order) to `balls` — whose tail
/// doubles as the queue. This is the single sweep implementation the
/// serial and chunked dense paths share, so a parallel rebuild is
/// bit-identical to a serial one by construction.
fn sweep_row<G: Adjacency>(
    g: &G,
    h: NodeId,
    bound: u32,
    row: &mut [u32],
    balls: &mut Vec<NodeId>,
) {
    let start = balls.len();
    row[h.index()] = 0;
    balls.push(h);
    let mut qi = start;
    while qi < balls.len() {
        let u = balls[qi];
        qi += 1;
        let du = row[u.index()];
        if du == bound {
            continue;
        }
        for &v in g.adj(u) {
            if row[v.index()] == UNREACHED {
                row[v.index()] = du + 1;
                balls.push(v);
            }
        }
    }
}

/// Empty bucket marker of the per-row open-addressed tables
/// (`u32::MAX` is never a real node ID — it is the crate-wide
/// sentinel).
const EMPTY: u32 = u32::MAX;

/// Fibonacci-hash bucket of `v` in a power-of-two table of `mask + 1`
/// slots.
#[inline]
fn bucket(v: NodeId, mask: usize) -> usize {
    (((u64::from(v.0)).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & mask
}

/// One sparse row's bounded BFS from `h` through an all-`UNREACHED`
/// `scratch` (touched-entry reset on exit), appending the ball
/// (discovery order, tail doubles as the queue) and the row's
/// open-addressed lookup table. The single sweep implementation the
/// serial and chunked sparse paths share: the table depends only on
/// the ball and its distances, so any chunk-ordered concatenation of
/// rows is bit-identical to a serial build.
fn sweep_sparse_row<G: Adjacency>(
    g: &G,
    h: NodeId,
    bound: u32,
    scratch: &mut [u32],
    balls: &mut Vec<NodeId>,
    hash_keys: &mut Vec<u32>,
    hash_dist: &mut Vec<u32>,
) {
    let start = balls.len();
    scratch[h.index()] = 0;
    balls.push(h);
    let mut qi = start;
    while qi < balls.len() {
        let u = balls[qi];
        qi += 1;
        let du = scratch[u.index()];
        if du == bound {
            continue;
        }
        for &v in g.adj(u) {
            if scratch[v.index()] == UNREACHED {
                scratch[v.index()] = du + 1;
                balls.push(v);
            }
        }
    }
    // The row's lookup table: ≤ 50% load, power-of-two capacity,
    // linear probing. Insertion order is irrelevant to lookups, so
    // the ball goes in as discovered — no sort anywhere.
    let ball_len = balls.len() - start;
    let cap = (ball_len * 2).next_power_of_two();
    let mask = cap - 1;
    let base = hash_keys.len();
    hash_keys.resize(base + cap, EMPTY);
    hash_dist.resize(base + cap, UNREACHED);
    for &v in &balls[start..] {
        let mut b = bucket(v, mask);
        while hash_keys[base + b] != EMPTY {
            b = (b + 1) & mask;
        }
        hash_keys[base + b] = v.0;
        hash_dist[base + b] = scratch[v.index()];
    }
    // Touched-entry reset: the scratch is clean for the next head.
    for &v in &balls[start..] {
        scratch[v.index()] = UNREACHED;
    }
}

/// Hop-distance labels in the **sparse ball-indexed** layout: instead
/// of a dense `heads × n` arena, each head's row stores only its
/// bounded ball — the nodes the BFS actually reached — paired with a
/// per-row open-addressed `(node, dist)` table. Lookups cost `O(1)`
/// expected (one multiply plus a short linear probe at ≤ 50% load),
/// and total memory is `O(Σ ball sizes)` instead of `O(h · n)`, which
/// is what makes `N ≫ 10⁴` feasible (the ROADMAP's dense-layout probe
/// extrapolates the flat arena to ~10 GB/thread at `N = 10⁵`).
///
/// Per row, two structures share slot boundaries:
///
/// ```text
/// balls:      [ head0 ball, discovery order | head1 ball | ...   ]
/// hash_keys:  [ head0 table (2·ball rounded | head1 table | ...  ]
/// hash_dist:  [   up to a power of two)     |             | ...  ]
/// ```
///
/// The discovery-order `balls` list is kept verbatim (it is the BFS
/// queue during a build, and [`Self::ball`] must agree bit-for-bit
/// with [`HeadLabels::ball`] for the incremental engine's equivalence
/// contract); the hash table answers random [`Self::dist`] queries.
/// One `n`-sized scratch row (touched-entry reset) is shared by every
/// head's BFS, so the only per-head state is the ball itself.
///
/// Supported operations mirror [`HeadLabels`] except the
/// `rebuild_reaching_heads` early-stop variant, which only the
/// centralized G-MST fallback uses (and that path keeps the dense
/// layout — it is off the hot path by construction).
#[derive(Clone, Debug, Default)]
pub struct SparseHeadLabels {
    /// Node count of the graph of the last build.
    n: usize,
    /// Hop bound of the last build (`u32::MAX` = unbounded).
    bound: u32,
    /// The sources, in the order given to the last build.
    heads: Vec<NodeId>,
    /// Node-indexed inverse of `heads` (`NO_SLOT` for non-heads).
    slot_of: Vec<u32>,
    /// Concatenated per-head balls in BFS discovery order (doubles as
    /// the BFS queue during a build).
    balls: Vec<NodeId>,
    /// `heads.len() + 1` offsets into `balls`.
    ball_offsets: Vec<u32>,
    /// Concatenated per-row open-addressed tables: node keys
    /// ([`EMPTY`] marks a free bucket) ...
    hash_keys: Vec<u32>,
    /// ... and the distance stored under each key.
    hash_dist: Vec<u32>,
    /// `heads.len() + 1` offsets into `hash_keys` / `hash_dist`; each
    /// row's table capacity is a power of two.
    hash_offsets: Vec<u32>,
    /// Shared BFS distance scratch (`n`-sized, all-`UNREACHED` between
    /// sweeps; touched-entry reset via the ball just built).
    scratch_dist: Vec<u32>,
    /// Previous arenas while [`Self::apply_delta`] writes the new
    /// concatenated lists (kept so incremental steps allocate nothing
    /// once warm).
    prev_balls: Vec<NodeId>,
    prev_offsets: Vec<u32>,
    prev_hash_keys: Vec<u32>,
    prev_hash_dist: Vec<u32>,
    prev_hash_offsets: Vec<u32>,
    /// Full-arena rebuilds performed so far (incremental paths never
    /// bump it — see [`HeadLabels::rebuild_count`]).
    rebuilds: u64,
}

impl SparseHeadLabels {
    /// Builds labels from scratch: one BFS per head, exploring to
    /// `bound` hops (`u32::MAX` = whole component).
    pub fn build<G: Adjacency>(g: &G, heads: &[NodeId], bound: u32) -> Self {
        let mut labels = SparseHeadLabels::default();
        labels.rebuild(g, heads, bound);
        labels
    }

    /// Rebuilds the labels for a (possibly different) graph and head
    /// set, reusing every allocation.
    pub fn rebuild<G: Adjacency>(&mut self, g: &G, heads: &[NodeId], bound: u32) {
        self.prepare_rebuild(g.node_count(), heads, bound);
        self.ball_offsets.push(0);
        self.hash_offsets.push(0);
        for slot in 0..self.heads.len() {
            self.sweep_head(g, slot);
            self.ball_offsets.push(self.balls.len() as u32);
            self.hash_offsets.push(self.hash_keys.len() as u32);
        }
    }

    /// Shared rebuild preamble: clears the row arenas and adopts the
    /// new graph size / head set / bound, leaving the shared scratch
    /// all-`UNREACHED` — ready for the sweeps, serial or chunked.
    fn prepare_rebuild(&mut self, n: usize, heads: &[NodeId], bound: u32) {
        self.rebuilds += 1;
        for &h in &self.heads {
            if h.index() < self.slot_of.len() {
                self.slot_of[h.index()] = NO_SLOT;
            }
        }
        self.balls.clear();
        self.ball_offsets.clear();
        self.hash_keys.clear();
        self.hash_dist.clear();
        self.hash_offsets.clear();

        self.n = n;
        self.bound = bound;
        self.heads.clear();
        self.heads.extend_from_slice(heads);
        if self.slot_of.len() < self.n {
            self.slot_of.resize(self.n, NO_SLOT);
        }
        if self.scratch_dist.len() < self.n {
            self.scratch_dist.resize(self.n, UNREACHED);
        }
        for (slot, &h) in self.heads.iter().enumerate() {
            debug_assert_eq!(self.slot_of[h.index()], NO_SLOT, "duplicate head {h:?}");
            self.slot_of[h.index()] = slot as u32;
        }
    }

    /// [`Self::rebuild`] with an explicit worker count: the per-head
    /// sweeps fan out over `par` workers, each with its **own**
    /// `n`-sized distance scratch and local ball / lookup-table
    /// fragments, concatenated in slot order. Each row's open-addressed
    /// table depends only on the row's ball and distances (insertion in
    /// discovery order), so the merged arenas are **bit-identical** to
    /// a serial rebuild for every worker count (pinned by tests).
    pub fn rebuild_with<G: Adjacency + Sync>(
        &mut self,
        g: &G,
        heads: &[NodeId],
        bound: u32,
        par: Parallelism,
    ) {
        if par.workers() <= 1 || heads.len() < 2 {
            self.rebuild(g, heads, bound);
            return;
        }
        self.prepare_rebuild(g.node_count(), heads, bound);
        let n = self.n;
        let rows = self.heads.len();
        let heads_list: &[NodeId] = &self.heads;
        let frags = par::scoped_chunks(par.workers(), rows, (), |off, take, ()| {
            let mut scratch = vec![UNREACHED; n];
            let mut balls = Vec::new();
            let mut bo = Vec::with_capacity(take + 1);
            bo.push(0u32);
            let mut keys = Vec::new();
            let mut dist = Vec::new();
            let mut ho = Vec::with_capacity(take + 1);
            ho.push(0u32);
            for i in 0..take {
                sweep_sparse_row(
                    g,
                    heads_list[off + i],
                    bound,
                    &mut scratch,
                    &mut balls,
                    &mut keys,
                    &mut dist,
                );
                bo.push(balls.len() as u32);
                ho.push(keys.len() as u32);
            }
            (balls, bo, keys, dist, ho)
        });
        self.ball_offsets.push(0);
        self.hash_offsets.push(0);
        for (balls, bo, keys, dist, ho) in frags {
            let bb = self.balls.len() as u32;
            let hb = self.hash_keys.len() as u32;
            self.balls.extend_from_slice(&balls);
            self.hash_keys.extend_from_slice(&keys);
            self.hash_dist.extend_from_slice(&dist);
            self.ball_offsets.extend(bo[1..].iter().map(|&w| bb + w));
            self.hash_offsets.extend(ho[1..].iter().map(|&w| hb + w));
        }
    }

    /// Runs one head's bounded BFS through the shared scratch row,
    /// appends its ball (discovery order) and open-addressed lookup
    /// table, and leaves the scratch all-`UNREACHED` again. Delegates
    /// to the free function the chunked paths also run — one code
    /// path, so serial and parallel builds are bit-identical by
    /// construction.
    fn sweep_head<G: Adjacency>(&mut self, g: &G, slot: usize) {
        sweep_sparse_row(
            g,
            self.heads[slot],
            self.bound,
            &mut self.scratch_dist,
            &mut self.balls,
            &mut self.hash_keys,
            &mut self.hash_dist,
        );
    }

    /// The slots (ascending) whose labels a topology delta can have
    /// changed — same soundness argument as
    /// [`HeadLabels::dirty_slots`]: a row changes only if a changed
    /// edge has an endpoint inside that head's **old** ball.
    ///
    /// # Panics
    /// Panics on deltas whose endpoints exceed the labeled node count.
    pub fn dirty_slots(&self, delta: &TopologyDelta) -> Vec<usize> {
        for v in delta.endpoints() {
            assert!(v.index() < self.n, "delta endpoint {v:?} beyond labeled nodes");
        }
        let mut dirty = Vec::new();
        for slot in 0..self.heads.len() {
            let row = self.row(slot);
            if delta.endpoints().any(|v| row.dist(v) != UNREACHED) {
                dirty.push(slot);
            }
        }
        dirty
    }

    /// Re-labels exactly the `dirty` slots (from [`Self::dirty_slots`])
    /// against the post-delta graph `g`: clean rows are copied
    /// byte-for-byte (ball, index, distances), dirty rows re-run their
    /// bounded BFS. The result is identical to a full [`Self::rebuild`]
    /// on `g` (pinned by tests).
    ///
    /// # Panics
    /// Panics if `g`'s node count differs from the labeled one, or if
    /// `dirty` is not ascending and in range.
    pub fn apply_delta<G: Adjacency>(&mut self, g: &G, dirty: &[usize]) {
        assert_eq!(g.node_count(), self.n, "deltas keep the node set");
        debug_assert!(
            dirty.windows(2).all(|w| w[0] < w[1]),
            "dirty slots must be ascending and unique"
        );
        if dirty.is_empty() {
            return;
        }
        for &slot in dirty {
            assert!(slot < self.heads.len(), "dirty slot out of range");
        }
        self.begin_splice();
        let mut next_dirty = 0usize;
        for slot in 0..self.heads.len() {
            if next_dirty < dirty.len() && dirty[next_dirty] == slot {
                next_dirty += 1;
                self.sweep_head(g, slot);
            } else {
                self.copy_prev_row(slot);
            }
            self.ball_offsets.push(self.balls.len() as u32);
            self.hash_offsets.push(self.hash_keys.len() as u32);
        }
    }

    /// [`Self::apply_delta`] with an explicit worker count: the dirty
    /// rows' re-sweeps fan out over `par` workers (each with its own
    /// `n`-sized scratch and local row fragments), then the arenas are
    /// spliced in slot order — bit-identical to the serial repair for
    /// every worker count (pinned by tests).
    pub fn apply_delta_with<G: Adjacency + Sync>(
        &mut self,
        g: &G,
        dirty: &[usize],
        par: Parallelism,
    ) {
        if par.workers() <= 1 || dirty.len() < 2 {
            self.apply_delta(g, dirty);
            return;
        }
        assert_eq!(g.node_count(), self.n, "deltas keep the node set");
        debug_assert!(
            dirty.windows(2).all(|w| w[0] < w[1]),
            "dirty slots must be ascending and unique"
        );
        for &slot in dirty {
            assert!(slot < self.heads.len(), "dirty slot out of range");
        }
        let n = self.n;
        let bound = self.bound;
        let dirty_heads: Vec<NodeId> = dirty.iter().map(|&s| self.heads[s]).collect();
        let frags = par::scoped_chunks(par.workers(), dirty.len(), (), |off, take, ()| {
            let mut scratch = vec![UNREACHED; n];
            let mut balls = Vec::new();
            let mut bo = Vec::with_capacity(take + 1);
            bo.push(0u32);
            let mut keys = Vec::new();
            let mut dist = Vec::new();
            let mut ho = Vec::with_capacity(take + 1);
            ho.push(0u32);
            for i in 0..take {
                sweep_sparse_row(
                    g,
                    dirty_heads[off + i],
                    bound,
                    &mut scratch,
                    &mut balls,
                    &mut keys,
                    &mut dist,
                );
                bo.push(balls.len() as u32);
                ho.push(keys.len() as u32);
            }
            (balls, bo, keys, dist, ho)
        });
        // Flatten the fragments into dirty-indexed arenas ...
        let mut db: Vec<NodeId> = Vec::new();
        let mut dbo = vec![0u32];
        let mut dk: Vec<u32> = Vec::new();
        let mut dd: Vec<u32> = Vec::new();
        let mut dho = vec![0u32];
        for (balls, bo, keys, dist, ho) in &frags {
            let bb = db.len() as u32;
            let hb = dk.len() as u32;
            db.extend_from_slice(balls);
            dk.extend_from_slice(keys);
            dd.extend_from_slice(dist);
            dbo.extend(bo[1..].iter().map(|&w| bb + w));
            dho.extend(ho[1..].iter().map(|&w| hb + w));
        }
        // ... and splice: clean rows copied byte-for-byte, dirty rows
        // from their freshly swept fragments, in slot order.
        self.begin_splice();
        let mut next_dirty = 0usize;
        for slot in 0..self.heads.len() {
            if next_dirty < dirty.len() && dirty[next_dirty] == slot {
                let (lo, hi) = (
                    dbo[next_dirty] as usize,
                    dbo[next_dirty + 1] as usize,
                );
                self.balls.extend_from_slice(&db[lo..hi]);
                let (hlo, hhi) = (
                    dho[next_dirty] as usize,
                    dho[next_dirty + 1] as usize,
                );
                self.hash_keys.extend_from_slice(&dk[hlo..hhi]);
                self.hash_dist.extend_from_slice(&dd[hlo..hhi]);
                next_dirty += 1;
            } else {
                self.copy_prev_row(slot);
            }
            self.ball_offsets.push(self.balls.len() as u32);
            self.hash_offsets.push(self.hash_keys.len() as u32);
        }
    }

    /// Swaps every row arena with its `prev_` twin and clears the live
    /// side for a slot-by-slot rewrite (the shared splice preamble of
    /// `apply_delta` / `add_head_row` / `remove_head_row`).
    fn begin_splice(&mut self) {
        std::mem::swap(&mut self.balls, &mut self.prev_balls);
        std::mem::swap(&mut self.ball_offsets, &mut self.prev_offsets);
        std::mem::swap(&mut self.hash_keys, &mut self.prev_hash_keys);
        std::mem::swap(&mut self.hash_dist, &mut self.prev_hash_dist);
        std::mem::swap(&mut self.hash_offsets, &mut self.prev_hash_offsets);
        self.balls.clear();
        self.ball_offsets.clear();
        self.hash_keys.clear();
        self.hash_dist.clear();
        self.hash_offsets.clear();
        self.ball_offsets.push(0);
        self.hash_offsets.push(0);
    }

    /// Copies one pre-splice row (ball + lookup table) byte-for-byte
    /// into the live arenas.
    fn copy_prev_row(&mut self, old: usize) {
        let (lo, hi) = (
            self.prev_offsets[old] as usize,
            self.prev_offsets[old + 1] as usize,
        );
        self.balls.extend_from_slice(&self.prev_balls[lo..hi]);
        let (hlo, hhi) = (
            self.prev_hash_offsets[old] as usize,
            self.prev_hash_offsets[old + 1] as usize,
        );
        self.hash_keys
            .extend_from_slice(&self.prev_hash_keys[hlo..hhi]);
        self.hash_dist
            .extend_from_slice(&self.prev_hash_dist[hlo..hhi]);
    }

    /// Incrementally inserts a label row for a **new** head `h`: one
    /// bounded BFS plus an arena splice, no other row re-swept —
    /// identical to a full [`Self::rebuild`] with `h` in the head list
    /// (pinned by tests; see [`HeadLabels::add_head_row`] for the
    /// independence argument). Returns the new head's slot.
    ///
    /// # Panics
    /// Panics if `h` is already a head or beyond the labeled nodes, if
    /// no build ran yet, or if `g`'s node count differs.
    pub fn add_head_row<G: Adjacency>(&mut self, g: &G, h: NodeId) -> usize {
        assert_eq!(g.node_count(), self.n, "head-set changes keep the node set");
        assert!(h.index() < self.n, "head {h:?} beyond labeled nodes");
        assert_eq!(
            self.ball_offsets.len(),
            self.heads.len() + 1,
            "add_head_row needs built labels"
        );
        let slot = match self.heads.binary_search(&h) {
            Ok(_) => panic!("{h:?} is already a head"),
            Err(s) => s,
        };
        for &hd in &self.heads[slot..] {
            self.slot_of[hd.index()] += 1;
        }
        self.heads.insert(slot, h);
        self.slot_of[h.index()] = slot as u32;
        self.begin_splice();
        for s in 0..self.heads.len() {
            if s == slot {
                self.sweep_head(g, s);
            } else {
                let old = if s < slot { s } else { s - 1 };
                self.copy_prev_row(old);
            }
            self.ball_offsets.push(self.balls.len() as u32);
            self.hash_offsets.push(self.hash_keys.len() as u32);
        }
        slot
    }

    /// Incrementally removes the label row of head `h`: an arena
    /// splice with no BFS at all — identical to a full
    /// [`Self::rebuild`] without `h` (pinned by tests). Returns the
    /// removed head's former slot.
    ///
    /// # Panics
    /// Panics if `h` is not a head.
    pub fn remove_head_row(&mut self, h: NodeId) -> usize {
        let slot = self
            .heads
            .binary_search(&h)
            .unwrap_or_else(|_| panic!("{h:?} is not a head"));
        self.slot_of[h.index()] = NO_SLOT;
        for &hd in &self.heads[slot + 1..] {
            self.slot_of[hd.index()] -= 1;
        }
        self.heads.remove(slot);
        self.begin_splice();
        for s in 0..self.heads.len() {
            let old = if s < slot { s } else { s + 1 };
            self.copy_prev_row(old);
            self.ball_offsets.push(self.balls.len() as u32);
            self.hash_offsets.push(self.hash_keys.len() as u32);
        }
        slot
    }

    /// Full-arena rebuilds performed over this value's lifetime (see
    /// [`HeadLabels::rebuild_count`]).
    #[inline]
    pub fn rebuild_count(&self) -> u64 {
        self.rebuilds
    }

    /// Bytes of heap memory the label arenas currently hold (capacity,
    /// not logical size). The dominant terms are the ball list and the
    /// per-row tables (4 + ~16–32 bytes per ball entry at ≤ 50% load,
    /// plus their warm `prev` copies) and the two `n`-sized node maps
    /// — `O(Σ ball sizes + n)`, versus the dense layout's `O(h · n)`.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.balls.capacity() + self.prev_balls.capacity() + self.heads.capacity())
            * size_of::<NodeId>()
            + (self.hash_keys.capacity()
                + self.prev_hash_keys.capacity()
                + self.hash_dist.capacity()
                + self.prev_hash_dist.capacity()
                + self.hash_offsets.capacity()
                + self.prev_hash_offsets.capacity()
                + self.ball_offsets.capacity()
                + self.prev_offsets.capacity()
                + self.scratch_dist.capacity()
                + self.slot_of.capacity())
                * size_of::<u32>()
    }

    /// The heads the labels were built from, in slot order.
    #[inline]
    pub fn heads(&self) -> &[NodeId] {
        &self.heads
    }

    /// The hop bound of the last build (`u32::MAX` = unbounded).
    #[inline]
    pub fn bound(&self) -> u32 {
        self.bound
    }

    /// Node count of the graph of the last build.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The slot of `head`, or `None` if it is not a labeled source.
    #[inline]
    pub fn slot(&self, head: NodeId) -> Option<usize> {
        match self.slot_of.get(head.index()) {
            Some(&s) if s != NO_SLOT => Some(s as usize),
            _ => None,
        }
    }

    /// Hop distance from the head in `slot` to `v` (`UNREACHED` if `v`
    /// is outside the head's ball). One multiply plus a short linear
    /// probe of the row's table — `O(1)` expected, like the dense
    /// layout, just through one more indirection.
    #[inline]
    pub fn dist(&self, slot: usize, v: NodeId) -> u32 {
        self.row(slot).dist(v)
    }

    /// Hop distance between two labeled heads (`UNREACHED` if beyond
    /// the bound or disconnected).
    ///
    /// # Panics
    /// Panics if `a` is not a labeled head.
    pub fn head_dist(&self, a: NodeId, b: NodeId) -> u32 {
        let slot = self
            .slot(a)
            .unwrap_or_else(|| panic!("{a:?} is not a labeled head"));
        self.dist(slot, b)
    }

    /// The *other* labeled heads within `bound` hops of the head in
    /// `slot`, ascending by ID (requires an ascending head list, which
    /// the pipeline always supplies). Scans whichever side is smaller:
    /// the head list (like the dense layout, already sorted) or the
    /// head's ball (`O(ball)` — the reason the NC relation gets
    /// *cheaper* under this layout once `h ≫ ball`, which is exactly
    /// the large-`N` regime).
    pub fn heads_within(&self, slot: usize, bound: u32) -> Vec<NodeId> {
        let h = self.heads[slot];
        let row = self.row(slot);
        let ball = {
            let (lo, hi) = (
                self.ball_offsets[slot] as usize,
                self.ball_offsets[slot + 1] as usize,
            );
            &self.balls[lo..hi]
        };
        if self.heads.len() <= ball.len() {
            self.heads
                .iter()
                .copied()
                .filter(|&o| o != h && row.dist(o) <= bound)
                .collect()
        } else {
            let mut near: Vec<NodeId> = ball
                .iter()
                .copied()
                .filter(|&v| v != h && self.slot_of[v.index()] != NO_SLOT && row.dist(v) <= bound)
                .collect();
            near.sort_unstable();
            near
        }
    }

    /// The ball of the head in `slot`: every node within the bound, in
    /// BFS discovery order (the head itself first) — bit-identical to
    /// what [`HeadLabels::ball`] yields for the same build.
    pub fn ball(&self, slot: usize) -> &[NodeId] {
        let (lo, hi) = (
            self.ball_offsets[slot] as usize,
            self.ball_offsets[slot + 1] as usize,
        );
        &self.balls[lo..hi]
    }

    /// The distance row of `slot` as a [`DistLabels`] view, usable with
    /// [`crate::bfs::lexico_path_from_labels`].
    #[inline]
    pub fn row(&self, slot: usize) -> SparseRow<'_> {
        let lo = self.hash_offsets[slot] as usize;
        let hi = self.hash_offsets[slot + 1] as usize;
        SparseRow {
            keys: &self.hash_keys[lo..hi],
            dist: &self.hash_dist[lo..hi],
        }
    }
}

/// One sparse head's distance row (a borrowed [`DistLabels`] view over
/// the row's open-addressed table).
#[derive(Clone, Copy, Debug)]
pub struct SparseRow<'a> {
    keys: &'a [u32],
    dist: &'a [u32],
}

impl DistLabels for SparseRow<'_> {
    #[inline]
    fn dist(&self, v: NodeId) -> u32 {
        let mask = self.keys.len() - 1;
        let mut b = bucket(v, mask);
        loop {
            let k = self.keys[b];
            if k == v.0 {
                return self.dist[b];
            }
            if k == EMPTY {
                return UNREACHED;
            }
            b = (b + 1) & mask;
        }
    }
}

/// Projected dense-arena size (`heads × n × 4` bytes) above which
/// [`LabelMode::Auto`] switches a build to the sparse layout. 16 MiB
/// keeps the paper-scale grids (`N ≤ 2000`, where the flat arena is at
/// most a few MB and its `O(1)` lookups win) on the dense layout while
/// every `N ≥ 10⁴` cell at default density lands on sparse.
pub const AUTO_SPARSE_THRESHOLD_BYTES: usize = 16 << 20;

/// Which label layout an evaluation scratch should use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LabelMode {
    /// Always the flat `heads × n` arena ([`HeadLabels`]).
    Dense,
    /// Always the ball-indexed layout ([`SparseHeadLabels`]).
    Sparse,
    /// Decide per build: sparse once the projected dense arena
    /// (`heads · n · 4` bytes) exceeds
    /// [`AUTO_SPARSE_THRESHOLD_BYTES`].
    #[default]
    Auto,
}

impl LabelMode {
    /// Whether a build over `heads` sources on an `n`-node graph
    /// should use the sparse layout under this mode.
    pub fn wants_sparse(self, n: usize, heads: usize) -> bool {
        match self {
            LabelMode::Dense => false,
            LabelMode::Sparse => true,
            LabelMode::Auto => {
                heads.saturating_mul(n).saturating_mul(4) > AUTO_SPARSE_THRESHOLD_BYTES
            }
        }
    }

    /// Display name (`dense` / `sparse` / `auto`).
    pub fn name(self) -> &'static str {
        match self {
            LabelMode::Dense => "dense",
            LabelMode::Sparse => "sparse",
            LabelMode::Auto => "auto",
        }
    }
}

impl std::str::FromStr for LabelMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "dense" => Ok(LabelMode::Dense),
            "sparse" => Ok(LabelMode::Sparse),
            "auto" => Ok(LabelMode::Auto),
            other => Err(format!("unknown label layout {other} (dense|sparse|auto)")),
        }
    }
}

/// A head-label arena in either layout, presenting one API so every
/// consumer — the NC relation, the virtual-graph builders, the
/// incremental churn engine — runs unmodified off dense or sparse
/// storage. The evaluation scratch owns one of these and picks the
/// variant per [`LabelMode`].
#[derive(Clone, Debug)]
pub enum LabelStore {
    /// Flat `heads × n` distance arena — direct-indexed lookups,
    /// `O(h · n)` memory.
    Dense(HeadLabels),
    /// Ball-indexed rows — `O(1)` expected hash lookups, `O(Σ ball
    /// sizes)` memory.
    Sparse(SparseHeadLabels),
}

impl Default for LabelStore {
    fn default() -> Self {
        LabelStore::Dense(HeadLabels::default())
    }
}

impl LabelStore {
    /// An empty dense store.
    pub fn dense() -> Self {
        LabelStore::Dense(HeadLabels::default())
    }

    /// An empty sparse store.
    pub fn sparse() -> Self {
        LabelStore::Sparse(SparseHeadLabels::default())
    }

    /// An empty store in the layout `mode` selects for an `n`-node
    /// graph with `heads` sources.
    pub fn for_mode(mode: LabelMode, n: usize, heads: usize) -> Self {
        if mode.wants_sparse(n, heads) {
            LabelStore::sparse()
        } else {
            LabelStore::dense()
        }
    }

    /// Whether this store uses the sparse layout.
    pub fn is_sparse(&self) -> bool {
        matches!(self, LabelStore::Sparse(_))
    }

    /// Display name of the active layout (`dense` / `sparse`).
    pub fn layout_name(&self) -> &'static str {
        match self {
            LabelStore::Dense(_) => "dense",
            LabelStore::Sparse(_) => "sparse",
        }
    }

    /// Rebuilds the labels for a (possibly different) graph and head
    /// set, reusing every allocation of the active layout.
    pub fn rebuild<G: Adjacency>(&mut self, g: &G, heads: &[NodeId], bound: u32) {
        match self {
            LabelStore::Dense(l) => l.rebuild(g, heads, bound),
            LabelStore::Sparse(l) => l.rebuild(g, heads, bound),
        }
    }

    /// [`Self::rebuild`] with an explicit worker count — bit-identical
    /// output for every worker count in either layout. See
    /// [`HeadLabels::rebuild_with`] / [`SparseHeadLabels::rebuild_with`].
    pub fn rebuild_with<G: Adjacency + Sync>(
        &mut self,
        g: &G,
        heads: &[NodeId],
        bound: u32,
        par: Parallelism,
    ) {
        match self {
            LabelStore::Dense(l) => l.rebuild_with(g, heads, bound, par),
            LabelStore::Sparse(l) => l.rebuild_with(g, heads, bound, par),
        }
    }

    /// See [`HeadLabels::dirty_slots`] / [`SparseHeadLabels::dirty_slots`].
    pub fn dirty_slots(&self, delta: &TopologyDelta) -> Vec<usize> {
        match self {
            LabelStore::Dense(l) => l.dirty_slots(delta),
            LabelStore::Sparse(l) => l.dirty_slots(delta),
        }
    }

    /// See [`HeadLabels::apply_delta`] / [`SparseHeadLabels::apply_delta`].
    pub fn apply_delta<G: Adjacency>(&mut self, g: &G, dirty: &[usize]) {
        match self {
            LabelStore::Dense(l) => l.apply_delta(g, dirty),
            LabelStore::Sparse(l) => l.apply_delta(g, dirty),
        }
    }

    /// [`Self::apply_delta`] with an explicit worker count —
    /// bit-identical output for every worker count in either layout.
    /// See [`HeadLabels::apply_delta_with`] /
    /// [`SparseHeadLabels::apply_delta_with`].
    pub fn apply_delta_with<G: Adjacency + Sync>(
        &mut self,
        g: &G,
        dirty: &[usize],
        par: Parallelism,
    ) {
        match self {
            LabelStore::Dense(l) => l.apply_delta_with(g, dirty, par),
            LabelStore::Sparse(l) => l.apply_delta_with(g, dirty, par),
        }
    }

    /// Incrementally inserts a label row for a new head — one bounded
    /// BFS plus an arena splice in either layout, never a full
    /// rebuild. See [`HeadLabels::add_head_row`] /
    /// [`SparseHeadLabels::add_head_row`]. Returns the new slot.
    pub fn add_head_row<G: Adjacency>(&mut self, g: &G, h: NodeId) -> usize {
        match self {
            LabelStore::Dense(l) => l.add_head_row(g, h),
            LabelStore::Sparse(l) => l.add_head_row(g, h),
        }
    }

    /// Incrementally removes a head's label row — an arena splice with
    /// no BFS in either layout. See [`HeadLabels::remove_head_row`] /
    /// [`SparseHeadLabels::remove_head_row`]. Returns the former slot.
    pub fn remove_head_row(&mut self, h: NodeId) -> usize {
        match self {
            LabelStore::Dense(l) => l.remove_head_row(h),
            LabelStore::Sparse(l) => l.remove_head_row(h),
        }
    }

    /// Full-arena rebuilds of the active layout over its lifetime (the
    /// incremental paths never bump it; see
    /// [`HeadLabels::rebuild_count`]).
    #[inline]
    pub fn rebuild_count(&self) -> u64 {
        match self {
            LabelStore::Dense(l) => l.rebuild_count(),
            LabelStore::Sparse(l) => l.rebuild_count(),
        }
    }

    /// Bytes of heap memory the active layout currently holds.
    pub fn memory_bytes(&self) -> usize {
        match self {
            LabelStore::Dense(l) => l.memory_bytes(),
            LabelStore::Sparse(l) => l.memory_bytes(),
        }
    }

    /// The heads the labels were built from, in slot order.
    #[inline]
    pub fn heads(&self) -> &[NodeId] {
        match self {
            LabelStore::Dense(l) => l.heads(),
            LabelStore::Sparse(l) => l.heads(),
        }
    }

    /// The hop bound of the last build (`u32::MAX` = unbounded).
    #[inline]
    pub fn bound(&self) -> u32 {
        match self {
            LabelStore::Dense(l) => l.bound(),
            LabelStore::Sparse(l) => l.bound(),
        }
    }

    /// Node count of the graph of the last build.
    #[inline]
    pub fn node_count(&self) -> usize {
        match self {
            LabelStore::Dense(l) => l.node_count(),
            LabelStore::Sparse(l) => l.node_count(),
        }
    }

    /// The slot of `head`, or `None` if it is not a labeled source.
    #[inline]
    pub fn slot(&self, head: NodeId) -> Option<usize> {
        match self {
            LabelStore::Dense(l) => l.slot(head),
            LabelStore::Sparse(l) => l.slot(head),
        }
    }

    /// Hop distance from the head in `slot` to `v` (`UNREACHED` if `v`
    /// is outside the head's ball).
    #[inline]
    pub fn dist(&self, slot: usize, v: NodeId) -> u32 {
        match self {
            LabelStore::Dense(l) => l.dist(slot, v),
            LabelStore::Sparse(l) => l.dist(slot, v),
        }
    }

    /// Hop distance between two labeled heads.
    ///
    /// # Panics
    /// Panics if `a` is not a labeled head.
    pub fn head_dist(&self, a: NodeId, b: NodeId) -> u32 {
        match self {
            LabelStore::Dense(l) => l.head_dist(a, b),
            LabelStore::Sparse(l) => l.head_dist(a, b),
        }
    }

    /// The *other* labeled heads within `bound` hops of the head in
    /// `slot`, ascending (both layouts agree when the labels were
    /// built from an ascending head list, as the pipeline always
    /// does).
    pub fn heads_within(&self, slot: usize, bound: u32) -> Vec<NodeId> {
        match self {
            LabelStore::Dense(l) => l.heads_within(slot, bound),
            LabelStore::Sparse(l) => l.heads_within(slot, bound),
        }
    }

    /// The ball of the head in `slot`, in BFS discovery order —
    /// bit-identical across layouts for the same build.
    pub fn ball(&self, slot: usize) -> &[NodeId] {
        match self {
            LabelStore::Dense(l) => l.ball(slot),
            LabelStore::Sparse(l) => l.ball(slot),
        }
    }

    /// The distance row of `slot` as a [`DistLabels`] view.
    #[inline]
    pub fn row(&self, slot: usize) -> LabelRow<'_> {
        match self {
            LabelStore::Dense(l) => LabelRow::Dense(l.row(slot)),
            LabelStore::Sparse(l) => LabelRow::Sparse(l.row(slot)),
        }
    }
}

/// One head's distance row from a [`LabelStore`], in either layout.
#[derive(Clone, Copy, Debug)]
pub enum LabelRow<'a> {
    /// Borrowed dense row (direct-indexed lookups).
    Dense(HeadRow<'a>),
    /// Borrowed sparse row (`O(1)` expected hash lookups).
    Sparse(SparseRow<'a>),
}

impl DistLabels for LabelRow<'_> {
    #[inline]
    fn dist(&self, v: NodeId) -> u32 {
        match self {
            LabelRow::Dense(r) => r.dist(v),
            LabelRow::Sparse(r) => r.dist(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::{self, BfsScratch};
    use crate::gen;
    use crate::graph::Graph;

    fn assert_matches_scratch(g: &Graph, heads: &[NodeId], bound: u32, labels: &HeadLabels) {
        let mut scratch = BfsScratch::new(g.len());
        for (slot, &h) in heads.iter().enumerate() {
            scratch.run(g, h, bound);
            for v in g.nodes() {
                assert_eq!(
                    labels.dist(slot, v),
                    scratch.dist(v),
                    "head {h:?} node {v:?}"
                );
            }
            assert_eq!(labels.ball(slot), scratch.visited());
        }
    }

    #[test]
    fn labels_match_per_head_bfs() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let net = gen::geometric(&gen::GeometricConfig::new(60, 100.0, 6.0), &mut rng);
        let heads = vec![NodeId(0), NodeId(7), NodeId(33)];
        for bound in [1, 3, u32::MAX] {
            let labels = HeadLabels::build(&net.graph, &heads, bound);
            assert_matches_scratch(&net.graph, &heads, bound, &labels);
        }
    }

    #[test]
    fn slots_and_head_dist() {
        let g = gen::path(6);
        let heads = vec![NodeId(0), NodeId(4)];
        let labels = HeadLabels::build(&g, &heads, u32::MAX);
        assert_eq!(labels.slot(NodeId(0)), Some(0));
        assert_eq!(labels.slot(NodeId(4)), Some(1));
        assert_eq!(labels.slot(NodeId(2)), None);
        assert_eq!(labels.head_dist(NodeId(0), NodeId(4)), 4);
        assert_eq!(labels.head_dist(NodeId(4), NodeId(0)), 4);
        assert_eq!(labels.heads(), &heads[..]);
        assert_eq!(labels.bound(), u32::MAX);
        assert_eq!(labels.node_count(), 6);
    }

    #[test]
    fn bounded_ball_excludes_far_nodes() {
        let g = gen::path(8);
        let labels = HeadLabels::build(&g, &[NodeId(0)], 2);
        assert_eq!(labels.dist(0, NodeId(2)), 2);
        assert_eq!(labels.dist(0, NodeId(3)), UNREACHED);
        assert_eq!(labels.ball(0), &[NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn rebuild_resets_across_graphs_of_different_size() {
        let big = gen::path(12);
        let small = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let mut labels = HeadLabels::build(&big, &[NodeId(0), NodeId(6), NodeId(11)], u32::MAX);
        labels.rebuild(&small, &[NodeId(2)], 1);
        assert_eq!(labels.heads(), &[NodeId(2)]);
        assert_eq!(labels.slot(NodeId(0)), None, "old head slots reset");
        assert_eq!(labels.dist(0, NodeId(3)), 1);
        assert_eq!(labels.dist(0, NodeId(0)), UNREACHED);
        assert_matches_scratch(&small, &[NodeId(2)], 1, &labels);
        // And back up to the larger graph again.
        labels.rebuild(&big, &[NodeId(3), NodeId(9)], 3);
        assert_matches_scratch(&big, &[NodeId(3), NodeId(9)], 3, &labels);
    }

    #[test]
    fn row_drives_lexico_paths() {
        // Two shortest 0->3 paths; the label walk must pick the one
        // through 1, identical to the scratch-based construction.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let labels = HeadLabels::build(&g, &[NodeId(3)], u32::MAX);
        let p = bfs::lexico_path_from_labels(&g, NodeId(0), NodeId(3), &labels.row(0)).unwrap();
        assert_eq!(p, vec![NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn reaching_heads_labels_support_head_queries_and_walks() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        let net = gen::geometric(&gen::GeometricConfig::new(80, 100.0, 6.0), &mut rng);
        let heads = vec![NodeId(0), NodeId(5), NodeId(41), NodeId(77)];
        let full = HeadLabels::build(&net.graph, &heads, u32::MAX);
        let mut lazy = HeadLabels::default();
        lazy.rebuild_reaching_heads(&net.graph, &heads);
        for (slot, &h) in heads.iter().enumerate() {
            // Head-to-head distances agree with the full build.
            for &o in &heads {
                assert_eq!(lazy.dist(slot, o), full.dist(slot, o), "{h:?} -> {o:?}");
            }
            // Every labeled node is labeled with its exact distance.
            for &v in lazy.ball(slot) {
                assert_eq!(lazy.dist(slot, v), full.dist(slot, v));
            }
            // Canonical inter-head walks agree with the full build.
            for &a in &heads {
                if a == h {
                    continue;
                }
                let p1 =
                    bfs::lexico_path_from_labels(&net.graph, a, h, &lazy.row(slot)).unwrap();
                let p2 =
                    bfs::lexico_path_from_labels(&net.graph, a, h, &full.row(slot)).unwrap();
                assert_eq!(p1, p2, "walk {a:?} -> {h:?}");
            }
        }
    }

    #[test]
    fn reaching_heads_single_head_skips_exploration() {
        let g = gen::path(9);
        let mut labels = HeadLabels::default();
        labels.rebuild_reaching_heads(&g, &[NodeId(4)]);
        assert_eq!(labels.ball(0), &[NodeId(4)]);
        assert_eq!(labels.dist(0, NodeId(4)), 0);
    }

    /// Drives a random delta sequence and checks after every step that
    /// dirty-slot detection plus per-row repair reproduces a full
    /// rebuild bit-for-bit (dist rows *and* ball lists).
    #[test]
    fn apply_delta_matches_full_rebuild() {
        use crate::delta::TopologyDelta;
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        for bound in [2u32, 5, u32::MAX] {
            let net = gen::geometric(&gen::GeometricConfig::new(70, 100.0, 6.0), &mut rng);
            let mut g = net.graph.clone();
            let heads = vec![NodeId(0), NodeId(9), NodeId(25), NodeId(48), NodeId(69)];
            let mut labels = HeadLabels::build(&g, &heads, bound);
            for _ in 0..15 {
                // Random flips: toggle a few node pairs.
                let mut delta = TopologyDelta::new();
                for _ in 0..rng.gen_range(1..6) {
                    let a = NodeId(rng.gen_range(0..70u32));
                    let b = NodeId(rng.gen_range(0..70u32));
                    if a == b {
                        continue;
                    }
                    if g.has_edge(a, b) {
                        g.remove_edge(a, b);
                        delta.push_removed(a, b);
                    } else {
                        g.add_edge(a, b);
                        delta.push_added(a, b);
                    }
                }
                delta.normalize();
                let dirty = labels.dirty_slots(&delta);
                labels.apply_delta(&g, &dirty);
                let fresh = HeadLabels::build(&g, &heads, bound);
                for (slot, &h) in heads.iter().enumerate() {
                    for v in g.nodes() {
                        assert_eq!(
                            labels.dist(slot, v),
                            fresh.dist(slot, v),
                            "bound {bound} head {h:?} node {v:?}"
                        );
                    }
                    assert_eq!(labels.ball(slot), fresh.ball(slot), "head {h:?}");
                }
            }
        }
    }

    #[test]
    fn empty_delta_dirties_nothing() {
        use crate::delta::TopologyDelta;
        let g = gen::path(9);
        let mut labels = HeadLabels::build(&g, &[NodeId(0), NodeId(4), NodeId(8)], 3);
        let dirty = labels.dirty_slots(&TopologyDelta::new());
        assert!(dirty.is_empty());
        let before = labels.clone();
        labels.apply_delta(&g, &dirty);
        assert_eq!(labels.ball(1), before.ball(1));
    }

    #[test]
    fn faraway_change_leaves_bounded_ball_clean() {
        use crate::delta::TopologyDelta;
        // Heads 0 and 11 with bound 2 on a path: a flip at the far end
        // must dirty only the nearby head.
        let mut g = gen::path(12);
        let labels = HeadLabels::build(&g, &[NodeId(0), NodeId(11)], 2);
        let mut delta = TopologyDelta::new();
        g.remove_edge(NodeId(10), NodeId(11));
        delta.push_removed(NodeId(10), NodeId(11));
        assert_eq!(labels.dirty_slots(&delta), vec![1]);
        let mut inc = labels.clone();
        inc.apply_delta(&g, &[1]);
        assert_eq!(inc.dist(1, NodeId(10)), UNREACHED);
        assert_eq!(inc.ball(1), &[NodeId(11)]);
        assert_eq!(inc.ball(0), labels.ball(0), "clean row untouched");
    }

    #[test]
    #[should_panic(expected = "full-ball labels")]
    fn reaching_heads_labels_reject_deltas() {
        use crate::delta::TopologyDelta;
        let g = gen::path(9);
        let mut labels = HeadLabels::default();
        labels.rebuild_reaching_heads(&g, &[NodeId(0), NodeId(8)]);
        let mut d = TopologyDelta::new();
        d.push_added(NodeId(0), NodeId(5));
        labels.dirty_slots(&d);
    }

    #[test]
    fn memory_bytes_tracks_arena_growth() {
        let small = HeadLabels::build(&gen::path(4), &[NodeId(0)], 1);
        let big = HeadLabels::build(
            &gen::grid(10, 10),
            &[NodeId(0), NodeId(34), NodeId(67), NodeId(99)],
            u32::MAX,
        );
        assert!(small.memory_bytes() > 0);
        assert!(
            big.memory_bytes() >= 4 * 100 * 4,
            "dense arena dominates: {} bytes",
            big.memory_bytes()
        );
        assert!(big.memory_bytes() > small.memory_bytes());
    }

    #[test]
    fn disconnected_pairs_are_unreached() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let labels = HeadLabels::build(&g, &[NodeId(0), NodeId(2)], u32::MAX);
        assert_eq!(labels.head_dist(NodeId(0), NodeId(2)), UNREACHED);
        assert_eq!(labels.dist(0, NodeId(1)), 1);
    }

    /// Every queryable surface of the two layouts must agree
    /// bit-for-bit on the same build.
    fn assert_layouts_agree(g: &Graph, heads: &[NodeId], bound: u32) {
        let dense = HeadLabels::build(g, heads, bound);
        let sparse = SparseHeadLabels::build(g, heads, bound);
        assert_eq!(dense.heads(), sparse.heads());
        assert_eq!(dense.bound(), sparse.bound());
        assert_eq!(dense.node_count(), sparse.node_count());
        for (slot, &h) in heads.iter().enumerate() {
            assert_eq!(dense.slot(h), sparse.slot(h));
            assert_eq!(dense.ball(slot), sparse.ball(slot), "ball of {h:?}");
            for v in g.nodes() {
                assert_eq!(
                    dense.dist(slot, v),
                    sparse.dist(slot, v),
                    "dist {h:?} -> {v:?}"
                );
            }
            for b in [1, bound.min(7), bound] {
                assert_eq!(
                    dense.heads_within(slot, b),
                    sparse.heads_within(slot, b),
                    "heads_within({h:?}, {b})"
                );
            }
        }
    }

    #[test]
    fn sparse_matches_dense_on_random_graphs() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let net = gen::geometric(&gen::GeometricConfig::new(60, 100.0, 6.0), &mut rng);
        let heads = vec![NodeId(0), NodeId(7), NodeId(33)];
        for bound in [1, 3, u32::MAX] {
            assert_layouts_agree(&net.graph, &heads, bound);
        }
    }

    #[test]
    fn sparse_rebuild_resets_across_graphs_of_different_size() {
        let big = gen::path(12);
        let small = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let mut labels =
            SparseHeadLabels::build(&big, &[NodeId(0), NodeId(6), NodeId(11)], u32::MAX);
        labels.rebuild(&small, &[NodeId(2)], 1);
        assert_eq!(labels.heads(), &[NodeId(2)]);
        assert_eq!(labels.slot(NodeId(0)), None, "old head slots reset");
        assert_eq!(labels.dist(0, NodeId(3)), 1);
        assert_eq!(labels.dist(0, NodeId(0)), UNREACHED);
        labels.rebuild(&big, &[NodeId(3), NodeId(9)], 3);
        assert_layouts_agree(&big, &[NodeId(3), NodeId(9)], 3);
    }

    #[test]
    fn sparse_row_drives_lexico_paths() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let labels = SparseHeadLabels::build(&g, &[NodeId(3)], u32::MAX);
        let p = bfs::lexico_path_from_labels(&g, NodeId(0), NodeId(3), &labels.row(0)).unwrap();
        assert_eq!(p, vec![NodeId(0), NodeId(1), NodeId(3)]);
    }

    /// Sparse delta repair reproduces a full sparse rebuild — and the
    /// dense one — bit-for-bit across a random flip sequence.
    #[test]
    fn sparse_apply_delta_matches_full_rebuild() {
        use crate::delta::TopologyDelta;
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        for bound in [2u32, 5, u32::MAX] {
            let net = gen::geometric(&gen::GeometricConfig::new(70, 100.0, 6.0), &mut rng);
            let mut g = net.graph.clone();
            let heads = vec![NodeId(0), NodeId(9), NodeId(25), NodeId(48), NodeId(69)];
            let mut sparse = SparseHeadLabels::build(&g, &heads, bound);
            let mut dense = HeadLabels::build(&g, &heads, bound);
            for _ in 0..15 {
                let mut delta = TopologyDelta::new();
                for _ in 0..rng.gen_range(1..6) {
                    let a = NodeId(rng.gen_range(0..70u32));
                    let b = NodeId(rng.gen_range(0..70u32));
                    if a == b {
                        continue;
                    }
                    if g.has_edge(a, b) {
                        g.remove_edge(a, b);
                        delta.push_removed(a, b);
                    } else {
                        g.add_edge(a, b);
                        delta.push_added(a, b);
                    }
                }
                delta.normalize();
                let dirty = sparse.dirty_slots(&delta);
                assert_eq!(dirty, dense.dirty_slots(&delta), "dirty sets differ");
                sparse.apply_delta(&g, &dirty);
                dense.apply_delta(&g, &dirty);
                let fresh = SparseHeadLabels::build(&g, &heads, bound);
                for (slot, &h) in heads.iter().enumerate() {
                    assert_eq!(sparse.ball(slot), fresh.ball(slot), "ball {h:?}");
                    for v in g.nodes() {
                        assert_eq!(
                            sparse.dist(slot, v),
                            dense.dist(slot, v),
                            "bound {bound} head {h:?} node {v:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sparse_memory_is_below_dense_at_scale() {
        // A long path with many heads: the dense arena is h·n·4 bytes,
        // the sparse one O(Σ balls) — at n = 4000 with 1000 heads of
        // bound 3 the gap is enormous.
        let g = gen::path(4000);
        let heads: Vec<NodeId> = (0..1000).map(|i| NodeId(i * 4)).collect();
        let dense = HeadLabels::build(&g, &heads, 3);
        let sparse = SparseHeadLabels::build(&g, &heads, 3);
        assert!(
            sparse.memory_bytes() * 4 < dense.memory_bytes(),
            "sparse {} vs dense {}",
            sparse.memory_bytes(),
            dense.memory_bytes()
        );
    }

    #[test]
    fn label_store_dispatches_both_layouts() {
        let g = gen::path(9);
        let heads = vec![NodeId(0), NodeId(4), NodeId(8)];
        for mut store in [LabelStore::dense(), LabelStore::sparse()] {
            store.rebuild(&g, &heads, 3);
            assert_eq!(store.heads(), &heads[..]);
            assert_eq!(store.bound(), 3);
            assert_eq!(store.node_count(), 9);
            assert_eq!(store.slot(NodeId(4)), Some(1));
            assert_eq!(store.dist(0, NodeId(3)), 3);
            assert_eq!(store.dist(0, NodeId(4)), UNREACHED);
            assert_eq!(store.head_dist(NodeId(4), NodeId(8)), UNREACHED);
            assert_eq!(store.heads_within(1, 3), Vec::<NodeId>::new());
            assert_eq!(store.ball(1).first(), Some(&NodeId(4)));
            let p =
                bfs::lexico_path_from_labels(&g, NodeId(2), NodeId(0), &store.row(0)).unwrap();
            assert_eq!(p.len(), 3);
        }
        assert!(!LabelStore::dense().is_sparse());
        assert!(LabelStore::sparse().is_sparse());
        assert_eq!(LabelStore::dense().layout_name(), "dense");
        assert_eq!(LabelStore::sparse().layout_name(), "sparse");
        assert_eq!(LabelStore::default().layout_name(), "dense");
    }

    /// Random head gain/loss chains: incremental row add/remove must
    /// reproduce a full rebuild bit-for-bit in both layouts — and must
    /// never touch the rebuild counter (the churn engine's
    /// no-rebuild-on-head-set-change contract).
    #[test]
    fn head_row_splice_matches_full_rebuild() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(97);
        for bound in [2u32, 5, u32::MAX] {
            let net = gen::geometric(&gen::GeometricConfig::new(60, 100.0, 6.0), &mut rng);
            let g = &net.graph;
            let mut heads = vec![NodeId(0), NodeId(9), NodeId(25), NodeId(48)];
            let mut dense = HeadLabels::build(g, &heads, bound);
            let mut sparse = SparseHeadLabels::build(g, &heads, bound);
            let (d0, s0) = (dense.rebuild_count(), sparse.rebuild_count());
            for _ in 0..25 {
                if heads.len() > 1 && rng.gen_bool(0.5) {
                    let h = heads[rng.gen_range(0..heads.len())];
                    let pos = heads.binary_search(&h).unwrap();
                    assert_eq!(dense.remove_head_row(h), pos);
                    assert_eq!(sparse.remove_head_row(h), pos);
                    heads.remove(pos);
                } else {
                    let h = loop {
                        let c = NodeId(rng.gen_range(0..60u32));
                        if heads.binary_search(&c).is_err() {
                            break c;
                        }
                    };
                    let pos = heads.binary_search(&h).unwrap_err();
                    assert_eq!(dense.add_head_row(g, h), pos);
                    assert_eq!(sparse.add_head_row(g, h), pos);
                    heads.insert(pos, h);
                }
                let fresh_d = HeadLabels::build(g, &heads, bound);
                let fresh_s = SparseHeadLabels::build(g, &heads, bound);
                assert_eq!(dense.heads(), &heads[..]);
                assert_eq!(sparse.heads(), &heads[..]);
                for (slot, &h) in heads.iter().enumerate() {
                    assert_eq!(dense.slot(h), Some(slot));
                    assert_eq!(sparse.slot(h), Some(slot));
                    assert_eq!(dense.ball(slot), fresh_d.ball(slot), "ball {h:?}");
                    assert_eq!(sparse.ball(slot), fresh_s.ball(slot), "ball {h:?}");
                    for v in g.nodes() {
                        assert_eq!(dense.dist(slot, v), fresh_d.dist(slot, v), "{h:?}->{v:?}");
                        assert_eq!(sparse.dist(slot, v), fresh_s.dist(slot, v), "{h:?}->{v:?}");
                    }
                }
            }
            assert_eq!(dense.rebuild_count(), d0, "dense splices must not rebuild");
            assert_eq!(sparse.rebuild_count(), s0, "sparse splices must not rebuild");
        }
    }

    /// Row splices compose with edge-delta repair and survive an empty
    /// head set in between.
    #[test]
    fn head_row_splice_handles_empty_and_interleaves_with_deltas() {
        use crate::delta::TopologyDelta;
        let mut g = gen::path(8);
        let mut labels = HeadLabels::build(&g, &[NodeId(3)], 2);
        assert_eq!(labels.remove_head_row(NodeId(3)), 0);
        assert!(labels.heads().is_empty());
        assert_eq!(labels.add_head_row(&g, NodeId(5)), 0);
        assert_eq!(labels.add_head_row(&g, NodeId(1)), 0);
        let mut delta = TopologyDelta::new();
        g.remove_edge(NodeId(4), NodeId(5));
        delta.push_removed(NodeId(4), NodeId(5));
        let dirty = labels.dirty_slots(&delta);
        assert_eq!(dirty, vec![1], "only the nearby head is dirty");
        labels.apply_delta(&g, &dirty);
        let fresh = HeadLabels::build(&g, &[NodeId(1), NodeId(5)], 2);
        for slot in 0..2 {
            assert_eq!(labels.ball(slot), fresh.ball(slot));
            for v in g.nodes() {
                assert_eq!(labels.dist(slot, v), fresh.dist(slot, v));
            }
        }
        assert_eq!(labels.rebuild_count(), 1, "only the initial build");
    }

    #[test]
    fn label_store_dispatches_head_row_splices() {
        let g = gen::path(9);
        for mut store in [LabelStore::dense(), LabelStore::sparse()] {
            store.rebuild(&g, &[NodeId(0), NodeId(4), NodeId(8)], 3);
            assert_eq!(store.rebuild_count(), 1);
            assert_eq!(store.remove_head_row(NodeId(4)), 1);
            assert_eq!(store.heads(), &[NodeId(0), NodeId(8)]);
            assert_eq!(store.add_head_row(&g, NodeId(2)), 1);
            assert_eq!(store.heads(), &[NodeId(0), NodeId(2), NodeId(8)]);
            assert_eq!(store.slot(NodeId(2)), Some(1));
            assert_eq!(store.slot(NodeId(8)), Some(2));
            assert_eq!(store.dist(1, NodeId(5)), 3);
            assert_eq!(store.rebuild_count(), 1, "splices are not rebuilds");
        }
    }

    #[test]
    fn label_mode_heuristic_and_parsing() {
        // 16 MiB threshold: h·n·4 strictly above it wants sparse.
        let just_above = (AUTO_SPARSE_THRESHOLD_BYTES / 4) + 1;
        assert!(LabelMode::Auto.wants_sparse(just_above, 1));
        assert!(!LabelMode::Auto.wants_sparse(AUTO_SPARSE_THRESHOLD_BYTES / 4, 1));
        assert!(!LabelMode::Auto.wants_sparse(2000, 500), "paper scale stays dense");
        assert!(LabelMode::Auto.wants_sparse(10_000, 2000), "N=1e4 goes sparse");
        assert!(LabelMode::Sparse.wants_sparse(4, 1));
        assert!(!LabelMode::Dense.wants_sparse(usize::MAX / 8, 2));
        assert_eq!("dense".parse::<LabelMode>().unwrap(), LabelMode::Dense);
        assert_eq!("Sparse".parse::<LabelMode>().unwrap(), LabelMode::Sparse);
        assert_eq!("AUTO".parse::<LabelMode>().unwrap(), LabelMode::Auto);
        assert!("flat".parse::<LabelMode>().is_err());
        assert_eq!(LabelMode::Auto.name(), "auto");
        assert_eq!(LabelMode::Dense.name(), "dense");
        assert_eq!(LabelMode::Sparse.name(), "sparse");
        assert_eq!(
            LabelStore::for_mode(LabelMode::Auto, 10_000, 2000).layout_name(),
            "sparse"
        );
        assert_eq!(
            LabelStore::for_mode(LabelMode::Auto, 200, 50).layout_name(),
            "dense"
        );
    }

    /// Parallel rebuild and delta repair must be bit-identical to the
    /// serial paths for every worker count, in both layouts (balls,
    /// distances, and — transitively — offsets).
    #[test]
    fn parallel_rebuild_and_repair_match_serial() {
        use crate::delta::TopologyDelta;
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(131);
        let net = gen::geometric(&gen::GeometricConfig::new(80, 100.0, 6.0), &mut rng);
        let mut g = net.graph.clone();
        let heads: Vec<NodeId> = (0..16).map(|i| NodeId(i * 5)).collect();
        let bound = 4u32;
        let serial_d = HeadLabels::build(&g, &heads, bound);
        let serial_s = SparseHeadLabels::build(&g, &heads, bound);
        for workers in [2usize, 3, 8] {
            let par = Parallelism::new(workers);
            let mut d = HeadLabels::default();
            d.rebuild_with(&g, &heads, bound, par);
            let mut s = SparseHeadLabels::default();
            s.rebuild_with(&g, &heads, bound, par);
            for slot in 0..heads.len() {
                assert_eq!(d.ball(slot), serial_d.ball(slot), "{workers} workers");
                assert_eq!(s.ball(slot), serial_s.ball(slot), "{workers} workers");
                for v in g.nodes() {
                    assert_eq!(d.dist(slot, v), serial_d.dist(slot, v), "{workers} workers");
                    assert_eq!(s.dist(slot, v), serial_s.dist(slot, v), "{workers} workers");
                }
            }
        }
        // One multi-edge delta, repaired at several worker counts.
        let mut delta = TopologyDelta::new();
        for _ in 0..8 {
            let a = NodeId(rng.gen_range(0..80u32));
            let b = NodeId(rng.gen_range(0..80u32));
            if a == b {
                continue;
            }
            if g.has_edge(a, b) {
                g.remove_edge(a, b);
                delta.push_removed(a, b);
            } else {
                g.add_edge(a, b);
                delta.push_added(a, b);
            }
        }
        delta.normalize();
        let dirty = serial_d.dirty_slots(&delta);
        assert!(dirty.len() >= 2, "need ≥ 2 dirty rows to exercise chunking");
        let mut expect_d = serial_d.clone();
        expect_d.apply_delta(&g, &dirty);
        let mut expect_s = serial_s.clone();
        expect_s.apply_delta(&g, &dirty);
        for workers in [2usize, 3, 8] {
            let par = Parallelism::new(workers);
            let mut d = serial_d.clone();
            d.apply_delta_with(&g, &dirty, par);
            let mut s = serial_s.clone();
            s.apply_delta_with(&g, &dirty, par);
            for slot in 0..heads.len() {
                assert_eq!(d.ball(slot), expect_d.ball(slot), "{workers} workers");
                assert_eq!(s.ball(slot), expect_s.ball(slot), "{workers} workers");
                for v in g.nodes() {
                    assert_eq!(d.dist(slot, v), expect_d.dist(slot, v), "{workers} workers");
                    assert_eq!(s.dist(slot, v), expect_s.dist(slot, v), "{workers} workers");
                }
            }
        }
    }
}
