//! The Li/Hou/Sha Local Minimum Spanning Tree (LMST) rule.
//!
//! LMST is the topology-control algorithm of reference \[9\] of the paper
//! ("Design and analysis of an MST-based topology control algorithm",
//! INFOCOM 2003). Each node `u` independently computes a minimum
//! spanning tree of its *local* graph — its 1-hop neighborhood plus all
//! known edges among those nodes — and keeps only the links to its
//! on-tree neighbors. With pairwise-distinct edge weights both the
//! union (`G0+`) and the intersection (`G0-`) of the per-node
//! selections preserve connectivity; individual selections may be
//! unidirectional (two nodes see different local graphs), which is why
//! Li/Hou/Sha include an optional phase that removes or mirrors
//! asymmetric links.
//!
//! Two layers are provided:
//!
//! * [`on_tree_neighbors`] — the abstract rule: given a center, its
//!   local vertex set and a weight oracle, return the center's on-tree
//!   neighbors. The paper's LMSTGA gateway algorithm instantiates this
//!   with clusterheads as vertices and "virtual links" (shortest-path
//!   hop counts) as weights.
//! * [`topology`] — the original geometric topology control, used here
//!   both as a substrate self-check and as a baseline in ablation
//!   benches.

use crate::geom::Point;
use crate::graph::{Graph, NodeId};
use crate::mst::prim;

/// A totally ordered weight triple `(w, max(id), min(id))`.
///
/// Appending the sorted endpoint IDs makes all edge weights pairwise
/// distinct, which is the precondition of the LMST connectivity and
/// symmetry theorems. This mirrors Li/Hou/Sha's weight function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TieWeight<W> {
    /// Primary weight (hop count for virtual links, scaled distance for
    /// geometric links).
    pub w: W,
    /// Larger endpoint ID.
    pub hi: NodeId,
    /// Smaller endpoint ID.
    pub lo: NodeId,
}

impl<W> TieWeight<W> {
    /// Builds the canonical triple for the edge `(a, b)`.
    pub fn new(w: W, a: NodeId, b: NodeId) -> Self {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        TieWeight { w, hi, lo }
    }
}

/// Computes the LMST rule at `center`.
///
/// `local` is the center's neighborhood (must not contain `center`);
/// `weight(a, b)` returns the weight of the local edge `a—b`, or `None`
/// if `a` and `b` are not adjacent in the local structure. The oracle
/// must be symmetric. Every vertex of `local` must be adjacent to
/// `center` (that is what "neighborhood" means), so the local graph is
/// connected and a spanning tree exists.
///
/// Returns the IDs of `center`'s neighbors **on the local MST**, sorted
/// ascending. These are the links the LMST rule keeps.
///
/// # Panics
/// Panics if `local` contains `center` or if some local vertex has no
/// edge to `center`.
pub fn on_tree_neighbors<W, F>(center: NodeId, local: &[NodeId], weight: F) -> Vec<NodeId>
where
    W: Ord + Copy,
    F: Fn(NodeId, NodeId) -> Option<W>,
{
    assert!(
        !local.contains(&center),
        "local set must exclude the center"
    );
    if local.is_empty() {
        return Vec::new();
    }
    // Local index 0 = center, 1.. = neighbors.
    let verts: Vec<NodeId> = std::iter::once(center)
        .chain(local.iter().copied())
        .collect();
    let n = verts.len();
    let mut adj: Vec<Vec<(u32, W)>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if let Some(w) = weight(verts[i], verts[j]) {
                adj[i].push((j as u32, w));
                adj[j].push((i as u32, w));
            }
        }
    }
    for (j, v) in verts.iter().enumerate().skip(1) {
        assert!(
            adj[0].iter().any(|&(t, _)| t as usize == j),
            "local vertex {v:?} has no edge to center {center:?}"
        );
    }
    let tree = prim(n, &adj, 0);
    let mut out: Vec<NodeId> = tree
        .iter()
        .filter_map(|&(p, c)| {
            if p == 0 {
                Some(verts[c as usize])
            } else if c == 0 {
                Some(verts[p as usize])
            } else {
                None
            }
        })
        .collect();
    out.sort_unstable();
    out
}

/// Reusable buffers for [`on_tree_neighbors_into`].
///
/// The LMSTGA gateway phase runs the LMST rule once per clusterhead per
/// virtual graph per replicate; the heap-based [`on_tree_neighbors`]
/// allocates a local adjacency list and a binary heap every call. This
/// scratch holds a dense weight matrix and Prim working arrays that
/// grow once and are reused, making the hot path allocation-free.
#[derive(Clone, Debug)]
pub struct LmstScratch<W> {
    /// Dense `n × n` local weight matrix (`None` = no local edge).
    wmat: Vec<Option<W>>,
    /// Best known connection to the growing tree: `(weight, parent)`.
    key: Vec<Option<(W, u32)>>,
    in_tree: Vec<bool>,
}

// Manual impl: `derive(Default)` would needlessly require `W: Default`.
impl<W> Default for LmstScratch<W> {
    fn default() -> Self {
        LmstScratch {
            wmat: Vec::new(),
            key: Vec::new(),
            in_tree: Vec::new(),
        }
    }
}

/// Allocation-free variant of [`on_tree_neighbors`]: same contract,
/// same output, but the local MST runs a dense `O(n²)` Prim scan over
/// `scratch` (local neighborhoods are small, so the dense scan also
/// beats the heap) and the result is written into `out` (cleared
/// first).
///
/// Weights must be **pairwise distinct** (the [`TieWeight`] discipline
/// every caller in this workspace follows): the local MST is then
/// unique, so this and the heap-based variant provably select the same
/// links.
///
/// # Panics
/// Panics if `local` contains `center` or if some local vertex has no
/// edge to `center`.
pub fn on_tree_neighbors_into<W, F>(
    scratch: &mut LmstScratch<W>,
    center: NodeId,
    local: &[NodeId],
    weight: F,
    out: &mut Vec<NodeId>,
) where
    W: Ord + Copy,
    F: Fn(NodeId, NodeId) -> Option<W>,
{
    assert!(
        !local.contains(&center),
        "local set must exclude the center"
    );
    out.clear();
    if local.is_empty() {
        return;
    }
    // Local index 0 = center, 1.. = neighbors.
    let vert = |i: usize| if i == 0 { center } else { local[i - 1] };
    let n = local.len() + 1;
    scratch.wmat.clear();
    scratch.wmat.resize(n * n, None);
    scratch.key.clear();
    scratch.key.resize(n, None);
    scratch.in_tree.clear();
    scratch.in_tree.resize(n, false);
    for i in 0..n {
        for j in (i + 1)..n {
            if let Some(w) = weight(vert(i), vert(j)) {
                scratch.wmat[i * n + j] = Some(w);
                scratch.wmat[j * n + i] = Some(w);
            }
        }
    }
    for (j, &v) in local.iter().enumerate() {
        assert!(
            scratch.wmat[j + 1].is_some(),
            "local vertex {v:?} has no edge to center {center:?}"
        );
    }

    // Dense Prim from the center. Distinct weights mean the minimum
    // key is unique at every step, so no tie-breaking is needed.
    scratch.in_tree[0] = true;
    for j in 1..n {
        scratch.key[j] = scratch.wmat[j].map(|w| (w, 0));
    }
    for _ in 1..n {
        let mut best: Option<(W, usize)> = None;
        for j in 1..n {
            if !scratch.in_tree[j] {
                if let Some((w, _)) = scratch.key[j] {
                    if best.is_none_or(|(bw, _)| w < bw) {
                        best = Some((w, j));
                    }
                }
            }
        }
        let Some((_, v)) = best else {
            break; // local graph disconnected — cannot happen, see assert
        };
        scratch.in_tree[v] = true;
        if scratch.key[v].expect("selected vertex has a key").1 == 0 {
            out.push(vert(v));
        }
        for j in 1..n {
            if !scratch.in_tree[j] {
                if let Some(w) = scratch.wmat[v * n + j] {
                    if scratch.key[j].is_none_or(|(kw, _)| w < kw) {
                        scratch.key[j] = Some((w, v as u32));
                    }
                }
            }
        }
    }
    out.sort_unstable();
}

/// How asymmetric selections are reconciled in [`topology`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SymmetryMode {
    /// Keep the link if *either* endpoint selected it (`G0+` in the
    /// LMST paper).
    Union,
    /// Keep the link only if *both* endpoints selected it (`G0-`).
    Intersection,
}

/// Runs geometric LMST topology control.
///
/// Every node computes its local MST over its 1-hop neighbors using
/// squared-Euclidean-distance weights with ID tie-breaking and keeps
/// links to its on-tree neighbors; `mode` reconciles the directed
/// selections (selections can be unidirectional because two nodes see
/// different local graphs). Both modes preserve connectivity of a
/// connected input — the tests assert this.
///
/// # Panics
/// Panics if `positions.len() != g.len()`.
pub fn topology(g: &Graph, positions: &[Point], mode: SymmetryMode) -> Graph {
    assert_eq!(positions.len(), g.len(), "one position per node");
    let mut selected: Vec<Vec<NodeId>> = Vec::with_capacity(g.len());
    for u in g.nodes() {
        let local = g.neighbors(u);
        let keep = on_tree_neighbors(u, local, |a, b| {
            if a == b || !g.has_edge(a, b) {
                return None;
            }
            let d2 = positions[a.index()].distance_sq(&positions[b.index()]);
            // Scale to integer to get a total order without a float
            // wrapper; resolution 1e-9 of the squared distance is far
            // below any realistic coordinate noise, and the ID
            // tie-break handles exact collisions.
            Some(TieWeight::new((d2 * 1e9) as u128, a, b))
        });
        selected.push(keep);
    }
    let mut out = Graph::new(g.len());
    for u in g.nodes() {
        for &v in &selected[u.index()] {
            if out.has_edge(u, v) {
                continue;
            }
            let reciprocal = selected[v.index()].contains(&u);
            let keep = match mode {
                SymmetryMode::Union => true,
                SymmetryMode::Intersection => reciprocal,
            };
            if keep {
                out.add_edge(u, v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity;

    #[test]
    fn tie_weight_orders_endpoints() {
        let w = TieWeight::new(5u32, NodeId(9), NodeId(2));
        assert_eq!(w.lo, NodeId(2));
        assert_eq!(w.hi, NodeId(9));
        let a = TieWeight::new(5u32, NodeId(1), NodeId(2));
        let b = TieWeight::new(5u32, NodeId(1), NodeId(3));
        assert!(a < b);
        let c = TieWeight::new(4u32, NodeId(8), NodeId(9));
        assert!(c < a);
    }

    #[test]
    fn scratch_variant_matches_heap_variant() {
        // Random dense local neighborhoods with distinct TieWeights:
        // the unique local MST must come out identical from the
        // heap-based and the scratch-based dense implementations.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut scratch = LmstScratch::default();
        let mut out = Vec::new();
        for trial in 0..50 {
            let p = 1 + (trial % 9);
            let center = NodeId(0);
            let local: Vec<NodeId> = (1..=p as u32).map(NodeId).collect();
            // Random symmetric weights; edges to the center always
            // exist, other pairs with probability 1/2.
            let mut pairs = std::collections::BTreeMap::new();
            for i in 0..=p as u32 {
                for j in (i + 1)..=p as u32 {
                    if i == 0 || rng.gen_bool(0.5) {
                        pairs.insert((i, j), rng.gen_range(1u32..1000));
                    }
                }
            }
            let weight = |a: NodeId, b: NodeId| {
                let key = if a < b { (a.0, b.0) } else { (b.0, a.0) };
                pairs.get(&key).map(|&w| TieWeight::new(w, a, b))
            };
            let heap = on_tree_neighbors(center, &local, weight);
            on_tree_neighbors_into(&mut scratch, center, &local, weight, &mut out);
            assert_eq!(heap, out, "trial {trial}");
        }
    }

    #[test]
    fn on_tree_neighbors_star_keeps_all() {
        // Center 0, leaves 1..=3, no leaf-leaf edges: local MST is the
        // star itself, every leaf is on-tree.
        let leaves = [NodeId(1), NodeId(2), NodeId(3)];
        let keep = on_tree_neighbors(NodeId(0), &leaves, |a, b| {
            (a == NodeId(0) || b == NodeId(0)).then(|| TieWeight::new(1u32, a, b))
        });
        assert_eq!(keep, leaves);
    }

    #[test]
    fn on_tree_neighbors_drops_redundant_long_link() {
        // Triangle 0-1 (w1), 1-2 (w2), 0-2 (w10): the MST drops 0-2, so
        // the center keeps only node 1.
        let local = [NodeId(1), NodeId(2)];
        let keep = on_tree_neighbors(NodeId(0), &local, |a, b| {
            let (a, b) = if a < b { (a, b) } else { (b, a) };
            let w = match (a.0, b.0) {
                (0, 1) => 1u32,
                (1, 2) => 2,
                (0, 2) => 10,
                _ => return None,
            };
            Some(TieWeight::new(w, a, b))
        });
        assert_eq!(keep, vec![NodeId(1)]);
    }

    #[test]
    fn on_tree_neighbors_empty_local() {
        let keep = on_tree_neighbors(NodeId(0), &[], |_, _| -> Option<u32> { unreachable!() });
        assert!(keep.is_empty());
    }

    #[test]
    #[should_panic(expected = "exclude the center")]
    fn center_in_local_panics() {
        on_tree_neighbors(NodeId(0), &[NodeId(0)], |_, _| Some(1u32));
    }

    #[test]
    #[should_panic(expected = "no edge to center")]
    fn missing_center_edge_panics() {
        on_tree_neighbors(NodeId(0), &[NodeId(1)], |_, _| -> Option<u32> { None });
    }

    fn square_topology() -> (Graph, Vec<Point>) {
        // Unit square + both diagonals reachable: LMST should drop the
        // diagonals (longest links).
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3), (0, 2), (1, 3)]);
        (g, positions)
    }

    #[test]
    fn geometric_lmst_drops_diagonals() {
        let (g, pos) = square_topology();
        let t = topology(&g, &pos, SymmetryMode::Intersection);
        assert!(connectivity::is_connected(&t));
        assert!(!t.has_edge(NodeId(0), NodeId(2)));
        assert!(!t.has_edge(NodeId(1), NodeId(3)));
        assert_eq!(t.edge_count(), 3); // spanning tree of the square rim
    }

    #[test]
    fn intersection_is_subset_of_union() {
        let (g, pos) = square_topology();
        let a = topology(&g, &pos, SymmetryMode::Union);
        let b = topology(&g, &pos, SymmetryMode::Intersection);
        for (u, v) in b.edges() {
            assert!(a.has_edge(u, v));
        }
        assert!(connectivity::is_connected(&a));
        assert!(connectivity::is_connected(&b));
    }

    #[test]
    fn lmst_preserves_connectivity_on_random_geometric_graphs() {
        use crate::gen::{self, GeometricConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        for seed in 0..5 {
            let _ = seed;
            let net = gen::geometric(&GeometricConfig::new(60, 100.0, 8.0), &mut rng);
            let t = topology(&net.graph, &net.positions, SymmetryMode::Intersection);
            assert!(connectivity::is_connected(&t), "LMST broke connectivity");
            assert!(t.edge_count() <= net.graph.edge_count());
            // Li/Hou/Sha Lemma: LMST node degree is at most 6.
            for u in t.nodes() {
                assert!(t.degree(u) <= 6, "degree bound violated at {u:?}");
            }
        }
    }
}
