//! Masked and induced subgraph views.
//!
//! The maintenance rules of §3.3 and the energy experiments operate on
//! a network minus its dead nodes while keeping node IDs stable
//! (IDs are election priorities, so re-indexing would change the
//! algorithm's behavior). [`Masked`] presents exactly that view
//! without copying the graph: a node set is switched off, and all
//! traversals see empty adjacency for masked nodes.

use crate::bfs::Adjacency;
use crate::graph::NodeId;

/// A read-only view of `G` with some nodes masked out.
///
/// Masked nodes keep their IDs but expose no edges, and no edge
/// *toward* a masked node is visible. Implements [`Adjacency`], so
/// BFS, connectivity, clustering and the whole pipeline run on the
/// view directly.
pub struct Masked<'g, G> {
    inner: &'g G,
    alive: Vec<bool>,
    filtered: Vec<Vec<NodeId>>,
}

impl<'g, G: Adjacency> Masked<'g, G> {
    /// Creates a view with `dead` masked out.
    pub fn without(inner: &'g G, dead: &[NodeId]) -> Self {
        let n = inner.node_count();
        let mut alive = vec![true; n];
        for &d in dead {
            alive[d.index()] = false;
        }
        // Pre-filter adjacency once; views are built rarely and
        // traversed many times.
        let filtered = (0..n as u32)
            .map(|u| {
                let u = NodeId(u);
                if !alive[u.index()] {
                    return Vec::new();
                }
                inner
                    .adj(u)
                    .iter()
                    .copied()
                    .filter(|v| alive[v.index()])
                    .collect()
            })
            .collect();
        Masked {
            inner,
            alive,
            filtered,
        }
    }

    /// Whether `u` is visible in this view.
    pub fn is_alive(&self, u: NodeId) -> bool {
        self.alive[u.index()]
    }

    /// IDs of all visible nodes, ascending.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        (0..self.inner.node_count() as u32)
            .map(NodeId)
            .filter(|&u| self.alive[u.index()])
            .collect()
    }

    /// Number of visible nodes.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }
}

impl<G: Adjacency> Adjacency for Masked<'_, G> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }
    fn adj(&self, u: NodeId) -> &[NodeId] {
        &self.filtered[u.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;
    use crate::gen;
    use crate::graph::Graph;

    #[test]
    fn masked_node_is_isolated() {
        let g = gen::path(5);
        let m = Masked::without(&g, &[NodeId(2)]);
        assert!(m.adj(NodeId(2)).is_empty());
        assert_eq!(m.adj(NodeId(1)), &[NodeId(0)]);
        assert_eq!(m.adj(NodeId(3)), &[NodeId(4)]);
        assert!(m.is_alive(NodeId(0)));
        assert!(!m.is_alive(NodeId(2)));
        assert_eq!(m.alive_count(), 4);
        assert_eq!(
            m.alive_nodes(),
            vec![NodeId(0), NodeId(1), NodeId(3), NodeId(4)]
        );
    }

    #[test]
    fn bfs_respects_mask() {
        let g = gen::path(5);
        let m = Masked::without(&g, &[NodeId(2)]);
        let d = bfs::distances(&m, NodeId(0));
        assert_eq!(d[1], 1);
        assert_eq!(d[3], bfs::UNREACHED);
    }

    #[test]
    fn empty_mask_is_transparent() {
        let g = gen::grid(3, 3);
        let m = Masked::without(&g, &[]);
        for u in g.nodes() {
            assert_eq!(m.adj(u), g.neighbors(u));
        }
        assert_eq!(m.node_count(), 9);
    }

    #[test]
    fn clustering_runs_on_masked_view() {
        // The whole pipeline must accept a view: mask the middle of a
        // path and cluster both halves.
        let g = gen::path(7);
        let m = Masked::without(&g, &[NodeId(3)]);
        let alive = m.alive_nodes();
        // Components {0,1,2} and {4,5,6} are separately clusterable.
        assert!(crate::connectivity::is_subset_connected(
            &m,
            &[NodeId(0), NodeId(1), NodeId(2)]
        ));
        assert!(!crate::connectivity::is_subset_connected(&m, &alive));
    }

    #[test]
    fn mask_on_empty_graph() {
        let g = Graph::new(0);
        let m = Masked::without(&g, &[]);
        assert_eq!(m.alive_count(), 0);
    }
}
