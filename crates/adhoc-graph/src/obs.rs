//! Zero-dependency observability core: counters, power-of-two latency
//! histograms, span timers, and a bounded structured event ring behind
//! one cloneable [`Metrics`] handle.
//!
//! Everything in this module is hand-rolled in the spirit of the
//! workspace's vendored shims — no external metrics crate, no unsafe,
//! no background thread. The design splits cold registration from hot
//! recording:
//!
//! * **Registration** (`metrics.counter("name")`,
//!   `metrics.histogram("name")`) takes a short mutex on a
//!   `BTreeMap<String, Arc<..>>` and hands back a lock-free handle.
//!   Call it once per site, outside loops.
//! * **Recording** (`counter.add(n)`, `hist.record(v)`, a [`Span`]
//!   drop) is a relaxed atomic op — safe from any thread, including
//!   [`par::scoped_chunks`](crate::par::scoped_chunks) workers, with
//!   no lock and no allocation.
//! * **Disabled** is the default everywhere: [`Metrics::disabled`] is
//!   a `const fn` producing a handle whose every operation
//!   early-returns on one `Option` branch — no clock read, no lock,
//!   no allocation. Hot paths pay one predictable branch.
//!
//! # Determinism contract
//!
//! Count-type metrics (counters, non-timing histograms, events) must
//! be **bit-identical for any worker count**: counters are commutative
//! atomic sums over a worker-independent increment set, histogram
//! bucket tallies are commutative, and events are only recorded from
//! single-threaded orchestration points. Duration metrics (`*_ns`
//! histograms fed by [`Span`]s) are explicitly exempt — wall-clock is
//! never deterministic. [`MetricsSnapshot::deterministic_fingerprint`]
//! hashes exactly the deterministic subset, and the
//! `metrics_determinism` proptests pin it across worker counts.
//!
//! # Naming conventions
//!
//! Dotted lowercase paths, subsystem first (`reconcile.observe_ns`,
//! `query.hops`, `labels.rows_swept`). Timing histograms end in `_ns`
//! and hold nanoseconds; everything else is a dimensionless count.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of histogram buckets: one per possible `u64` bit width,
/// plus bucket 0 for the value zero.
const HIST_BUCKETS: usize = 65;

/// Default capacity of the structured event ring.
const DEFAULT_EVENT_CAPACITY: usize = 4096;

// ---------------------------------------------------------------------
// Ring
// ---------------------------------------------------------------------

/// A capacity-bounded append log: stores the first `capacity` items,
/// counts (but does not store) everything past the bound.
///
/// This generalizes the capacity-bounded design `adhoc-sim`'s `Trace`
/// pioneered — recording a large run can never exhaust memory, and the
/// overflow is observable instead of silent. The default ring has
/// capacity 0 (counts everything as dropped), matching `Trace`'s
/// `Default`.
#[derive(Clone, Debug)]
pub struct Ring<T> {
    items: Vec<T>,
    capacity: usize,
    dropped: u64,
}

/// A zero-capacity ring (stores nothing, counts everything dropped) —
/// deliberately not derived, so `Ring<T>: Default` holds without
/// requiring `T: Default`.
impl<T> Default for Ring<T> {
    fn default() -> Self {
        Ring::new(0)
    }
}

impl<T> Ring<T> {
    /// Creates a ring storing at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Ring {
            items: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an item, or counts it as dropped when full. Returns
    /// whether the item was stored.
    pub fn push(&mut self, item: T) -> bool {
        if self.items.len() < self.capacity {
            self.items.push(item);
            true
        } else {
            self.dropped += 1;
            false
        }
    }

    /// Stored items, in insertion order.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items not stored because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Rebuilds a ring from its persisted parts (for deserializers of
    /// types embedding a ring, e.g. `adhoc-sim`'s `Trace`).
    pub fn from_parts(items: Vec<T>, capacity: usize, dropped: u64) -> Self {
        Ring {
            items,
            capacity,
            dropped,
        }
    }
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

/// A log-bucketed (HDR-style power-of-two) histogram of `u64` samples.
///
/// Bucket `i > 0` holds samples of bit width `i` (the range
/// `[2^(i-1), 2^i - 1]`); bucket 0 holds zeros. Recording is one
/// relaxed `fetch_add` plus a `fetch_max` — lock-free and commutative,
/// so bucket tallies are deterministic for any worker count. Quantiles
/// are read from the cumulative bucket walk (reported at the bucket's
/// upper bound, capped at the exact observed max), which bounds the
/// relative quantile error at 2x — the right trade for latency
/// distributions spanning nanoseconds to seconds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0 < q <= 1`) as the upper bound of the
    /// bucket holding the target rank, capped at the observed max.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                let bound = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return bound.min(self.max());
            }
        }
        self.max()
    }

    /// Snapshot of the summary statistics under `name`.
    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

// ---------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------

/// Lock-free counter handle. A no-op when resolved from a disabled
/// [`Metrics`].
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `v`.
    pub fn add(&self, v: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Whether this handle discards everything (disabled metrics).
    pub fn is_noop(&self) -> bool {
        self.0.is_none()
    }
}

/// Lock-free histogram handle. A no-op when resolved from a disabled
/// [`Metrics`].
#[derive(Clone, Debug, Default)]
pub struct Hist(Option<Arc<Histogram>>);

impl Hist {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// Starts a span whose drop records elapsed nanoseconds here.
    /// Disabled handles never read the clock.
    pub fn start(&self) -> Span {
        Span(self.0.as_ref().map(|h| (Arc::clone(h), Instant::now())))
    }

    /// Whether this handle discards everything (disabled metrics).
    pub fn is_noop(&self) -> bool {
        self.0.is_none()
    }
}

/// A drop-guard timer: created by [`Metrics::span`] or
/// [`Hist::start`], records elapsed wall-clock nanoseconds into its
/// histogram when dropped (or explicitly via [`Span::finish`]).
/// Span-fed histograms are timing metrics — exempt from the
/// determinism contract.
#[derive(Debug, Default)]
pub struct Span(Option<(Arc<Histogram>, Instant)>);

impl Span {
    /// Stops the timer now and records the elapsed nanoseconds
    /// (dropping the span does the same; this just makes the stop
    /// point explicit).
    pub fn finish(mut self) {
        self.record_elapsed();
    }

    fn record_elapsed(&mut self) {
        if let Some((h, t)) = self.0.take() {
            h.record(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record_elapsed();
    }
}

// ---------------------------------------------------------------------
// Registry + Metrics handle
// ---------------------------------------------------------------------

/// One structured event in the bounded ring: a name plus one integer
/// payload (e.g. `("reconcile.rebuild_fallback", step)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Dotted event name.
    pub name: String,
    /// Integer payload (step index, count, epoch — site-defined).
    pub value: u64,
}

#[derive(Debug)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    events: Mutex<Ring<Event>>,
}

/// The cloneable observability handle threaded through the stack.
///
/// Either **enabled** (wrapping a shared thread-safe registry) or
/// **disabled** (the `const` default — every operation early-returns
/// on one branch; see the module docs). Clones share the registry.
#[derive(Clone, Debug)]
pub struct Metrics {
    inner: Option<Arc<Registry>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::disabled()
    }
}

impl Metrics {
    /// The disabled handle: `const`, allocation-free, lock-free —
    /// every recording operation is a single `Option` branch.
    pub const fn disabled() -> Metrics {
        Metrics { inner: None }
    }

    /// An enabled handle with the default event-ring capacity.
    pub fn enabled() -> Metrics {
        Metrics::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An enabled handle whose event ring stores at most `capacity`
    /// events (further events are counted as dropped).
    pub fn with_event_capacity(capacity: usize) -> Metrics {
        Metrics {
            inner: Some(Arc::new(Registry {
                counters: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                events: Mutex::new(Ring::new(capacity)),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolves (registering on first use) the counter `name`,
    /// returning a lock-free handle. Cold: takes a short mutex — hoist
    /// out of hot loops.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|r| {
            let mut map = r.counters.lock().expect("obs counter registry poisoned");
            Arc::clone(
                map.entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        }))
    }

    /// Resolves (registering on first use) the histogram `name`,
    /// returning a lock-free handle. Cold, like [`Self::counter`].
    pub fn histogram(&self, name: &str) -> Hist {
        Hist(self.inner.as_ref().map(|r| {
            let mut map = r
                .histograms
                .lock()
                .expect("obs histogram registry poisoned");
            Arc::clone(map.entry(name.to_string()).or_insert_with(Default::default))
        }))
    }

    /// One-shot counter add (resolve + add). For orchestration points,
    /// not per-item loops.
    pub fn add(&self, name: &str, v: u64) {
        if self.is_enabled() {
            self.counter(name).add(v);
        }
    }

    /// One-shot counter increment.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// One-shot histogram record (resolve + record).
    pub fn record(&self, name: &str, v: u64) {
        if self.is_enabled() {
            self.histogram(name).record(v);
        }
    }

    /// Starts a drop-guard timer feeding the histogram `name` (which
    /// should end in `_ns`). Disabled handles never read the clock.
    pub fn span(&self, name: &str) -> Span {
        if self.is_enabled() {
            self.histogram(name).start()
        } else {
            Span(None)
        }
    }

    /// Appends a structured event to the bounded ring. Only call from
    /// single-threaded orchestration points — event order is part of
    /// the determinism contract.
    pub fn event(&self, name: &str, value: u64) {
        if let Some(r) = &self.inner {
            r.events.lock().expect("obs event ring poisoned").push(Event {
                name: name.to_string(),
                value,
            });
        }
    }

    /// A point-in-time snapshot of every registered metric. Returns
    /// the empty snapshot for a disabled handle.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(r) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let counters = r
            .counters
            .lock()
            .expect("obs counter registry poisoned")
            .iter()
            .map(|(name, v)| CounterSnapshot {
                name: name.clone(),
                value: v.load(Ordering::Relaxed),
            })
            .collect();
        let histograms = r
            .histograms
            .lock()
            .expect("obs histogram registry poisoned")
            .iter()
            .map(|(name, h)| h.snapshot(name))
            .collect();
        let events = r.events.lock().expect("obs event ring poisoned");
        MetricsSnapshot {
            counters,
            histograms,
            events: events
                .items()
                .iter()
                .map(|e| EventSnapshot {
                    name: e.name.clone(),
                    value: e.value,
                })
                .collect(),
            events_dropped: events.dropped(),
        }
    }
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// One counter's value at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Dotted counter name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One histogram's summary statistics at snapshot time. Quantiles are
/// power-of-two bucket upper bounds capped at the exact max (see
/// [`Histogram`]).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Dotted histogram name (`_ns` suffix marks timing data).
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples (nanoseconds for `_ns` histograms).
    pub sum: u64,
    /// Exact largest sample.
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One stored event at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventSnapshot {
    /// Dotted event name.
    pub name: String,
    /// Integer payload.
    pub value: u64,
}

/// A serializable point-in-time view of a [`Metrics`] registry —
/// rendered as JSON (`--metrics=FILE`, bench `metrics` sections) or as
/// a human text table ([`MetricsSnapshot::text_table`]).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, name-sorted.
    pub counters: Vec<CounterSnapshot>,
    /// All histograms, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
    /// Stored structured events, in record order.
    pub events: Vec<EventSnapshot>,
    /// Events dropped by the bounded ring.
    pub events_dropped: u64,
}

impl MetricsSnapshot {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.events.is_empty()
    }

    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// FNV-1a fingerprint of the **deterministic subset**: counters,
    /// histograms not ending in `_ns`, events, and the drop count.
    /// Identical for any worker count under the module's determinism
    /// contract; timing histograms are excluded.
    pub fn deterministic_fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        let mix_str = |s: &str, mix: &mut dyn FnMut(u64)| {
            for b in s.bytes() {
                mix(u64::from(b));
            }
            mix(s.len() as u64);
        };
        for c in &self.counters {
            mix_str(&c.name, &mut mix);
            mix(c.value);
        }
        for hist in self.histograms.iter().filter(|h| !h.name.ends_with("_ns")) {
            mix_str(&hist.name, &mut mix);
            mix(hist.count);
            mix(hist.sum);
            mix(hist.max);
            mix(hist.p50);
            mix(hist.p90);
            mix(hist.p99);
        }
        for e in &self.events {
            mix_str(&e.name, &mut mix);
            mix(e.value);
        }
        mix(self.events_dropped);
        h
    }

    /// Renders an aligned human-readable table (the `--metrics` CLI
    /// surface without a file argument).
    pub fn text_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("(no metrics recorded)\n");
            return out;
        }
        let name_w = self
            .counters
            .iter()
            .map(|c| c.name.len())
            .chain(self.histograms.iter().map(|h| h.name.len()))
            .max()
            .unwrap_or(4)
            .max(4);
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<name_w$} {:>14}", "counter", "value");
            for c in &self.counters {
                let _ = writeln!(out, "{:<name_w$} {:>14}", c.name, c.value);
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "{:<name_w$} {:>10} {:>14} {:>12} {:>12} {:>12} {:>12}",
                "histogram", "count", "mean", "p50", "p90", "p99", "max"
            );
            for h in &self.histograms {
                let _ = writeln!(
                    out,
                    "{:<name_w$} {:>10} {:>14.1} {:>12} {:>12} {:>12} {:>12}",
                    h.name,
                    h.count,
                    h.mean(),
                    h.p50,
                    h.p90,
                    h.p99,
                    h.max
                );
            }
        }
        if !self.events.is_empty() || self.events_dropped > 0 {
            let _ = writeln!(
                out,
                "events: {} stored, {} dropped",
                self.events.len(),
                self.events_dropped
            );
            for e in &self.events {
                let _ = writeln!(out, "  {} = {}", e.name, e.value);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The disabled handle is constructible in const context — the
    /// compile-time pin that it allocates nothing.
    const DISABLED: Metrics = Metrics::disabled();

    #[test]
    fn disabled_path_is_a_noop() {
        assert!(!DISABLED.is_enabled());
        // Every resolved handle is a no-op: no registry, no lock, no
        // allocation behind it.
        assert!(DISABLED.counter("x").is_noop());
        assert!(DISABLED.histogram("x").is_noop());
        DISABLED.add("x", 5);
        DISABLED.record("y", 5);
        DISABLED.event("z", 1);
        {
            let _span = DISABLED.span("t_ns");
        }
        let snap = DISABLED.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.events_dropped, 0);
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = Metrics::enabled();
        let c = m.counter("a.count");
        c.add(3);
        c.inc();
        m.add("a.count", 1);
        m.inc("b.count");
        let snap = m.snapshot();
        assert_eq!(snap.counter("a.count"), Some(5));
        assert_eq!(snap.counter("b.count"), Some(1));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        // p50 rank 50 lands in bucket [32, 63] -> bound 63.
        assert_eq!(h.quantile(0.5), 63);
        // p99 rank 99 lands in bucket [64, 127], capped at max 100.
        assert_eq!(h.quantile(0.99), 100);
        assert_eq!(h.quantile(1.0), 100);
    }

    #[test]
    fn histogram_zero_and_extremes() {
        let h = Histogram::default();
        h.record(0);
        assert_eq!(h.quantile(0.5), 0);
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        let empty = Histogram::default();
        assert_eq!(empty.quantile(0.99), 0);
    }

    #[test]
    fn histograms_are_commutative_across_threads() {
        let m = Metrics::enabled();
        let h = m.histogram("par.samples");
        let vals: Vec<u64> = (0..1000).map(|i| i * 7 % 97).collect();
        crate::par::scoped_chunks(4, vals.len(), &vals[..], |_, _, chunk: &[u64]| {
            for &v in chunk {
                h.record(v);
            }
        });
        let serial = Histogram::default();
        for &v in &vals {
            serial.record(v);
        }
        let snap = m.snapshot();
        let got = snap.histogram("par.samples").expect("recorded");
        assert_eq!(got.count, serial.count());
        assert_eq!(got.sum, serial.sum());
        assert_eq!(got.max, serial.max());
        assert_eq!(got.p50, serial.quantile(0.5));
    }

    #[test]
    fn span_records_nonzero_nanos() {
        let m = Metrics::enabled();
        {
            let _s = m.span("work_ns");
            std::hint::black_box(1 + 1);
        }
        m.histogram("work_ns").start().finish();
        let snap = m.snapshot();
        let h = snap.histogram("work_ns").expect("span recorded");
        assert_eq!(h.count, 2);
    }

    #[test]
    fn event_ring_bounds_and_counts() {
        let m = Metrics::with_event_capacity(2);
        for i in 0..5 {
            m.event("e", i);
        }
        let snap = m.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events_dropped, 3);
        assert_eq!(snap.events[0].value, 0);
    }

    #[test]
    fn ring_generic_behavior() {
        let mut r: Ring<u32> = Ring::new(3);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.items(), &[0, 1, 2]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.capacity(), 3);
        assert!(!r.is_empty());
        let d: Ring<u32> = Ring::default();
        assert_eq!(d.capacity(), 0);
        let rebuilt = Ring::from_parts(vec![1u32, 2], 4, 7);
        assert_eq!(rebuilt.items(), &[1, 2]);
        assert_eq!(rebuilt.dropped(), 7);
    }

    #[test]
    fn fingerprint_ignores_timing_histograms() {
        let a = Metrics::enabled();
        let b = Metrics::enabled();
        for m in [&a, &b] {
            m.add("c", 2);
            m.record("hops", 5);
            m.event("e", 1);
        }
        // Different timing data must not change the fingerprint.
        a.record("t_ns", 10);
        b.record("t_ns", 999_999);
        assert_eq!(
            a.snapshot().deterministic_fingerprint(),
            b.snapshot().deterministic_fingerprint()
        );
        // But a diverging counter must.
        b.add("c", 1);
        assert_ne!(
            a.snapshot().deterministic_fingerprint(),
            b.snapshot().deterministic_fingerprint()
        );
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let m = Metrics::enabled();
        m.add("a", 1);
        m.record("h", 2);
        m.event("e", 3);
        let snap = m.snapshot();
        let v = serde::Serialize::to_value(&snap);
        let back: MetricsSnapshot = serde::Deserialize::from_value(&v).expect("roundtrip");
        assert_eq!(back, snap);
        assert!(v.get("counters").is_some());
        assert!(v.get("histograms").is_some());
        assert!(v.get("events_dropped").is_some());
    }

    #[test]
    fn text_table_renders() {
        let m = Metrics::enabled();
        m.add("reconcile.count", 3);
        m.record("query.hops", 7);
        m.event("plan.publish", 1);
        let table = m.snapshot().text_table();
        assert!(table.contains("reconcile.count"));
        assert!(table.contains("query.hops"));
        assert!(table.contains("plan.publish"));
        assert!(Metrics::disabled().snapshot().text_table().contains("no metrics"));
    }
}
