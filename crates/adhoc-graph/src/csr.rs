//! Compressed sparse row snapshot of a graph.

use crate::bfs::Adjacency;
use crate::graph::{Graph, NodeId};

/// A read-only compressed-sparse-row copy of a [`Graph`].
///
/// The Monte-Carlo harness traverses each generated network many times
/// (one BFS per clusterhead per algorithm). `Csr` packs the adjacency
/// into two flat arrays so those traversals walk contiguous memory
/// instead of chasing one heap allocation per node.
#[derive(Clone, Debug)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl Csr {
    /// Snapshots `g`. Neighbor order (sorted ascending) is preserved, so
    /// every deterministic traversal gives identical results on either
    /// representation.
    pub fn from_graph(g: &Graph) -> Self {
        let mut offsets = Vec::with_capacity(g.len() + 1);
        let mut targets = Vec::with_capacity(2 * g.edge_count());
        offsets.push(0);
        for u in g.nodes() {
            targets.extend_from_slice(g.neighbors(u));
            offsets.push(targets.len() as u32);
        }
        Csr { offsets, targets }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Sorted neighbor list of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let lo = self.offsets[u.index()] as usize;
        let hi = self.offsets[u.index() + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u.index() + 1] - self.offsets[u.index()]) as usize
    }

    /// Iterator over all node IDs.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len() as u32).map(NodeId)
    }
}

impl Adjacency for Csr {
    #[inline]
    fn node_count(&self) -> usize {
        self.len()
    }
    #[inline]
    fn adj(&self, u: NodeId) -> &[NodeId] {
        self.neighbors(u)
    }
}

impl From<&Graph> for Csr {
    fn from(g: &Graph) -> Self {
        Csr::from_graph(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;

    #[test]
    fn snapshot_preserves_adjacency() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 3), (1, 2), (2, 4), (3, 4)]);
        let c = Csr::from_graph(&g);
        assert_eq!(c.len(), g.len());
        assert_eq!(c.edge_count(), g.edge_count());
        for u in g.nodes() {
            assert_eq!(c.neighbors(u), g.neighbors(u));
            assert_eq!(c.degree(u), g.degree(u));
        }
    }

    #[test]
    fn empty_and_edgeless() {
        let c = Csr::from_graph(&Graph::new(0));
        assert!(c.is_empty());
        let c = Csr::from_graph(&Graph::new(3));
        assert_eq!(c.len(), 3);
        assert_eq!(c.neighbors(NodeId(1)), &[]);
    }

    #[test]
    fn bfs_identical_on_both_representations() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 5), (5, 4)]);
        let c = Csr::from_graph(&g);
        for src in g.nodes() {
            assert_eq!(bfs::distances(&g, src), bfs::distances(&c, src));
        }
    }

    #[test]
    fn from_ref_conversion() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let c: Csr = (&g).into();
        assert_eq!(c.neighbors(NodeId(0)), &[NodeId(1)]);
    }
}
