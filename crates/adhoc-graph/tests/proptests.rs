//! Property-based tests for the graph substrate.

use adhoc_graph::bfs::{self, BfsScratch, UNREACHED};
use adhoc_graph::gen;
use adhoc_graph::graph::{Graph, NodeId};
use adhoc_graph::lmst::{self, SymmetryMode, TieWeight};
use adhoc_graph::mst::{self, WeightedEdge};
use adhoc_graph::unionfind::UnionFind;
use adhoc_graph::{connectivity, paths, Csr};
use proptest::prelude::*;

/// Strategy: a random simple graph as (n, dedup'd edge list).
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n)
        .prop_flat_map(|n| {
            let edge = (0..n as u32, 0..n as u32);
            (Just(n), proptest::collection::vec(edge, 0..n * 3))
        })
        .prop_map(|(n, raw)| {
            let mut g = Graph::new(n);
            for (a, b) in raw {
                if a != b && !g.has_edge(NodeId(a), NodeId(b)) {
                    g.add_edge(NodeId(a), NodeId(b));
                }
            }
            g
        })
}

/// Strategy: a *connected* random graph (random tree + extra edges).
fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n)
        .prop_flat_map(|n| {
            let parents: Vec<_> = (1..n).map(|i| 0..i as u32).collect();
            let extra = (0..n as u32, 0..n as u32);
            (Just(n), parents, proptest::collection::vec(extra, 0..n * 2))
        })
        .prop_map(|(n, parents, extra)| {
            let mut g = Graph::new(n);
            for (i, p) in parents.into_iter().enumerate() {
                g.add_edge(NodeId((i + 1) as u32), NodeId(p));
            }
            for (a, b) in extra {
                if a != b && !g.has_edge(NodeId(a), NodeId(b)) {
                    g.add_edge(NodeId(a), NodeId(b));
                }
            }
            g
        })
}

proptest! {
    #[test]
    fn invariants_hold_for_random_graphs(g in arb_graph(40)) {
        prop_assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn bfs_distance_is_symmetric(g in arb_graph(30)) {
        let n = g.len() as u32;
        let mut dists = Vec::new();
        for u in 0..n {
            dists.push(bfs::distances(&g, NodeId(u)));
        }
        for (u, du) in dists.iter().enumerate() {
            for (v, dv) in dists.iter().enumerate() {
                prop_assert_eq!(du[v], dv[u]);
            }
        }
    }

    #[test]
    fn bfs_distance_satisfies_triangle_on_edges(g in arb_graph(30)) {
        // |d(s,u) - d(s,v)| <= 1 for every edge (u,v) reachable from s.
        let d = bfs::distances(&g, NodeId(0));
        for (u, v) in g.edges() {
            let (du, dv) = (d[u.index()], d[v.index()]);
            if du != UNREACHED && dv != UNREACHED {
                prop_assert!(du.abs_diff(dv) <= 1);
            } else {
                prop_assert_eq!(du, dv); // both unreachable
            }
        }
    }

    #[test]
    fn csr_equals_graph_traversals(g in arb_graph(30)) {
        let c = Csr::from_graph(&g);
        for u in g.nodes() {
            prop_assert_eq!(bfs::distances(&g, u), bfs::distances(&c, u));
        }
    }

    #[test]
    fn lexico_path_is_shortest_and_valid(g in arb_connected_graph(25)) {
        let n = g.len() as u32;
        let dist0 = bfs::distances(&g, NodeId(0));
        for v in 1..n {
            let p = bfs::lexico_shortest_path(&g, NodeId(0), NodeId(v), u32::MAX)
                .expect("connected");
            prop_assert!(paths::is_valid_path(&g, &p));
            prop_assert_eq!(paths::hop_count(&p), dist0[v as usize]);
            prop_assert_eq!(p[0], NodeId(0));
            prop_assert_eq!(*p.last().unwrap(), NodeId(v));
        }
    }

    #[test]
    fn lexico_path_is_minimal_node_sequence(g in arb_connected_graph(15)) {
        // Among shortest paths found by BFS-tree extraction the
        // canonical path must be lexicographically <= the tree path.
        let mut s = BfsScratch::new(g.len());
        for v in 1..g.len() as u32 {
            s.run(&g, NodeId(0), u32::MAX);
            let tree_path = s.path_to(NodeId(v)).unwrap();
            let canon = bfs::lexico_shortest_path(&g, NodeId(0), NodeId(v), u32::MAX).unwrap();
            prop_assert!(canon <= tree_path, "canonical {canon:?} > tree {tree_path:?}");
        }
    }

    #[test]
    fn khop_neighborhood_matches_distance_definition(g in arb_graph(25), k in 0u32..5) {
        let src = NodeId(0);
        let d = bfs::distances(&g, src);
        let expect: Vec<NodeId> = (0..g.len() as u32)
            .map(NodeId)
            .filter(|v| *v != src && d[v.index()] != UNREACHED && d[v.index()] <= k)
            .collect();
        prop_assert_eq!(bfs::khop_neighborhood(&g, src, k), expect);
    }

    #[test]
    fn kruskal_builds_spanning_forest(g in arb_graph(30)) {
        let edges: Vec<WeightedEdge<u32>> = g
            .edges()
            .map(|(a, b)| WeightedEdge::new(a, b, a.0 * 31 + b.0))
            .collect();
        let forest = mst::kruskal(g.len(), &edges);
        let comps = connectivity::component_count(&g);
        prop_assert_eq!(forest.len(), g.len() - comps);
        // Forest is acyclic: union-find never sees a redundant union.
        let mut uf = UnionFind::new(g.len());
        for e in &forest {
            prop_assert!(uf.union(e.a.index(), e.b.index()));
        }
    }

    #[test]
    fn prim_and_kruskal_agree_on_weight(g in arb_connected_graph(20)) {
        let edges: Vec<WeightedEdge<u64>> = g
            .edges()
            .map(|(a, b)| {
                // Distinct pseudo-random weights from the endpoint pair.
                let w = (a.0 as u64 * 7919 + b.0 as u64 * 104729) % 10007;
                WeightedEdge::new(a, b, w * 1000 + a.0 as u64 * 50 + b.0 as u64)
            })
            .collect();
        let kw: u64 = mst::kruskal(g.len(), &edges).iter().map(|e| e.weight).sum();

        let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); g.len()];
        for e in &edges {
            adj[e.a.index()].push((e.b.0, e.weight));
            adj[e.b.index()].push((e.a.0, e.weight));
        }
        let tree = mst::prim(g.len(), &adj, 0);
        prop_assert_eq!(tree.len(), g.len() - 1);
        let pw: u64 = tree
            .iter()
            .map(|&(p, c)| {
                adj[p as usize]
                    .iter()
                    .find(|&&(v, _)| v == c)
                    .map(|&(_, w)| w)
                    .unwrap()
            })
            .sum();
        prop_assert_eq!(kw, pw);
    }

    #[test]
    fn union_find_matches_components(g in arb_graph(40)) {
        let mut uf = UnionFind::new(g.len());
        for (a, b) in g.edges() {
            uf.union(a.index(), b.index());
        }
        prop_assert_eq!(uf.component_count(), connectivity::component_count(&g));
        let labels = connectivity::components(&g);
        for u in 0..g.len() {
            for v in 0..g.len() {
                prop_assert_eq!(uf.connected(u, v), labels[u] == labels[v]);
            }
        }
    }

    #[test]
    fn distance_to_set_is_min_over_sources(g in arb_graph(25)) {
        let set = [NodeId(0), NodeId(1)];
        let combined = connectivity::distance_to_set(&g, &set);
        let d0 = bfs::distances(&g, set[0]);
        let d1 = bfs::distances(&g, set[1]);
        for i in 0..g.len() {
            prop_assert_eq!(combined[i], d0[i].min(d1[i]));
        }
    }

    #[test]
    fn generic_lmst_rule_keeps_connectivity(g in arb_connected_graph(20)) {
        // Apply the abstract LMST rule on the *whole* graph treating
        // every node's 1-hop neighborhood as its local set; the union
        // of kept links must stay connected (Li/Hou/Sha theorem, which
        // Theorem 2 of the clustering paper inherits).
        let weight = |a: NodeId, b: NodeId| {
            g.has_edge(a, b)
                .then(|| TieWeight::new(1u32, a, b))
        };
        let mut kept = Graph::new(g.len());
        for u in g.nodes() {
            for v in lmst::on_tree_neighbors(u, g.neighbors(u), weight) {
                if !kept.has_edge(u, v) {
                    kept.add_edge(u, v);
                }
            }
        }
        prop_assert!(connectivity::is_connected(&kept));
        prop_assert!(kept.edge_count() <= g.edge_count());
    }

    #[test]
    fn lmst_intersection_mode_also_keeps_connectivity(g in arb_connected_graph(18)) {
        // Per-node selections may be unidirectional (the two endpoints
        // see different local graphs), but keeping only mutually
        // selected links (Li/Hou/Sha's G0-) still yields a connected
        // topology when weights are pairwise distinct.
        let weight = |a: NodeId, b: NodeId| {
            g.has_edge(a, b).then(|| TieWeight::new(1u32, a, b))
        };
        let selections: Vec<Vec<NodeId>> = g
            .nodes()
            .map(|u| lmst::on_tree_neighbors(u, g.neighbors(u), weight))
            .collect();
        let mut kept = Graph::new(g.len());
        for u in g.nodes() {
            for &v in &selections[u.index()] {
                if u < v && selections[v.index()].contains(&u) {
                    kept.add_edge(u, v);
                }
            }
        }
        prop_assert!(connectivity::is_connected(&kept));
    }
}

proptest! {
    #[test]
    fn dijkstra_unit_weights_equal_bfs(g in arb_graph(30)) {
        use adhoc_graph::dijkstra::{dijkstra, UNREACHED_COST};
        let (cost, _) = dijkstra(&g, NodeId(0), |_, _| 1);
        let dist = bfs::distances(&g, NodeId(0));
        for v in 0..g.len() {
            if dist[v] == UNREACHED {
                prop_assert_eq!(cost[v], UNREACHED_COST);
            } else {
                prop_assert_eq!(cost[v], u64::from(dist[v]));
            }
        }
    }

    #[test]
    fn dijkstra_triangle_inequality_on_edges(g in arb_connected_graph(25), salt in 0u64..100) {
        use adhoc_graph::dijkstra::dijkstra;
        let w = move |a: NodeId, b: NodeId| {
            1 + (u64::from(a.0.min(b.0)) * 31 + u64::from(a.0.max(b.0)) + salt) % 9
        };
        let (cost, parent) = dijkstra(&g, NodeId(0), w);
        for (a, b) in g.edges() {
            // Settled costs can differ by at most the edge weight.
            let (ca, cb) = (cost[a.index()], cost[b.index()]);
            prop_assert!(ca <= cb + w(a, b));
            prop_assert!(cb <= ca + w(a, b));
        }
        // Parent chain costs are consistent.
        for v in g.nodes() {
            if v != NodeId(0) {
                let p = parent[v.index()];
                prop_assert_eq!(cost[v.index()], cost[p.index()] + w(p, v));
            }
        }
    }

    #[test]
    fn masked_view_equals_isolation(g in arb_graph(25), dead_raw in 0u32..25) {
        use adhoc_graph::bfs::Adjacency;
        use adhoc_graph::subgraph::Masked;
        let dead = NodeId(dead_raw % g.len() as u32);
        let m = Masked::without(&g, &[dead]);
        let mut iso = g.clone();
        iso.isolate(dead);
        for u in g.nodes() {
            prop_assert_eq!(m.adj(u), iso.neighbors(u));
        }
        prop_assert_eq!(bfs::distances(&m, NodeId(0)), bfs::distances(&iso, NodeId(0)));
    }

    #[test]
    fn io_round_trip_any_graph(g in arb_graph(30)) {
        use adhoc_graph::io;
        let mut buf = Vec::new();
        io::write_network(&mut buf, &g, None).unwrap();
        let parsed = io::read_network(&mut std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(parsed.graph.len(), g.len());
        let a: Vec<_> = g.edges().collect();
        let b: Vec<_> = parsed.graph.edges().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn diameter_bounds_all_distances(g in arb_connected_graph(20)) {
        use adhoc_graph::metrics;
        let diam = metrics::diameter(&g).unwrap();
        let rad = metrics::radius(&g).unwrap();
        prop_assert!(rad <= diam);
        prop_assert!(diam <= 2 * rad);
        let d = bfs::distances(&g, NodeId(0));
        for dv in d {
            prop_assert!(dv <= diam);
        }
    }
}

#[test]
fn geometric_lmst_both_modes_connected_randomized() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..3 {
        let net = gen::geometric(&gen::GeometricConfig::new(40, 100.0, 8.0), &mut rng);
        let a = lmst::topology(&net.graph, &net.positions, SymmetryMode::Union);
        let b = lmst::topology(&net.graph, &net.positions, SymmetryMode::Intersection);
        assert!(connectivity::is_connected(&a));
        assert!(connectivity::is_connected(&b));
        // Intersection keeps a subset of the union's links.
        for (u, v) in b.edges() {
            assert!(a.has_edge(u, v));
        }
    }
}
