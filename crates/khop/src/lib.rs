//! Umbrella crate: connected k-hop clustering for ad hoc networks.
//!
//! Re-exports the whole stack — graph substrate, clustering pipeline,
//! and discrete-event simulator — so applications depend on one crate:
//!
//! ```
//! use khop::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let net = gen::geometric(&gen::GeometricConfig::new(80, 100.0, 6.0), &mut rng);
//! let out = pipeline::run(&net.graph, Algorithm::AcLmst, &PipelineConfig::new(2));
//! assert!(out.cds.verify(&net.graph, 2).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use adhoc_cluster as cluster;
pub use adhoc_graph as graph;
pub use adhoc_sim as sim;

/// Convenient glob-import surface for applications and examples.
pub mod prelude {
    pub use adhoc_cluster::adjacency::{self, NeighborRule};
    pub use adhoc_cluster::analysis::{self, BalanceReport};
    pub use adhoc_cluster::border;
    pub use adhoc_cluster::cds::{Cds, CdsViolation};
    pub use adhoc_cluster::clustering::{self, Clustering, MemberPolicy};
    pub use adhoc_cluster::core_algorithm;
    pub use adhoc_cluster::exact::{self, ExactConfig, ExactResult};
    pub use adhoc_cluster::gateway;
    pub use adhoc_cluster::hierarchy::{self, Hierarchy};
    pub use adhoc_cluster::maxmin;
    pub use adhoc_cluster::pipeline::{
        self, Algorithm, EvalScratch, EvaluationOutput, LabelMode, LabelStore, PipelineConfig,
    };
    pub use adhoc_cluster::priority::{
        HighestDegree, KhopDegree, LowestId, LowestSpeed, Priority, PriorityKey,
        RandomTimer, ResidualEnergy, SumOfDistances,
    };
    pub use adhoc_cluster::routing::{
        self, ClusterRouter, InterMode, LegacyScratch, Mix, QueryEngine, RoutePlan, TableStats,
        Workload,
    };
    pub use adhoc_cluster::virtual_graph::{self, LinkRef, LinkStore, VirtualGraph, VirtualLink};
    pub use adhoc_cluster::wulou;
    pub use adhoc_graph::bfs;
    pub use adhoc_graph::connectivity;
    pub use adhoc_graph::delta::TopologyDelta;
    pub use adhoc_graph::gen::{self, SpatialGrid};
    pub use adhoc_graph::geom::Point;
    pub use adhoc_graph::graph::{Graph, NodeId};
    pub use adhoc_graph::labels::HeadLabels;
    pub use adhoc_graph::obs::{self, Metrics, MetricsSnapshot};
    pub use adhoc_graph::par::Parallelism;
    pub use adhoc_sim::adversary::{self, AttackKind};
    pub use adhoc_sim::broadcast::{self, BroadcastReport, Strategy as BroadcastStrategy};
    pub use adhoc_sim::churn::{self, ChurnEngine};
    pub use adhoc_sim::energy::{self, EnergyModel, RotationPolicy};
    pub use adhoc_sim::mac::{self, MacConfig, MacReport};
    pub use adhoc_sim::maintenance::{self, RepairReport, Role};
    pub use adhoc_sim::mobility::{
        self, DirectionConfig, GaussMarkov, GaussMarkovConfig, MobileNetwork, Mobility,
        RandomDirection, RandomWaypoint, WaypointConfig,
    };
    pub use adhoc_sim::movement::{MaintainedCds, MovementConfig, RepairLevel, StepReport};
    pub use adhoc_sim::protocol::{run_protocol, DistributedRun, ProtocolConfig};
    pub use adhoc_sim::stats::{Phase, Stats};
    pub use adhoc_sim::trace::{Trace, TraceEvent};
}
