//! `khop` — command-line front end for the connected k-hop clustering
//! stack.
//!
//! ```text
//! khop gen  --n 100 --d 6 --seed 7 --out net.txt      generate a network file
//! khop run  [--input net.txt | --n 100 --d 6 --seed 7] --k 2 --alg ac-lmst [--json]
//! khop run  --alg all ...                              all five algorithms, one engine sweep
//! khop run  --labels sparse ...                        force a label layout (dense|sparse|auto)
//! khop dist [--input net.txt | --n ... ] --k 2 --alg ac-lmst    distributed run + stats
//! khop info --input net.txt                            topology metrics
//! khop exact [--n 24 --d 5 --seed 7] --k 1             exact optimum + ratios
//! khop maintain --n 100 --k 2 --steps 50 --speed 1.0   movement-sensitive repair
//! khop churn --n 200 --k 2 --steps 40 --movers 10      incremental delta engine vs rebuild
//! khop route --n 400 --k 2 --alg ac-lmst --queries 5000 --mix local   compiled route serving
//! khop route --inter hub ...                           force the inter-head layout (dense|hub|auto)
//! khop resilience --n 300 --k 2 --attack heads --fraction 0.2   attack, repair, heal
//! khop mac  [--n 120 --d 10] --k 1 --cw 8              broadcast under CSMA
//! ```
//!
//! `run`, `churn`, `route`, and `resilience` also take
//! `--metrics[=FILE]`: bare, the command ends with a human-readable
//! metrics table; with `=FILE`, it writes the [`MetricsSnapshot`] as
//! pretty JSON and re-parses the file to validate the command's
//! required keys are present.

use khop::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::exit;

struct Args {
    flags: BTreeMap<String, String>,
    bools: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut flags = BTreeMap::new();
        let mut bools = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(name) = a.strip_prefix("--") {
                if let Some((key, value)) = name.split_once('=') {
                    flags.insert(key.to_string(), value.to_string());
                    i += 1;
                } else if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                    flags.insert(name.to_string(), raw[i + 1].clone());
                    i += 2;
                } else {
                    bools.push(name.to_string());
                    i += 1;
                }
            } else {
                die(&format!("unexpected argument: {a}"));
            }
        }
        Args { flags, bools }
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.flags.get(name) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| die(&format!("bad value for --{name}: {v}"))),
            None => default,
        }
    }

    fn opt(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    fn has(&self, name: &str) -> bool {
        self.bools.iter().any(|b| b == name)
    }
}

fn die(msg: &str) -> ! {
    eprintln!("khop: {msg}");
    eprintln!("usage: khop <gen|run|dist|info|exact|maintain|churn|route|resilience|mac>");
    eprintln!("            [--n N] [--d D] [--k K] [--seed S] [--steps T] [--cw W]");
    eprintln!("            [--movers M] [--speed V] [--queries Q] [--workers W]");
    eprintln!("            [--mix uniform|hotspot|local]");
    eprintln!("            [--attack heads|degree|regional|partition] [--fraction F] [--pairs P]");
    eprintln!("            [--repair-level none|reaffiliate|gateways|full]");
    eprintln!("            [--alg nc-mesh|ac-mesh|nc-lmst|ac-lmst|g-mst|all]");
    eprintln!("            [--labels dense|sparse|auto] [--inter dense|hub|auto]");
    eprintln!("            [--input FILE] [--out FILE] [--json] [--metrics[=FILE]]");
    exit(2)
}

fn parse_alg(s: &str) -> Algorithm {
    match s.to_ascii_lowercase().as_str() {
        "nc-mesh" => Algorithm::NcMesh,
        "ac-mesh" => Algorithm::AcMesh,
        "nc-lmst" => Algorithm::NcLmst,
        "ac-lmst" => Algorithm::AcLmst,
        "g-mst" | "gmst" => Algorithm::GMst,
        other => die(&format!("unknown algorithm {other}")),
    }
}

/// Loads `--input` or generates from `--n/--d/--seed`.
fn obtain_graph(args: &Args) -> Graph {
    if let Some(path) = args.opt("input") {
        let file = adhoc_graph::io::load(&PathBuf::from(path))
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        file.graph
    } else {
        let n: usize = args.get("n", 100);
        let d: f64 = args.get("d", 6.0);
        let seed: u64 = args.get("seed", 1);
        let mut rng = StdRng::seed_from_u64(seed);
        gen::geometric(&gen::GeometricConfig::at_scale(n, 100.0, d), &mut rng).graph
    }
}

fn cmd_gen(args: &Args) {
    let n: usize = args.get("n", 100);
    let d: f64 = args.get("d", 6.0);
    let seed: u64 = args.get("seed", 1);
    let out = args.opt("out").unwrap_or("network.txt");
    let mut rng = StdRng::seed_from_u64(seed);
    let net = gen::geometric(&gen::GeometricConfig::at_scale(n, 100.0, d), &mut rng);
    adhoc_graph::io::save(&PathBuf::from(out), &net.graph, Some(&net.positions))
        .unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    println!(
        "wrote {out}: {} nodes, {} edges, avg degree {:.2}, range {:.2}",
        net.graph.len(),
        net.graph.edge_count(),
        net.graph.average_degree(),
        net.range
    );
}

/// The `--labels {dense,sparse,auto}` layout policy (default `auto`).
fn parse_labels(args: &Args) -> LabelMode {
    args.get("labels", LabelMode::Auto)
}

/// The `--workers W` worker-pool width; defaults to
/// [`Parallelism::from_env`] (`KHOP_WORKERS` or the machine's cores).
fn parse_workers(args: &Args) -> Parallelism {
    match args.opt("workers") {
        Some(_) => Parallelism::new(args.get("workers", 1)),
        None => Parallelism::default(),
    }
}

/// The `--metrics[=FILE]` observability sink: an enabled [`Metrics`]
/// registry the command threads through the stack, plus the requested
/// output surface (bare flag → text table on stdout, `=FILE` → pretty
/// JSON on disk).
struct MetricsSink {
    metrics: Metrics,
    file: Option<PathBuf>,
}

/// Builds the sink when `--metrics` (bare or `=FILE`/` FILE`) was
/// given; `None` keeps every hot path on the disabled one-branch
/// handle.
fn parse_metrics(args: &Args) -> Option<MetricsSink> {
    let file = args.opt("metrics").map(PathBuf::from);
    (file.is_some() || args.has("metrics")).then(|| MetricsSink {
        metrics: Metrics::enabled(),
        file,
    })
}

impl MetricsSink {
    /// Snapshots the registry and renders it. For `=FILE`, the written
    /// JSON is read back, re-parsed, and checked for `required` metric
    /// names (each must resolve to a counter or histogram) — the same
    /// contract CI's smoke step relies on.
    fn finish(self, required: &[&str]) {
        let snap = self.metrics.snapshot();
        let Some(path) = &self.file else {
            print!("{}", snap.text_table());
            return;
        };
        let json =
            serde_json::to_string_pretty(&snap).expect("metrics snapshot serializes");
        std::fs::write(path, &json)
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
        let back: MetricsSnapshot = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str(&s).map_err(|e| format!("{e:?}")))
            .unwrap_or_else(|e| {
                die(&format!("metrics file {} does not re-parse: {e}", path.display()))
            });
        if back != snap {
            die("metrics JSON round-trip altered the snapshot");
        }
        for name in required {
            if back.counter(name).is_none() && back.histogram(name).is_none() {
                die(&format!("metrics file missing required key {name}"));
            }
        }
        println!(
            "metrics: wrote {} ({} counters, {} histograms, {} events; {} required keys present)",
            path.display(),
            back.counters.len(),
            back.histograms.len(),
            back.events.len(),
            required.len()
        );
    }
}

/// Theorem 2's verifier assumes a connected network; on a
/// disconnected instance (legal at large N and fixed density) the CDS
/// is per-component and the global check would always reject. Returns
/// whether verification can run, warning loudly when it cannot.
fn warn_if_unverifiable(g: &Graph) -> bool {
    let connected = connectivity::is_connected(g);
    if !connected {
        eprintln!("khop: input network is disconnected — structures are per-component, CDS verification skipped");
    }
    connected
}

/// `khop run --alg all`: evaluate all five algorithms through the
/// single-sweep engine (`pipeline::run_all`) on one shared clustering.
fn cmd_run_all(
    g: &Graph,
    k: u32,
    labels: LabelMode,
    par: Parallelism,
    json: bool,
    sink: Option<MetricsSink>,
) {
    let clustering = clustering::cluster(g, k, &LowestId, MemberPolicy::IdBased);
    let mut scratch = EvalScratch::with_tuning(labels, par);
    if let Some(s) = &sink {
        scratch.set_metrics(s.metrics.clone());
    }
    let eval = pipeline::run_all_with(g, &clustering, &mut scratch);
    let verify = warn_if_unverifiable(g);
    let mut rows = Vec::new();
    for alg in Algorithm::ALL {
        let out = eval.of(alg);
        if verify {
            if let Err(e) = out.cds.verify(g, k) {
                die(&format!("{} produced an invalid CDS: {e}", alg.name()));
            }
        }
        rows.push((alg, out));
    }
    if json {
        let algorithms: BTreeMap<&str, serde_json::Value> = rows
            .iter()
            .map(|(alg, out)| {
                (
                    alg.name(),
                    serde_json::json!({
                        "gateways": out.selection.gateways,
                        "cds_size": out.cds.size(),
                        "links_used": out.selection.links_used,
                    }),
                )
            })
            .collect();
        println!(
            "{}",
            serde_json::json!({
                "k": k,
                "nodes": g.len(),
                "edges": g.edge_count(),
                "clusterheads": clustering.heads,
                "rounds": clustering.rounds,
                "labels_layout": scratch.labels().layout_name(),
                "labels_memory_bytes": scratch.labels_memory_bytes(),
                "algorithms": algorithms,
            })
        );
    } else {
        println!(
            "{} nodes (k={k}): {} heads in {} rounds",
            g.len(),
            clustering.head_count(),
            clustering.rounds
        );
        for (alg, out) in rows {
            println!(
                "  {:<8} gateways: {:>4}   CDS: {:>4}",
                alg.name(),
                out.selection.gateways.len(),
                out.cds.size()
            );
        }
        println!(
            "labels: {} layout ({} bytes)",
            scratch.labels().layout_name(),
            scratch.labels_memory_bytes()
        );
    }
    if let Some(s) = sink {
        s.finish(&["pipeline.run_all", "labels.sweep_ns", "labels.rows_swept"]);
    }
}

fn cmd_run(args: &Args) {
    let g = obtain_graph(args);
    let k: u32 = args.get("k", 2);
    let labels = parse_labels(args);
    let par = parse_workers(args);
    let sink = parse_metrics(args);
    let alg_name = args.opt("alg").unwrap_or("ac-lmst");
    if alg_name.eq_ignore_ascii_case("all") {
        cmd_run_all(&g, k, labels, par, args.has("json"), sink);
        return;
    }
    let alg = parse_alg(alg_name);
    // Only the requested algorithm's phases run here (the shared
    // engine sweep is `--alg all`'s job); the scratch carries the
    // chosen label layout and worker-pool width, and G-MST — the
    // centralized baseline — ignores both.
    let clustering = clustering::cluster(&g, k, &LowestId, MemberPolicy::IdBased);
    let mut scratch = EvalScratch::with_tuning(labels, par);
    if let Some(s) = &sink {
        scratch.set_metrics(s.metrics.clone());
    }
    let out = pipeline::run_on_with(&g, alg, &clustering, &mut scratch);
    let labels_info = (alg != Algorithm::GMst)
        .then(|| (scratch.labels().layout_name(), scratch.labels_memory_bytes()));
    if warn_if_unverifiable(&g) {
        if let Err(e) = out.cds.verify(&g, k) {
            die(&format!("produced an invalid CDS: {e}"));
        }
    }
    if args.has("json") {
        let mut doc = serde_json::json!({
            "algorithm": alg.name(),
            "k": k,
            "nodes": g.len(),
            "edges": g.edge_count(),
            "clusterheads": clustering.heads,
            "gateways": out.selection.gateways,
            "cds_size": out.cds.size(),
            "links_used": out.selection.links_used,
            "rounds": clustering.rounds,
        });
        if let (serde_json::Value::Object(map), Some((layout, bytes))) = (&mut doc, labels_info)
        {
            map.push(("labels_layout".into(), serde_json::json!(layout)));
            map.push(("labels_memory_bytes".into(), serde_json::json!(bytes)));
        }
        println!("{doc}");
    } else {
        println!(
            "{} on {} nodes (k={k}): {} heads, {} gateways, CDS {}",
            alg.name(),
            g.len(),
            clustering.head_count(),
            out.selection.gateways.len(),
            out.cds.size()
        );
        if let Some((layout, bytes)) = labels_info {
            println!("labels: {layout} layout ({bytes} bytes)");
        }
    }
    if let Some(s) = sink {
        // G-MST bypasses the label sweep, so only the localized
        // algorithms can promise sweep metrics in the file.
        if alg == Algorithm::GMst {
            s.finish(&[]);
        } else {
            s.finish(&["pipeline.run_on", "labels.sweep_ns"]);
        }
    }
}

fn cmd_dist(args: &Args) {
    let g = obtain_graph(args);
    let k: u32 = args.get("k", 2);
    let alg = parse_alg(args.opt("alg").unwrap_or("ac-lmst"));
    if alg == Algorithm::GMst {
        die("G-MST is centralized; use `khop run --alg g-mst`");
    }
    let run = run_protocol(&g, &ProtocolConfig::new(k, alg));
    println!(
        "distributed {} on {} nodes (k={k}): {} heads, {} gateways",
        alg.name(),
        g.len(),
        run.heads.len(),
        run.gateways.len()
    );
    print!("{}", run.stats.report());
}

fn cmd_info(args: &Args) {
    let g = obtain_graph(args);
    use adhoc_graph::metrics;
    println!("nodes: {}", g.len());
    println!("edges: {}", g.edge_count());
    println!("avg degree: {:.2}", g.average_degree());
    println!("connected: {}", connectivity::is_connected(&g));
    println!("components: {}", connectivity::component_count(&g));
    if let Some(d) = metrics::diameter(&g) {
        println!("diameter: {d}");
    }
    if let Some(r) = metrics::radius(&g) {
        println!("radius: {r}");
    }
    println!(
        "avg clustering coeff: {:.3}",
        metrics::average_clustering(&g)
    );
}

fn cmd_exact(args: &Args) {
    let g = obtain_graph(args);
    let k: u32 = args.get("k", 1);
    if g.len() > 40 {
        die(&format!(
            "exact search on {} nodes would not finish; use --n 40 or fewer",
            g.len()
        ));
    }
    let budget: u64 = args.get("budget", exact::ExactConfig::default().max_steps);
    let opt = exact::min_khop_cds(&g, k, &ExactConfig { max_steps: budget });
    println!(
        "exact minimum {k}-hop CDS: {} nodes {} ({} expansions)",
        opt.size(),
        if opt.optimal {
            "[proven optimal]"
        } else {
            "[budget exhausted — incumbent]"
        },
        opt.explored
    );
    println!("set: {:?}", opt.set);
    for alg in Algorithm::ALL {
        let out = pipeline::run(&g, alg, &PipelineConfig::new(k));
        println!(
            "  {:<8} CDS {:>3}  ratio {:.3}",
            alg.name(),
            out.cds.size(),
            out.cds.size() as f64 / opt.size() as f64
        );
    }
}

fn cmd_maintain(args: &Args) {
    let n: usize = args.get("n", 100);
    let d: f64 = args.get("d", 10.0);
    let k: u32 = args.get("k", 2);
    let seed: u64 = args.get("seed", 1);
    let steps: usize = args.get("steps", 50);
    let speed: f64 = args.get("speed", 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let base = gen::geometric(&gen::GeometricConfig::new(n, 100.0, d), &mut rng);
    let wp = WaypointConfig {
        side: 100.0,
        min_speed: (speed * 0.2).max(1e-6),
        max_speed: speed,
        pause: 2.0,
    };
    let model = mobility::RandomWaypoint::new(n, wp, &mut rng);
    let mut mobile = MobileNetwork::with_model(base.positions.clone(), base.range, model);
    let mut m = MaintainedCds::build(mobile.graph(), MovementConfig::strict(k, Algorithm::AcLmst));
    println!("step | level       | orphans | cost | CDS | valid");
    let mut total_cost = 0usize;
    let mut total_rebuild = 0usize;
    for step in 0..steps {
        // Feed the exact edge delta the grid produced — no snapshot
        // clone + re-diff on the engine side.
        let delta = mobile.step(1.0, &mut rng);
        total_rebuild += m.rebuild_cost(mobile.graph());
        let r = m.step_delta(&delta);
        total_cost += r.cost;
        if r.level != RepairLevel::None || args.has("verbose") {
            println!(
                "{step:>4} | {:<11} | {:>7} | {:>4} | {:>3} | {}",
                r.level.name(),
                r.orphans,
                r.cost,
                m.cds.size(),
                r.valid
            );
        }
    }
    println!(
        "\ntotal maintenance cost {total_cost} node-rounds vs {} for rebuild-every-step ({:.0}% saved)",
        total_rebuild,
        100.0 * (1.0 - total_cost as f64 / total_rebuild.max(1) as f64)
    );
}

/// `khop churn`: the incremental delta engine against
/// rebuild-every-step on one mobile trajectory (a CLI-sized slice of
/// `adhoc-bench`'s `churn` bin; `--movers` nodes drift, the rest are a
/// static field).
fn cmd_churn(args: &Args) {
    use std::time::Instant;
    let n: usize = args.get("n", 200);
    let d: f64 = args.get("d", 6.0);
    let k: u32 = args.get("k", 2);
    let seed: u64 = args.get("seed", 1);
    let steps: usize = args.get("steps", 40);
    let movers: usize = args.get("movers", 10.min(n));
    let speed: f64 = args.get("speed", 2.0);
    let labels = parse_labels(args);
    let par = parse_workers(args);
    let sink = parse_metrics(args);
    if k == 0 {
        die("--k must be at least 1");
    }
    if movers == 0 || movers > n {
        die(&format!("--movers must be in 1..={n} (got {movers})"));
    }
    if speed <= 0.0 || speed.is_nan() || !speed.is_finite() {
        die(&format!("--speed must be a positive number (got {speed})"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let base = gen::geometric(&gen::GeometricConfig::new(n, 100.0, d), &mut rng);

    // Trajectory: `movers` random-waypoint nodes over a static field.
    let mut model = mobility::RandomWaypoint::new(
        movers,
        WaypointConfig {
            side: 100.0,
            min_speed: (speed * 0.3).max(1e-6),
            max_speed: speed,
            pause: 2.0,
        },
        &mut rng,
    );
    let mut pos = base.positions.clone();
    let mut mover_pos: Vec<Point> = pos[..movers].to_vec();
    let mut snapshots = vec![pos.clone()];
    for _ in 0..steps {
        use adhoc_sim::mobility::Mobility;
        model.advance(&mut mover_pos, 0.25, &mut rng);
        pos[..movers].copy_from_slice(&mover_pos);
        snapshots.push(pos.clone());
    }

    // Incremental arm — recording pass first (untimed: clustering
    // clones and level accounting must not pollute the timing), then a
    // bare timed replay of the identical deterministic inputs.
    let policy = MovementConfig::tolerant(k, Algorithm::AcLmst, 1);
    let mut clusterings = Vec::with_capacity(steps);
    let mut levels: BTreeMap<&str, usize> = BTreeMap::new();
    let (mut churn_edges, mut dirty, mut head_steps, mut cost) = (0usize, 0usize, 0usize, 0usize);
    {
        let mut grid = SpatialGrid::build(&snapshots[0], base.range);
        let mut engine = ChurnEngine::build_with_labels(grid.graph(), policy, labels);
        engine.set_workers(par);
        if let Some(s) = &sink {
            // Metrics ride the recording pass — the bare timed replay
            // below stays on the disabled handle so the observer never
            // pollutes the ms/step comparison.
            engine.set_metrics(s.metrics.clone());
        }
        for snapshot in &snapshots[1..] {
            let delta = grid.update(snapshot);
            churn_edges += delta.churn();
            let r = engine.step_delta(&delta);
            *levels.entry(r.level.name()).or_default() += 1;
            dirty += r.dirty_heads;
            head_steps += engine.clustering.heads.len();
            cost += r.cost;
            clusterings.push(engine.clustering.clone());
        }
    }
    let mut grid = SpatialGrid::build(&snapshots[0], base.range);
    let mut engine = ChurnEngine::build_with_labels(grid.graph(), policy, labels);
    engine.set_workers(par);
    let t = Instant::now();
    for snapshot in &snapshots[1..] {
        let delta = grid.update(snapshot);
        engine.step_delta(&delta);
    }
    let inc = t.elapsed().as_secs_f64();
    std::hint::black_box(engine.evaluation());
    let (layout, labels_bytes) = (
        engine.labels().layout_name(),
        engine.labels().memory_bytes(),
    );

    // Rebuild-every-step arm on the same clustering sequence, under
    // the same label layout policy and worker-pool width.
    let mut scratch = EvalScratch::with_tuning(labels, par);
    let t = Instant::now();
    for (snapshot, clustering) in snapshots[1..].iter().zip(&clusterings) {
        let g = gen::unit_disk_graph(snapshot, base.range);
        let eval = pipeline::run_all_with(&g, clustering, &mut scratch);
        std::hint::black_box(eval.of(Algorithm::AcLmst).cds.size());
    }
    let reb = t.elapsed().as_secs_f64();

    println!(
        "{n} nodes (k={k}), {movers} mobile, {steps} beacon steps: \
         {:.1} edges churned/step",
        churn_edges as f64 / steps as f64
    );
    println!(
        "repair levels: {}",
        levels
            .iter()
            .map(|(l, c)| format!("{l}×{c}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "dirty heads: {:.1}% of {} head-steps | maintenance cost {cost} node-rounds",
        100.0 * dirty as f64 / head_steps.max(1) as f64,
        head_steps
    );
    println!(
        "incremental {:.2} ms/step vs rebuild-every-step {:.2} ms/step ({:.2}x)",
        1e3 * inc / steps as f64,
        1e3 * reb / steps as f64,
        reb / inc.max(1e-12)
    );
    println!("labels: {layout} layout ({labels_bytes} bytes)");
    if let Some(s) = sink {
        s.finish(&[
            "reconcile.count",
            "reconcile.observe_ns",
            "reconcile.repair_ns",
            "reconcile.publish_ns",
        ]);
    }
}

/// Routes `u -> v` through `plan` and validates the walk hop by hop
/// against the engine's *live* state: every node on the walk alive,
/// every consecutive pair a current radio edge. A stale plan can emit
/// a walk through a departed relay — that counts as unroutable, which
/// is exactly the degradation the resilience command measures.
fn plan_routes(
    plan: &RoutePlan,
    engine: &ChurnEngine,
    u: NodeId,
    v: NodeId,
    buf: &mut Vec<NodeId>,
) -> bool {
    if plan.route_into(u, v, buf).is_none() {
        return false;
    }
    for pair in buf.windows(2) {
        if engine.is_departed(pair[0])
            || engine.is_departed(pair[1])
            || !engine.graph().neighbors(pair[0]).contains(&pair[1])
        {
            return false;
        }
    }
    true
}

/// Component label per node of the engine's live alive subgraph
/// (departed nodes get `u32::MAX`) — the "achievable" denominator:
/// pairs in different components are unroutable for any plan.
fn alive_component_labels(engine: &ChurnEngine) -> Vec<u32> {
    let g = engine.graph();
    let n = g.len();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for s in (0..n as u32).map(NodeId) {
        if engine.is_departed(s) || comp[s.index()] != u32::MAX {
            continue;
        }
        comp[s.index()] = next;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &w in g.neighbors(u) {
                if !engine.is_departed(w) && comp[w.index()] == u32::MAX {
                    comp[w.index()] = next;
                    queue.push_back(w);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Reachability of `pairs` under `plan` against the engine's live
/// state: `(alive, achievable, routed)` — pairs with both endpoints
/// alive, the subset in one component, and the subset the plan
/// actually delivers a valid walk for.
fn measure_reachability(
    plan: &RoutePlan,
    engine: &ChurnEngine,
    pairs: &[(NodeId, NodeId)],
) -> (usize, usize, usize) {
    let comp = alive_component_labels(engine);
    let mut buf = Vec::new();
    let (mut alive, mut achievable, mut routed) = (0usize, 0usize, 0usize);
    for &(u, v) in pairs {
        if engine.is_departed(u) || engine.is_departed(v) {
            continue;
        }
        alive += 1;
        if comp[u.index()] != comp[v.index()] {
            continue;
        }
        achievable += 1;
        if plan_routes(plan, engine, u, v, &mut buf) {
            routed += 1;
        }
    }
    (alive, achievable, routed)
}

/// `khop resilience`: a single-cell CLI slice of `adhoc-bench`'s
/// `resilience` bin. Builds a geometric network, pins a stale
/// pre-attack [`RoutePlan`] at its epoch, runs one adversarial attack
/// through the churn engine (optionally capped at a repair level),
/// compares stale vs live reachability over sampled pairs, then heals
/// the victims as a flash-crowd arrival burst and reports how many
/// arrivals it took to restore 100% of achievable reachability.
fn cmd_resilience(args: &Args) {
    use std::time::Instant;
    let n: usize = args.get("n", 300);
    let d: f64 = args.get("d", 6.0);
    let k: u32 = args.get("k", 2);
    let seed: u64 = args.get("seed", 1);
    let fraction: f64 = args.get("fraction", 0.2);
    let pair_count: usize = args.get("pairs", 800);
    let labels = parse_labels(args);
    let par = parse_workers(args);
    let sink = parse_metrics(args);
    let json = args.has("json");
    let attack = match args.opt("attack") {
        None => AttackKind::Heads,
        Some(s) => AttackKind::parse(s)
            .unwrap_or_else(|| die(&format!("unknown attack {s} (heads|degree|regional|partition)"))),
    };
    let level = match args.opt("repair-level") {
        None => RepairLevel::Full,
        Some(s) => RepairLevel::parse(s)
            .unwrap_or_else(|| die(&format!("unknown repair level {s} (none|reaffiliate|gateways|full)"))),
    };
    if k == 0 {
        die("--k must be at least 1");
    }
    if !(fraction > 0.0 && fraction < 1.0) {
        die(&format!("--fraction must be in (0, 1) (got {fraction})"));
    }
    if n < 4 {
        die("--n must be at least 4");
    }

    // The attack selectors need positions (regional/partition), so
    // this command always generates its own geometry — `--input` files
    // carry no coordinates the engine could target.
    let mut rng = StdRng::seed_from_u64(seed);
    let net = gen::geometric(&gen::GeometricConfig::at_scale(n, 100.0, d), &mut rng);
    let policy = MovementConfig::strict(k, Algorithm::AcLmst).capped(level);
    let mut engine = ChurnEngine::build_with_labels(&net.graph, policy, labels);
    engine.set_workers(par);
    if let Some(s) = &sink {
        engine.set_metrics(s.metrics.clone());
    }
    engine.enable_routing();
    let stale = engine.route_plan().expect("routing enabled").clone();
    let stale_epoch = stale.epoch();

    // Deterministic sampled pairs (u != v, drawn over all ids; pairs
    // whose endpoint departs simply fall out of the denominator).
    let mut prng = StdRng::seed_from_u64(seed ^ 0x9A1C);
    let pairs: Vec<(NodeId, NodeId)> = (0..pair_count)
        .map(|_| loop {
            let u = prng.gen_range(0..n) as u32;
            let v = prng.gen_range(0..n) as u32;
            if u != v {
                break (NodeId(u), NodeId(v));
            }
        })
        .collect();

    let victims = adversary::select_victims(
        &engine,
        attack,
        fraction,
        Some((&net.positions, net.range)),
        seed ^ 0xBEEF,
    );
    let t = Instant::now();
    adversary::execute(&mut engine, &victims);
    let attack_ms = 1e3 * t.elapsed().as_secs_f64();

    let live = engine.route_plan().expect("routing stays enabled").clone();
    let (s_alive, _, s_routed) = measure_reachability(&stale, &engine, &pairs);
    let (l_alive, l_ach, l_routed) = measure_reachability(&live, &engine, &pairs);
    let pct = |num: usize, den: usize| 100.0 * num as f64 / den.max(1) as f64;

    // Heal: flash-crowd arrival burst, one reconcile per returnee,
    // watching for the first arrival that restores every sampled pair
    // the live component structure can serve.
    let t = Instant::now();
    let mut to_full: Option<usize> = None;
    for (i, &v) in victims.iter().enumerate() {
        adversary::heal(&mut engine, &net.graph, &[v]);
        if to_full.is_none() {
            let plan = engine.route_plan().expect("routing stays enabled");
            let (alive, ach, routed) = measure_reachability(plan, &engine, &pairs);
            if alive == pairs.len() && routed == ach {
                to_full = Some(i + 1);
            }
        }
    }
    let heal_ms = 1e3 * t.elapsed().as_secs_f64();
    let restored = TopologyDelta::between(engine.graph(), &net.graph).is_empty();
    let final_plan = engine.route_plan().expect("routing stays enabled").clone();
    let (f_alive, f_ach, f_routed) = measure_reachability(&final_plan, &engine, &pairs);

    if json {
        let post_attack = serde_json::json!({
            "stale_routed_pct_of_alive": pct(s_routed, s_alive),
            "live_routed_pct_of_alive": pct(l_routed, l_alive),
            "live_routed_pct_of_achievable": pct(l_routed, l_ach),
            "achievable_pairs": l_ach,
            "repair_ms": attack_ms,
            "live_epoch": live.epoch()
        });
        let heal = serde_json::json!({
            "heal_ms": heal_ms,
            "arrivals_to_full": to_full,
            "final_routed_pct_of_achievable": pct(f_routed, f_ach),
            "final_alive_pairs": f_alive,
            "topology_restored": restored,
            "valid": engine.is_valid()
        });
        let doc = serde_json::json!({
            "schema": "khop-cli-resilience/v1",
            "n": n,
            "k": k,
            "d": d,
            "seed": seed,
            "attack": attack.name(),
            "fraction": fraction,
            "repair_level": level.name(),
            "labels": engine.labels().layout_name(),
            "victims": victims.len(),
            "sampled_pairs": pairs.len(),
            "stale_epoch": stale_epoch,
            "post_attack": post_attack,
            "heal": heal
        });
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).expect("resilience JSON serializes")
        );
        if let Some(s) = sink {
            s.finish(RESILIENCE_METRIC_KEYS);
        }
        return;
    }

    println!(
        "{n} nodes (k={k}), {} attack removing {} ({:.1}%), repair capped at {}, {} labels",
        attack.name(),
        victims.len(),
        100.0 * fraction,
        level.name(),
        engine.labels().layout_name()
    );
    println!(
        "post-attack: stale plan (epoch {stale_epoch}) routes {:.1}% of {} alive pairs; \
         live plan (epoch {}) routes {:.1}% ({:.1}% of achievable)",
        pct(s_routed, s_alive),
        s_alive,
        live.epoch(),
        pct(l_routed, l_alive),
        pct(l_routed, l_ach)
    );
    println!(
        "attack repair: {attack_ms:.1} ms total ({:.2} ms/victim)",
        attack_ms / victims.len().max(1) as f64
    );
    match to_full {
        Some(a) => println!(
            "heal: {heal_ms:.1} ms for {} arrivals; 100% of achievable restored after {a}",
            victims.len()
        ),
        None => println!(
            "heal: {heal_ms:.1} ms for {} arrivals; full reachability NOT restored \
             (final {:.1}% of achievable)",
            victims.len(),
            pct(f_routed, f_ach)
        ),
    }
    println!(
        "final: topology restored={restored}, clustering valid={}",
        engine.is_valid()
    );
    if let Some(s) = sink {
        s.finish(RESILIENCE_METRIC_KEYS);
    }
}

/// Metrics every `khop resilience --metrics=FILE` file must carry: the
/// attack drives reconciles and each reconcile republishes the plan.
const RESILIENCE_METRIC_KEYS: &[&str] =
    &["reconcile.count", "plan.published", "plan.compile_ns"];

/// `khop route`: compile a [`RoutePlan`] over one algorithm's backbone
/// and serve a query batch through it — compiled single-worker,
/// compiled multi-worker, and the per-query-BFS baseline, with
/// checksummed-equal walks (a CLI-sized slice of `adhoc-bench`'s
/// `routing_serve` bin).
fn cmd_route(args: &Args) {
    use std::time::Instant;
    let g = obtain_graph(args);
    let k: u32 = args.get("k", 2);
    let queries: usize = args.get("queries", 5000);
    let workers: usize = args.get("workers", 2);
    let seed: u64 = args.get("seed", 1);
    let labels = parse_labels(args);
    let inter: InterMode = args.get("inter", InterMode::Auto);
    let mix: Mix = args.get("mix", Mix::Uniform);
    let sink = parse_metrics(args);
    let alg_name = args.opt("alg").unwrap_or("ac-lmst");
    if alg_name.eq_ignore_ascii_case("all") {
        die("route serves one backbone; pick a single algorithm");
    }
    let alg = parse_alg(alg_name);
    if k == 0 {
        die("--k must be at least 1");
    }
    if queries == 0 {
        die("--queries must be at least 1");
    }

    let par = Parallelism::new(workers);
    let metrics = sink.as_ref().map_or(Metrics::disabled(), |s| s.metrics.clone());
    let clustering = clustering::cluster(&g, k, &LowestId, MemberPolicy::IdBased);
    let mut scratch = EvalScratch::with_tuning(labels, par);
    scratch.set_metrics(metrics.clone());
    let eval = pipeline::run_all_with(&g, &clustering, &mut scratch);
    let links = eval.selected_links(alg);
    let t = Instant::now();
    let plan = RoutePlan::compile_metered(
        &g,
        &clustering,
        scratch.labels(),
        links.iter().copied(),
        inter,
        par,
        &metrics,
    );
    let build_ms = 1e3 * t.elapsed().as_secs_f64();
    let baseline = ClusterRouter::with_graph(
        &clustering,
        adhoc_cluster::virtual_graph::VirtualGraph::from_links(&clustering.heads, links),
    );

    let workload = Workload::new(&plan);
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs = workload.generate(&plan, mix, queries, &mut rng);

    // Both compiled serving arms share the sink's registry, so
    // `query.*` covers every served query (2x the batch when metrics
    // are on — and the q/s numbers then include the per-query clock
    // reads; run without `--metrics` for clean timings).
    let t = Instant::now();
    let single = QueryEngine::with_metrics(&plan, 1, &metrics).route_many(&pairs);
    let single_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let multi = QueryEngine::with_metrics(&plan, workers, &metrics).route_many(&pairs);
    let multi_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let mut legacy_scratch = LegacyScratch::new();
    let mut bfs_sums = Vec::with_capacity(pairs.len());
    for &(u, v) in &pairs {
        bfs_sums.push(match baseline.route_with(&g, u, v, &mut legacy_scratch) {
            Some(w) => routing::walk_checksum(&w),
            None => 0,
        });
    }
    let bfs_secs = t.elapsed().as_secs_f64();
    let bfs_checksum = routing::fold_checksums(&bfs_sums);
    if multi.checksum != single.checksum || bfs_checksum != single.checksum {
        die("serving arms produced different walks — route equivalence violated");
    }

    let routable = pairs.len() - single.unreachable;
    let mean_hops = if routable == 0 {
        0.0
    } else {
        single.total_hops as f64 / routable as f64
    };
    let tables = TableStats::measure(&g, &clustering);
    if args.has("json") {
        println!(
            "{}",
            serde_json::json!({
                "algorithm": alg.name(),
                "k": k,
                "nodes": g.len(),
                "mix": mix.name(),
                "queries": queries,
                "heads": plan.heads().len(),
                "links": plan.link_count(),
                "build_ms": build_ms,
                "plan_memory_bytes": plan.memory_bytes(),
                "labels_layout": scratch.labels().layout_name(),
                "inter_mode": inter.name(),
                "inter_layout": plan.inter_layout(),
                "inter_bytes": plan.inter_memory_bytes(),
                "inter_dense_projected_bytes": plan.projected_dense_inter_bytes(),
                "mean_hops": mean_hops,
                "unreachable": single.unreachable,
                "plan_qps": queries as f64 / single_secs.max(1e-12),
                "plan_qps_multi": queries as f64 / multi_secs.max(1e-12),
                "workers": workers,
                "bfs_qps": queries as f64 / bfs_secs.max(1e-12),
                "member_table_mean": tables.member_mean,
                "head_table_entries": tables.head_entries,
                "flat_table_entries": tables.flat_entries,
                "checksum": format!("{:016x}", single.checksum),
            })
        );
    } else {
        println!(
            "{} backbone on {} nodes (k={k}): {} heads, {} links; plan compiled in {build_ms:.2} ms ({} bytes)",
            alg.name(),
            g.len(),
            plan.heads().len(),
            plan.link_count(),
            plan.memory_bytes()
        );
        println!(
            "inter-head table: {} layout ({} bytes; dense h*h would be {})",
            plan.inter_layout(),
            plan.inter_memory_bytes(),
            plan.projected_dense_inter_bytes(),
        );
        println!(
            "{queries} {} queries: mean {mean_hops:.2} hops, {} unreachable",
            mix.name(),
            single.unreachable
        );
        println!(
            "compiled: {:>10.0} q/s | compiled x{workers}: {:>10.0} q/s | per-query BFS: {:>10.0} q/s ({:.1}x)",
            queries as f64 / single_secs.max(1e-12),
            queries as f64 / multi_secs.max(1e-12),
            queries as f64 / bfs_secs.max(1e-12),
            bfs_secs / single_secs.max(1e-12),
        );
        println!(
            "tables: member {:.1} entries mean (min {} / max {}), head {}, flat {}",
            tables.member_mean,
            tables.member_min,
            tables.member_max,
            tables.head_entries,
            tables.flat_entries
        );
    }
    if let Some(s) = sink {
        s.finish(&[
            "plan.compile_ns",
            "query.count",
            "query.hops",
            "query.latency_ns",
        ]);
    }
}

fn cmd_mac(args: &Args) {
    let g = obtain_graph(args);
    let k: u32 = args.get("k", 1);
    let cw: u32 = args.get("cw", 8);
    let seed: u64 = args.get("seed", 1);
    let out = pipeline::run(&g, Algorithm::AcLmst, &PipelineConfig::new(k));
    let mut rng = StdRng::seed_from_u64(seed);
    println!(
        "{:<10} {:>6} {:>10} {:>9} {:>8}",
        "strategy", "tx", "collisions", "delivered", "latency"
    );
    for (name, strategy) in [
        ("flood", BroadcastStrategy::BlindFlood),
        ("backbone", BroadcastStrategy::Backbone),
    ] {
        let r = mac::simulate_with_mac(
            &g,
            &out.clustering,
            &out.cds,
            NodeId(0),
            strategy,
            &MacConfig {
                cw,
                ..MacConfig::default()
            },
            &mut rng,
        );
        println!(
            "{name:<10} {:>6} {:>10} {:>9} {:>7}s",
            r.transmissions, r.collisions, r.delivered, r.latency_slots
        );
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        die("missing command");
    };
    let args = Args::parse(rest);
    match cmd.as_str() {
        "gen" => cmd_gen(&args),
        "run" => cmd_run(&args),
        "dist" => cmd_dist(&args),
        "info" => cmd_info(&args),
        "exact" => cmd_exact(&args),
        "maintain" => cmd_maintain(&args),
        "churn" => cmd_churn(&args),
        "route" => cmd_route(&args),
        "resilience" => cmd_resilience(&args),
        "mac" => cmd_mac(&args),
        other => die(&format!("unknown command {other}")),
    }
}
