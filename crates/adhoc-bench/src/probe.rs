//! Shared observability probe embedded in every bench record.
//!
//! Each `BENCH_*.json` carries a `metrics` section so the perf
//! trajectory gains phase breakdowns, not just end-to-end wall clock.
//! Rather than having each bench instrument a different slice of its
//! own workload (which would make the four records incomparable), this
//! module runs **one standard metered reference workload** — a
//! geometric cell through a full reconcile storm (attack + heal via
//! the [`ChurnEngine`]) followed by a compiled-plan query batch — with
//! an enabled [`Metrics`] registry threaded through every layer, and
//! returns the [`adhoc_graph::obs::MetricsSnapshot`] as a JSON value. Every record
//! therefore contains the same per-phase reconcile span timings
//! (`reconcile.observe_ns` / `repair_ns` / `publish_ns`), plan
//! compile/repair breakdowns, and query latency/hop percentiles, all
//! from the binary that produced the record on the host that produced
//! it.
//!
//! The workload is deterministic (fixed seeds, serial serving), so the
//! count-type metrics — and the embedded `fingerprint` — are identical
//! across hosts and regenerations; only the `_ns` timings vary, like
//! every other measurement in the records.

use adhoc_cluster::pipeline::Algorithm;
use adhoc_cluster::routing::QueryEngine;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::graph::NodeId;
use adhoc_graph::obs::Metrics;
use adhoc_sim::adversary::{self, AttackKind};
use adhoc_sim::churn::ChurnEngine;
use adhoc_sim::movement::MovementConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::{json, Value};

/// Node count of the probe cell: big enough that the reconcile loop
/// exercises incremental repair, hub/dense inter tables, and a
/// non-trivial query mix; small enough to add well under a second to
/// any bench run.
const PROBE_N: usize = 240;
const PROBE_D: f64 = 6.0;
const PROBE_K: u32 = 2;
const PROBE_SEED: u64 = 0x0B5E_2026;
const PROBE_QUERIES: usize = 2000;
const ATTACK_FRACTION: f64 = 0.08;

/// Runs the standard metered reference workload and returns the
/// `metrics` section: the workload parameters, the deterministic
/// fingerprint, and the full [`adhoc_graph::obs::MetricsSnapshot`]
/// as JSON.
pub fn reference_metrics_section() -> Value {
    let mut rng = StdRng::seed_from_u64(PROBE_SEED);
    let net = gen::geometric(
        &GeometricConfig::at_scale(PROBE_N, 100.0, PROBE_D),
        &mut rng,
    );
    let metrics = Metrics::enabled();

    // Reconcile storm: a heads-targeted attack removes victims one
    // reconcile at a time, then a flash-crowd heal returns them — the
    // full observe/repair/publish loop, with plan recompiles and
    // incremental patches mixed.
    let mut engine = ChurnEngine::build(
        &net.graph,
        MovementConfig::strict(PROBE_K, Algorithm::AcLmst),
    );
    engine.set_metrics(metrics.clone());
    engine.enable_routing();
    let victims = adversary::select_victims(
        &engine,
        AttackKind::Heads,
        ATTACK_FRACTION,
        Some((&net.positions, net.range)),
        PROBE_SEED ^ 0xBEEF,
    );
    adversary::execute(&mut engine, &victims);
    adversary::heal(&mut engine, &net.graph, &victims);

    // Query batch through the healed plan: per-query latency and
    // hop-count histograms, serial so the latency samples are clean.
    let plan = engine.route_plan().expect("probe routing enabled").clone();
    let serve = QueryEngine::with_metrics(&plan, 1, &metrics);
    let mut prng = StdRng::seed_from_u64(PROBE_SEED ^ 0x9A1C);
    let pairs: Vec<(NodeId, NodeId)> = (0..PROBE_QUERIES)
        .map(|_| loop {
            let u = prng.gen_range(0..PROBE_N) as u32;
            let v = prng.gen_range(0..PROBE_N) as u32;
            if u != v {
                break (NodeId(u), NodeId(v));
            }
        })
        .collect();
    let served = serve.route_many(&pairs);

    let snap = metrics.snapshot();
    let workload = json!({
        "n": PROBE_N,
        "d": PROBE_D,
        "k": PROBE_K,
        "seed": PROBE_SEED,
        "victims": victims.len(),
        "queries": pairs.len(),
        "unreachable": served.unreachable,
    });
    json!({
        "workload": workload,
        "fingerprint": format!("{:016x}", snap.deterministic_fingerprint()),
        "snapshot": serde_json::to_value(&snap),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_section_is_populated_and_deterministic() {
        let a = reference_metrics_section();
        let b = reference_metrics_section();
        // Count-type metrics are deterministic: same fingerprint on
        // every run of the same binary.
        assert_eq!(a["fingerprint"], b["fingerprint"]);
        let snap = &a["snapshot"];
        let histograms = snap["histograms"].as_array().expect("histograms");
        for required in [
            "reconcile.observe_ns",
            "reconcile.repair_ns",
            "reconcile.publish_ns",
            "query.latency_ns",
            "query.hops",
        ] {
            let h = histograms
                .iter()
                .find(|h| h["name"].as_str() == Some(required))
                .unwrap_or_else(|| panic!("probe must record {required}"));
            assert!(h["count"].as_u64().expect("count") > 0, "{required} empty");
        }
        let counters = snap["counters"].as_array().expect("counters");
        for required in ["reconcile.count", "plan.published", "query.count"] {
            assert!(
                counters
                    .iter()
                    .any(|c| c["name"].as_str() == Some(required)),
                "probe must count {required}"
            );
        }
    }
}
