//! Tiny SVG renderer for Figure-4-style cluster graph snapshots.
//!
//! Draws the deployment: light gray radio edges, diamonds for
//! clusterheads (as in the paper's plots), bold circles for gateways,
//! small circles for plain members, and heavy lines along realized
//! virtual links.

use adhoc_cluster::clustering::Clustering;
use adhoc_cluster::gateway::GatewaySelection;
use adhoc_cluster::virtual_graph::VirtualLink;
use adhoc_graph::geom::Point;
use adhoc_graph::graph::{Graph, NodeId};
use std::fmt::Write;

/// Rendering options.
#[derive(Clone, Copy, Debug)]
pub struct SvgStyle {
    /// Canvas size in pixels (the square deployment area is scaled to
    /// fit).
    pub canvas: f64,
    /// Side of the deployment area in model units.
    pub side: f64,
    /// Whether to draw node ID labels.
    pub labels: bool,
}

impl Default for SvgStyle {
    fn default() -> Self {
        SvgStyle {
            canvas: 800.0,
            side: 100.0,
            labels: true,
        }
    }
}

/// Renders a snapshot to an SVG string.
pub fn render(
    g: &Graph,
    positions: &[Point],
    clustering: &Clustering,
    selection: &GatewaySelection,
    realized_paths: &[VirtualLink],
    style: &SvgStyle,
) -> String {
    assert_eq!(positions.len(), g.len());
    let scale = style.canvas / style.side;
    let px = |p: &Point| (p.x * scale, style.canvas - p.y * scale);
    let mut out = String::new();
    let _ = writeln!(
        out,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{0}" height="{0}" viewBox="0 0 {0} {0}">"##,
        style.canvas
    );
    let _ = writeln!(out, r##"<rect width="100%" height="100%" fill="white"/>"##);

    // Radio edges.
    for (u, v) in g.edges() {
        let (x1, y1) = px(&positions[u.index()]);
        let (x2, y2) = px(&positions[v.index()]);
        let _ = writeln!(
            out,
            r##"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="#dddddd" stroke-width="1"/>"##
        );
    }
    // Realized virtual links (bold, on top of the mesh).
    for link in realized_paths {
        for w in link.path.windows(2) {
            let (x1, y1) = px(&positions[w[0].index()]);
            let (x2, y2) = px(&positions[w[1].index()]);
            let _ = writeln!(
                out,
                r##"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="#1f77b4" stroke-width="3"/>"##
            );
        }
    }
    // Nodes.
    let is_gateway = |v: NodeId| selection.gateways.binary_search(&v).is_ok();
    for v in g.nodes() {
        let (x, y) = px(&positions[v.index()]);
        if clustering.is_head(v) {
            // Diamond.
            let r = 9.0;
            let _ = writeln!(
                out,
                r##"<polygon points="{:.1},{:.1} {:.1},{:.1} {:.1},{:.1} {:.1},{:.1}" fill="#d62728" stroke="black"/>"##,
                x,
                y - r,
                x + r,
                y,
                x,
                y + r,
                x - r,
                y
            );
        } else if is_gateway(v) {
            let _ = writeln!(
                out,
                r##"<circle cx="{x:.1}" cy="{y:.1}" r="7" fill="none" stroke="#1f77b4" stroke-width="3"/>"##
            );
        } else {
            let _ = writeln!(
                out,
                r##"<circle cx="{x:.1}" cy="{y:.1}" r="4" fill="#999999"/>"##
            );
        }
        if style.labels {
            let _ = writeln!(
                out,
                r##"<text x="{:.1}" y="{:.1}" font-size="10" fill="#333333">{}</text>"##,
                x + 6.0,
                y - 6.0,
                v.0
            );
        }
    }
    let _ = writeln!(out, "</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_cluster::adjacency::NeighborRule;
    use adhoc_cluster::clustering::{cluster, MemberPolicy};
    use adhoc_cluster::gateway;
    use adhoc_cluster::priority::LowestId;
    use adhoc_cluster::virtual_graph::VirtualGraph;

    #[test]
    fn renders_all_node_classes() {
        let g = adhoc_graph::gen::path(5);
        let positions: Vec<Point> = (0..5)
            .map(|i| Point::new(10.0 + 20.0 * i as f64, 50.0))
            .collect();
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let vg = VirtualGraph::build(&g, &c, NeighborRule::Adjacent);
        let sel = gateway::mesh(&vg, &c);
        let links: Vec<_> = vg.links().map(|l| l.to_owned()).collect();
        let svg = render(&g, &positions, &c, &sel, &links, &SvgStyle::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("polygon")); // heads
        assert!(svg.contains("stroke-width=\"3\"")); // gateways / links
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn labels_can_be_disabled() {
        let g = adhoc_graph::gen::path(2);
        let positions = vec![Point::new(0.0, 0.0), Point::new(10.0, 10.0)];
        let c = cluster(&g, 1, &LowestId, MemberPolicy::IdBased);
        let sel = GatewaySelection::default();
        let style = SvgStyle {
            labels: false,
            ..SvgStyle::default()
        };
        let svg = render(&g, &positions, &c, &sel, &[], &style);
        assert!(!svg.contains("<text"));
    }
}
