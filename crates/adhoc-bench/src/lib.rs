//! Experiment harness regenerating the paper's evaluation (§4).
//!
//! * [`stats`] — the ±1% @ 90% confidence machinery of the paper's
//!   stopping rule.
//! * [`harness`] — Monte-Carlo cells over `(N, D, k)` with
//!   deterministic per-replicate seeding and crossbeam-parallel
//!   execution.
//! * [`figures`] — series containers, aligned text tables, JSON
//!   persistence for EXPERIMENTS.md.
//! * [`svg`] — Figure-4-style cluster graph snapshots.
//! * [`plot`] — paper-style SVG line charts rendered from saved
//!   figure JSON (`bin/plot`).
//!
//! The `src/bin` binaries regenerate each figure:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `fig4` | Figure 4 — example gateway selections on one network |
//! | `fig5` | Figure 5 — CDS size vs N, sparse (D=6), k=1..4 |
//! | `fig6` | Figure 6 — CDS size vs N, dense (D=10), k=1..4 |
//! | `fig7` | Figure 7 — clusterhead count and CDS size vs k |
//! | `overhead` | §5 future-work: message overhead vs k |
//! | `claims` | §4's six summary claims, checked programmatically |
//! | `coverage`, `baselines`, `policies`, `broadcast`, `routing`, `hierarchy` | related-work baselines and applications (§1–§3.3) |
//! | `exact` | approximation ratios vs the exact minimum k-hop CDS |
//! | `mac_ablation` | broadcast under slotted CSMA vs the ideal MAC |
//! | `stability` | CDS churn and information staleness vs k under mobility |
//! | `movement` | §5 movement-sensitive maintenance vs rebuild-every-step |
//! | `churn` | incremental delta engine vs rebuild-every-step across mobility models × N (`results/BENCH_churn.json`) |
//! | `routing_serve` | compiled route-plan serving vs per-query-BFS routing, single- and multi-worker, checksummed-equal walks (`results/BENCH_routing.json`) |
//! | `scalability` | pipeline wall time out to N = 4000 at fixed density |
//! | `quasi` | the Figure-5 comparison on quasi-UDG radios |
//! | `claims_ext` | extension claims 1–5, checked programmatically |
//! | `plot` | renders saved figure JSON as SVG line charts |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod harness;
pub mod plot;
pub mod probe;
pub mod stats;
pub mod svg;

use std::path::PathBuf;

/// Directory where figure binaries drop JSON/SVG/text outputs
/// (`results/` at the workspace root, overridable with
/// `KHOP_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("KHOP_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Whether `--quick` was passed to a figure binary: caps replicates at
/// a handful so the whole figure regenerates in seconds (useful in CI;
/// the published numbers use the full stopping rule).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// `"quick"` or `"full"` — stamped as `mode` into every bench record so
/// a reduced-scope run can never masquerade as the committed full-grid
/// measurement (`tests/bench_records.rs` fails CI if a quick record
/// lands on a canonical `BENCH_*.json`).
pub fn run_mode() -> &'static str {
    if quick_mode() {
        "quick"
    } else {
        "full"
    }
}

/// Applies quick mode to a cell config.
pub fn apply_quick(mut cfg: harness::CellConfig) -> harness::CellConfig {
    if quick_mode() {
        cfg.min_reps = 5;
        cfg.max_reps = 5;
    }
    cfg
}
