//! SVG line charts for [`Figure`] data — paper-style plots (curves
//! with error bars, legend) regenerable from the JSON the experiment
//! binaries persist.
//!
//! Self-contained SVG generation: no plotting dependency, deterministic
//! output (stable colors by series order, fixed layout), so chart files
//! diff cleanly across runs.

use crate::figures::Figure;
use std::fmt::Write as _;

/// Chart geometry.
const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 150.0; // room for the legend
const MARGIN_T: f64 = 44.0;
const MARGIN_B: f64 = 52.0;

/// A fixed, colorblind-friendly palette (Okabe-Ito), cycled by series
/// index so re-renders are stable.
const PALETTE: [&str; 7] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#000000",
];

fn nice_ticks(lo: f64, hi: f64, target: usize) -> Vec<f64> {
    if hi <= lo || !hi.is_finite() || !lo.is_finite() {
        return vec![lo];
    }
    let span = hi - lo;
    let raw = span / target as f64;
    let mag = 10f64.powf(raw.log10().floor());
    let step = [1.0, 2.0, 2.5, 5.0, 10.0]
        .iter()
        .map(|m| m * mag)
        .find(|&s| span / s <= target as f64)
        .unwrap_or(mag * 10.0);
    let first = (lo / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = first;
    while t <= hi + 1e-9 * span {
        ticks.push(t);
        t += step;
    }
    ticks
}

fn fmt_num(v: f64) -> String {
    if v.abs() >= 1000.0 || (v.fract().abs() < 1e-9 && v.abs() >= 1.0) {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Renders `figure` as a standalone SVG line chart with CI error bars.
///
/// Returns the SVG text; callers decide where to write it. Empty
/// figures render an annotated empty frame rather than panicking.
pub fn render_line_chart(figure: &Figure) -> String {
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (0.0f64, f64::NEG_INFINITY);
    for s in &figure.series {
        for &(x, mean, hw) in &s.points {
            x_lo = x_lo.min(x);
            x_hi = x_hi.max(x);
            y_lo = y_lo.min(mean - hw);
            y_hi = y_hi.max(mean + hw);
        }
    }
    if !x_lo.is_finite() {
        x_lo = 0.0;
        x_hi = 1.0;
        y_hi = 1.0;
    }
    if y_hi <= y_lo {
        y_hi = y_lo + 1.0;
    }
    // A touch of headroom.
    let y_pad = (y_hi - y_lo) * 0.06;
    y_hi += y_pad;

    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let px = |x: f64| MARGIN_L + (x - x_lo) / (x_hi - x_lo).max(1e-12) * plot_w;
    let py = |y: f64| MARGIN_T + plot_h - (y - y_lo) / (y_hi - y_lo).max(1e-12) * plot_h;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif" font-size="12">"#
    );
    let _ = writeln!(
        svg,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );
    // Title and axis labels.
    let _ = writeln!(
        svg,
        r#"<text x="{:.1}" y="24" text-anchor="middle" font-size="14" font-weight="bold">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        xml_escape(&figure.title)
    );
    let _ = writeln!(
        svg,
        r#"<text x="{:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        HEIGHT - 12.0,
        xml_escape(&figure.x_label)
    );
    let _ = writeln!(
        svg,
        r#"<text x="16" y="{:.1}" text-anchor="middle" transform="rotate(-90 16 {:.1})">{}</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        xml_escape(&figure.y_label)
    );
    // Grid + ticks.
    for t in nice_ticks(x_lo, x_hi, 6) {
        let x = px(t);
        let _ = writeln!(
            svg,
            r##"<line x1="{x:.1}" y1="{:.1}" x2="{x:.1}" y2="{:.1}" stroke="#ddd"/>"##,
            MARGIN_T,
            MARGIN_T + plot_h
        );
        let _ = writeln!(
            svg,
            r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
            MARGIN_T + plot_h + 18.0,
            fmt_num(t)
        );
    }
    for t in nice_ticks(y_lo, y_hi, 6) {
        let y = py(t);
        let _ = writeln!(
            svg,
            r##"<line x1="{:.1}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
            MARGIN_L,
            MARGIN_L + plot_w
        );
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{}</text>"#,
            MARGIN_L - 6.0,
            y + 4.0,
            fmt_num(t)
        );
    }
    // Axes frame.
    let _ = writeln!(
        svg,
        r#"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="black"/>"#
    );
    // Curves.
    for (i, s) in figure.series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let mut d = String::new();
        for (j, &(x, mean, _)) in s.points.iter().enumerate() {
            let _ = write!(
                d,
                "{}{:.1},{:.1} ",
                if j == 0 { "M" } else { "L" },
                px(x),
                py(mean)
            );
        }
        let _ = writeln!(
            svg,
            r#"<path d="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
            d.trim_end()
        );
        for &(x, mean, hw) in &s.points {
            let (cx, cy) = (px(x), py(mean));
            if hw > 0.0 {
                let (y0, y1) = (py(mean - hw), py(mean + hw));
                let _ = writeln!(
                    svg,
                    r#"<line x1="{cx:.1}" y1="{y0:.1}" x2="{cx:.1}" y2="{y1:.1}" stroke="{color}"/>"#
                );
            }
            let _ = writeln!(svg, r#"<circle cx="{cx:.1}" cy="{cy:.1}" r="3" fill="{color}"/>"#);
        }
        // Legend entry.
        let ly = MARGIN_T + 8.0 + i as f64 * 18.0;
        let lx = WIDTH - MARGIN_R + 12.0;
        let _ = writeln!(
            svg,
            r#"<line x1="{lx:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="1.8"/>"#,
            lx + 20.0
        );
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="{:.1}">{}</text>"#,
            lx + 26.0,
            ly + 4.0,
            xml_escape(&s.name)
        );
    }
    svg.push_str("</svg>\n");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Figure;
    use crate::stats::Summary;

    fn sample_figure() -> Figure {
        let mut f = Figure::new("t", "Size of CDS vs N", "Number of nodes", "Size of CDS");
        for (series, base) in [("NC-Mesh", 40.0), ("AC-LMST", 28.0), ("G-MST", 25.0)] {
            for (i, n) in [50.0, 100.0, 150.0, 200.0].iter().enumerate() {
                f.push(
                    series,
                    *n,
                    Summary {
                        count: 50,
                        mean: base + i as f64 * 10.0,
                        std: 2.0,
                        half_width: 1.0,
                    },
                );
            }
        }
        f
    }

    #[test]
    fn chart_contains_all_series_and_labels() {
        let svg = render_line_chart(&sample_figure());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        for name in ["NC-Mesh", "AC-LMST", "G-MST"] {
            assert!(svg.contains(name), "missing legend entry {name}");
        }
        assert!(svg.contains("Size of CDS vs N"));
        assert!(svg.contains("Number of nodes"));
        // Three curves -> three <path> elements.
        assert_eq!(svg.matches("<path").count(), 3);
    }

    #[test]
    fn chart_is_deterministic() {
        let f = sample_figure();
        assert_eq!(render_line_chart(&f), render_line_chart(&f));
    }

    #[test]
    fn empty_figure_renders_frame() {
        let f = Figure::new("e", "empty", "x", "y");
        let svg = render_line_chart(&f);
        assert!(svg.contains("<rect"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn escapes_markup_in_titles() {
        let mut f = Figure::new("m", "a < b & c", "x", "y");
        f.push(
            "s<1>",
            1.0,
            Summary {
                count: 1,
                mean: 1.0,
                std: 0.0,
                half_width: 0.0,
            },
        );
        let svg = render_line_chart(&f);
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(svg.contains("s&lt;1&gt;"));
        assert!(!svg.contains("a < b"));
    }

    #[test]
    fn nice_ticks_cover_range() {
        let ticks = nice_ticks(0.0, 100.0, 6);
        assert!(ticks.len() >= 3 && ticks.len() <= 8);
        assert!(ticks.first().copied().unwrap() >= 0.0);
        assert!(ticks.last().copied().unwrap() <= 100.0 + 1e-9);
        // Degenerate range.
        assert_eq!(nice_ticks(5.0, 5.0, 6), vec![5.0]);
    }

    #[test]
    fn error_bars_emitted_only_for_nonzero_ci() {
        let mut f = Figure::new("ci", "ci", "x", "y");
        f.push(
            "a",
            1.0,
            Summary {
                count: 1,
                mean: 1.0,
                std: 0.0,
                half_width: 0.0,
            },
        );
        let svg = render_line_chart(&f);
        // Only grid lines + legend line; no vertical error bar beyond
        // them is strictly checkable, so check circles exist.
        assert!(svg.contains("<circle"));
    }
}
