//! Monte-Carlo experiment harness.
//!
//! One *cell* is a parameter point `(N, D, k)`; one *replicate* is a
//! freshly sampled connected geometric network on which all five
//! algorithms run against a shared clustering. Replicates are
//! embarrassingly parallel: each gets its own deterministic RNG stream
//! (`StdRng` seeded from `(N, D, k, replicate index)`), worker threads
//! process disjoint index ranges on the shared pool
//! ([`adhoc_graph::par::scoped_chunks`]), and results merge in chunk
//! order, deterministically. Batches continue until the paper's
//! stopping rule is met: 100 replicates, or earlier if every metric's
//! 90% confidence interval is within ±1% of its mean.

use crate::stats::{SampleSet, Summary};
use adhoc_cluster::clustering::{self, MemberPolicy};
use adhoc_cluster::pipeline::{self, Algorithm, EvalScratch};
use adhoc_cluster::priority::LowestId;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::par::{self, Parallelism};
use adhoc_graph::Csr;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One parameter point of the evaluation grid.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CellConfig {
    /// Number of nodes.
    pub n: usize,
    /// Target average degree (6 = sparse, 10 = dense).
    pub d: f64,
    /// Clustering radius.
    pub k: u32,
    /// Minimum replicates before testing convergence.
    pub min_reps: usize,
    /// Maximum replicates (paper: 100).
    pub max_reps: usize,
    /// Relative confidence-interval tolerance (paper: 0.01).
    pub rel_tol: f64,
    /// Base seed so whole sweeps can be re-keyed.
    pub base_seed: u64,
}

impl CellConfig {
    /// The paper's settings for a `(n, d, k)` point.
    pub fn paper(n: usize, d: f64, k: u32) -> Self {
        CellConfig {
            n,
            d,
            k,
            min_reps: 20,
            max_reps: 100,
            rel_tol: 0.01,
            base_seed: 0x1CC9_2005,
        }
    }
}

/// Raw metrics of one replicate.
#[derive(Clone, Debug)]
pub struct ReplicateSample {
    /// Clusterhead count (shared by all algorithms).
    pub heads: usize,
    /// Gateways per algorithm.
    pub gateways: BTreeMap<Algorithm, usize>,
    /// CDS size per algorithm.
    pub cds: BTreeMap<Algorithm, usize>,
}

/// Aggregated result of one cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellResult {
    /// The cell parameters.
    pub cfg: CellConfig,
    /// Replicates actually run.
    pub reps: usize,
    /// Mean clusterhead count.
    pub heads: Summary,
    /// Mean gateway count per algorithm.
    pub gateways: BTreeMap<String, Summary>,
    /// Mean CDS size per algorithm.
    pub cds: BTreeMap<String, Summary>,
}

impl CellResult {
    /// CDS summary of `alg`.
    pub fn cds_of(&self, alg: Algorithm) -> Summary {
        self.cds[alg.name()]
    }

    /// Gateway summary of `alg`.
    pub fn gateways_of(&self, alg: Algorithm) -> Summary {
        self.gateways[alg.name()]
    }
}

fn replicate_seed(cfg: &CellConfig, index: usize) -> u64 {
    // Mix the cell parameters and the replicate index (splitmix-ish).
    let mut h = cfg
        .base_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(cfg.n as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(cfg.d.to_bits())
        .wrapping_mul(0x94D0_49BB_1331_11EB)
        .wrapping_add(u64::from(cfg.k))
        .wrapping_add(index as u64 + 1);
    h ^= h >> 31;
    h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    h ^= h >> 27;
    h
}

/// Runs one replicate: sample a connected network, cluster once,
/// evaluate all five algorithms on the shared clustering through the
/// single-sweep engine ([`pipeline::run_all`]).
pub fn run_replicate(cfg: &CellConfig, index: usize) -> ReplicateSample {
    run_replicate_with(cfg, index, &mut EvalScratch::new())
}

/// As [`run_replicate`], reusing `scratch` (worker threads keep one
/// per thread so the label arena persists across replicates).
pub fn run_replicate_with(
    cfg: &CellConfig,
    index: usize,
    scratch: &mut EvalScratch,
) -> ReplicateSample {
    let mut rng = StdRng::seed_from_u64(replicate_seed(cfg, index));
    let net = gen::geometric(&GeometricConfig::new(cfg.n, 100.0, cfg.d), &mut rng);
    let csr = Csr::from_graph(&net.graph);
    let clustering = clustering::cluster(&csr, cfg.k, &LowestId, MemberPolicy::IdBased);
    let eval = pipeline::run_all_with(&csr, &clustering, scratch);
    let mut gateways = BTreeMap::new();
    let mut cds = BTreeMap::new();
    for alg in Algorithm::ALL {
        let out = eval.of(alg);
        debug_assert!(out.cds.verify(&csr, cfg.k).is_ok());
        gateways.insert(alg, out.selection.gateways.len());
        cds.insert(alg, out.cds.size());
    }
    ReplicateSample {
        heads: clustering.head_count(),
        gateways,
        cds,
    }
}

#[derive(Default)]
struct CellAccumulator {
    heads: SampleSet,
    gateways: BTreeMap<Algorithm, SampleSet>,
    cds: BTreeMap<Algorithm, SampleSet>,
}

impl CellAccumulator {
    fn absorb(&mut self, s: ReplicateSample) {
        self.heads.push(s.heads as f64);
        for (alg, v) in s.gateways {
            self.gateways.entry(alg).or_default().push(v as f64);
        }
        for (alg, v) in s.cds {
            self.cds.entry(alg).or_default().push(v as f64);
        }
    }

    fn merge(&mut self, other: CellAccumulator) {
        self.heads.merge(other.heads);
        for (alg, set) in other.gateways {
            self.gateways.entry(alg).or_default().merge(set);
        }
        for (alg, set) in other.cds {
            self.cds.entry(alg).or_default().merge(set);
        }
    }

    fn converged(&self, rel_tol: f64) -> bool {
        self.heads.summary().converged(rel_tol)
            && self.gateways.values().all(|s| s.summary().converged(rel_tol))
            && self.cds.values().all(|s| s.summary().converged(rel_tol))
    }
}

/// Runs a cell to the paper's stopping rule, parallelizing replicates
/// across `threads` workers on the shared pool
/// ([`adhoc_graph::par::scoped_chunks`]); `None` defaults to
/// [`Parallelism::from_env`] (`KHOP_WORKERS` or the machine's cores).
pub fn run_cell(cfg: &CellConfig, threads: Option<usize>) -> CellResult {
    let threads = threads.map(Parallelism::new).unwrap_or_default().workers();
    let mut acc = CellAccumulator::default();
    let mut next_index = 0usize;

    while next_index < cfg.max_reps {
        // The first batch is clamped to `min_reps` so the stopping rule
        // is actually consulted at the earliest legal point; later
        // batches grow to keep all workers busy. (Previously the batch
        // was `threads * 8` capped at `max_reps`, so with enough
        // threads the whole budget ran before the first convergence
        // check and every cell silently cost `max_reps` replicates.)
        let batch = if next_index == 0 {
            cfg.min_reps.clamp(1, cfg.max_reps)
        } else {
            (threads * 8).clamp(1, cfg.max_reps - next_index)
        };
        let indices: Vec<usize> = (next_index..next_index + batch).collect();
        next_index += batch;

        let partials = par::scoped_chunks(
            threads,
            indices.len(),
            &indices[..],
            |_, _, slice: &[usize]| {
                let mut local = CellAccumulator::default();
                let mut scratch = EvalScratch::new();
                for &i in slice {
                    local.absorb(run_replicate_with(cfg, i, &mut scratch));
                }
                local
            },
        );
        for p in partials {
            acc.merge(p);
        }
        if acc.heads.len() >= cfg.min_reps && acc.converged(cfg.rel_tol) {
            break;
        }
    }

    CellResult {
        cfg: *cfg,
        reps: acc.heads.len(),
        heads: acc.heads.summary(),
        gateways: acc
            .gateways
            .iter()
            .map(|(a, s)| (a.name().to_string(), s.summary()))
            .collect(),
        cds: acc
            .cds
            .iter()
            .map(|(a, s)| (a.name().to_string(), s.summary()))
            .collect(),
    }
}

/// The paper's x-axis: node counts from 50 to 200.
pub const NODE_COUNTS: [usize; 7] = [50, 75, 100, 125, 150, 175, 200];

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> CellConfig {
        CellConfig {
            n: 50,
            d: 6.0,
            k: 2,
            min_reps: 4,
            max_reps: 8,
            rel_tol: 0.01,
            base_seed: 42,
        }
    }

    #[test]
    fn replicates_are_deterministic() {
        let cfg = tiny_cfg();
        let a = run_replicate(&cfg, 3);
        let b = run_replicate(&cfg, 3);
        assert_eq!(a.heads, b.heads);
        assert_eq!(a.cds, b.cds);
        let c = run_replicate(&cfg, 4);
        // Different index ⇒ different topology (almost surely
        // different metrics; compare maps to catch accidental reuse).
        assert!(a.cds != c.cds || a.heads != c.heads || a.gateways != c.gateways);
    }

    #[test]
    fn cell_runs_and_orders_algorithms() {
        let res = run_cell(&tiny_cfg(), Some(2));
        assert!(res.reps >= 4 && res.reps <= 8);
        let nc_mesh = res.cds_of(Algorithm::NcMesh).mean;
        let ac_mesh = res.cds_of(Algorithm::AcMesh).mean;
        let ac_lmst = res.cds_of(Algorithm::AcLmst).mean;
        let gmst = res.cds_of(Algorithm::GMst).mean;
        assert!(ac_mesh <= nc_mesh + 1e-9);
        assert!(ac_lmst <= ac_mesh + 1e-9);
        assert!(gmst <= ac_lmst + 1e-9);
        assert!(res.heads.mean >= 1.0);
        assert!(res.gateways_of(Algorithm::NcMesh).mean >= gmst - res.heads.mean);
    }

    #[test]
    fn first_batch_respects_min_reps() {
        // With a tolerance this loose the cell converges at the first
        // legal check; the first batch must therefore be `min_reps`
        // replicates, not `threads * 8` (which with many threads used
        // to swallow the whole `max_reps` budget before any check).
        let cfg = CellConfig {
            min_reps: 2,
            max_reps: 100,
            rel_tol: 1e9,
            ..tiny_cfg()
        };
        let res = run_cell(&cfg, Some(16));
        assert_eq!(res.reps, 2, "stopping rule must fire after min_reps");
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let cfg = tiny_cfg();
        let mut scratch = EvalScratch::new();
        for i in 0..3 {
            let warm = run_replicate_with(&cfg, i, &mut scratch);
            let cold = run_replicate(&cfg, i);
            assert_eq!(warm.heads, cold.heads);
            assert_eq!(warm.gateways, cold.gateways);
            assert_eq!(warm.cds, cold.cds);
        }
    }

    #[test]
    fn threads_do_not_change_results() {
        let cfg = CellConfig {
            max_reps: 6,
            min_reps: 6,
            ..tiny_cfg()
        };
        let a = run_cell(&cfg, Some(1));
        let b = run_cell(&cfg, Some(4));
        assert_eq!(a.reps, b.reps);
        assert!(
            (a.cds_of(Algorithm::AcLmst).mean - b.cds_of(Algorithm::AcLmst).mean).abs() < 1e-12
        );
        assert!((a.heads.mean - b.heads.mean).abs() < 1e-12);
    }
}
