//! Figure data containers, text rendering, and JSON persistence.

use crate::stats::Summary;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// One curve of a figure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (e.g. "AC-LMST").
    pub name: String,
    /// `(x, mean, ci half-width)` points.
    pub points: Vec<(f64, f64, f64)>,
}

/// One (sub)figure: a set of curves over a common x axis.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Figure {
    /// Identifier, e.g. "fig5a".
    pub id: String,
    /// Human title, e.g. "Size of CDS vs N (D=6, k=1)".
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: &str, title: &str, x_label: &str, y_label: &str) -> Self {
        Figure {
            id: id.to_string(),
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            series: Vec::new(),
        }
    }

    /// Appends a point to the named series, creating it on first use.
    pub fn push(&mut self, series: &str, x: f64, s: Summary) {
        let entry = match self.series.iter_mut().find(|c| c.name == series) {
            Some(c) => c,
            None => {
                self.series.push(Series {
                    name: series.to_string(),
                    points: Vec::new(),
                });
                self.series.last_mut().expect("just pushed")
            }
        };
        entry.points.push((x, s.mean, s.half_width));
    }

    /// Renders an aligned text table (x rows × series columns) in the
    /// style the paper's plots tabulate.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = write!(out, "{:>8}", self.x_label);
        for s in &self.series {
            let _ = write!(out, "{:>12}", s.name);
        }
        let _ = writeln!(out);
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|p| p.0).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            let _ = write!(out, "{x:>8.0}");
            for s in &self.series {
                match s.points.get(i) {
                    Some(&(_, mean, _)) => {
                        let _ = write!(out, "{mean:>12.2}");
                    }
                    None => {
                        let _ = write!(out, "{:>12}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// A document of figures, persisted as JSON for EXPERIMENTS.md.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FigureSet {
    /// All figures in generation order.
    pub figures: Vec<Figure>,
}

impl FigureSet {
    /// Adds a figure.
    pub fn push(&mut self, f: Figure) {
        self.figures.push(f);
    }

    /// Writes the set as pretty JSON, creating parent directories.
    pub fn save_json(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        let json = serde_json::to_string_pretty(self).expect("figures serialize");
        f.write_all(json.as_bytes())
    }

    /// Loads a previously saved set.
    pub fn load_json(path: &Path) -> std::io::Result<Self> {
        let data = std::fs::read_to_string(path)?;
        serde_json::from_str(&data)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(mean: f64) -> Summary {
        Summary {
            count: 10,
            mean,
            std: 1.0,
            half_width: 0.5,
        }
    }

    #[test]
    fn push_groups_by_series() {
        let mut f = Figure::new("t", "test", "N", "CDS");
        f.push("A", 50.0, s(10.0));
        f.push("B", 50.0, s(12.0));
        f.push("A", 100.0, s(20.0));
        assert_eq!(f.series.len(), 2);
        assert_eq!(f.series[0].points.len(), 2);
        assert_eq!(f.series[0].points[1], (100.0, 20.0, 0.5));
    }

    #[test]
    fn table_renders_all_series() {
        let mut f = Figure::new("fig5a", "Size of CDS (D=6, k=1)", "N", "CDS");
        f.push("NC-Mesh", 50.0, s(40.0));
        f.push("AC-LMST", 50.0, s(30.0));
        let t = f.to_table();
        assert!(t.contains("fig5a"));
        assert!(t.contains("NC-Mesh"));
        assert!(t.contains("40.00"));
        assert!(t.contains("30.00"));
    }

    #[test]
    fn json_round_trip() {
        let mut set = FigureSet::default();
        let mut f = Figure::new("x", "x", "N", "y");
        f.push("A", 1.0, s(2.0));
        set.push(f);
        let dir = std::env::temp_dir().join("adhoc-bench-test");
        let path = dir.join("figs.json");
        set.save_json(&path).unwrap();
        let loaded = FigureSet::load_json(&path).unwrap();
        assert_eq!(loaded.figures.len(), 1);
        assert_eq!(loaded.figures[0].series[0].points[0].1, 2.0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
