//! Combinatorial stability under mobility, by clustering radius `k`.
//!
//! §1 argues for small `k`: "network topology changes frequently.
//! Therefore small k may help to construct a combinatorially stable
//! system, in which the propagation of all topology updates is
//! sufficiently fast to reflect the topology change." This experiment
//! quantifies that intuition under three mobility models:
//!
//! * **head churn** — per step, the symmetric difference between
//!   consecutive clusterhead sets (relative to the head count);
//! * **CDS churn** — the same for the full AC-LMST CDS;
//! * **staleness** — the fraction of clusterheads whose `2k+1`-hop
//!   information neighborhood was invalidated by at least one edge
//!   change during the step (the larger the collection radius, the more
//!   likely the collected state is already wrong when used).
//!
//! A second table compares the mobility-aware lowest-speed election
//! priority against lowest-ID: electing slow nodes lowers head churn.
//!
//! Usage: `cargo run --release -p adhoc-bench --bin stability [--quick]`

use adhoc_bench::figures::{Figure, FigureSet};
use adhoc_bench::stats::summarize;
use adhoc_bench::{quick_mode, results_dir};
use adhoc_cluster::clustering::{cluster, MemberPolicy};
use adhoc_cluster::pipeline::{run_on, Algorithm};
use adhoc_cluster::priority::{LowestId, LowestSpeed};
use adhoc_graph::bfs::BfsScratch;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::graph::{Graph, NodeId};
use adhoc_sim::mobility::{
    DirectionConfig, GaussMarkov, GaussMarkovConfig, MobileNetwork, Mobility, RandomDirection,
    RandomWaypoint, WaypointConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Edges of `after` XOR `before`, as endpoint pairs.
fn changed_edges(before: &Graph, after: &Graph) -> Vec<(NodeId, NodeId)> {
    let mut out = Vec::new();
    for (u, v) in before.edges() {
        if !after.has_edge(u, v) {
            out.push((u, v));
        }
    }
    for (u, v) in after.edges() {
        if !before.has_edge(u, v) {
            out.push((u, v));
        }
    }
    out
}

/// Mean number of changed edges inside each head's `2k+1`-hop
/// information ball (how much of the state a head just collected is
/// already invalid one step later). Grows with the collection radius.
fn staleness(before: &Graph, heads: &[NodeId], k: u32, changed: &[(NodeId, NodeId)]) -> f64 {
    if heads.is_empty() {
        return 0.0;
    }
    let mut scratch = BfsScratch::new(before.len());
    let mut in_ball = vec![false; before.len()];
    let mut total = 0usize;
    for &h in heads {
        scratch.run(before, h, 2 * k + 1);
        for w in scratch.visited() {
            in_ball[w.index()] = true;
        }
        total += changed
            .iter()
            .filter(|(u, v)| in_ball[u.index()] || in_ball[v.index()])
            .count();
        for w in scratch.visited() {
            in_ball[w.index()] = false;
        }
    }
    total as f64 / heads.len() as f64
}

fn symmetric_difference(a: &[NodeId], b: &[NodeId]) -> usize {
    let only_a = a.iter().filter(|v| b.binary_search(v).is_err()).count();
    let only_b = b.iter().filter(|v| a.binary_search(v).is_err()).count();
    only_a + only_b
}

struct StepMetrics {
    head_churn: Vec<f64>,
    cds_churn: Vec<f64>,
    stale: Vec<f64>,
}

fn run_model<M: Mobility>(
    mut net: MobileNetwork<M>,
    k: u32,
    steps: usize,
    rng: &mut StdRng,
) -> StepMetrics {
    let mut metrics = StepMetrics {
        head_churn: Vec::new(),
        cds_churn: Vec::new(),
        stale: Vec::new(),
    };
    let mut prev_graph = net.graph().clone();
    let c = cluster(&prev_graph, k, &LowestId, MemberPolicy::IdBased);
    let mut prev_heads = c.heads.clone();
    let mut prev_cds = run_on(&prev_graph, Algorithm::AcLmst, &c).cds.nodes();
    for _ in 0..steps {
        net.step(1.0, rng);
        let changed = changed_edges(&prev_graph, net.graph());
        metrics
            .stale
            .push(staleness(&prev_graph, &prev_heads, k, &changed));
        let c = cluster(net.graph(), k, &LowestId, MemberPolicy::IdBased);
        let cds = run_on(net.graph(), Algorithm::AcLmst, &c).cds.nodes();
        metrics.head_churn.push(
            symmetric_difference(&prev_heads, &c.heads) as f64 / c.heads.len().max(1) as f64,
        );
        metrics
            .cds_churn
            .push(symmetric_difference(&prev_cds, &cds) as f64 / cds.len().max(1) as f64);
        prev_graph = net.graph().clone();
        prev_heads = c.heads;
        prev_cds = cds;
    }
    metrics
}

/// Moderate-mobility settings: topology drifts between 1-second
/// reclustering rounds instead of being torn up wholesale, which is the
/// regime where the paper's stability argument is interesting.
fn waypoint_cfg() -> WaypointConfig {
    WaypointConfig {
        side: 100.0,
        min_speed: 0.2,
        max_speed: 1.0,
        pause: 2.0,
    }
}

fn direction_cfg() -> DirectionConfig {
    DirectionConfig {
        side: 100.0,
        min_speed: 0.2,
        max_speed: 1.0,
        min_leg: 2.0,
        max_leg: 10.0,
    }
}

fn gauss_markov_cfg() -> GaussMarkovConfig {
    GaussMarkovConfig {
        side: 100.0,
        alpha: 0.85,
        mean_speed: 0.6,
        speed_sigma: 0.2,
        heading_sigma: 0.4,
        tick: 1.0,
    }
}

fn main() {
    let steps = if quick_mode() { 20 } else { 200 };
    let n = 100usize;
    let d = 8.0;
    println!("combinatorial stability (N = {n}, D = {d}, {steps} steps of 1 s, AC-LMST)");
    println!(
        "{:<10} {:>2} | {:>10} {:>10} {:>10}",
        "model", "k", "head-churn", "cds-churn", "staleness"
    );
    let mut churn_fig = Figure::new(
        "stability-cds-churn",
        "Per-step CDS churn vs k (N=100, D=8)",
        "k",
        "relative churn",
    );
    let mut stale_fig = Figure::new(
        "stability-staleness",
        "Invalidated edges per 2k+1-hop information ball (N=100, D=8)",
        "k",
        "stale edges / head / step",
    );
    for model_name in ["waypoint", "direction", "gauss-markov"] {
        for k in 1..=4u32 {
            let mut rng = StdRng::seed_from_u64(0x57AB + k as u64);
            let base = gen::geometric(&GeometricConfig::new(n, 100.0, d), &mut rng);
            let m = match model_name {
                "waypoint" => {
                    let model = RandomWaypoint::new(n, waypoint_cfg(), &mut rng);
                    run_model(
                        MobileNetwork::with_model(base.positions.clone(), base.range, model),
                        k,
                        steps,
                        &mut rng,
                    )
                }
                "direction" => {
                    let model = RandomDirection::new(n, direction_cfg(), &mut rng);
                    run_model(
                        MobileNetwork::with_model(base.positions.clone(), base.range, model),
                        k,
                        steps,
                        &mut rng,
                    )
                }
                _ => {
                    let model = GaussMarkov::new(n, gauss_markov_cfg(), &mut rng);
                    run_model(
                        MobileNetwork::with_model(base.positions.clone(), base.range, model),
                        k,
                        steps,
                        &mut rng,
                    )
                }
            };
            churn_fig.push(model_name, f64::from(k), summarize(&m.cds_churn));
            stale_fig.push(model_name, f64::from(k), summarize(&m.stale));
            println!(
                "{model_name:<10} {k:>2} | {:>10.3} {:>10.3} {:>10.3}",
                summarize(&m.head_churn).mean,
                summarize(&m.cds_churn).mean,
                summarize(&m.stale).mean,
            );
        }
    }
    let mut set = FigureSet::default();
    set.push(churn_fig);
    set.push(stale_fig);
    let out = results_dir().join("stability.json");
    set.save_json(&out).expect("write stability.json");
    eprintln!("wrote {}", out.display());

    // Mobility-aware election tradeoff: electing slow nodes costs some
    // election churn (speed estimates drift, IDs never do) but the
    // elected heads move far less, so member->head assignments survive
    // the next step more often.
    println!("\nelection priority tradeoff (waypoint, k = 2)");
    println!(
        "{:<14} {:>10} {:>11} {:>12}",
        "priority", "head-churn", "head-speed", "stale-links"
    );
    for use_speed in [false, true] {
        let mut rng = StdRng::seed_from_u64(0x57AC);
        let base = gen::geometric(&GeometricConfig::new(n, 100.0, d), &mut rng);
        let model = RandomWaypoint::new(n, waypoint_cfg(), &mut rng);
        let mut net = MobileNetwork::with_model(base.positions.clone(), base.range, model);
        let mut churn = Vec::new();
        let mut prev_heads: Vec<NodeId> = Vec::new();
        let mut prev_positions = net.positions().to_vec();
        // Exponentially smoothed speed estimates, quantized to coarse
        // bins: the election key only moves when a node's smoothed
        // speed crosses a bin boundary (hysteresis), so slow nodes are
        // preferred without the priority itself churning.
        let mut ema = vec![0.0f64; n];
        let mut head_speed = Vec::new();
        let mut stale_links = Vec::new();
        let mut prev_clustering: Option<adhoc_cluster::Clustering> = None;
        for _ in 0..steps {
            net.step(1.0, &mut rng);
            // Before re-electing: how many of last step's member->head
            // assignments are still within k hops on the new graph?
            if let Some(c) = &prev_clustering {
                let mut scratch = BfsScratch::new(n);
                let mut broken = 0usize;
                let mut members = 0usize;
                for v in 0..n as u32 {
                    let v = NodeId(v);
                    if c.is_head(v) {
                        continue;
                    }
                    members += 1;
                    scratch.run(net.graph(), c.head_of(v), 2);
                    if scratch.dist(v) > 2 {
                        broken += 1;
                    }
                }
                if members > 0 {
                    stale_links.push(broken as f64 / members as f64);
                }
            }
            for (e, (a, b)) in ema
                .iter_mut()
                .zip(net.positions().iter().zip(&prev_positions))
            {
                *e = 0.8 * *e + 0.2 * a.distance(b);
            }
            let clustering = if use_speed {
                let binned: Vec<f64> = ema.iter().map(|&e| (e / 0.25).floor() * 0.25).collect();
                cluster(
                    net.graph(),
                    2,
                    &LowestSpeed::new(&binned),
                    MemberPolicy::IdBased,
                )
            } else {
                cluster(net.graph(), 2, &LowestId, MemberPolicy::IdBased)
            };
            if !prev_heads.is_empty() {
                churn.push(
                    symmetric_difference(&prev_heads, &clustering.heads) as f64
                        / clustering.heads.len().max(1) as f64,
                );
            }
            let mean_speed: f64 = clustering
                .heads
                .iter()
                .map(|h| ema[h.index()])
                .sum::<f64>()
                / clustering.heads.len().max(1) as f64;
            head_speed.push(mean_speed);
            prev_heads.clone_from(&clustering.heads);
            prev_clustering = Some(clustering);
            prev_positions.clear(); prev_positions.extend_from_slice(net.positions());
        }
        println!(
            "{:<14} {:>10.3} {:>11.3} {:>12.3}",
            if use_speed { "lowest-speed" } else { "lowest-ID" },
            summarize(&churn).mean,
            summarize(&head_speed).mean,
            summarize(&stale_links).mean,
        );
    }
}
