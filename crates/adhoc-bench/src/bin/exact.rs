//! Approximation-ratio study against the true optimum.
//!
//! §4 uses G-MST as a *lower bound* and notes that the minimum k-hop
//! CDS is NP-complete. On small instances we can afford the real
//! optimum (branch-and-bound, `adhoc_cluster::exact`), which lets us
//! report the approximation ratio of every algorithm in the paper's
//! comparison — including how loose the G-MST "lower bound" itself is.
//!
//! Usage: `cargo run --release -p adhoc-bench --bin exact [--quick]`

use adhoc_bench::figures::{Figure, FigureSet};
use adhoc_bench::stats::summarize;
use adhoc_bench::{quick_mode, results_dir};
use adhoc_cluster::exact::{min_khop_cds, min_khop_ds, ExactConfig};
use adhoc_cluster::pipeline::{self, Algorithm, PipelineConfig};
use adhoc_graph::gen::{self, GeometricConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let reps = if quick_mode() { 3 } else { 30 };
    let sizes: &[usize] = if quick_mode() {
        &[16, 24]
    } else {
        &[16, 20, 24, 28, 32]
    };
    println!("approximation ratios vs exact minimum k-hop CDS (D = 5)");
    println!(
        "{:>4} {:>2} | {:>6} {:>6} | {:>8} {:>8} {:>8} {:>8} {:>8}",
        "N", "k", "OPT", "DS-LB", "NC-Mesh", "AC-Mesh", "NC-LMST", "AC-LMST", "G-MST"
    );
    let mut unproven = 0usize;
    let mut fig = Figure::new(
        "exact-ratios-k1",
        "Approximation ratio vs exact minimum 1-hop CDS (D=5)",
        "N",
        "CDS size / OPT",
    );
    for &n in sizes {
        for k in 1..=2u32 {
            let mut opt_sizes = Vec::new();
            let mut ds_sizes = Vec::new();
            let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); Algorithm::ALL.len()];
            for rep in 0..reps {
                let mut rng = StdRng::seed_from_u64(0xE8A + rep as u64 * 131 + n as u64);
                let net = gen::geometric(&GeometricConfig::new(n, 100.0, 5.0), &mut rng);
                let opt = min_khop_cds(&net.graph, k, &ExactConfig::default());
                if !opt.optimal {
                    unproven += 1;
                }
                let ds = min_khop_ds(&net.graph, k, &ExactConfig::default());
                opt_sizes.push(opt.size() as f64);
                ds_sizes.push(ds.size() as f64);
                for (i, alg) in Algorithm::ALL.iter().enumerate() {
                    let out = pipeline::run(&net.graph, *alg, &PipelineConfig::new(k));
                    ratios[i].push(out.cds.size() as f64 / opt.size() as f64);
                }
            }
            if k == 1 {
                for (i, alg) in Algorithm::ALL.iter().enumerate() {
                    fig.push(alg.name(), n as f64, summarize(&ratios[i]));
                }
            }
            let by_name = |alg: Algorithm| {
                let i = Algorithm::ALL.iter().position(|a| *a == alg).unwrap();
                summarize(&ratios[i]).mean
            };
            println!(
                "{n:>4} {k:>2} | {:>6.2} {:>6.2} | {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                summarize(&opt_sizes).mean,
                summarize(&ds_sizes).mean,
                by_name(Algorithm::NcMesh),
                by_name(Algorithm::AcMesh),
                by_name(Algorithm::NcLmst),
                by_name(Algorithm::AcLmst),
                by_name(Algorithm::GMst),
            );
        }
    }
    let mut set = FigureSet::default();
    set.push(fig);
    let out = results_dir().join("exact_ratios.json");
    set.save_json(&out).expect("write exact_ratios.json");
    eprintln!("wrote {}", out.display());
    if unproven == 0 {
        println!("\nall optima proven within the step budget");
    } else {
        println!("\nWARNING: {unproven} instances hit the step budget (incumbent reported)");
    }
}
