//! `churn` — the incremental-maintenance workload: per-step cost of the
//! delta engine vs rebuild-every-step, across mobility models and
//! network sizes.
//!
//! For every cell (mobility model × N) the bench pre-generates one
//! position trajectory, then replays it through two arms on
//! **identical** inputs:
//!
//! * **incremental** — a [`SpatialGrid`] updates the unit-disk topology
//!   from moved positions and the [`ChurnEngine`] consumes the edge
//!   delta: bounded BFS for dirty heads only, patched NC links, shared
//!   head-space tail (`pipeline::update_all` under the `RepairLevel`
//!   policy);
//! * **rebuild** — every step rebuilds the topology with
//!   [`gen::unit_disk_graph`], rebuilds all head labels, and re-runs the full
//!   `pipeline::run_all` evaluation on the *same clustering sequence*
//!   the incremental arm maintained (recorded in an untimed pass — the
//!   baseline is not even charged for re-election).
//!
//! Both arms checksum the structures they produce each step
//! (clusterheads, gateways, CDS sizes, link counts for all five
//! algorithms); the checksums must match exactly — that is the
//! delta-equivalence contract, enforced here on every timed run.
//!
//! Sizes follow the scalability convention (`D = 6`, `k = 2`, area side
//! scaled with `sqrt(N)` so density stays fixed). Steps are *beacon
//! periods*: `dt = 0.25` time units at pedestrian speeds, so a step
//! changes a handful of edges — the locality regime §3.3's rules are
//! about (a maintenance protocol that only hears about churn once the
//! topology has completely reshuffled has already failed). Per cell,
//! ten nodes follow the cell's mobility model over an otherwise static
//! field (data mules over a sensor deployment): per-beacon damage is
//! `O(movers · local density)` regardless of N, so the incremental
//! advantage *grows* with the field size. All-mobile control cells at
//! the paper's N = 200 pin down the adversarial extreme.
//!
//! Writes `results/BENCH_churn.json` (quick runs write
//! `BENCH_churn_quick.json`, so CI can never clobber the committed
//! measurement), then re-reads and re-parses it. Surfaced on the CLI as
//! `khop churn`.

use adhoc_bench::{probe, quick_mode, results_dir, run_mode};
use adhoc_cluster::clustering::Clustering;
use adhoc_cluster::pipeline::{self, Algorithm, EvalScratch, EvaluationOutput};
use adhoc_graph::gen::{self, GeometricConfig, SpatialGrid};
use adhoc_graph::geom::Point;
use adhoc_sim::churn::ChurnEngine;
use adhoc_sim::mobility::{
    DirectionConfig, GaussMarkov, GaussMarkovConfig, Mobility, RandomDirection, RandomWaypoint,
    WaypointConfig,
};
use adhoc_sim::movement::MovementConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::{json, Value};
use std::time::Instant;

const K: u32 = 2;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Model {
    Waypoint,
    Direction,
    GaussMarkov,
}

impl Model {
    const ALL: [Model; 3] = [Model::Waypoint, Model::Direction, Model::GaussMarkov];

    fn name(self) -> &'static str {
        match self {
            Model::Waypoint => "random-waypoint",
            Model::Direction => "random-direction",
            Model::GaussMarkov => "gauss-markov",
        }
    }
}

/// Pre-generates the whole position trajectory for one cell, so both
/// arms replay byte-identical inputs. Only `mobile` of the nodes move
/// (the rest are a static field); returns the snapshots and the
/// calibrated transmission range.
fn trajectory(
    model: Model,
    n: usize,
    side: f64,
    steps: usize,
    seed: u64,
    mobile: usize,
) -> (Vec<Vec<Point>>, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cfg = GeometricConfig::new(n, side, 6.0);
    // At fixed density large random geometric graphs are almost surely
    // disconnected; every engine phase is well-defined per component.
    cfg.require_connected = false;
    let net = gen::geometric(&cfg, &mut rng);
    let mut pos = net.positions.clone();
    let dt = 0.25;
    // The mobile subset: a partial Fisher-Yates draw of m distinct
    // nodes.
    let m = mobile.clamp(1, n);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..m {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    let movers: Vec<usize> = idx[..m].to_vec();
    let mut mover_pos: Vec<Point> = movers.iter().map(|&i| pos[i]).collect();

    let mut snapshots = Vec::with_capacity(steps + 1);
    let mut drive = |advance: &mut dyn FnMut(&mut [Point], f64, &mut StdRng),
                     rng: &mut StdRng| {
        // Warm the model to its steady state (waypoint starts with
        // every mover en route; pauses only appear after arrivals).
        advance(&mut mover_pos, 40.0, rng);
        for (slot, &i) in movers.iter().enumerate() {
            pos[i] = mover_pos[slot];
        }
        snapshots.push(pos.clone());
        for _ in 0..steps {
            advance(&mut mover_pos, dt, rng);
            for (slot, &i) in movers.iter().enumerate() {
                pos[i] = mover_pos[slot];
            }
            snapshots.push(pos.clone());
        }
    };
    match model {
        Model::Waypoint => {
            let mut model = RandomWaypoint::new(
                m,
                WaypointConfig {
                    side,
                    min_speed: 1.0,
                    max_speed: 3.0,
                    pause: 2.0,
                },
                &mut rng,
            );
            drive(&mut |p, dt, r| model.advance(p, dt, r), &mut rng);
        }
        Model::Direction => {
            let mut model = RandomDirection::new(
                m,
                DirectionConfig {
                    side,
                    min_speed: 0.5,
                    max_speed: 2.0,
                    min_leg: 2.0,
                    max_leg: 10.0,
                },
                &mut rng,
            );
            drive(&mut |p, dt, r| model.advance(p, dt, r), &mut rng);
        }
        Model::GaussMarkov => {
            let mut model = GaussMarkov::new(
                m,
                GaussMarkovConfig {
                    side,
                    alpha: 0.9,
                    mean_speed: 1.5,
                    speed_sigma: 0.5,
                    heading_sigma: 0.3,
                    tick: dt,
                },
                &mut rng,
            );
            drive(&mut |p, dt, r| model.advance(p, dt, r), &mut rng);
        }
    }
    (snapshots, net.range)
}

/// Structure checksum both arms must agree on, step by step: the
/// actual node identities (heads, every selected gateway, every
/// realized link pair), not just cardinalities — two arms choosing
/// equally many but *different* gateways must collide here.
fn checksum_eval(acc: &mut u64, eval: &EvaluationOutput) {
    let mut mix = |x: u64| {
        *acc = acc.wrapping_mul(0x100_0000_01B3).wrapping_add(x);
    };
    for h in &eval.clustering.heads {
        mix(u64::from(h.0));
    }
    mix(eval.nc_graph.link_count() as u64);
    mix(eval.ac_graph.link_count() as u64);
    for alg in Algorithm::ALL {
        let out = eval.of(alg);
        for gw in &out.selection.gateways {
            mix(u64::from(gw.0));
        }
        for &(a, b) in &out.selection.links_used {
            mix(u64::from(a.0) << 32 | u64::from(b.0));
        }
        mix(out.cds.size() as u64);
    }
}

struct CellResult {
    checksum: u64,
    secs: f64,
    churn_edges: usize,
    dirty_sum: usize,
    head_steps: usize,
}

/// Incremental arm: grid update + engine step per snapshot. Returns the
/// per-step clustering sequence on the first (recording) invocation.
fn run_incremental(
    traj: &[Vec<Point>],
    range: f64,
    record: Option<&mut Vec<Clustering>>,
) -> CellResult {
    let mut grid = SpatialGrid::build(&traj[0], range);
    // Tolerant merge rule (re-elect only when heads become adjacent):
    // the bench measures steady-state churn maintenance, not the
    // re-election policy, and a strict rule would trigger global
    // rebuilds every few beacons under continuous drift.
    let mut engine = ChurnEngine::build(
        grid.graph(),
        MovementConfig::tolerant(K, Algorithm::AcLmst, 1),
    );
    let mut recorded = record;
    let mut checksum = 0u64;
    let mut churn_edges = 0usize;
    let mut dirty_sum = 0usize;
    let mut head_steps = 0usize;
    let t = Instant::now();
    for snapshot in &traj[1..] {
        let delta = grid.update(snapshot);
        churn_edges += delta.churn();
        let report = engine.step_delta(&delta);
        dirty_sum += report.dirty_heads;
        head_steps += engine.clustering.heads.len();
        checksum_eval(&mut checksum, engine.evaluation());
        if let Some(rec) = recorded.as_deref_mut() {
            rec.push(engine.clustering.clone());
        }
    }
    CellResult {
        checksum,
        secs: t.elapsed().as_secs_f64(),
        churn_edges,
        dirty_sum,
        head_steps,
    }
}

/// Rebuild arm: from-scratch topology + labels + `run_all` per step on
/// the recorded clustering sequence (re-election cost not even
/// charged).
fn run_rebuild(traj: &[Vec<Point>], range: f64, clusterings: &[Clustering]) -> CellResult {
    let mut scratch = EvalScratch::new();
    let mut checksum = 0u64;
    let t = Instant::now();
    for (snapshot, clustering) in traj[1..].iter().zip(clusterings) {
        let g = gen::unit_disk_graph(snapshot, range);
        let eval = pipeline::run_all_with(&g, clustering, &mut scratch);
        checksum_eval(&mut checksum, &eval);
    }
    CellResult {
        checksum,
        secs: t.elapsed().as_secs_f64(),
        churn_edges: 0,
        dirty_sum: 0,
        head_steps: 0,
    }
}

fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

fn main() {
    // Ten mobile nodes over a static field (data mules crossing a
    // sensor deployment) at every size — the localized-churn regime
    // the delta engine targets: per-beacon damage is O(movers · local
    // density) regardless of N, so the advantage over rebuilding
    // everything grows with the field. The `all-mobile` control cells
    // at the paper\'s N = 200 show the adversarial extreme: when every
    // radio drifts at once the dirty fraction saturates and the
    // DIRTY_FRACTION_FALLBACK guard keeps the engine at rebuild parity
    // instead of letting per-row bookkeeping lose outright.
    let (sizes, steps, rounds): (&[usize], usize, u32) = if quick_mode() {
        (&[120], 6, 1)
    } else {
        (&[200, 500, 1000, 2000], 40, 5)
    };
    let mobile_nodes = 10usize;
    let control_n: &[usize] = if quick_mode() { &[] } else { &[200] };
    println!(
        "incremental churn engine vs rebuild-every-step (D = 6, k = {K}, dt = 0.25, {steps} steps)"
    );
    println!(
        "{:<17} {:>5} {:>7} | {:>7} {:>7} | {:>10} {:>10} | {:>7}",
        "model", "N", "mobile", "churn/s", "dirty%", "inc ms/s", "reb ms/s", "speedup"
    );
    let mut cells = Vec::new();
    for model in Model::ALL {
        let runs = sizes
            .iter()
            .map(|&n| (n, mobile_nodes))
            .chain(control_n.iter().map(|&n| (n, n)));
        for (n, mobile) in runs {
            let side = 100.0 * (n as f64 / 200.0).sqrt();
            let seed = 0xC0FFEE ^ ((n as u64) << 8) ^ model.name().len() as u64;
            let (traj, range) = trajectory(model, n, side, steps, seed, mobile);

            // Recording pass (untimed): the incremental arm's
            // clustering sequence, which the rebuild arm replays.
            let mut clusterings = Vec::with_capacity(steps);
            let recorded = run_incremental(&traj, range, Some(&mut clusterings));

            // Timed passes: min over rounds, both arms.
            let mut inc = f64::INFINITY;
            let mut reb = f64::INFINITY;
            let mut inc_result = None;
            for _ in 0..rounds {
                let r = run_incremental(&traj, range, None);
                assert_eq!(r.checksum, recorded.checksum, "incremental replay diverged");
                inc = inc.min(r.secs);
                inc_result = Some(r);
            }
            for _ in 0..rounds {
                let r = run_rebuild(&traj, range, &clusterings);
                assert_eq!(
                    r.checksum, recorded.checksum,
                    "rebuild-every-step produced different structures than the \
                     incremental engine on {} N={n} — delta equivalence violated",
                    model.name()
                );
                reb = reb.min(r.secs);
            }
            let inc_result = inc_result.expect("at least one round");
            let dirty_fraction = inc_result.dirty_sum as f64 / inc_result.head_steps.max(1) as f64;
            let speedup = reb / inc.max(1e-12);
            println!(
                "{:<17} {:>5} {:>6.0}% | {:>7.1} {:>6.1}% | {:>10.2} {:>10.2} | {:>6.2}x",
                model.name(),
                n,
                100.0 * mobile as f64 / n as f64,
                inc_result.churn_edges as f64 / steps as f64,
                100.0 * dirty_fraction,
                1e3 * inc / steps as f64,
                1e3 * reb / steps as f64,
                speedup
            );
            cells.push(json!({
                "model": model.name(),
                "n": n,
                "k": K,
                "steps": steps,
                "side": side,
                "mobile_nodes": mobile,
                "mobile_fraction": mobile as f64 / n as f64,
                "churn_edges_per_step": inc_result.churn_edges as f64 / steps as f64,
                "dirty_head_fraction": dirty_fraction,
                "incremental_secs": inc,
                "rebuild_secs": reb,
                "incremental_ms_per_step": 1e3 * inc / steps as f64,
                "rebuild_ms_per_step": 1e3 * reb / steps as f64,
                "speedup": speedup,
                "checksum": format!("{:016x}", recorded.checksum),
            }));
        }
    }

    let grid_run = json!({
        "models": Model::ALL.iter().map(|m| m.name()).collect::<Vec<_>>(),
        "sizes": sizes,
        "control_n": control_n,
        "steps": steps,
        "rounds": rounds,
        "mobile_nodes": mobile_nodes,
    });
    let doc = json!({
        "schema": "khop-churn/v1",
        "git": git_describe(),
        "mode": run_mode(),
        "quick": quick_mode(),
        "grid": grid_run,
        "metrics": probe::reference_metrics_section(),
        "cells": cells,
    });
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(if quick_mode() {
        "BENCH_churn_quick.json"
    } else {
        "BENCH_churn.json"
    });
    std::fs::write(&path, format!("{doc:#}\n")).expect("write BENCH_churn.json");
    let raw = std::fs::read_to_string(&path).expect("read back BENCH_churn.json");
    let parsed: Value = serde_json::from_str(&raw).expect("BENCH_churn.json must parse");
    assert_eq!(parsed["schema"], "khop-churn/v1");
    assert!(!parsed["cells"].as_array().expect("cells").is_empty());
    println!("wrote {}", path.display());
}
