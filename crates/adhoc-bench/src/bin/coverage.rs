//! Figure 2 quantified: at k = 1, how much does each neighbor rule
//! keep? The paper's §3.1 argument is a strict containment chain —
//! `G'' (A-NCR)  ⊆  2.5-hops coverage (Wu/Lou)  ⊆  3 hops (NC)` —
//! with A-NCR keeping the least. This experiment measures the pair
//! counts and the resulting mesh gateway counts for all three rules.
//!
//! Usage: `cargo run --release -p adhoc-bench --bin coverage [--quick]`

use adhoc_bench::quick_mode;
use adhoc_bench::stats::summarize;
use adhoc_cluster::adjacency::NeighborRule;
use adhoc_cluster::clustering::{cluster, MemberPolicy};
use adhoc_cluster::gateway;
use adhoc_cluster::priority::LowestId;
use adhoc_cluster::virtual_graph::VirtualGraph;
use adhoc_cluster::wulou;
use adhoc_graph::gen::{self, GeometricConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let reps = if quick_mode() { 5 } else { 50 };
    println!(
        "{:>4} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "N", "AC-pairs", "2.5-prs", "NC-pairs", "AC-gw", "2.5-gw", "NC-gw"
    );
    for n in [50usize, 100, 150, 200] {
        let mut pair_counts = [vec![], vec![], vec![]];
        let mut gw_counts = [vec![], vec![], vec![]];
        for rep in 0..reps {
            let mut rng = StdRng::seed_from_u64(0xC0F + rep as u64 * 11 + n as u64);
            let net = gen::geometric(&GeometricConfig::new(n, 100.0, 6.0), &mut rng);
            let c = cluster(&net.graph, 1, &LowestId, MemberPolicy::IdBased);
            let (ac, wl, nc) =
                wulou::containment_chain(&net.graph, &c).expect("containment chain must hold");
            pair_counts[0].push(ac as f64);
            pair_counts[1].push(wl as f64);
            pair_counts[2].push(nc as f64);

            let ac_vg = VirtualGraph::build(&net.graph, &c, NeighborRule::Adjacent);
            let nc_vg = VirtualGraph::build(&net.graph, &c, NeighborRule::All2kPlus1);
            gw_counts[0].push(gateway::mesh(&ac_vg, &c).gateway_count() as f64);
            gw_counts[1].push(wulou::mesh25(&net.graph, &c).gateway_count() as f64);
            gw_counts[2].push(gateway::mesh(&nc_vg, &c).gateway_count() as f64);
        }
        println!(
            "{n:>4} | {:>8.1} {:>8.1} {:>8.1} | {:>8.1} {:>8.1} {:>8.1}",
            summarize(&pair_counts[0]).mean,
            summarize(&pair_counts[1]).mean,
            summarize(&pair_counts[2]).mean,
            summarize(&gw_counts[0]).mean,
            summarize(&gw_counts[1]).mean,
            summarize(&gw_counts[2]).mean,
        );
    }
    println!("\ncontainment AC ⊆ 2.5-hops ⊆ NC verified on every replicate");
}
