//! Renders saved figure JSON (`results/*.json`) as SVG line charts —
//! the visual counterpart of the text tables the figure binaries
//! print.
//!
//! Usage: `cargo run --release -p adhoc-bench --bin plot [file.json ...]`
//! With no arguments, renders every `.json` in the results directory.

use adhoc_bench::figures::FigureSet;
use adhoc_bench::plot::render_line_chart;
use adhoc_bench::results_dir;
use std::path::PathBuf;

fn main() {
    let args: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    let inputs: Vec<PathBuf> = if args.is_empty() {
        let dir = results_dir();
        let mut found: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| {
                eprintln!("plot: cannot read {}: {e}", dir.display());
                std::process::exit(2);
            })
            .filter_map(|entry| {
                let p = entry.ok()?.path();
                (p.extension().is_some_and(|x| x == "json")).then_some(p)
            })
            .collect();
        found.sort();
        found
    } else {
        args
    };
    if inputs.is_empty() {
        eprintln!("plot: no figure JSON files found");
        std::process::exit(1);
    }
    let mut rendered = 0usize;
    for input in inputs {
        let set = match FigureSet::load_json(&input) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("plot: skipping {} ({e})", input.display());
                continue;
            }
        };
        for fig in &set.figures {
            let svg = render_line_chart(fig);
            let out = input.with_file_name(format!("{}.svg", fig.id));
            std::fs::write(&out, svg).unwrap_or_else(|e| {
                eprintln!("plot: cannot write {}: {e}", out.display());
                std::process::exit(2);
            });
            println!("wrote {}", out.display());
            rendered += 1;
        }
    }
    println!("{rendered} chart(s) rendered");
}
