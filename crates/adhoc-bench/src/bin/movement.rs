//! Movement-sensitive maintenance vs rebuild-every-step (§5 future
//! work, realized).
//!
//! A mobile network is stepped for many beacon periods; three policies
//! keep the connected k-hop clustering alive:
//!
//! * **rebuild** — re-run the full pipeline every step (the naive
//!   baseline a simulator-only evaluation implies);
//! * **strict**  — the movement-sensitive policy with `merge_distance
//!   = k`: repairs only what broke, re-elects the moment k-hop
//!   independence is violated;
//! * **tolerant** — `merge_distance = k/2` (min 0): heads may drift
//!   closer before a re-election is forced, trading structure quality
//!   for fewer full rebuilds.
//!
//! Reported per policy: mean maintenance cost per step (node-rounds),
//! the repair-level distribution, head churn, and the fraction of
//! steps with a verified-valid CDS.
//!
//! Usage: `cargo run --release -p adhoc-bench --bin movement [--quick]`

use adhoc_bench::quick_mode;
use adhoc_cluster::pipeline::Algorithm;
use adhoc_graph::connectivity;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::NodeId;
use adhoc_sim::mobility::{MobileNetwork, RandomWaypoint, WaypointConfig};
use adhoc_sim::movement::{MaintainedCds, MovementConfig, RepairLevel};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct PolicyOutcome {
    cost_per_step: f64,
    level_counts: [usize; 4],
    head_churn: f64,
    valid_fraction: f64,
}

fn drive(cfg: MovementConfig, steps: usize, seed: u64) -> PolicyOutcome {
    let n = 100usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let base = gen::geometric(&GeometricConfig::new(n, 100.0, 10.0), &mut rng);
    let wp = WaypointConfig {
        side: 100.0,
        min_speed: 0.2,
        max_speed: 1.0,
        pause: 2.0,
    };
    let model = RandomWaypoint::new(n, wp, &mut rng);
    let mut mobile = MobileNetwork::with_model(base.positions.clone(), base.range, model);
    let mut m = MaintainedCds::build(mobile.graph(), cfg);
    let mut cost = 0usize;
    let mut levels = [0usize; 4];
    let mut churn = 0usize;
    let mut valid = 0usize;
    let mut judged = 0usize;
    let mut prev_heads: Vec<NodeId> = m.clustering.heads.clone();
    for _ in 0..steps {
        mobile.step(1.0, &mut rng);
        let r = m.step(mobile.graph());
        cost += r.cost;
        levels[match r.level {
            RepairLevel::None => 0,
            RepairLevel::Reaffiliate => 1,
            RepairLevel::Gateways => 2,
            RepairLevel::Full => 3,
        }] += 1;
        churn += m
            .clustering
            .heads
            .iter()
            .filter(|h| prev_heads.binary_search(h).is_err())
            .count();
        if connectivity::is_connected(mobile.graph()) {
            judged += 1;
            if r.valid {
                valid += 1;
            }
        }
        prev_heads.clone_from(&m.clustering.heads);
    }
    PolicyOutcome {
        cost_per_step: cost as f64 / steps as f64,
        level_counts: levels,
        head_churn: churn as f64 / steps as f64,
        valid_fraction: if judged == 0 {
            1.0
        } else {
            valid as f64 / judged as f64
        },
    }
}

fn rebuild_baseline(steps: usize, seed: u64) -> PolicyOutcome {
    // Rebuild-every-step expressed through the same machinery: a
    // MaintainedCds whose caller force-rebuilds by constructing anew,
    // charged at rebuild_cost.
    let n = 100usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let base = gen::geometric(&GeometricConfig::new(n, 100.0, 10.0), &mut rng);
    let wp = WaypointConfig {
        side: 100.0,
        min_speed: 0.2,
        max_speed: 1.0,
        pause: 2.0,
    };
    let model = RandomWaypoint::new(n, wp, &mut rng);
    let mut mobile = MobileNetwork::with_model(base.positions.clone(), base.range, model);
    let cfg = MovementConfig::strict(2, Algorithm::AcLmst);
    let mut m = MaintainedCds::build(mobile.graph(), cfg);
    let mut cost = 0usize;
    let mut churn = 0usize;
    let mut valid = 0usize;
    let mut judged = 0usize;
    let mut prev_heads: Vec<NodeId> = m.clustering.heads.clone();
    for _ in 0..steps {
        mobile.step(1.0, &mut rng);
        cost += m.rebuild_cost(mobile.graph());
        m = MaintainedCds::build(mobile.graph(), cfg);
        churn += m
            .clustering
            .heads
            .iter()
            .filter(|h| prev_heads.binary_search(h).is_err())
            .count();
        if connectivity::is_connected(mobile.graph()) {
            judged += 1;
            if m.cds.verify(mobile.graph(), 2).is_ok() {
                valid += 1;
            }
        }
        prev_heads.clone_from(&m.clustering.heads);
    }
    PolicyOutcome {
        cost_per_step: cost as f64 / steps as f64,
        level_counts: [0, 0, 0, steps],
        head_churn: churn as f64 / steps as f64,
        valid_fraction: if judged == 0 {
            1.0
        } else {
            valid as f64 / judged as f64
        },
    }
}

fn main() {
    let steps = if quick_mode() { 40 } else { 400 };
    let seed = 0x30FE;
    println!("movement-sensitive maintenance (N = 100, D = 10, k = 2, {steps} steps)");
    println!(
        "{:<9} | {:>10} | {:>5} {:>6} {:>5} {:>5} | {:>10} {:>7}",
        "policy", "cost/step", "none", "reaff", "gw", "full", "head-churn", "valid"
    );
    let rows: [(&str, PolicyOutcome); 3] = [
        ("rebuild", rebuild_baseline(steps, seed)),
        (
            "strict",
            drive(MovementConfig::strict(2, Algorithm::AcLmst), steps, seed),
        ),
        (
            "tolerant",
            drive(
                MovementConfig::tolerant(2, Algorithm::AcLmst, 1),
                steps,
                seed,
            ),
        ),
    ];
    for (name, o) in rows {
        println!(
            "{name:<9} | {:>10.1} | {:>5} {:>6} {:>5} {:>5} | {:>10.2} {:>6.1}%",
            o.cost_per_step,
            o.level_counts[0],
            o.level_counts[1],
            o.level_counts[2],
            o.level_counts[3],
            o.head_churn,
            o.valid_fraction * 100.0
        );
    }
}
