//! Programmatically checks the claims of the second-pass extensions,
//! printing PASS/FAIL per claim — the regression harness behind the
//! extension sections of EXPERIMENTS.md.
//!
//! Claims checked:
//! 1. Every algorithm's CDS is bounded below by the exact optimum, in
//!    the paper's ordering (Mesh ≥ LMST ≥ G-MST ≥ OPT, AC ≤ NC).
//! 2. The G-MST "lower bound" is loose against the true optimum
//!    (ratio > 1.2 on average) — the clustering pins it away.
//! 3. Under contention, the CDS backbone transmits less and collides
//!    less than blind flooding at every window size.
//! 4. CDS churn under mobility grows with k (combinatorial stability
//!    favors small k).
//! 5. Movement-sensitive maintenance costs less than rebuild-per-step
//!    while keeping the structure valid on every connected step.
//!
//! Usage: `cargo run --release -p adhoc-bench --bin claims_ext [--quick]`

use adhoc_bench::quick_mode;
use adhoc_cluster::clustering::{cluster, MemberPolicy};
use adhoc_cluster::exact::{min_khop_cds, ExactConfig};
use adhoc_cluster::pipeline::{self, run_on, Algorithm, PipelineConfig};
use adhoc_cluster::priority::LowestId;
use adhoc_graph::connectivity;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::NodeId;
use adhoc_sim::broadcast::Strategy;
use adhoc_sim::mac::{simulate_with_mac, MacConfig};
use adhoc_sim::mobility::{MobileNetwork, RandomWaypoint, WaypointConfig};
use adhoc_sim::movement::{MaintainedCds, MovementConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let reps = if quick_mode() { 4 } else { 20 };
    let mut failures = 0;
    let mut check = |name: &str, ok: bool, detail: String| {
        println!("[{}] {name}", if ok { "PASS" } else { "FAIL" });
        println!("       {detail}");
        if !ok {
            failures += 1;
        }
    };

    // Claims 1 + 2: exact optimum bounds and ordering.
    {
        let mut ok_bound = true;
        let mut ok_order = true;
        let mut ratio_sum = 0.0;
        let mut count = 0;
        for rep in 0..reps {
            let mut rng = StdRng::seed_from_u64(0xCE1 + rep as u64 * 97);
            let net = gen::geometric(&GeometricConfig::new(22, 100.0, 5.0), &mut rng);
            for k in 1..=2u32 {
                let opt = min_khop_cds(&net.graph, k, &ExactConfig::default());
                let clustering = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
                let size = |alg| run_on(&net.graph, alg, &clustering).cds.size();
                let (ncm, acm) = (size(Algorithm::NcMesh), size(Algorithm::AcMesh));
                let (ncl, acl) = (size(Algorithm::NcLmst), size(Algorithm::AcLmst));
                let gm = size(Algorithm::GMst);
                ok_bound &= opt.optimal
                    && [ncm, acm, ncl, acl, gm].iter().all(|&s| s >= opt.size());
                ok_order &= acm <= ncm && acl <= acm && ncl <= ncm;
                ratio_sum += gm as f64 / opt.size() as f64;
                count += 1;
            }
        }
        check(
            "1: exact optimum lower-bounds all algorithms, paper ordering holds",
            ok_bound && ok_order,
            format!("{count} instances, all optima proven"),
        );
        let mean_ratio = ratio_sum / count as f64;
        check(
            "2: G-MST is a loose bound vs the true optimum",
            mean_ratio > 1.2,
            format!("mean G-MST/OPT ratio = {mean_ratio:.3}"),
        );
    }

    // Claim 3: backbone beats flooding under contention.
    {
        let mut ok = true;
        let mut detail = String::new();
        for cw in [2u32, 8, 32] {
            let (mut ftx, mut fcol, mut btx, mut bcol) = (0u64, 0u64, 0u64, 0u64);
            for rep in 0..reps {
                let mut rng = StdRng::seed_from_u64(0xCE2 + rep as u64 * 131);
                let net = gen::geometric(&GeometricConfig::new(150, 100.0, 10.0), &mut rng);
                let c = cluster(&net.graph, 1, &LowestId, MemberPolicy::IdBased);
                let out = run_on(&net.graph, Algorithm::AcLmst, &c);
                let cfg = MacConfig { cw, ..MacConfig::default() };
                let f = simulate_with_mac(
                    &net.graph, &c, &out.cds, NodeId(0), Strategy::BlindFlood, &cfg, &mut rng,
                );
                let b = simulate_with_mac(
                    &net.graph, &c, &out.cds, NodeId(0), Strategy::Backbone, &cfg, &mut rng,
                );
                ftx += f.transmissions;
                fcol += f.collisions;
                btx += b.transmissions;
                bcol += b.collisions;
            }
            ok &= btx < ftx && bcol < fcol;
            detail.push_str(&format!("cw={cw}: tx {btx}<{ftx}, coll {bcol}<{fcol}; "));
        }
        check("3: backbone beats flooding under contention at every cw", ok, detail);
    }

    // Claim 4: CDS churn grows with k.
    {
        let steps = if quick_mode() { 30 } else { 120 };
        let mut churn_by_k = Vec::new();
        for k in [1u32, 4] {
            let mut rng = StdRng::seed_from_u64(0xCE3);
            let base = gen::geometric(&GeometricConfig::new(100, 100.0, 8.0), &mut rng);
            let wp = WaypointConfig {
                side: 100.0,
                min_speed: 0.2,
                max_speed: 1.0,
                pause: 2.0,
            };
            let model = RandomWaypoint::new(100, wp, &mut rng);
            let mut net = MobileNetwork::with_model(base.positions.clone(), base.range, model);
            let mut prev = pipeline::run(net.graph(), Algorithm::AcLmst, &PipelineConfig::new(k))
                .cds
                .nodes();
            let mut churn = 0usize;
            let mut total = 0usize;
            for _ in 0..steps {
                net.step(1.0, &mut rng);
                let cds = pipeline::run(net.graph(), Algorithm::AcLmst, &PipelineConfig::new(k))
                    .cds
                    .nodes();
                churn += cds.iter().filter(|v| prev.binary_search(v).is_err()).count()
                    + prev.iter().filter(|v| cds.binary_search(v).is_err()).count();
                total += cds.len();
                prev = cds;
            }
            churn_by_k.push(churn as f64 / total.max(1) as f64);
        }
        check(
            "4: CDS churn grows with k (combinatorial stability)",
            churn_by_k[1] > churn_by_k[0],
            format!("relative churn k=1: {:.3}, k=4: {:.3}", churn_by_k[0], churn_by_k[1]),
        );
    }

    // Claim 5: movement-sensitive maintenance cheaper than rebuild and
    // always valid on connected steps.
    {
        let steps = if quick_mode() { 40 } else { 200 };
        let mut rng = StdRng::seed_from_u64(0xCE4);
        let base = gen::geometric(&GeometricConfig::new(100, 100.0, 10.0), &mut rng);
        let wp = WaypointConfig {
            side: 100.0,
            min_speed: 0.2,
            max_speed: 1.0,
            pause: 2.0,
        };
        let model = RandomWaypoint::new(100, wp, &mut rng);
        let mut net = MobileNetwork::with_model(base.positions.clone(), base.range, model);
        let mut m =
            MaintainedCds::build(net.graph(), MovementConfig::strict(2, Algorithm::AcLmst));
        let mut policy_cost = 0usize;
        let mut rebuild_cost = 0usize;
        let mut always_valid = true;
        for _ in 0..steps {
            net.step(1.0, &mut rng);
            rebuild_cost += m.rebuild_cost(net.graph());
            let r = m.step(net.graph());
            policy_cost += r.cost;
            if connectivity::is_connected(net.graph()) {
                always_valid &= r.valid;
            }
        }
        check(
            "5: movement-sensitive maintenance cheaper than rebuild, always valid",
            policy_cost < rebuild_cost && always_valid,
            format!(
                "policy {policy_cost} vs rebuild {rebuild_cost} node-rounds ({:.0}% saved), valid = {always_valid}",
                100.0 * (1.0 - policy_cost as f64 / rebuild_cost.max(1) as f64)
            ),
        );
    }

    if failures > 0 {
        eprintln!("\n{failures} claim(s) FAILED");
        std::process::exit(1);
    }
    println!("\nall extension claims PASS");
}
