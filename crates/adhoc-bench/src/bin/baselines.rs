//! Related-work baselines the paper positions itself against (§1–§2):
//!
//! * **cluster vs core** election: the paper chooses the iterative
//!   cluster algorithm over the one-round core algorithm; this
//!   experiment quantifies the head-count and CDS cost of that choice.
//! * **border-node gateways** (k = 1 only): the classical baseline
//!   versus A-NCR + LMSTGA.
//!
//! Usage: `cargo run --release -p adhoc-bench --bin baselines [--quick]`

use adhoc_bench::quick_mode;
use adhoc_bench::stats::summarize;
use adhoc_cluster::border;
use adhoc_cluster::cds::Cds;
use adhoc_cluster::clustering::{cluster, MemberPolicy};
use adhoc_cluster::core_algorithm::{core_cluster, verify_core};
use adhoc_cluster::pipeline::{run_on, Algorithm};
use adhoc_cluster::priority::LowestId;
use adhoc_graph::gen::{self, GeometricConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let reps = if quick_mode() { 5 } else { 50 };

    println!("== cluster vs core election (N=100, D=6, AC-LMST gateways) ==");
    println!(
        "{:>3} {:>14} {:>12} {:>14} {:>12}",
        "k", "cluster-heads", "cluster-CDS", "core-heads", "core-CDS"
    );
    for k in 1..=4u32 {
        let (mut ch, mut cc, mut kh, mut kc) = (vec![], vec![], vec![], vec![]);
        for rep in 0..reps {
            let mut rng = StdRng::seed_from_u64(0xBA5E + rep as u64);
            let net = gen::geometric(&GeometricConfig::new(100, 100.0, 6.0), &mut rng);
            let cl = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            let co = core_cluster(&net.graph, k, &LowestId);
            verify_core(&net.graph, &co).expect("valid core clustering");
            ch.push(cl.head_count() as f64);
            kh.push(co.head_count() as f64);
            cc.push(run_on(&net.graph, Algorithm::AcLmst, &cl).cds.size() as f64);
            kc.push(run_on(&net.graph, Algorithm::AcLmst, &co).cds.size() as f64);
        }
        println!(
            "{k:>3} {:>14.1} {:>12.1} {:>14.1} {:>12.1}",
            summarize(&ch).mean,
            summarize(&cc).mean,
            summarize(&kh).mean,
            summarize(&kc).mean
        );
    }

    println!("\n== border-node gateways vs the paper's algorithms (k=1) ==");
    println!(
        "{:>4} {:>10} {:>10} {:>10} {:>10}",
        "N", "border", "NC-Mesh", "AC-LMST", "G-MST"
    );
    for n in [50usize, 100, 150, 200] {
        let (mut b, mut m, mut l, mut g) = (vec![], vec![], vec![], vec![]);
        for rep in 0..reps {
            let mut rng = StdRng::seed_from_u64(0xB0D7 + rep as u64 * 31 + n as u64);
            let net = gen::geometric(&GeometricConfig::new(n, 100.0, 6.0), &mut rng);
            let cl = cluster(&net.graph, 1, &LowestId, MemberPolicy::IdBased);
            let bsel = border::border_gateways(&net.graph, &cl);
            let bcds = Cds::assemble(&cl, &bsel);
            bcds.verify(&net.graph, 1).expect("border CDS valid at k=1");
            b.push(bcds.size() as f64);
            m.push(run_on(&net.graph, Algorithm::NcMesh, &cl).cds.size() as f64);
            l.push(run_on(&net.graph, Algorithm::AcLmst, &cl).cds.size() as f64);
            g.push(run_on(&net.graph, Algorithm::GMst, &cl).cds.size() as f64);
        }
        println!(
            "{n:>4} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            summarize(&b).mean,
            summarize(&m).mean,
            summarize(&l).mean,
            summarize(&g).mean
        );
    }
}
