//! High-level clustering experiment (§2): recursive clustering over
//! clusterheads. Reports the head count per level and the reduction
//! factor — the mechanism that lets clustering "support even larger
//! networks".
//!
//! Usage: `cargo run --release -p adhoc-bench --bin hierarchy [--quick]`

use adhoc_bench::quick_mode;
use adhoc_bench::stats::summarize;
use adhoc_cluster::clustering::MemberPolicy;
use adhoc_cluster::hierarchy::Hierarchy;
use adhoc_graph::gen::{self, GeometricConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let reps = if quick_mode() { 3 } else { 25 };
    println!(
        "{:>5} {:>3} {:>10} {:>10} {:>10} {:>10}",
        "N", "k", "level0", "level1", "level2", "depth"
    );
    for n in [100usize, 200, 400] {
        for k in [1u32, 2] {
            let mut lvl = [Vec::new(), Vec::new(), Vec::new()];
            let mut depth = Vec::new();
            for rep in 0..reps {
                let mut rng = StdRng::seed_from_u64(0x41E + rep as u64 * 7 + n as u64);
                let net = gen::geometric(&GeometricConfig::new(n, 100.0, 6.0), &mut rng);
                let h = Hierarchy::build(&net.graph, &[k, k, k], MemberPolicy::IdBased);
                let counts = h.head_counts();
                for (i, s) in lvl.iter_mut().enumerate() {
                    s.push(counts.get(i).copied().unwrap_or(1) as f64);
                }
                depth.push(h.depth() as f64);
            }
            println!(
                "{n:>5} {k:>3} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                summarize(&lvl[0]).mean,
                summarize(&lvl[1]).mean,
                summarize(&lvl[2]).mean,
                summarize(&depth).mean
            );
        }
    }
    println!("\nlevelX = clusterheads surviving at that level (1.0 = collapsed)");
}
