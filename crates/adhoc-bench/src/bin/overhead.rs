//! §5 future-work experiment: communication overhead vs k.
//!
//! "Communication overhead increases with the growth of the value of
//! k. We will perform some in-depth simulation which should help in
//! analyzing the tradeoff between communication overhead and
//! efficiency of k-hop." This binary runs that simulation: total
//! transmissions of the distributed protocol per phase and per k,
//! against the CDS size the same k buys.
//!
//! Usage: `cargo run --release -p adhoc-bench --bin overhead [--quick]`

use adhoc_bench::figures::{Figure, FigureSet};
use adhoc_bench::stats::summarize;
use adhoc_bench::{quick_mode, results_dir};
use adhoc_cluster::pipeline::Algorithm;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_sim::protocol::{run_protocol, ProtocolConfig};
use adhoc_sim::Phase;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let reps = if quick_mode() { 3 } else { 20 };
    let n = 100;
    let mut msg_fig = Figure::new(
        "overhead-msgs",
        "Distributed AC-LMST transmissions vs k (N=100, D=6)",
        "k",
        "Transmissions",
    );
    let mut cds_fig = Figure::new(
        "overhead-cds",
        "CDS size bought by each k (same runs)",
        "k",
        "Size of CDS",
    );
    println!(
        "{:>3} {:>12} {:>12} {:>10} {:>10}",
        "k", "msgs(mean)", "per-node", "CDS", "makespan"
    );
    for k in 1..=4u32 {
        let mut totals = Vec::new();
        let mut cds_sizes = Vec::new();
        let mut makespans = Vec::new();
        let mut phase_totals: Vec<(Phase, Vec<f64>)> =
            Phase::ALL.iter().map(|&p| (p, Vec::new())).collect();
        for rep in 0..reps {
            let mut rng = StdRng::seed_from_u64(0xBEEF + rep as u64);
            let net = gen::geometric(&GeometricConfig::new(n, 100.0, 6.0), &mut rng);
            let run = run_protocol(&net.graph, &ProtocolConfig::new(k, Algorithm::AcLmst));
            totals.push(run.stats.total() as f64);
            cds_sizes.push((run.heads.len() + run.gateways.len()) as f64);
            makespans.push(run.stats.makespan as f64);
            for (p, v) in phase_totals.iter_mut() {
                v.push(run.stats.phase_total(*p) as f64);
            }
        }
        let t = summarize(&totals);
        let c = summarize(&cds_sizes);
        let m = summarize(&makespans);
        println!(
            "{k:>3} {:>12.0} {:>12.1} {:>10.1} {:>10.0}",
            t.mean,
            t.mean / n as f64,
            c.mean,
            m.mean
        );
        for (p, v) in &phase_totals {
            let s = summarize(v);
            if s.mean > 0.0 {
                println!("      {:<20} {:>10.0}", p.name(), s.mean);
            }
        }
        msg_fig.push("AC-LMST", f64::from(k), t);
        cds_fig.push("AC-LMST", f64::from(k), c);
    }
    let mut set = FigureSet::default();
    set.push(msg_fig);
    set.push(cds_fig);
    let out = results_dir().join("overhead.json");
    set.save_json(&out).expect("write overhead.json");
    eprintln!("wrote {}", out.display());
}
