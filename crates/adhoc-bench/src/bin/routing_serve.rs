//! `routing_serve` — throughput of the route-serving subsystem:
//! compiled [`RoutePlan`] serving (single- and multi-worker) versus
//! the legacy per-query-BFS router, on **identical query batches with
//! checksummed-equal walks**.
//!
//! Arms, per cell (one cell = network × k × algorithm backbone):
//!
//! * **bfs** — the seed-era [`ClusterRouter`]: every query resolves
//!   its ascent and descent with a bounded BFS (scratch threaded, no
//!   per-query scratch allocation — the repaired baseline, not a
//!   strawman), routing over exactly the same backbone link set;
//! * **plan** — the compiled plan through a single-worker
//!   [`QueryEngine`]: zero per-query BFS, `O(route length)` pointer
//!   chasing;
//! * **plan×W** — the same plan through `std::thread::scope` workers
//!   (`W = max(2, available_parallelism)`).
//!
//! Every arm folds per-walk checksums in pair order; the fold must
//! collide across arms — byte-identical walks are the precondition for
//! comparing their throughput at all. The run **fails** if the
//! compiled plan is not strictly faster than per-query BFS on the
//! largest cell (the CI gate, `--quick` included), and the full run
//! additionally requires ≥ 5× there (the committed record's claim).
//!
//! The grid covers all five algorithms × k ∈ 1..=4 at N = 600 under a
//! uniform mix; the largest cell (N = 2400, k = 4, AC-LMST) is also
//! measured under the hotspot and locality-biased mixes. Past the
//! grid, **engine-only** cells (no BFS arm — hours at that scale) push
//! N to 10⁴ and 10⁵: the 10⁴ cell dual-measures the forced dense and
//! hub inter-table layouts (served checksums must collide, hub bytes
//! must undercut dense bytes), the 10⁵ cell compiles under `Auto` and
//! must come out hub-labeled below 10% of the projected dense `h × h`
//! table; a repair micro-bench re-weights one virtual link and times
//! the hub layout's dirty-hub re-sweeps against the dense layout's
//! unavoidable all-pairs recompute. Writes
//! `results/BENCH_routing.json` (quick runs write
//! `BENCH_routing_quick.json`, so CI can never clobber the committed
//! measurement), then re-reads and re-parses it. Surfaced on the CLI
//! as `khop route`.
//!
//! [`RoutePlan`]: adhoc_cluster::routing::RoutePlan
//! [`ClusterRouter`]: adhoc_cluster::routing::ClusterRouter
//! [`QueryEngine`]: adhoc_cluster::routing::QueryEngine

use adhoc_bench::{probe, quick_mode, results_dir, run_mode};
use adhoc_cluster::clustering::{self, MemberPolicy};
use adhoc_cluster::pipeline::{self, Algorithm, EvalScratch};
use adhoc_cluster::priority::LowestId;
use adhoc_cluster::routing::{
    fold_checksums, walk_checksum, ClusterRouter, LegacyScratch, Mix, QueryEngine, RoutePlan,
    TableStats, Workload, AUTO_HUB_THRESHOLD_BYTES, UNROUTABLE,
};
use adhoc_cluster::virtual_graph::VirtualGraph;
use adhoc_graph::connectivity;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::graph::Graph;
use adhoc_graph::par::Parallelism;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::{json, Value};
use std::time::Instant;

/// Times `f` (which serves one whole batch and returns its checksum):
/// calibrates an iteration count so each timed window is long enough
/// to trust, then takes the best window over `rounds`.
fn best_qps<F: FnMut() -> u64>(mut f: F, queries: usize, rounds: usize) -> (f64, u64) {
    let t = Instant::now();
    let mut checksum = f(); // warmup + calibration
    let once = t.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.04 / once).ceil() as usize).clamp(1, 2000);
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t = Instant::now();
        for _ in 0..iters {
            checksum = f();
        }
        best = best.min(t.elapsed().as_secs_f64() / iters as f64);
    }
    (queries as f64 / best, checksum)
}

struct CellOutcome {
    cell: Value,
    plan_qps: f64,
    bfs_qps: f64,
    scaling: f64,
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    g: &Graph,
    net_connected: bool,
    n: usize,
    d: f64,
    k: u32,
    alg: Algorithm,
    mix: Mix,
    queries: usize,
    rounds: usize,
    workers: usize,
    seed: u64,
) -> CellOutcome {
    use adhoc_cluster::routing::InterMode;
    let c = clustering::cluster(g, k, &LowestId, MemberPolicy::IdBased);
    let mut scratch = EvalScratch::new();
    let eval = pipeline::run_all_with(g, &c, &mut scratch);
    let links = eval.selected_links(alg);

    let t = Instant::now();
    let plan = RoutePlan::compile(g, &c, scratch.labels(), links.iter().copied());
    let build_secs = t.elapsed().as_secs_f64();

    // Parallel compile arm: same plan, `workers`-wide pool. The
    // equality assert is the compile-path determinism guard.
    let t = Instant::now();
    let par_plan = RoutePlan::compile_tuned(
        g,
        &c,
        scratch.labels(),
        links.iter().copied(),
        InterMode::Auto,
        Parallelism::new(workers),
    );
    let build_par_secs = t.elapsed().as_secs_f64();
    assert_eq!(
        par_plan, plan,
        "{alg} k={k}: parallel compile diverged from serial"
    );

    let bfs_router = ClusterRouter::with_graph(&c, VirtualGraph::from_links(&c.heads, links));

    let workload = Workload::new(&plan);
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs = workload.generate(&plan, mix, queries, &mut rng);

    // Reference pass: per-pair answers + the stats the record keeps.
    let reference = QueryEngine::new(&plan).route_many(&pairs);
    let routable = pairs.len() - reference.unreachable;
    let mean_hops = if routable == 0 {
        0.0
    } else {
        reference.total_hops as f64 / routable as f64
    };

    let (plan_qps, plan_sum) =
        best_qps(|| QueryEngine::new(&plan).route_many(&pairs).checksum, queries, rounds);
    let (multi_qps, multi_sum) = best_qps(
        || QueryEngine::with_workers(&plan, workers).route_many(&pairs).checksum,
        queries,
        rounds,
    );
    let mut sums = vec![0u64; pairs.len()];
    let (bfs_qps, bfs_sum) = best_qps(
        || {
            let mut scratch = LegacyScratch::new();
            for (i, &(u, v)) in pairs.iter().enumerate() {
                sums[i] = match bfs_router.route_with(g, u, v, &mut scratch) {
                    Some(w) => walk_checksum(&w),
                    None => 0,
                };
            }
            fold_checksums(&sums)
        },
        queries,
        rounds,
    );
    assert_eq!(
        plan_sum, reference.checksum,
        "{alg} k={k} {}: plan replay diverged",
        mix.name()
    );
    assert_eq!(
        multi_sum, plan_sum,
        "{alg} k={k} {}: multi-worker walks diverged from single-worker",
        mix.name()
    );
    assert_eq!(
        bfs_sum, plan_sum,
        "{alg} k={k} {}: per-query-BFS walks diverged from the compiled plan \
         — the arms are not serving the same routes",
        mix.name()
    );

    let tables = TableStats::measure(g, &c);
    let speedup = plan_qps / bfs_qps.max(1e-12);
    let scaling = multi_qps / plan_qps.max(1e-12);
    println!(
        "{:<8} {:>5} {:>2} {:>8} | {:>5} {:>5} | {:>9.0} {:>9.0} {:>9.0} | {:>6.2}x {:>5.2}x",
        alg.name(),
        n,
        k,
        mix.name(),
        c.heads.len(),
        plan.link_count(),
        bfs_qps,
        plan_qps,
        multi_qps,
        speedup,
        scaling,
    );
    let cell = json!({
        "n": n,
        "d": d,
        "k": k,
        "alg": alg.name(),
        "mix": mix.name(),
        "connected": net_connected,
        "heads": c.heads.len(),
        "links": plan.link_count(),
        "queries": queries,
        "unreachable": reference.unreachable,
        "mean_hops": mean_hops,
        "build_ms": 1e3 * build_secs,
        "build_par_ms": 1e3 * build_par_secs,
        "compile_scaling": build_secs / build_par_secs.max(1e-12),
        "plan_memory_bytes": plan.memory_bytes(),
        "inter_layout": plan.inter_layout(),
        "inter_bytes": plan.inter_memory_bytes(),
        "inter_dense_projected_bytes": plan.projected_dense_inter_bytes(),
        "member_table_mean": tables.member_mean,
        "head_table_entries": tables.head_entries,
        "bfs_qps": bfs_qps,
        "plan_qps": plan_qps,
        "plan_qps_multi": multi_qps,
        "workers": workers,
        "speedup_plan_vs_bfs": speedup,
        "multi_worker_scaling": scaling,
        "checksum": format!("{:016x}", reference.checksum),
    });
    CellOutcome {
        cell,
        plan_qps,
        bfs_qps,
        scaling,
    }
}

/// Engine-only large-N cell: no per-query-BFS arm (hours at this
/// scale), just the compiled plan through the query engine — the cells
/// the hub layout exists for. With `dual` set, the cell compiles
/// **both** forced layouts, asserts their served checksums collide,
/// and enforces hub-bytes < dense-bytes; the recorded arm stays the
/// `Auto`-compiled plan either way.
#[allow(clippy::too_many_arguments)]
fn run_engine_cell(
    n: usize,
    grid_n: usize,
    d: f64,
    k: u32,
    alg: Algorithm,
    queries: usize,
    rounds: usize,
    workers: usize,
    seed: u64,
    dual: bool,
) -> Value {
    let side = 100.0 * (n as f64 / grid_n as f64).sqrt();
    let mut rng = StdRng::seed_from_u64(0xB16CE11 ^ n as u64);
    let net = gen::geometric(&GeometricConfig::at_scale(n, side, d), &mut rng);
    let connected = connectivity::is_connected(&net.graph);
    let c = clustering::cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
    let mut scratch = EvalScratch::new();
    let t = Instant::now();
    let eval = pipeline::run_all_with(&net.graph, &c, &mut scratch);
    let pipeline_secs = t.elapsed().as_secs_f64();
    let links = eval.selected_links(alg);

    let t = Instant::now();
    let plan = RoutePlan::compile(&net.graph, &c, scratch.labels(), links.iter().copied());
    let build_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let par_plan = RoutePlan::compile_tuned(
        &net.graph,
        &c,
        scratch.labels(),
        links.iter().copied(),
        adhoc_cluster::routing::InterMode::Auto,
        Parallelism::new(workers),
    );
    let build_par_secs = t.elapsed().as_secs_f64();
    assert_eq!(par_plan, plan, "N={n}: parallel compile diverged from serial");

    let workload = Workload::new(&plan);
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs = workload.generate(&plan, Mix::Uniform, queries, &mut rng);
    let reference = QueryEngine::new(&plan).route_many(&pairs);
    let routable = pairs.len() - reference.unreachable;
    let mean_hops = if routable == 0 {
        0.0
    } else {
        reference.total_hops as f64 / routable as f64
    };
    let (plan_qps, plan_sum) =
        best_qps(|| QueryEngine::new(&plan).route_many(&pairs).checksum, queries, rounds);
    let (multi_qps, multi_sum) = best_qps(
        || QueryEngine::with_workers(&plan, workers).route_many(&pairs).checksum,
        queries,
        rounds,
    );
    assert_eq!(plan_sum, reference.checksum, "N={n}: plan replay diverged");
    assert_eq!(multi_sum, plan_sum, "N={n}: multi-worker walks diverged");

    let mut dual_json = Value::Null;
    if dual {
        use adhoc_cluster::routing::InterMode;
        let dense = RoutePlan::compile_with(
            &net.graph,
            &c,
            scratch.labels(),
            links.iter().copied(),
            InterMode::Dense,
        );
        let hub = RoutePlan::compile_with(
            &net.graph,
            &c,
            scratch.labels(),
            links.iter().copied(),
            InterMode::Hub,
        );
        let dense_served = QueryEngine::new(&dense).route_many(&pairs);
        let hub_served = QueryEngine::new(&hub).route_many(&pairs);
        assert_eq!(
            dense_served.checksum, reference.checksum,
            "N={n}: forced-dense walks diverged from the recorded arm"
        );
        assert_eq!(
            hub_served.checksum, dense_served.checksum,
            "N={n}: hub-served walks diverged from dense — the layouts are not \
             serving the same routes"
        );
        assert!(
            hub.inter_memory_bytes() < dense.inter_memory_bytes(),
            "N={n}: hub labels ({} B) must undercut the dense table ({} B)",
            hub.inter_memory_bytes(),
            dense.inter_memory_bytes(),
        );
        let (dense_qps, _) =
            best_qps(|| QueryEngine::new(&dense).route_many(&pairs).checksum, queries, rounds);
        let (hub_qps, _) =
            best_qps(|| QueryEngine::new(&hub).route_many(&pairs).checksum, queries, rounds);
        dual_json = json!({
            "dense_inter_bytes": dense.inter_memory_bytes(),
            "hub_inter_bytes": hub.inter_memory_bytes(),
            "dense_qps": dense_qps,
            "hub_qps": hub_qps,
            "checksums_equal": true,
        });
    }

    println!(
        "{:<8} {:>6} {:>2} {:>8} | {:>5} {:>5} | {:>9} {:>9.0} {:>9.0} | {:>7} {:>5.2}x  [{} inter, {} B]",
        alg.name(),
        n,
        k,
        "uniform",
        c.heads.len(),
        plan.link_count(),
        "-",
        plan_qps,
        multi_qps,
        "-",
        multi_qps / plan_qps.max(1e-12),
        plan.inter_layout(),
        plan.inter_memory_bytes(),
    );
    json!({
        "n": n,
        "d": d,
        "k": k,
        "alg": alg.name(),
        "mix": "uniform",
        "engine_only": true,
        "connected": connected,
        "heads": c.heads.len(),
        "links": plan.link_count(),
        "queries": queries,
        "unreachable": reference.unreachable,
        "mean_hops": mean_hops,
        "pipeline_ms": 1e3 * pipeline_secs,
        "build_ms": 1e3 * build_secs,
        "build_par_ms": 1e3 * build_par_secs,
        "compile_scaling": build_secs / build_par_secs.max(1e-12),
        "plan_memory_bytes": plan.memory_bytes(),
        "inter_layout": plan.inter_layout(),
        "inter_bytes": plan.inter_memory_bytes(),
        "inter_dense_projected_bytes": plan.projected_dense_inter_bytes(),
        "plan_qps": plan_qps,
        "plan_qps_multi": multi_qps,
        "workers": workers,
        "multi_worker_scaling": multi_qps / plan_qps.max(1e-12),
        "checksum": format!("{:016x}", reference.checksum),
        "dual": dual_json,
    })
}

/// Times the maintained plan's reaction to one backbone weight change
/// at scale: the same delta is applied to a hub-layout clone (dirty-hub
/// re-sweeps) and a dense-layout clone (unavoidable all-pairs
/// recompute). Uses the AC-Mesh backbone — its link set is pure
/// cluster adjacency, so shortening one inter-head path changes a
/// weight without reshaping the link set (degrees, and with them the
/// hub order, survive; the clustering is held fixed the way the
/// `route_equivalence` delta chains hold it).
fn repair_bench(n: usize, grid_n: usize, d: f64, k: u32, workers: usize, strict: bool) -> Value {
    use adhoc_cluster::routing::{InterMode, InterRepair};
    let side = 100.0 * (n as f64 / grid_n as f64).sqrt();
    let mut rng = StdRng::seed_from_u64(0x0DE17A ^ n as u64);
    let net = gen::geometric(&GeometricConfig::at_scale(n, side, d), &mut rng);
    let mut g = net.graph.clone();
    let c = clustering::cluster(&g, k, &LowestId, MemberPolicy::IdBased);
    let mut scratch = EvalScratch::new();
    let eval = pipeline::run_all_with(&g, &c, &mut scratch);
    let links = eval.selected_links(Algorithm::AcMesh);
    let mut hub = RoutePlan::compile_with(
        &g,
        &c,
        scratch.labels(),
        links.iter().copied(),
        InterMode::Hub,
    );
    let mut dense = RoutePlan::compile_with(
        &g,
        &c,
        scratch.labels(),
        links.iter().copied(),
        InterMode::Dense,
    );
    // One weight change: wire two already-linked heads directly, so
    // their virtual link re-realizes at 1 hop. Pick the longest link —
    // the biggest guaranteed weight drop.
    let (a, b) = links
        .iter()
        .max_by_key(|l| l.hops())
        .map(|l| (l.a, l.b))
        .expect("backbone has links");
    assert!(!g.has_edge(a, b), "longest link endpoints already adjacent");
    let mut delta = adhoc_graph::delta::TopologyDelta::new();
    g.add_edge(a, b);
    delta.push_added(a, b);
    delta.normalize();
    let advance = pipeline::advance_labels(&g, &c, &delta, &mut scratch);
    let (eval, _) = pipeline::update_all_after(&g, &c, &advance, &eval, &mut scratch);
    let dirty: Vec<usize> = match &advance {
        pipeline::LabelAdvance::Incremental { dirty } => dirty.clone(),
        pipeline::LabelAdvance::Rebuilt => (0..c.heads.len()).collect(),
    };
    let new_links = eval.selected_links(Algorithm::AcMesh);
    let mut hub_par = hub.clone();
    let mut dense_par = dense.clone();

    let t = Instant::now();
    let hub_report = hub.apply_delta(&g, &c, scratch.labels(), &delta, &dirty, new_links.iter().copied());
    let hub_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let dense_report =
        dense.apply_delta(&g, &c, scratch.labels(), &delta, &dirty, new_links.iter().copied());
    let dense_secs = t.elapsed().as_secs_f64();

    // Same repairs on the `workers`-wide pool; the repaired plans must
    // be indistinguishable from the serial ones.
    let par = Parallelism::new(workers);
    let t = Instant::now();
    hub_par.apply_delta_tuned(&g, &c, scratch.labels(), &delta, &dirty, new_links.iter().copied(), par);
    let hub_par_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    dense_par
        .apply_delta_tuned(&g, &c, scratch.labels(), &delta, &dirty, new_links.iter().copied(), par);
    let dense_par_secs = t.elapsed().as_secs_f64();
    assert_eq!(hub_par, hub, "N={n}: parallel hub repair diverged from serial");
    assert_eq!(dense_par, dense, "N={n}: parallel dense repair diverged from serial");

    assert!(
        hub_report.next_recomputed && dense_report.next_recomputed,
        "N={n}: the injected delta must change a backbone weight"
    );
    let dirty_hubs = match hub_report.inter {
        InterRepair::HubRepaired { dirty_hubs } => dirty_hubs,
        other => {
            assert!(
                !strict,
                "N={n}: weight-only change must take the dirty-hub path, got {other:?}"
            );
            0
        }
    };
    assert_eq!(dense_report.inter, InterRepair::DenseRecomputed);
    if strict {
        assert!(
            hub_secs < dense_secs,
            "N={n}: dirty-hub repair ({:.1} ms) must beat the dense all-pairs \
             recompute ({:.1} ms)",
            1e3 * hub_secs,
            1e3 * dense_secs,
        );
    }
    println!(
        "\nrepair (N={n}, k={k}, AC-Mesh, 1 link re-weighted): hub {:.2} ms \
         ({dirty_hubs}/{} hubs re-swept) vs dense all-pairs {:.2} ms — {:.1}x",
        1e3 * hub_secs,
        c.heads.len(),
        1e3 * dense_secs,
        dense_secs / hub_secs.max(1e-12),
    );
    json!({
        "n": n,
        "k": k,
        "alg": Algorithm::AcMesh.name(),
        "heads": c.heads.len(),
        "hub_repair_ms": 1e3 * hub_secs,
        "dense_recompute_ms": 1e3 * dense_secs,
        "hub_repair_par_ms": 1e3 * hub_par_secs,
        "dense_recompute_par_ms": 1e3 * dense_par_secs,
        "repair_workers": workers,
        "dirty_hubs": dirty_hubs,
        "speedup": dense_secs / hub_secs.max(1e-12),
    })
}

fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

fn main() {
    let quick = quick_mode();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .clamp(2, 8);
    let d = 8.0;
    let (grid_n, grid_ks, grid_q, largest_n, largest_k, largest_q, rounds) = if quick {
        (240usize, vec![2u32], 1200usize, 400usize, 3u32, 2500usize, 1usize)
    } else {
        (600, vec![1, 2, 3, 4], 6000, 2400, 4, 12000, 3)
    };
    println!(
        "route serving: compiled plan vs per-query BFS (D = {d}, {workers} workers multi-arm)"
    );
    println!(
        "{:<8} {:>5} {:>2} {:>8} | {:>5} {:>5} | {:>9} {:>9} {:>9} | {:>7} {:>6}",
        "alg", "N", "k", "mix", "heads", "links", "bfs q/s", "plan q/s", "multi q/s", "speedup", "scale"
    );

    let mut cells = Vec::new();

    // Grid: all five algorithms × k at the paper-adjacent scale.
    let mut rng = StdRng::seed_from_u64(0x5E17E ^ grid_n as u64);
    let grid_net = gen::geometric(&GeometricConfig::at_scale(grid_n, 100.0, d), &mut rng);
    let grid_connected = connectivity::is_connected(&grid_net.graph);
    for &k in &grid_ks {
        for alg in Algorithm::ALL {
            let out = run_cell(
                &grid_net.graph,
                grid_connected,
                grid_n,
                d,
                k,
                alg,
                Mix::Uniform,
                grid_q,
                rounds,
                workers,
                0xABCD ^ (u64::from(k) << 8),
            );
            cells.push(out.cell);
        }
    }

    // Largest cell: biggest field, deepest clusters, all three mixes.
    // The uniform-mix outcome is the record's headline claim and the
    // CI gate.
    let side = 100.0 * (largest_n as f64 / grid_n as f64).sqrt();
    let mut rng = StdRng::seed_from_u64(0xB16CE11 ^ largest_n as u64);
    let large_net = gen::geometric(&GeometricConfig::at_scale(largest_n, side, d), &mut rng);
    let large_connected = connectivity::is_connected(&large_net.graph);
    let mut headline: Option<CellOutcome> = None;
    for mix in [
        Mix::Uniform,
        "hotspot".parse::<Mix>().expect("builtin mix"),
        "local".parse::<Mix>().expect("builtin mix"),
    ] {
        let out = run_cell(
            &large_net.graph,
            large_connected,
            largest_n,
            d,
            largest_k,
            Algorithm::AcLmst,
            mix,
            largest_q,
            rounds,
            workers,
            0xFEED ^ largest_n as u64,
        );
        let is_uniform = mix == Mix::Uniform;
        cells.push(out.cell.clone());
        if is_uniform {
            headline = Some(out);
        }
    }
    let headline = headline.expect("uniform largest cell ran");

    let speedup = headline.plan_qps / headline.bfs_qps.max(1e-12);
    let cpus = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    println!(
        "\nlargest cell (N={largest_n}, k={largest_k}, AC-LMST, uniform): \
         compiled {speedup:.2}x per-query BFS, multi-worker scaling {:.2}x \
         ({workers} workers on {cpus} cpu(s))",
        headline.scaling,
    );
    assert!(
        headline.plan_qps > headline.bfs_qps,
        "compiled plan ({:.0} q/s) must beat per-query BFS ({:.0} q/s) on the largest cell",
        headline.plan_qps,
        headline.bfs_qps,
    );
    if !quick {
        assert!(
            speedup >= 5.0,
            "committed record requires >= 5x on the largest cell, got {speedup:.2}x"
        );
    }
    // Thread-scaling can only be demonstrated where threads can run in
    // parallel: on a single-CPU box the ceiling is 1.0x by physics
    // (the record then documents the overhead honestly). On multi-core
    // hosts the gate guards against real regressions (accidental
    // serialization or per-chunk contention would crater the ratio)
    // with a 0.9x tolerance so an oversubscribed shared CI runner
    // cannot flake an otherwise healthy build.
    if cpus > 1 {
        assert!(
            headline.scaling > 0.9,
            "multi-worker serving collapsed versus single-worker on {cpus} cpus: {:.2}x",
            headline.scaling
        );
        if headline.scaling <= 1.0 {
            println!(
                "warning: multi-worker scaling {:.2}x <= 1x on {cpus} cpus — \
                 check runner load before trusting this record",
                headline.scaling
            );
        }
    } else {
        println!(
            "note: single-CPU host — multi-worker scaling ceiling is 1.0x; \
             the scaling gate binds on multi-core machines (e.g. CI runners)"
        );
    }

    // Engine-only hub-scale cells: N an order (or two) past the grid,
    // where the dense h × h table stops being free. The dual cell
    // measures both forced layouts — served checksums must collide and
    // the hub arena must undercut the dense table (the CI guards). The
    // top full-mode cell compiles under `Auto` only (building the
    // dense table there is exactly what the hub layout exists to
    // avoid) and must come out hub-labeled at < 10% of the projected
    // dense bytes — the record's memory claim.
    println!(
        "\nengine-only hub-scale cells (no BFS arm; inter-table layout in brackets):"
    );
    let engine_cfg: Vec<(usize, usize, bool)> = if quick {
        vec![(4_000, 1500, true)]
    } else {
        vec![(10_000, 6000, true), (100_000, 3000, false)]
    };
    let mut top_engine = Value::Null;
    for &(n, q, dual) in &engine_cfg {
        let cell = run_engine_cell(
            n,
            grid_n,
            d,
            2,
            Algorithm::AcLmst,
            q,
            rounds,
            workers,
            0xE7C ^ n as u64,
            dual,
        );
        top_engine = cell.clone();
        cells.push(cell);
    }
    if !quick {
        let n = top_engine["n"].as_u64().unwrap_or(0);
        assert_eq!(
            top_engine["inter_layout"].as_str(),
            Some("hub"),
            "N={n}: Auto must pick the hub layout past the dense threshold"
        );
        let hub_bytes = top_engine["inter_bytes"].as_u64().expect("inter_bytes");
        let projected = top_engine["inter_dense_projected_bytes"]
            .as_u64()
            .expect("projected bytes");
        assert!(
            hub_bytes.saturating_mul(10) < projected,
            "N={n}: hub labels ({hub_bytes} B) must stay under 10% of the \
             projected dense table ({projected} B)"
        );
        println!(
            "hub index at N={n}: {hub_bytes} B = {:.2}% of the projected \
             {projected} B dense table",
            100.0 * hub_bytes as f64 / projected as f64,
        );
    }

    // Incremental backbone repair vs the old unconditional all-pairs
    // recompute, on one re-weighted virtual link.
    let repair = repair_bench(
        if quick { 4_000 } else { 10_000 },
        grid_n,
        d,
        2,
        workers,
        !quick,
    );

    let largest_cell = json!({
        "n": largest_n,
        "k": largest_k,
        "alg": Algorithm::AcLmst.name(),
        "mix": "uniform",
    });
    let summary = json!({
        "largest_cell": largest_cell,
        "compiled_over_bfs": speedup,
        "multi_worker_scaling": headline.scaling,
        "inter": json!({
            "auto_threshold_bytes": AUTO_HUB_THRESHOLD_BYTES,
            "top_engine_cell": json!({
                "n": top_engine["n"].clone(),
                "inter_layout": top_engine["inter_layout"].clone(),
                "inter_bytes": top_engine["inter_bytes"].clone(),
                "inter_dense_projected_bytes":
                    top_engine["inter_dense_projected_bytes"].clone(),
            }),
            "repair": repair,
        }),
    });
    let grid_run = json!({
        "grid_n": grid_n,
        "grid_ks": grid_ks,
        "grid_queries": grid_q,
        "largest_n": largest_n,
        "largest_k": largest_k,
        "largest_queries": largest_q,
        "engine_cells": engine_cfg.iter().map(|&(n, q, dual)| {
            json!({"n": n, "queries": q, "dual": dual})
        }).collect::<Vec<_>>(),
        "rounds": rounds,
    });
    let doc = json!({
        "schema": "khop-routing/v1",
        "git": git_describe(),
        "mode": run_mode(),
        "quick": quick,
        "grid": grid_run,
        "metrics": probe::reference_metrics_section(),
        "workers": workers,
        "available_parallelism": std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        "unroutable_marker": UNROUTABLE,
        "cells": cells,
        "summary": summary,
    });
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(if quick {
        "BENCH_routing_quick.json"
    } else {
        "BENCH_routing.json"
    });
    std::fs::write(&path, format!("{doc:#}\n")).expect("write BENCH_routing.json");
    let raw = std::fs::read_to_string(&path).expect("read back BENCH_routing.json");
    let parsed: Value = serde_json::from_str(&raw).expect("BENCH_routing.json must parse");
    assert_eq!(parsed["schema"], "khop-routing/v1");
    assert!(!parsed["cells"].as_array().expect("cells").is_empty());
    println!("wrote {}", path.display());
}
