//! `resilience` — degradation and repair under adversarial churn: what
//! the maintained structure is *worth* when the workload stops being
//! graceful.
//!
//! For every cell (attack shape × repair-level cap) the bench builds one
//! geometric network, compiles a route plan, pins a **stale reader** to
//! the pre-attack plan (a clone at its RCU epoch — the view of a client
//! that never observes another publish), then plays the attack through
//! the engine one departure at a time and samples both plans against the
//! *current* topology as the damage accumulates:
//!
//! * **stale reachability** — the pinned pre-attack plan, validated hop
//!   by hop against the post-attack graph. This is the DRFE-style
//!   collapse curve: a compact-routing scheme nobody repairs.
//! * **live reachability** — the engine's currently published plan (the
//!   epoch advances on every publish), same validation. At
//!   [`RepairLevel::Full`] this must track the achievable ceiling — the
//!   pairs the surviving topology connects at all — exactly; capped
//!   policies ([`RepairLevel::Reaffiliate`], [`RepairLevel::Gateways`])
//!   show what each withheld §3.3 rule costs.
//! * **stretch** — routed hops over the true alive-subgraph shortest
//!   path, for the pairs the live plan still serves.
//!
//! After the attack, the network *heals*: a flash-crowd arrival burst
//! ([`adversary::heal`]) returns every victim through the stateful
//! arrival path, and the bench records the repair latency — wall-clock
//! engine time and arrivals until reachability returns to 100% of all
//! sampled pairs (`null` for capped policies that never get there).
//!
//! The Full-level cells double as a correctness guard in both modes:
//! post-attack live reachability must equal the achievable ceiling
//! (exhaustively, all alive pairs), and post-heal reachability must be
//! 100% of the reference topology's connected pairs. CI runs the quick
//! variant; the committed `results/BENCH_resilience.json` is the full
//! measurement (quick runs write `BENCH_resilience_quick.json`, so CI
//! can never clobber it). Surfaced on the CLI as `khop resilience`.

use adhoc_bench::{probe, quick_mode, results_dir, run_mode};
use adhoc_cluster::pipeline::Algorithm;
use adhoc_cluster::routing::RoutePlan;
use adhoc_graph::par::{self, Parallelism};
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::graph::{Graph, NodeId};
use adhoc_sim::adversary::{self, AttackKind};
use adhoc_sim::churn::ChurnEngine;
use adhoc_sim::movement::{MovementConfig, RepairLevel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::{json, Value};
use std::collections::VecDeque;
use std::time::Instant;

const K: u32 = 2;

/// Component id per alive node (`u32::MAX` for departed), by BFS over
/// the engine's current graph (departed nodes are isolated there, but
/// the explicit mask keeps the denominator honest regardless).
fn alive_components(g: &Graph, departed: &dyn Fn(NodeId) -> bool) -> Vec<u32> {
    let n = g.len();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for s in g.nodes() {
        if departed(s) || comp[s.index()] != u32::MAX {
            continue;
        }
        comp[s.index()] = next;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if !departed(v) && comp[v.index()] == u32::MAX {
                    comp[v.index()] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// True shortest alive-path length, or `None` if disconnected.
fn bfs_dist(g: &Graph, departed: &dyn Fn(NodeId) -> bool, u: NodeId, v: NodeId) -> Option<u32> {
    if u == v {
        return Some(0);
    }
    let mut dist = vec![u32::MAX; g.len()];
    dist[u.index()] = 0;
    let mut queue = VecDeque::from([u]);
    while let Some(x) = queue.pop_front() {
        for &y in g.neighbors(x) {
            if !departed(y) && dist[y.index()] == u32::MAX {
                dist[y.index()] = dist[x.index()] + 1;
                if y == v {
                    return Some(dist[y.index()]);
                }
                queue.push_back(y);
            }
        }
    }
    None
}

/// Routes `u -> v` on `plan` and validates the returned walk against
/// the *current* topology: every hop alive, every step an existing
/// edge. A stale plan fails here exactly where the attack broke it.
fn route_ok(
    plan: &RoutePlan,
    g: &Graph,
    departed: &dyn Fn(NodeId) -> bool,
    u: NodeId,
    v: NodeId,
    buf: &mut Vec<NodeId>,
) -> Option<u32> {
    let hops = plan.route_into(u, v, buf)?;
    for pair in buf.windows(2) {
        if departed(pair[0]) || departed(pair[1]) || !g.neighbors(pair[0]).contains(&pair[1]) {
            return None;
        }
    }
    if buf.iter().any(|&x| departed(x)) {
        return None;
    }
    Some(hops)
}

struct Reach {
    /// Sampled pairs with both endpoints alive.
    alive_pairs: usize,
    /// Alive pairs the surviving topology connects at all.
    achievable: usize,
    /// Pairs the plan routed with a walk that verifies on the current
    /// topology.
    routed: usize,
}

impl Reach {
    fn of_achievable(&self) -> f64 {
        if self.achievable == 0 {
            1.0
        } else {
            self.routed as f64 / self.achievable as f64
        }
    }

    fn of_alive(&self) -> f64 {
        if self.alive_pairs == 0 {
            1.0
        } else {
            self.routed as f64 / self.alive_pairs as f64
        }
    }
}

fn measure(
    plan: &RoutePlan,
    g: &Graph,
    departed: &dyn Fn(NodeId) -> bool,
    comp: &[u32],
    pairs: &[(NodeId, NodeId)],
) -> Reach {
    let mut buf = Vec::new();
    let mut reach = Reach {
        alive_pairs: 0,
        achievable: 0,
        routed: 0,
    };
    for &(u, v) in pairs {
        if departed(u) || departed(v) {
            continue;
        }
        reach.alive_pairs += 1;
        if comp[u.index()] == comp[v.index()] {
            reach.achievable += 1;
        }
        if route_ok(plan, g, departed, u, v, &mut buf).is_some() {
            reach.routed += 1;
        }
    }
    reach
}

/// Mean multiplicative stretch of the plan's verified walks over the
/// true alive shortest paths, on the first `limit` routable sampled
/// pairs (`None` when nothing routes).
fn mean_stretch(
    plan: &RoutePlan,
    g: &Graph,
    departed: &dyn Fn(NodeId) -> bool,
    pairs: &[(NodeId, NodeId)],
    limit: usize,
) -> Option<f64> {
    let mut buf = Vec::new();
    let mut sum = 0.0;
    let mut count = 0usize;
    for &(u, v) in pairs {
        if count >= limit {
            break;
        }
        if departed(u) || departed(v) {
            continue;
        }
        if let Some(hops) = route_ok(plan, g, departed, u, v, &mut buf) {
            let true_dist = bfs_dist(g, departed, u, v)
                .expect("a verified walk implies alive connectivity");
            if true_dist > 0 {
                sum += f64::from(hops) / f64::from(true_dist);
                count += 1;
            }
        }
    }
    (count > 0).then(|| sum / count as f64)
}

/// Exhaustive (all alive pairs) verification that the live plan serves
/// everything the surviving topology connects. Returns (routed,
/// achievable). The O(alive²) probe fans the outer sources across the
/// shared worker pool; per-chunk counts sum to the same totals for any
/// worker count (each unordered pair is probed exactly once, from its
/// lower-indexed endpoint).
fn exhaustive_reach(
    plan: &RoutePlan,
    g: &Graph,
    departed: &(dyn Fn(NodeId) -> bool + Sync),
    comp: &[u32],
    par: Parallelism,
) -> (usize, usize) {
    let alive: Vec<NodeId> = g.nodes().filter(|&v| !departed(v)).collect();
    let counts = par::scoped_chunks(par.workers(), alive.len(), (), |off, take, ()| {
        let mut buf = Vec::new();
        let (mut routed, mut achievable) = (0usize, 0usize);
        for (i, &u) in alive.iter().enumerate().skip(off).take(take) {
            for &v in &alive[i + 1..] {
                if comp[u.index()] != comp[v.index()] {
                    continue;
                }
                achievable += 1;
                if route_ok(plan, g, departed, u, v, &mut buf).is_some() {
                    routed += 1;
                }
            }
        }
        (routed, achievable)
    });
    counts
        .into_iter()
        .fold((0, 0), |(r, a), (cr, ca)| (r + cr, a + ca))
}

fn sample_pairs(n: usize, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(count);
    while pairs.len() < count {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            pairs.push((NodeId(a.min(b) as u32), NodeId(a.max(b) as u32)));
        }
    }
    pairs
}

fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

struct Cell {
    attack: AttackKind,
    level: RepairLevel,
    n: usize,
    fraction: f64,
    pairs: usize,
    seed: u64,
}

fn run_cell(cell: &Cell) -> Value {
    let Cell {
        attack,
        level,
        n,
        fraction,
        pairs: pair_count,
        seed,
    } = *cell;
    let side = 100.0 * (n as f64 / 200.0).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gcfg = GeometricConfig::new(n, side, 6.0);
    gcfg.require_connected = false;
    let net = gen::geometric(&gcfg, &mut rng);

    let par = Parallelism::default();
    let cfg = MovementConfig::strict(K, Algorithm::AcLmst).capped(level);
    let mut engine = ChurnEngine::build(&net.graph, cfg);
    engine.set_workers(par);
    engine.enable_routing();

    // The stale reader: pinned to the pre-attack plan at its epoch, as
    // a client that never observes another publish would be.
    let stale = engine.route_plan().expect("routing enabled").clone();
    let stale_epoch = stale.epoch();

    let pairs = sample_pairs(n, pair_count, seed ^ 0x5A5A);
    let departed_of = |e: &ChurnEngine| {
        let flags: Vec<bool> = net.graph.nodes().map(|v| e.is_departed(v)).collect();
        move |v: NodeId| flags[v.index()]
    };

    let dep0 = departed_of(&engine);
    let comp0 = alive_components(engine.graph(), &dep0);
    let base = measure(&stale, engine.graph(), &dep0, &comp0, &pairs);

    let victims = adversary::select_victims(
        &engine,
        attack,
        fraction,
        Some((&net.positions, net.range)),
        seed ^ 0xBEEF,
    );

    // Attack: depart victims one at a time, sampling both plans on a
    // curve grid as the damage accumulates. Engine time is metered
    // separately from measurement time.
    let chunk = (victims.len() / 10).max(1);
    let mut curve = Vec::new();
    let mut attack_engine_secs = 0.0f64;
    let mut worst_level = RepairLevel::None;
    for (i, &v) in victims.iter().enumerate() {
        let t = Instant::now();
        let report = engine.depart(v);
        attack_engine_secs += t.elapsed().as_secs_f64();
        worst_level = worst_level.max(report.level);
        let removed = i + 1;
        if removed % chunk == 0 || removed == victims.len() {
            let dep = departed_of(&engine);
            let comp = alive_components(engine.graph(), &dep);
            let s = measure(&stale, engine.graph(), &dep, &comp, &pairs);
            let live_plan = engine.route_plan().expect("maintained");
            let l = measure(live_plan, engine.graph(), &dep, &comp, &pairs);
            curve.push(json!({
                "removed": removed,
                "stale_reachability": s.of_alive(),
                "live_reachability": l.of_alive(),
                "live_reachability_of_achievable": l.of_achievable(),
                "achievable_fraction": if l.alive_pairs == 0 { 1.0 }
                    else { l.achievable as f64 / l.alive_pairs as f64 },
                "live_epoch": live_plan.epoch(),
            }));
        }
    }

    // Post-attack verdicts: sampled stretch plus the exhaustive
    // achievable-ceiling check the Full cells are held to.
    let dep = departed_of(&engine);
    let comp = alive_components(engine.graph(), &dep);
    let stale_post = measure(&stale, engine.graph(), &dep, &comp, &pairs);
    let live_plan = engine.route_plan().expect("maintained");
    let live_post = measure(live_plan, engine.graph(), &dep, &comp, &pairs);
    let stretch = mean_stretch(live_plan, engine.graph(), &dep, &pairs, 250);
    let (ex_routed, ex_achievable) = exhaustive_reach(live_plan, engine.graph(), &dep, &comp, par);
    if level == RepairLevel::Full {
        assert_eq!(
            ex_routed, ex_achievable,
            "{} attack at Full: live plan must serve every alive-connected \
             pair post-attack ({ex_routed}/{ex_achievable})",
            attack.name()
        );
    }

    // Heal: flash-crowd arrival burst in departure order; latency to
    // 100% of *all* sampled pairs (the last straggler counts).
    let mut heal_engine_secs = 0.0f64;
    let mut to_full: Option<(usize, f64)> = None;
    for (i, &v) in victims.iter().enumerate() {
        let neighbors: Vec<NodeId> = net
            .graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| !engine.is_departed(w))
            .collect();
        let t = Instant::now();
        engine.arrive(v, &neighbors);
        heal_engine_secs += t.elapsed().as_secs_f64();
        if to_full.is_none() {
            let dep = departed_of(&engine);
            let comp = alive_components(engine.graph(), &dep);
            let r = measure(
                engine.route_plan().expect("maintained"),
                engine.graph(),
                &dep,
                &comp,
                &pairs,
            );
            // "100%" means every sampled endpoint is back AND every
            // achievable sampled pair routes — stragglers still
            // departed keep the clock running, pairs the reference
            // topology never connected don't count against it.
            if r.alive_pairs == pairs.len() && r.routed == r.achievable {
                to_full = Some((i + 1, heal_engine_secs));
            }
        }
    }
    let dep = departed_of(&engine);
    let comp = alive_components(engine.graph(), &dep);
    let final_plan = engine.route_plan().expect("maintained");
    let (fin_routed, fin_achievable) =
        exhaustive_reach(final_plan, engine.graph(), &dep, &comp, par);
    let restored =
        adhoc_graph::delta::TopologyDelta::between(engine.graph(), &net.graph).is_empty();
    assert!(restored, "heal must restore the reference topology");
    if level == RepairLevel::Full {
        assert_eq!(
            fin_routed, fin_achievable,
            "{} attack at Full: post-heal reachability must be 100%",
            attack.name()
        );
        assert!(to_full.is_some(), "Full must reach all sampled pairs");
    }

    json!({
        "attack": attack.name(),
        "repair_level": level.name(),
        "n": n,
        "k": K,
        "side": side,
        "fraction": fraction,
        "victims": victims.len(),
        "sampled_pairs": pairs.len(),
        "workers": par.workers(),
        "stale_epoch": stale_epoch,
        "final_epoch": final_plan.epoch(),
        "inter_layout": final_plan.inter_layout(),
        "inter_bytes": final_plan.inter_memory_bytes(),
        "baseline": json!({
            "reachability": base.of_alive(),
            "achievable_fraction": base.achievable as f64 / base.alive_pairs.max(1) as f64,
        }),
        "curve": curve,
        "post_attack": json!({
            "stale_reachability": stale_post.of_alive(),
            "live_reachability": live_post.of_alive(),
            "live_reachability_of_achievable": live_post.of_achievable(),
            "exhaustive_routed": ex_routed,
            "exhaustive_achievable": ex_achievable,
            "mean_stretch": stretch,
            "worst_repair_level": worst_level.name(),
            "attack_engine_ms": 1e3 * attack_engine_secs,
        }),
        "heal": json!({
            "heal_engine_ms": 1e3 * heal_engine_secs,
            "arrivals_to_full_reachability": to_full.map(|(steps, _)| steps),
            "ms_to_full_reachability": to_full.map(|(_, secs)| 1e3 * secs),
            "final_exhaustive_routed": fin_routed,
            "final_exhaustive_achievable": fin_achievable,
            "valid": engine.is_valid(),
        }),
    })
}

fn main() {
    let (n, fraction, pair_count, levels): (usize, f64, usize, &[RepairLevel]) = if quick_mode() {
        (
            150,
            0.2,
            600,
            &[RepairLevel::Reaffiliate, RepairLevel::Full],
        )
    } else {
        (
            600,
            0.2,
            1500,
            &[
                RepairLevel::Reaffiliate,
                RepairLevel::Gateways,
                RepairLevel::Full,
            ],
        )
    };
    println!(
        "adversarial resilience: degradation + repair latency (D = 6, k = {K}, n = {n}, \
         {:.0}% removed)",
        100.0 * fraction
    );
    println!(
        "{:<10} {:<12} | {:>7} {:>7} {:>9} | {:>8} {:>9} {:>8}",
        "attack", "repair", "stale%", "live%", "live/ach%", "atk ms", "heal ms", "to100%"
    );
    let mut cells = Vec::new();
    for attack in AttackKind::ALL {
        for &level in levels {
            let seed = 0xAD5E ^ ((attack.name().len() as u64) << 16) ^ level as u64;
            let cell = run_cell(&Cell {
                attack,
                level,
                n,
                fraction,
                pairs: pair_count,
                seed,
            });
            let post = &cell["post_attack"];
            let heal = &cell["heal"];
            println!(
                "{:<10} {:<12} | {:>6.1}% {:>6.1}% {:>8.1}% | {:>8.1} {:>9.1} {:>8}",
                cell["attack"].as_str().unwrap(),
                cell["repair_level"].as_str().unwrap(),
                100.0 * post["stale_reachability"].as_f64().unwrap(),
                100.0 * post["live_reachability"].as_f64().unwrap(),
                100.0 * post["live_reachability_of_achievable"].as_f64().unwrap(),
                post["attack_engine_ms"].as_f64().unwrap(),
                heal["heal_engine_ms"].as_f64().unwrap(),
                heal["arrivals_to_full_reachability"]
                    .as_u64()
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "never".into()),
            );
            cells.push(cell);
        }
    }

    let grid_run = json!({
        "n": n,
        "fraction": fraction,
        "pairs": pair_count,
        "attacks": AttackKind::ALL.iter().map(|a| a.name()).collect::<Vec<_>>(),
        "repair_levels": levels.iter().map(|l| l.name()).collect::<Vec<_>>(),
    });
    let doc = json!({
        "schema": "khop-resilience/v1",
        "git": git_describe(),
        "mode": run_mode(),
        "quick": quick_mode(),
        "grid": grid_run,
        "metrics": probe::reference_metrics_section(),
        "workers": Parallelism::default().workers(),
        "host_cores": Parallelism::available().workers(),
        "cells": cells,
    });
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(if quick_mode() {
        "BENCH_resilience_quick.json"
    } else {
        "BENCH_resilience.json"
    });
    std::fs::write(&path, format!("{doc:#}\n")).expect("write BENCH_resilience.json");
    let raw = std::fs::read_to_string(&path).expect("read back BENCH_resilience.json");
    let parsed: Value = serde_json::from_str(&raw).expect("BENCH_resilience.json must parse");
    assert_eq!(parsed["schema"], "khop-resilience/v1");
    assert!(!parsed["cells"].as_array().expect("cells").is_empty());
    println!("wrote {}", path.display());
}
