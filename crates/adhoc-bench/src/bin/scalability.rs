//! Scalability beyond the paper's N ≤ 200 (§4 claim 3).
//!
//! The paper argues its approaches are scalable but only evaluates up
//! to 200 nodes. This experiment runs the full AC-LMST pipeline at
//! 200–4000 nodes (D = 6, k = 2), timing each phase. The per-node cost
//! should stay near-flat: clustering and gateway selection are
//! localized (2k+1-hop balls), and the unit-disk construction uses a
//! cell grid, so nothing in the pipeline is inherently quadratic at
//! fixed density.
//!
//! Usage: `cargo run --release -p adhoc-bench --bin scalability [--quick]`

use adhoc_bench::quick_mode;
use adhoc_cluster::adjacency::NeighborRule;
use adhoc_cluster::clustering::{cluster, MemberPolicy};
use adhoc_cluster::gateway;
use adhoc_cluster::priority::LowestId;
use adhoc_cluster::virtual_graph::VirtualGraph;
use adhoc_graph::gen::{self, GeometricConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let sizes: &[usize] = if quick_mode() {
        &[200, 500, 1000]
    } else {
        &[200, 500, 1000, 2000, 4000]
    };
    let k = 2u32;
    println!("AC-LMST pipeline scaling (D = 6, k = {k}, area side scaled with sqrt(N))");
    println!(
        "{:>5} | {:>8} {:>9} {:>9} {:>9} | {:>7} {:>7} | {:>9}",
        "N", "gen ms", "clust ms", "vgraph ms", "gw ms", "heads", "CDS", "us/node"
    );
    for &n in sizes {
        // Grow the area with N so density (and thus k-ball sizes) stays
        // fixed — the regime in which localized algorithms should be
        // linear. The paper's fixed 100x100 area at growing N instead
        // raises density, which shrinks the CDS but inflates per-ball
        // work.
        let side = 100.0 * (n as f64 / 200.0).sqrt();
        let mut rng = StdRng::seed_from_u64(0x5CA1E + n as u64);
        // At fixed density, large random geometric graphs are almost
        // surely disconnected (connectivity needs degree ~ ln N), so
        // the connected-instance resampling of the paper's setup is
        // dropped here: every phase is localized and well-defined per
        // component.
        let mut cfg = GeometricConfig::new(n, side, 6.0);
        cfg.require_connected = false;
        let t0 = Instant::now();
        let net = gen::geometric(&cfg, &mut rng);
        let t_gen = t0.elapsed();
        let t0 = Instant::now();
        let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
        let t_cluster = t0.elapsed();
        let t0 = Instant::now();
        let vg = VirtualGraph::build(&net.graph, &c, NeighborRule::Adjacent);
        let t_vg = t0.elapsed();
        let t0 = Instant::now();
        let sel = gateway::lmstga(&vg, &c);
        let t_gw = t0.elapsed();
        let total = t_gen + t_cluster + t_vg + t_gw;
        println!(
            "{n:>5} | {:>8.1} {:>9.1} {:>9.1} {:>9.1} | {:>7} {:>7} | {:>9.1}",
            t_gen.as_secs_f64() * 1e3,
            t_cluster.as_secs_f64() * 1e3,
            t_vg.as_secs_f64() * 1e3,
            t_gw.as_secs_f64() * 1e3,
            c.head_count(),
            c.head_count() + sel.gateways.len(),
            total.as_secs_f64() * 1e6 / n as f64,
        );
    }
}
