//! Regenerates **Figure 5**: size of the k-hop CDS vs number of nodes
//! in sparse networks (average degree D = 6), one subfigure per
//! k ∈ {1, 2, 3, 4}, curves NC-Mesh / AC-Mesh / AC-LMST / NC-LMST /
//! G-MST.
//!
//! Usage: `cargo run --release -p adhoc-bench --bin fig5 [--quick]`

use adhoc_bench::figures::{Figure, FigureSet};
use adhoc_bench::harness::{run_cell, CellConfig, NODE_COUNTS};
use adhoc_bench::{apply_quick, results_dir};
use adhoc_cluster::pipeline::Algorithm;

fn main() {
    let mut set = FigureSet::default();
    for (sub, k) in [(0, 1u32), (1, 2), (2, 3), (3, 4)] {
        let id = format!("fig5{}", (b'a' + sub) as char);
        let title = format!("Size of CDS vs N, sparse (D=6, k={k})");
        let mut fig = Figure::new(&id, &title, "N", "Size of CDS");
        for n in NODE_COUNTS {
            let cfg = apply_quick(CellConfig::paper(n, 6.0, k));
            let res = run_cell(&cfg, None);
            for alg in Algorithm::ALL {
                fig.push(alg.name(), n as f64, res.cds_of(alg));
            }
            eprintln!(
                "fig5 k={k} N={n}: {} reps, AC-LMST={:.1}, G-MST={:.1}",
                res.reps,
                res.cds_of(Algorithm::AcLmst).mean,
                res.cds_of(Algorithm::GMst).mean
            );
        }
        println!("{}", fig.to_table());
        set.push(fig);
    }
    let out = results_dir().join("fig5.json");
    set.save_json(&out).expect("write fig5.json");
    eprintln!("wrote {}", out.display());
}
