//! Hierarchical routing experiment (the §1 routing motivation):
//! path stretch and routing-table sizes of cluster-based routing over
//! the connected k-hop clustering, versus flat shortest-path routing.
//!
//! Usage: `cargo run --release -p adhoc-bench --bin routing [--quick]`

use adhoc_bench::quick_mode;
use adhoc_bench::stats::summarize;
use adhoc_cluster::clustering::{cluster, MemberPolicy};
use adhoc_cluster::priority::LowestId;
use adhoc_cluster::routing::{self, ClusterRouter};
use adhoc_graph::bfs;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let reps = if quick_mode() { 3 } else { 20 };
    let pairs_per_rep = 40;
    println!(
        "{:>4} {:>3} {:>9} {:>9} {:>10} {:>10} {:>10}",
        "N", "k", "stretch", "worst", "head-tbl", "member-tbl", "flat-tbl"
    );
    for n in [100usize, 200] {
        for k in [1u32, 2, 3] {
            let mut stretches = Vec::new();
            let mut worsts = Vec::new();
            let mut head_tbl = Vec::new();
            let mut member_tbl = Vec::new();
            for rep in 0..reps {
                let mut rng = StdRng::seed_from_u64(0x707E + rep as u64 * 17 + n as u64);
                let net = gen::geometric(&GeometricConfig::new(n, 100.0, 6.0), &mut rng);
                let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
                let router = ClusterRouter::build(&net.graph, &c);
                let stats = router.table_stats(n, net.graph.average_degree());
                head_tbl.push(stats.head_entries as f64);
                member_tbl.push(stats.member_entries as f64);
                let mut worst = 1.0f64;
                for _ in 0..pairs_per_rep {
                    let u = NodeId(rng.gen_range(0..n as u32));
                    let v = NodeId(rng.gen_range(0..n as u32));
                    if u == v {
                        continue;
                    }
                    let walk = router.route(&net.graph, u, v);
                    assert!(routing::is_valid_walk(&net.graph, &walk));
                    let d = bfs::distances(&net.graph, u)[v.index()];
                    let s = f64::from(routing::walk_hops(&walk)) / f64::from(d);
                    stretches.push(s);
                    worst = worst.max(s);
                }
                worsts.push(worst);
            }
            println!(
                "{n:>4} {k:>3} {:>9.3} {:>9.2} {:>10.1} {:>10.1} {:>10}",
                summarize(&stretches).mean,
                summarize(&worsts).mean,
                summarize(&head_tbl).mean,
                summarize(&member_tbl).mean,
                n - 1
            );
        }
    }
    println!("\nstretch = routed hops / shortest hops; tables in entries per node");
}
