//! Hierarchical routing experiment (the §1 routing motivation):
//! path stretch and routing-table sizes of cluster-based routing over
//! the connected k-hop clustering, versus flat shortest-path routing —
//! now with the walk-shortcut ablation (raw concatenated walks vs the
//! first-pass-through-`v` shortcut the module always promised).
//!
//! Usage: `cargo run --release -p adhoc-bench --bin routing [--quick]`
//!
//! Throughput of the serving layer is the `routing_serve` bin's job;
//! this one measures route *quality* and table sizes.

use adhoc_bench::quick_mode;
use adhoc_bench::stats::summarize;
use adhoc_cluster::clustering::{cluster, MemberPolicy};
use adhoc_cluster::priority::LowestId;
use adhoc_cluster::routing::{self, ClusterRouter, LegacyScratch};
use adhoc_graph::bfs;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let reps = if quick_mode() { 3 } else { 20 };
    let pairs_per_rep = 40;
    println!(
        "{:>4} {:>3} {:>9} {:>9} {:>9} {:>9} {:>22} {:>10}",
        "N", "k", "stretch", "raw", "worst", "head-tbl", "member-tbl min/mean/max", "flat-tbl"
    );
    for n in [100usize, 200] {
        for k in [1u32, 2, 3] {
            let mut stretches = Vec::new();
            let mut raw_stretches = Vec::new();
            let mut worsts = Vec::new();
            let mut head_tbl = Vec::new();
            let mut member_mean = Vec::new();
            let mut member_min = usize::MAX;
            let mut member_max = 0usize;
            for rep in 0..reps {
                let mut rng = StdRng::seed_from_u64(0x707E + rep as u64 * 17 + n as u64);
                let net = gen::geometric(&GeometricConfig::new(n, 100.0, 6.0), &mut rng);
                let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
                let router = ClusterRouter::build(&net.graph, &c);
                let stats = router.table_stats(&net.graph);
                head_tbl.push(stats.head_entries as f64);
                member_mean.push(stats.member_mean);
                member_min = member_min.min(stats.member_min);
                member_max = member_max.max(stats.member_max);
                let mut scratch = LegacyScratch::new();
                let mut worst = 1.0f64;
                for _ in 0..pairs_per_rep {
                    let u = NodeId(rng.gen_range(0..n as u32));
                    let v = NodeId(rng.gen_range(0..n as u32));
                    if u == v {
                        continue;
                    }
                    let raw = router
                        .route_raw_with(&net.graph, u, v, &mut scratch)
                        .expect("connected network");
                    let mut walk = raw.clone();
                    adhoc_graph::paths::shortcut_walk(&mut walk, v);
                    assert!(routing::is_valid_walk(&net.graph, &walk));
                    let d = bfs::distances(&net.graph, u)[v.index()];
                    let s = f64::from(routing::walk_hops(&walk)) / f64::from(d);
                    stretches.push(s);
                    raw_stretches.push(f64::from(routing::walk_hops(&raw)) / f64::from(d));
                    worst = worst.max(s);
                }
                worsts.push(worst);
            }
            println!(
                "{n:>4} {k:>3} {:>9.3} {:>9.3} {:>9.2} {:>9.1} {:>8}/{:>5.1}/{:>5} {:>10}",
                summarize(&stretches).mean,
                summarize(&raw_stretches).mean,
                summarize(&worsts).mean,
                summarize(&head_tbl).mean,
                member_min,
                summarize(&member_mean).mean,
                member_max,
                n - 1
            );
        }
    }
    println!(
        "\nstretch = routed hops / shortest hops (raw = before the \
         first-pass-through-target shortcut); tables in entries per node"
    );
}
