//! Broadcast application experiment (the paper's §1 motivation),
//! simulated at message level: blind flooding vs CDS-backbone
//! broadcast — transmissions and delivery latency across N and k.
//!
//! Usage: `cargo run --release -p adhoc-bench --bin broadcast [--quick]`

use adhoc_bench::quick_mode;
use adhoc_bench::stats::summarize;
use adhoc_cluster::clustering::{cluster, MemberPolicy};
use adhoc_cluster::pipeline::{run_on, Algorithm};
use adhoc_cluster::priority::LowestId;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::graph::NodeId;
use adhoc_sim::broadcast::{simulate, Strategy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let reps = if quick_mode() { 3 } else { 30 };
    println!(
        "{:>4} {:>3} {:>11} {:>11} {:>8} {:>11} {:>11}",
        "N", "k", "flood-tx", "backbone-tx", "saved", "flood-lat", "backbone-lat"
    );
    for n in [50usize, 100, 150, 200] {
        for k in [1u32, 2, 3] {
            let (mut ft, mut bt, mut fl, mut bl) = (vec![], vec![], vec![], vec![]);
            for rep in 0..reps {
                let mut rng = StdRng::seed_from_u64(0xB00C + rep as u64 * 13 + n as u64);
                let net = gen::geometric(&GeometricConfig::new(n, 100.0, 6.0), &mut rng);
                let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
                let out = run_on(&net.graph, Algorithm::AcLmst, &c);
                let flood = simulate(&net.graph, &c, &out.cds, NodeId(0), Strategy::BlindFlood);
                let bb = simulate(&net.graph, &c, &out.cds, NodeId(0), Strategy::Backbone);
                assert!(flood.complete && bb.complete, "broadcast incomplete");
                ft.push(flood.transmissions as f64);
                bt.push(bb.transmissions as f64);
                fl.push(flood.latency as f64);
                bl.push(bb.latency as f64);
            }
            let (ftm, btm) = (summarize(&ft).mean, summarize(&bt).mean);
            println!(
                "{n:>4} {k:>3} {ftm:>11.1} {btm:>11.1} {:>7.1}% {:>11.1} {:>11.1}",
                100.0 * (ftm - btm) / ftm,
                summarize(&fl).mean,
                summarize(&bl).mean
            );
        }
    }
    println!("\nboth strategies verified complete on every replicate");
}
