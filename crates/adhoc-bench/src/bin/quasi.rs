//! Radio-model robustness: Figure 5's comparison on quasi-UDG radios.
//!
//! The paper's workload is a perfect unit-disk graph. Real radios have
//! a gray zone — links between `r` and `1.5r` exist only with some
//! probability. Theorems 1–2 never use geometry, so the algorithm
//! ordering should survive; this experiment repeats the Figure-5-style
//! comparison (CDS size vs N, k = 2) on quasi-UDG instances to show it
//! does.
//!
//! Usage: `cargo run --release -p adhoc-bench --bin quasi [--quick]`

use adhoc_bench::quick_mode;
use adhoc_bench::stats::summarize;
use adhoc_cluster::clustering::{cluster, MemberPolicy};
use adhoc_cluster::pipeline::{run_on, Algorithm};
use adhoc_cluster::priority::LowestId;
use adhoc_graph::gen::{self, GeometricConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let reps = if quick_mode() { 5 } else { 50 };
    let k = 2u32;
    let p_gray = 0.5;
    let outer_ratio = 1.5;
    println!(
        "CDS size vs N on quasi-UDG (gray zone to {outer_ratio}r at p = {p_gray}, D = 6, k = {k})"
    );
    println!(
        "{:>4} | {:>8} {:>8} {:>8} {:>8} {:>8}",
        "N", "NC-Mesh", "AC-Mesh", "NC-LMST", "AC-LMST", "G-MST"
    );
    let mut ordering_held = true;
    for n in [50usize, 100, 150, 200] {
        let mut sizes: Vec<Vec<f64>> = vec![Vec::new(); Algorithm::ALL.len()];
        for rep in 0..reps {
            let mut rng = StdRng::seed_from_u64(0x9A51 + rep as u64 * 73 + n as u64);
            let net = gen::quasi_geometric(
                &GeometricConfig::new(n, 100.0, 6.0),
                outer_ratio,
                p_gray,
                &mut rng,
            );
            let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            let mut by_alg = [0usize; 5];
            for (i, alg) in Algorithm::ALL.iter().enumerate() {
                let out = run_on(&net.graph, *alg, &c);
                out.cds
                    .verify(&net.graph, k)
                    .unwrap_or_else(|e| panic!("{alg} invalid on quasi-UDG: {e}"));
                sizes[i].push(out.cds.size() as f64);
                by_alg[i] = out.cds.size();
            }
            // Per-instance ordering guarantees (the deterministic ones).
            let of = |alg: Algorithm| {
                by_alg[Algorithm::ALL.iter().position(|a| *a == alg).unwrap()]
            };
            ordering_held &= of(Algorithm::AcMesh) <= of(Algorithm::NcMesh)
                && of(Algorithm::NcLmst) <= of(Algorithm::NcMesh)
                && of(Algorithm::AcLmst) <= of(Algorithm::AcMesh);
        }
        let of = |alg: Algorithm| {
            summarize(&sizes[Algorithm::ALL.iter().position(|a| *a == alg).unwrap()]).mean
        };
        println!(
            "{n:>4} | {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            of(Algorithm::NcMesh),
            of(Algorithm::AcMesh),
            of(Algorithm::NcLmst),
            of(Algorithm::AcLmst),
            of(Algorithm::GMst),
        );
    }
    println!(
        "\nper-instance ordering (AC ≤ NC, LMST ≤ Mesh): {}",
        if ordering_held { "held on every replicate" } else { "VIOLATED" }
    );
    assert!(ordering_held);
}
