//! Ideal-MAC ablation: rerun the broadcast application under a
//! contention MAC (slotted CSMA, receiver-side collisions).
//!
//! The paper's simulation assumes an ideal MAC; its *motivation* (§1)
//! is that flooding "may cause severe collision and contention". This
//! experiment closes the loop: with collisions enabled, the blind flood
//! loses delivery ratio to the broadcast storm while the clustered CDS
//! backbone — far fewer contending transmitters — stays close to
//! complete, at every contention-window setting.
//!
//! Usage: `cargo run --release -p adhoc-bench --bin mac_ablation [--quick]`

use adhoc_bench::figures::{Figure, FigureSet};
use adhoc_bench::stats::summarize;
use adhoc_bench::{quick_mode, results_dir};
use adhoc_cluster::clustering::{cluster, MemberPolicy};
use adhoc_cluster::pipeline::{run_on, Algorithm};
use adhoc_cluster::priority::LowestId;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::NodeId;
use adhoc_sim::broadcast::{self, Strategy};
use adhoc_sim::mac::{simulate_with_mac, MacConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let reps = if quick_mode() { 5 } else { 50 };
    let n = 150usize;
    let d = 10.0;
    let k = 1u32;
    println!("broadcast under contention MAC (N = {n}, D = {d}, k = {k})");
    println!(
        "{:>5} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "cw", "fl-deliv", "fl-coll", "fl-tx", "bb-deliv", "bb-coll", "bb-tx"
    );
    let mut deliv_fig = Figure::new(
        "mac-delivery",
        "Delivery ratio vs contention window (N=150, D=10, k=1)",
        "cw",
        "% delivered",
    );
    let mut coll_fig = Figure::new(
        "mac-collisions",
        "Collisions vs contention window (N=150, D=10, k=1)",
        "cw",
        "collisions",
    );
    for cw in [1u32, 2, 4, 8, 16, 32] {
        let mut metrics: [Vec<f64>; 6] = Default::default();
        for rep in 0..reps {
            let mut rng = StdRng::seed_from_u64(0x3AC + rep as u64 * 7919);
            let net = gen::geometric(&GeometricConfig::new(n, 100.0, d), &mut rng);
            let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
            let out = run_on(&net.graph, Algorithm::AcLmst, &c);
            let cfg = MacConfig {
                cw,
                ..MacConfig::default()
            };
            let fl = simulate_with_mac(
                &net.graph, &c, &out.cds, NodeId(0), Strategy::BlindFlood, &cfg, &mut rng,
            );
            let bb = simulate_with_mac(
                &net.graph, &c, &out.cds, NodeId(0), Strategy::Backbone, &cfg, &mut rng,
            );
            metrics[0].push(fl.delivery_ratio(n) * 100.0);
            metrics[1].push(fl.collisions as f64);
            metrics[2].push(fl.transmissions as f64);
            metrics[3].push(bb.delivery_ratio(n) * 100.0);
            metrics[4].push(bb.collisions as f64);
            metrics[5].push(bb.transmissions as f64);
        }
        deliv_fig.push("flood", f64::from(cw), summarize(&metrics[0]));
        deliv_fig.push("backbone", f64::from(cw), summarize(&metrics[3]));
        coll_fig.push("flood", f64::from(cw), summarize(&metrics[1]));
        coll_fig.push("backbone", f64::from(cw), summarize(&metrics[4]));
        println!(
            "{cw:>5} | {:>8.1}% {:>9.1} {:>9.1} | {:>8.1}% {:>9.1} {:>9.1}",
            summarize(&metrics[0]).mean,
            summarize(&metrics[1]).mean,
            summarize(&metrics[2]).mean,
            summarize(&metrics[3]).mean,
            summarize(&metrics[4]).mean,
            summarize(&metrics[5]).mean,
        );
    }

    let mut set = FigureSet::default();
    set.push(deliv_fig);
    set.push(coll_fig);
    let out = results_dir().join("mac_ablation.json");
    set.save_json(&out).expect("write mac_ablation.json");
    eprintln!("wrote {}", out.display());

    // Reference row: the ideal MAC the paper assumes.
    let mut ideal: [Vec<f64>; 2] = Default::default();
    for rep in 0..reps {
        let mut rng = StdRng::seed_from_u64(0x3AC + rep as u64 * 7919);
        let net = gen::geometric(&GeometricConfig::new(n, 100.0, d), &mut rng);
        let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
        let out = run_on(&net.graph, Algorithm::AcLmst, &c);
        let fl = broadcast::simulate(&net.graph, &c, &out.cds, NodeId(0), Strategy::BlindFlood);
        let bb = broadcast::simulate(&net.graph, &c, &out.cds, NodeId(0), Strategy::Backbone);
        ideal[0].push(fl.transmissions as f64);
        ideal[1].push(bb.transmissions as f64);
    }
    println!(
        "ideal | {:>8} {:>9} {:>9.1} | {:>8} {:>9} {:>9.1}",
        "100.0%",
        0,
        summarize(&ideal[0]).mean,
        "100.0%",
        0,
        summarize(&ideal[1]).mean,
    );
}
