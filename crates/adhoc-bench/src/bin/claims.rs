//! Programmatically checks the six summary claims of §4 against a
//! fresh sweep, printing PASS/FAIL per claim. This is the regression
//! harness behind EXPERIMENTS.md.
//!
//! The paper's claims:
//! 1. A-NCR reduces the number of gateway nodes.
//! 2. AC-LMST (A-NCR + extended LMST) reduces it further.
//! 3. The approaches are scalable (CDS grows sub-linearly in N) and
//!    suit both sparse and dense networks.
//! 4. LMST is more effective than A-NCR; AC-LMST improves little over
//!    NC-LMST, especially in dense networks.
//! 5. Larger k ⇒ fewer clusterheads, more gateways, smaller CDS
//!    overall.
//! 6. AC-LMST performs very close to the G-MST lower bound.
//!
//! Usage: `cargo run --release -p adhoc-bench --bin claims [--quick]`

use adhoc_bench::harness::{run_cell, CellConfig};
use adhoc_bench::{apply_quick, results_dir};
use adhoc_cluster::pipeline::Algorithm;
use std::collections::BTreeMap;

fn main() {
    // Sweep: k ∈ {1..4} × D ∈ {6, 10} at N = 100 and N = 200.
    let mut cells = BTreeMap::new();
    for d in [6.0, 10.0] {
        for k in 1..=4u32 {
            for n in [100usize, 200] {
                let cfg = apply_quick(CellConfig::paper(n, d, k));
                cells.insert((d.to_bits(), k, n), run_cell(&cfg, None));
            }
        }
    }
    let cell = |d: f64, k: u32, n: usize| &cells[&(d.to_bits(), k, n)];
    let mut failures = 0;
    let mut check = |name: &str, ok: bool, detail: String| {
        println!("[{}] {name}", if ok { "PASS" } else { "FAIL" });
        println!("       {detail}");
        if !ok {
            failures += 1;
        }
    };

    // Claim 1: A-NCR reduces gateways (k >= 2 where it has bite).
    {
        let mut ok = true;
        let mut detail = String::new();
        for d in [6.0, 10.0] {
            for k in 2..=4u32 {
                let c = cell(d, k, 100);
                let nc = c.gateways_of(Algorithm::NcMesh).mean;
                let ac = c.gateways_of(Algorithm::AcMesh).mean;
                ok &= ac <= nc;
                detail.push_str(&format!(
                    "D={d} k={k}: NC-Mesh {nc:.1} vs AC-Mesh {ac:.1}; "
                ));
            }
        }
        check("1: A-NCR reduces gateway count", ok, detail);
    }

    // Claim 2: AC-LMST reduces further (vs both mesh variants).
    {
        let mut ok = true;
        let mut detail = String::new();
        for k in 2..=4u32 {
            let c = cell(6.0, k, 100);
            let ac_mesh = c.gateways_of(Algorithm::AcMesh).mean;
            let ac_lmst = c.gateways_of(Algorithm::AcLmst).mean;
            ok &= ac_lmst <= ac_mesh;
            detail.push_str(&format!(
                "k={k}: AC-Mesh {ac_mesh:.1} vs AC-LMST {ac_lmst:.1}; "
            ));
        }
        check("2: AC-LMST reduces gateways further", ok, detail);
    }

    // Claim 3: scalability — the paper's §4 reading is that "the
    // number of gateway nodes selected is proportional to the number
    // of nodes": growth is linear (not exploding), in both densities.
    // Check: doubling N from 100 to 200 scales the CDS by a factor in
    // [1.5, 2.5].
    {
        let mut ok = true;
        let mut detail = String::new();
        for d in [6.0, 10.0] {
            let small = cell(d, 2, 100).cds_of(Algorithm::AcLmst).mean;
            let large = cell(d, 2, 200).cds_of(Algorithm::AcLmst).mean;
            let factor = large / small;
            ok &= (1.5..=2.5).contains(&factor);
            detail.push_str(&format!(
                "D={d}: CDS {small:.1} -> {large:.1} (x{factor:.2}); "
            ));
        }
        check(
            "3: CDS grows proportionally with N, sparse and dense",
            ok,
            detail,
        );
    }

    // Claim 4: LMST effect (NC-Mesh -> NC-LMST) beats A-NCR effect
    // (NC-Mesh -> AC-Mesh); AC-LMST ≈ NC-LMST in dense networks.
    {
        let mut ok = true;
        let mut detail = String::new();
        for k in 2..=4u32 {
            let c = cell(6.0, k, 100);
            let lmst_gain = c.cds_of(Algorithm::NcMesh).mean - c.cds_of(Algorithm::NcLmst).mean;
            let ancr_gain = c.cds_of(Algorithm::NcMesh).mean - c.cds_of(Algorithm::AcMesh).mean;
            ok &= lmst_gain >= ancr_gain;
            detail.push_str(&format!(
                "k={k}: LMST gain {lmst_gain:.1} vs A-NCR gain {ancr_gain:.1}; "
            ));
        }
        let dense = cell(10.0, 3, 100);
        let gap = dense.cds_of(Algorithm::NcLmst).mean - dense.cds_of(Algorithm::AcLmst).mean;
        ok &= gap.abs() <= 0.05 * dense.cds_of(Algorithm::NcLmst).mean + 1.0;
        detail.push_str(&format!("dense k=3 NC-LMST vs AC-LMST gap {gap:.2}"));
        check(
            "4: LMST more effective than A-NCR; small AC gap when dense",
            ok,
            detail,
        );
    }

    // Claim 5: larger k ⇒ fewer clusterheads and smaller CDS, while
    // the gateway *burden per clusterhead* grows. (The paper's prose
    // says "the number of gateways becomes larger", but its own Fig 7
    // data — CDS minus clusterheads — peaks at k=2 and then falls;
    // the per-head gateway count is the monotone quantity, and our
    // sweep reproduces exactly that, so that is what we regress on.)
    {
        let mut ok = true;
        let mut detail = String::new();
        let mut prev: Option<(f64, f64, f64)> = None;
        for k in 1..=4u32 {
            let c = cell(6.0, k, 200);
            let heads = c.heads.mean;
            let gws = c.gateways_of(Algorithm::AcLmst).mean;
            let per_head = gws / heads;
            let cds = c.cds_of(Algorithm::AcLmst).mean;
            if let Some((ph, ppg, pc)) = prev {
                ok &= heads < ph;
                ok &= per_head > ppg;
                ok &= cds < pc;
            }
            detail.push_str(&format!(
                "k={k}: heads {heads:.1}, gw {gws:.1} ({per_head:.2}/head), CDS {cds:.1}; "
            ));
            prev = Some((heads, per_head, cds));
        }
        check(
            "5: larger k: fewer heads, more gateways per head, smaller CDS",
            ok,
            detail,
        );
    }

    // Claim 6: AC-LMST within 20% of the G-MST lower bound on CDS.
    {
        let mut ok = true;
        let mut detail = String::new();
        for d in [6.0, 10.0] {
            for k in 1..=4u32 {
                let c = cell(d, k, 100);
                let ac = c.cds_of(Algorithm::AcLmst).mean;
                let g = c.cds_of(Algorithm::GMst).mean;
                let ratio = ac / g;
                ok &= ratio <= 1.20;
                detail.push_str(&format!("D={d} k={k}: {ratio:.3}; "));
            }
        }
        check("6: AC-LMST close to G-MST lower bound", ok, detail);
    }

    // Persist the sweep for EXPERIMENTS.md.
    let json =
        serde_json::to_string_pretty(&cells.values().collect::<Vec<_>>()).expect("serialize");
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    std::fs::write(dir.join("claims.json"), json).expect("write claims.json");

    if failures > 0 {
        eprintln!("{failures} claim(s) FAILED");
        std::process::exit(1);
    }
    println!("all claims PASS");
}
