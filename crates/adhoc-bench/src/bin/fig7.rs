//! Regenerates **Figure 7**: the effect of the clustering parameter k
//! with AC-LMST gateways in sparse networks (D = 6):
//! (a) number of clusterheads vs N, (b) CDS size vs N, one curve per
//! k ∈ {1, 2, 3, 4}.
//!
//! Usage: `cargo run --release -p adhoc-bench --bin fig7 [--quick]`

use adhoc_bench::figures::{Figure, FigureSet};
use adhoc_bench::harness::{run_cell, CellConfig, NODE_COUNTS};
use adhoc_bench::{apply_quick, results_dir};
use adhoc_cluster::pipeline::Algorithm;

fn main() {
    let mut heads_fig = Figure::new(
        "fig7a",
        "Number of clusterheads vs N (D=6)",
        "N",
        "Clusterheads",
    );
    let mut cds_fig = Figure::new(
        "fig7b",
        "Number of nodes in CDS vs N (AC-LMST, D=6)",
        "N",
        "Size of CDS",
    );
    for k in 1..=4u32 {
        let series = format!("k={k}");
        for n in NODE_COUNTS {
            let cfg = apply_quick(CellConfig::paper(n, 6.0, k));
            let res = run_cell(&cfg, None);
            heads_fig.push(&series, n as f64, res.heads);
            cds_fig.push(&series, n as f64, res.cds_of(Algorithm::AcLmst));
            eprintln!(
                "fig7 k={k} N={n}: heads={:.1}, CDS={:.1} ({} reps)",
                res.heads.mean,
                res.cds_of(Algorithm::AcLmst).mean,
                res.reps
            );
        }
    }
    println!("{}", heads_fig.to_table());
    println!("{}", cds_fig.to_table());
    let mut set = FigureSet::default();
    set.push(heads_fig);
    set.push(cds_fig);
    let out = results_dir().join("fig7.json");
    set.save_json(&out).expect("write fig7.json");
    eprintln!("wrote {}", out.display());
}
