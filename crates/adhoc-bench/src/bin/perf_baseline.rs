//! `perf_baseline` — wall-clock trajectory of the evaluation engine.
//!
//! Times the per-replicate evaluation phase (all five algorithms on a
//! shared clustering) over a small fixed grid, on identical
//! pre-generated inputs:
//!
//! * **seed** — a faithful reimplementation of the pre-refactor
//!   dataflow this PR replaced (per-algorithm `BTreeMap` virtual
//!   graphs, one BFS sweep for the NC relation plus another for the
//!   canonical paths, a heap `Vec` per link path, heap-based local
//!   MSTs, complete-link G-MST) — the "before" of the before/after
//!   record;
//! * **run_on** — five independent `pipeline::run_on` calls through
//!   today's label-backed builders (the compatibility wrapper);
//! * **engine** — one `pipeline::run_all_with` call with a warm
//!   per-thread scratch on **dense** labels (the flat `h × n` arena);
//!   and
//! * **engine-sparse** — the same call on the **sparse ball-indexed**
//!   label layout, recorded alongside so the dense-vs-sparse tradeoff
//!   (time *and* `memory_bytes`) is a committed measurement per cell;
//!   and
//! * **engine-par** — the dense engine again over the shared worker
//!   pool (`max(2, host cores)` workers): its metrics checksum must
//!   equal the serial arm's bit-for-bit (the determinism contract's
//!   in-bench guard), and the recorded `parallel_scaling` is the
//!   serial-vs-parallel trajectory (≤ 1× on one-core hosts is warned
//!   about, not failed).
//!
//! All arms must produce identical metrics (checksummed), so the seed
//! arm doubles as a behavioral regression check of the refactor and
//! the sparse arm as one of the layout.
//!
//! `--large` extends the grid with engine-only cells at
//! `N ∈ {10⁴, 5·10⁴, 10⁵}` (fixed density, one replicate; the seed
//! and `run_on` arms would take hours there and measure nothing new).
//! These are the scales where the dense arena hits gigabytes and the
//! sparse layout is mandatory — the record closes the ROADMAP's
//! dense-vs-sparse decision with data.
//!
//! Writes `results/BENCH_pipeline.json` (override the directory with
//! `KHOP_RESULTS_DIR`) with per-cell wall-clock, replicates/sec,
//! speedups, and both layouts' label-arena heap footprints, stamped
//! with `git describe`, then reads the file back and re-parses it so
//! CI catches a malformed dump immediately. The run **fails** if the
//! sparse footprint is not strictly below the dense one on the largest
//! cell that measured both — the memory-regression guard CI rides on.
//!
//! `--quick` shrinks the grid to seconds for CI (one full-arms cell
//! plus one engine-only cell big enough for the memory guard to bite).

use adhoc_bench::harness::CellConfig;
use adhoc_bench::{probe, quick_mode, results_dir, run_mode};
use adhoc_cluster::clustering::{self, Clustering, MemberPolicy};
use adhoc_cluster::pipeline::{self, Algorithm, EvalScratch, LabelMode};
use adhoc_cluster::priority::LowestId;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::obs::Metrics;
use adhoc_graph::par::Parallelism;
use adhoc_graph::Csr;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::{json, Value};
use std::time::Instant;

/// The evaluation dataflow exactly as it stood before the single-sweep
/// engine, reproduced from the seed sources so the baseline is measured
/// in this binary on identical inputs (the original code paths were
/// refactored in place and no longer exist).
mod seed {
    use adhoc_cluster::clustering::Clustering;
    use adhoc_cluster::gateway::GatewaySelection;
    use adhoc_cluster::pipeline::Algorithm;
    use adhoc_graph::bfs::{self, Adjacency, BfsScratch, UNREACHED};
    use adhoc_graph::graph::NodeId;
    use adhoc_graph::lmst::{self, TieWeight};
    use adhoc_graph::mst::{self, WeightedEdge};
    use adhoc_graph::paths;
    use std::collections::{BTreeMap, BTreeSet};

    struct Link {
        a: NodeId,
        b: NodeId,
        path: Vec<NodeId>,
    }

    impl Link {
        fn hops(&self) -> u32 {
            paths::hop_count(&self.path)
        }
        fn weight(&self) -> TieWeight<u32> {
            TieWeight::new(self.hops(), self.a, self.b)
        }
    }

    struct VirtualGraph {
        sets: BTreeMap<NodeId, Vec<NodeId>>,
        links: BTreeMap<(NodeId, NodeId), Link>,
    }

    /// Seed `adjacency::all_within_2k1`: one bounded BFS per head.
    fn nc_sets<G: Adjacency>(g: &G, c: &Clustering) -> BTreeMap<NodeId, Vec<NodeId>> {
        let bound = 2 * c.k + 1;
        let mut scratch = BfsScratch::new(g.node_count());
        let mut sets = BTreeMap::new();
        for &h in &c.heads {
            scratch.run(g, h, bound);
            let mut near: Vec<NodeId> = c
                .heads
                .iter()
                .copied()
                .filter(|&o| o != h && scratch.dist(o) != UNREACHED)
                .collect();
            near.sort_unstable();
            sets.insert(h, near);
        }
        sets
    }

    /// Seed `adjacency::adjacent_heads`: ordered `Vec::insert` per edge.
    fn ac_sets<G: Adjacency>(g: &G, c: &Clustering) -> BTreeMap<NodeId, Vec<NodeId>> {
        let mut sets: BTreeMap<NodeId, Vec<NodeId>> =
            c.heads.iter().map(|&h| (h, Vec::new())).collect();
        for u in (0..g.node_count() as u32).map(NodeId) {
            let hu = c.head_of(u);
            for &v in g.adj(u) {
                if v <= u {
                    continue;
                }
                let hv = c.head_of(v);
                if hu != hv {
                    let su = sets.get_mut(&hu).expect("head present");
                    if let Err(pos) = su.binary_search(&hv) {
                        su.insert(pos, hv);
                    }
                    let sv = sets.get_mut(&hv).expect("head present");
                    if let Err(pos) = sv.binary_search(&hu) {
                        sv.insert(pos, hu);
                    }
                }
            }
        }
        sets
    }

    /// Seed `VirtualGraph::build`: a second BFS sweep for the paths,
    /// one heap-allocated `Vec` per link, `BTreeMap` storage.
    fn build<G: Adjacency>(g: &G, c: &Clustering, nc: bool) -> VirtualGraph {
        let sets = if nc { nc_sets(g, c) } else { ac_sets(g, c) };
        let bound = 2 * c.k + 1;
        let mut links = BTreeMap::new();
        let mut scratch = BfsScratch::new(g.node_count());
        for (&b, partners) in &sets {
            let smaller: Vec<NodeId> = partners.iter().copied().filter(|&a| a < b).collect();
            if smaller.is_empty() {
                continue;
            }
            scratch.run(g, b, bound);
            for a in smaller {
                let path = bfs::lexico_path_from_labels(g, a, b, &scratch)
                    .expect("selected neighbor heads are within 2k+1 hops");
                links.insert((a, b), Link { a, b, path });
            }
        }
        VirtualGraph { sets, links }
    }

    fn selection_from<'a>(
        links: impl IntoIterator<Item = &'a Link>,
        c: &Clustering,
    ) -> GatewaySelection {
        let mut gateways = Vec::new();
        let mut links_used = Vec::new();
        for l in links {
            links_used.push((l.a, l.b));
            for &w in paths::interior(&l.path) {
                if !c.is_head(w) {
                    gateways.push(w);
                }
            }
        }
        gateways.sort_unstable();
        gateways.dedup();
        links_used.sort_unstable();
        links_used.dedup();
        GatewaySelection {
            gateways,
            links_used,
        }
    }

    /// Seed `gateway::lmstga`: heap-based local MST per head.
    fn lmstga(vg: &VirtualGraph, c: &Clustering) -> GatewaySelection {
        let mut kept: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        for (&u, partners) in &vg.sets {
            if partners.is_empty() {
                continue;
            }
            let weight = |a: NodeId, b: NodeId| {
                let key = if a < b { (a, b) } else { (b, a) };
                vg.links.get(&key).map(Link::weight)
            };
            for v in lmst::on_tree_neighbors(u, partners, weight) {
                kept.insert(if u < v { (u, v) } else { (v, u) });
            }
        }
        selection_from(kept.iter().map(|k| &vg.links[k]), c)
    }

    /// Seed `gateway::gmst`: complete links (one unbounded BFS per
    /// head, a path `Vec` per pair), `BTreeMap` pair index, Kruskal.
    fn gmst<G: Adjacency>(g: &G, c: &Clustering) -> GatewaySelection {
        let mut all: Vec<Link> = Vec::new();
        let mut scratch = BfsScratch::new(g.node_count());
        for (i, &b) in c.heads.iter().enumerate() {
            if i == 0 {
                continue;
            }
            scratch.run(g, b, u32::MAX);
            for &a in &c.heads[..i] {
                if let Some(path) = bfs::lexico_path_from_labels(g, a, b, &scratch) {
                    all.push(Link { a, b, path });
                }
            }
        }
        let by_pair: BTreeMap<(NodeId, NodeId), &Link> =
            all.iter().map(|l| ((l.a, l.b), l)).collect();
        let edges: Vec<WeightedEdge<TieWeight<u32>>> = all
            .iter()
            .map(|l| WeightedEdge::new(l.a, l.b, l.weight()))
            .collect();
        let tree = mst::kruskal(g.node_count(), &edges);
        let chosen = tree.iter().map(|e| {
            let key = if e.a < e.b { (e.a, e.b) } else { (e.b, e.a) };
            by_pair[&key]
        });
        selection_from(chosen, c)
    }

    /// Seed `pipeline::run_on`'s gateway phase for one algorithm.
    pub fn evaluate<G: Adjacency>(
        g: &G,
        c: &Clustering,
        alg: Algorithm,
    ) -> GatewaySelection {
        match alg {
            Algorithm::GMst => gmst(g, c),
            Algorithm::NcMesh | Algorithm::NcLmst => {
                let vg = build(g, c, true);
                if alg == Algorithm::NcMesh {
                    selection_from(vg.links.values(), c)
                } else {
                    lmstga(&vg, c)
                }
            }
            Algorithm::AcMesh | Algorithm::AcLmst => {
                let vg = build(g, c, false);
                if alg == Algorithm::AcMesh {
                    selection_from(vg.links.values(), c)
                } else {
                    lmstga(&vg, c)
                }
            }
        }
    }
}

/// One timed grid point.
struct Cell {
    n: usize,
    d: f64,
    k: u32,
    reps: usize,
    /// Timed rounds after the warmup pass (min is reported).
    rounds: u32,
    /// Whether the seed and `run_on` arms run (the `--large` cells are
    /// engine-only: both legacy arms are quadratic-plus at those sizes
    /// and the dense-vs-sparse question is about the engine).
    full_arms: bool,
}

impl Cell {
    fn full(n: usize, d: f64, k: u32, reps: usize) -> Cell {
        // 11 timed rounds: these cells finish a pass in single-digit
        // milliseconds, so the min-estimator needs a few more samples
        // than the big cells to shake scheduler noise out of the
        // dense-vs-sparse ratio.
        Cell {
            n,
            d,
            k,
            reps,
            rounds: 11,
            full_arms: true,
        }
    }

    fn engine_only(n: usize, d: f64, k: u32, reps: usize, rounds: u32) -> Cell {
        Cell {
            n,
            d,
            k,
            reps,
            rounds,
            full_arms: false,
        }
    }
}

/// Whether `--large` was passed: adds the `N ∈ {10⁴, 5·10⁴, 10⁵}`
/// engine-only scaling cells.
fn large_mode() -> bool {
    std::env::args().any(|a| a == "--large")
}

fn grid() -> Vec<Cell> {
    let mut cells = if quick_mode() {
        // The engine-only n = 2000 cell exists so the sparse-below-
        // dense memory guard runs on a size where sparse actually wins
        // (tiny graphs favor the flat arena).
        vec![
            Cell::full(60, 6.0, 2, 4),
            Cell::engine_only(2000, 6.0, 2, 2, 2),
        ]
    } else {
        vec![
            Cell::full(100, 6.0, 2, 30),
            Cell::full(200, 6.0, 2, 30),
            Cell::full(200, 6.0, 4, 30),
            Cell::full(100, 10.0, 3, 30),
            Cell::full(200, 10.0, 3, 30),
            Cell::engine_only(2000, 6.0, 2, 4, 3),
        ]
    };
    if large_mode() {
        cells.push(Cell::engine_only(10_000, 6.0, 2, 1, 2));
        cells.push(Cell::engine_only(50_000, 6.0, 2, 1, 2));
        cells.push(Cell::engine_only(100_000, 6.0, 2, 1, 2));
    }
    cells
}

/// Deterministic inputs shared by all timed arms.
fn make_inputs(cell: &Cell) -> Vec<(Csr, Clustering)> {
    let cfg = CellConfig::paper(cell.n, cell.d, cell.k);
    (0..cell.reps)
        .map(|i| {
            // Reuse the harness's seeding discipline (base_seed mixed
            // with the cell and replicate index) via a plain StdRng so
            // the inputs stay stable across refactors of the harness.
            let seed = cfg
                .base_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((cell.n as u64) << 32)
                .wrapping_add(u64::from(cell.k) << 16)
                .wrapping_add(i as u64);
            let mut rng = StdRng::seed_from_u64(seed ^ cell.d.to_bits());
            // `at_scale`: the large cells drop the connected-sample
            // requirement (almost surely unmeetable at fixed density).
            let net = gen::geometric(&GeometricConfig::at_scale(cell.n, 100.0, cell.d), &mut rng);
            let csr = Csr::from_graph(&net.graph);
            let clustering = clustering::cluster(&csr, cell.k, &LowestId, MemberPolicy::IdBased);
            (csr, clustering)
        })
        .collect()
}

/// Checksum over the metrics both variants must agree on.
fn checksum(acc: &mut u64, heads: usize, gateways: usize, cds: usize) {
    *acc = acc
        .wrapping_mul(0x100_0000_01B3)
        .wrapping_add((heads as u64) << 32 | (gateways as u64) << 16 | cds as u64);
}

fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// One untimed warmup pass plus `rounds` timed passes; returns the
/// *fastest* round and the (round-invariant) checksum. Min-time is the
/// standard estimator on noisy shared machines — scheduler preemption
/// only ever inflates a round, so the minimum is the most reproducible
/// approximation of the true cost.
fn time_arm(rounds: u32, mut pass: impl FnMut() -> u64) -> (f64, u64) {
    let mut secs = f64::INFINITY;
    let mut sum = 0u64;
    for round in 0..=rounds {
        let t = Instant::now();
        sum = pass();
        if round > 0 {
            secs = secs.min(t.elapsed().as_secs_f64());
        }
    }
    (secs, sum)
}

/// Times the engine over `inputs` with the given warm scratch:
/// returns (fastest round, metrics checksum, final arena bytes).
fn engine_arm(
    inputs: &[(Csr, Clustering)],
    rounds: u32,
    mut scratch: EvalScratch,
) -> (f64, u64, usize) {
    let (secs, sum) = time_arm(rounds, || {
        let mut sum = 0u64;
        for (csr, clustering) in inputs {
            let eval = pipeline::run_all_with(csr, clustering, &mut scratch);
            for alg in Algorithm::ALL {
                let out = eval.of(alg);
                checksum(
                    &mut sum,
                    clustering.head_count(),
                    out.selection.gateways.len(),
                    out.cds.size(),
                );
            }
        }
        sum
    });
    // Scratch is dropped here: the 10⁵ dense arena is gigabytes.
    (secs, sum, scratch.labels_memory_bytes())
}

/// Ceiling on the projected dense arena (`h·n·4` bytes) above which
/// the dense arm is skipped instead of risking an OOM kill before the
/// sparse measurement runs. 8 GiB covers the committed `--large` grid
/// (≈ 5.1 GB at `N = 10⁵`); override with `KHOP_DENSE_BYTES_CAP`.
fn dense_bytes_cap() -> usize {
    std::env::var("KHOP_DENSE_BYTES_CAP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8 << 30)
}

fn main() {
    let mut cells = Vec::new();
    // Largest cell with both layouts measured drives the memory guard.
    let mut guard: Option<(usize, usize, usize)> = None; // (n, dense, sparse)
    // Largest grid cell drives the metrics-on overhead guard.
    let largest_n = grid().iter().map(|c| c.n).max().expect("non-empty grid");
    let mut metrics_overhead: Option<Value> = None;
    for cell in grid() {
        let inputs = make_inputs(&cell);
        let total_reps = cell.reps as f64;
        let max_heads = inputs
            .iter()
            .map(|(_, c)| c.head_count())
            .max()
            .unwrap_or(0);
        let projected_dense = max_heads * cell.n * 4;
        if projected_dense > dense_bytes_cap() {
            println!(
                "n={:<6} d={:<4} k={}  dense arm skipped: projected arena {projected_dense} B over the {} B cap (KHOP_DENSE_BYTES_CAP)",
                cell.n,
                cell.d,
                cell.k,
                dense_bytes_cap(),
            );
            let (engine_sparse_secs, _, sparse_labels_memory_bytes) = engine_arm(
                &inputs,
                cell.rounds,
                EvalScratch::with_tuning(LabelMode::Sparse, Parallelism::serial()),
            );
            cells.push(json!({
                "n": cell.n,
                "d": cell.d,
                "k": cell.k,
                "reps": cell.reps,
                "engine_sparse_secs": engine_sparse_secs,
                "sparse_labels_memory_bytes": sparse_labels_memory_bytes,
                "dense_projected_bytes": projected_dense,
            }));
            continue;
        }

        // Single-sweep engine with a warm scratch — dense layout,
        // then the same engine on the sparse ball-indexed layout.
        // Both are pinned to one worker: they are the serial reference
        // the multi-worker arm below is compared (and checksummed)
        // against.
        let (engine_secs, engine_sum, labels_memory_bytes) = engine_arm(
            &inputs,
            cell.rounds,
            EvalScratch::with_tuning(LabelMode::Dense, Parallelism::serial()),
        );
        let (engine_sparse_secs, sparse_sum, sparse_labels_memory_bytes) = engine_arm(
            &inputs,
            cell.rounds,
            EvalScratch::with_tuning(LabelMode::Sparse, Parallelism::serial()),
        );
        assert_eq!(
            sparse_sum, engine_sum,
            "sparse and dense layouts diverged on n={} d={} k={}",
            cell.n, cell.d, cell.k
        );

        // Multi-worker engine arm (dense layout, shared worker pool):
        // the order-sensitive metrics checksum must equal the serial
        // arm's bit-for-bit — the determinism contract's in-bench
        // guard. Scaling ≤ 1x is reported, not failed: on a one-core
        // container the pool legitimately cannot win.
        let par_workers = Parallelism::available().workers().max(2);
        let (engine_par_secs, par_sum, _) = engine_arm(
            &inputs,
            cell.rounds,
            EvalScratch::with_tuning(LabelMode::Dense, Parallelism::new(par_workers)),
        );
        assert_eq!(
            par_sum, engine_sum,
            "multi-worker engine diverged from serial on n={} d={} k={}",
            cell.n, cell.d, cell.k
        );
        let parallel_scaling = engine_secs / engine_par_secs.max(1e-12);
        if parallel_scaling <= 1.0 {
            println!(
                "warning: n={} x{par_workers} workers scaled {parallel_scaling:.2}x (<= 1x) \
                 — expected on hosts with fewer free cores than workers",
                cell.n
            );
        }
        guard = match guard {
            Some((n, _, _)) if n >= cell.n => guard,
            _ => Some((cell.n, labels_memory_bytes, sparse_labels_memory_bytes)),
        };

        // Metrics-on overhead arm (largest grid cell only): the same
        // serial dense engine with an enabled registry, interleaved
        // with a fresh metrics-off reference so both mins see the same
        // machine state. The disabled path is one predictable branch
        // per site; anything near the 3% acceptance bound means a hot
        // loop started touching the registry.
        if cell.n == largest_n {
            let rounds = cell.rounds.max(3);
            let (off_secs, off_sum, _) = engine_arm(
                &inputs,
                rounds,
                EvalScratch::with_tuning(LabelMode::Dense, Parallelism::serial()),
            );
            let mut metered = EvalScratch::with_tuning(LabelMode::Dense, Parallelism::serial());
            metered.set_metrics(Metrics::enabled());
            let (on_secs, on_sum, _) = engine_arm(&inputs, rounds, metered);
            assert_eq!(
                on_sum, off_sum,
                "metrics-on engine diverged on n={} d={} k={}",
                cell.n, cell.d, cell.k
            );
            let ratio = on_secs / off_secs.max(1e-12);
            assert!(
                ratio < 1.03,
                "metrics-on overhead {ratio:.4}x exceeds the 3% budget on n={}",
                cell.n
            );
            println!(
                "metrics overhead guard: n={} metrics-on {ratio:.4}x metrics-off (< 1.03x)",
                cell.n
            );
            metrics_overhead = Some(json!({
                "n": cell.n,
                "metrics_off_secs": off_secs,
                "metrics_on_secs": on_secs,
                "overhead_ratio": ratio,
            }));
        }

        // Legacy arms: the pre-refactor dataflow and the per-algorithm
        // wrapper (skipped on the `--large` scaling cells).
        let legacy = cell.full_arms.then(|| {
            let (seed_secs, seed_sum) = time_arm(cell.rounds, || {
                let mut sum = 0u64;
                for (csr, clustering) in &inputs {
                    for alg in Algorithm::ALL {
                        let sel = seed::evaluate(csr, clustering, alg);
                        checksum(
                            &mut sum,
                            clustering.head_count(),
                            sel.gateways.len(),
                            clustering.head_count() + sel.gateways.len(),
                        );
                    }
                }
                sum
            });
            let (run_on_secs, run_on_sum) = time_arm(cell.rounds, || {
                let mut sum = 0u64;
                for (csr, clustering) in &inputs {
                    for alg in Algorithm::ALL {
                        let out = pipeline::run_on(csr, alg, clustering);
                        checksum(
                            &mut sum,
                            clustering.head_count(),
                            out.selection.gateways.len(),
                            out.cds.size(),
                        );
                    }
                }
                sum
            });
            assert_eq!(
                seed_sum, engine_sum,
                "engine and seed metrics diverged on n={} d={} k={}",
                cell.n, cell.d, cell.k
            );
            assert_eq!(run_on_sum, engine_sum, "engine and run_on metrics diverged");
            (seed_secs, run_on_secs)
        });

        let sparse_over_dense_time = engine_sparse_secs / engine_secs.max(1e-12);
        let sparse_over_dense_memory =
            sparse_labels_memory_bytes as f64 / labels_memory_bytes.max(1) as f64;
        let mut row = json!({
            "n": cell.n,
            "d": cell.d,
            "k": cell.k,
            "reps": cell.reps,
            "engine_secs": engine_secs,
            "engine_sparse_secs": engine_sparse_secs,
            "engine_par_secs": engine_par_secs,
            "engine_par_workers": par_workers,
            "parallel_scaling": parallel_scaling,
            "engine_replicates_per_sec": total_reps / engine_secs,
            "engine_sparse_replicates_per_sec": total_reps / engine_sparse_secs,
            "sparse_over_dense_time": sparse_over_dense_time,
            "labels_memory_bytes": labels_memory_bytes,
            "sparse_labels_memory_bytes": sparse_labels_memory_bytes,
            "sparse_over_dense_memory": sparse_over_dense_memory,
        });
        if let Some((seed_secs, run_on_secs)) = legacy {
            let speedup = seed_secs / engine_secs.max(1e-12);
            println!(
                "n={:<6} d={:<4} k={}  reps={:<3} seed {:>8.0} rps | run_on {:>8.0} rps | engine {:>8.0} rps | {:>5.2}x vs seed | sparse {:.2}x time, {:.1}% mem",
                cell.n,
                cell.d,
                cell.k,
                cell.reps,
                total_reps / seed_secs,
                total_reps / run_on_secs,
                total_reps / engine_secs,
                speedup,
                sparse_over_dense_time,
                100.0 * sparse_over_dense_memory,
            );
            let extra = json!({
                "seed_secs": seed_secs,
                "run_on_secs": run_on_secs,
                "seed_replicates_per_sec": total_reps / seed_secs,
                "run_on_replicates_per_sec": total_reps / run_on_secs,
                "speedup_vs_seed": speedup,
                "speedup_vs_run_on": run_on_secs / engine_secs.max(1e-12),
            });
            if let (Value::Object(row_map), Value::Object(extra_map)) = (&mut row, extra) {
                row_map.extend(extra_map);
            }
        } else {
            println!(
                "n={:<6} d={:<4} k={}  reps={:<3} engine dense {:>8.3}s ({} B) | sparse {:>8.3}s ({} B) | sparse {:.2}x time, {:.1}% mem",
                cell.n,
                cell.d,
                cell.k,
                cell.reps,
                engine_secs,
                labels_memory_bytes,
                engine_sparse_secs,
                sparse_labels_memory_bytes,
                sparse_over_dense_time,
                100.0 * sparse_over_dense_memory,
            );
        }
        cells.push(row);
    }

    let geomean_of = |values: Vec<f64>| -> Option<f64> {
        if values.is_empty() {
            None
        } else {
            Some((values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp())
        }
    };
    let geomean = geomean_of(
        cells
            .iter()
            .filter_map(|c| c["speedup_vs_seed"].as_f64())
            .collect(),
    )
    .expect("at least one full-arms cell");
    println!("geometric-mean evaluation speedup vs seed: {geomean:.2}x");
    // Paper-scale cells only (N ≤ 2000): the acceptance bound on the
    // sparse layout's wall-clock overhead where dense is the right
    // default.
    let geomean_sparse = geomean_of(
        cells
            .iter()
            .filter(|c| c["n"].as_u64().expect("n") <= 2000)
            .filter_map(|c| c["sparse_over_dense_time"].as_f64())
            .collect(),
    )
    .expect("at least one small cell");
    println!(
        "geometric-mean sparse/dense engine time on N <= 2000 cells: {geomean_sparse:.3}x"
    );

    // Memory-regression guard (CI rides on the --quick run): on the
    // largest dual-measured cell, the sparse layout must be strictly
    // smaller than the dense arena, or the layout has regressed to
    // pointlessness. Tiny cells are exempt — the flat arena is
    // legitimately smaller below ~1000 nodes, which is the auto
    // heuristic's whole point — so the guard only bites when a cell
    // at scale measured both layouts (always true for the standard
    // grids; only a pathological KHOP_DENSE_BYTES_CAP removes them).
    match guard {
        Some((guard_n, guard_dense, guard_sparse)) if guard_n >= 1000 => {
            assert!(
                guard_sparse < guard_dense,
                "sparse labels ({guard_sparse} B) not strictly below dense ({guard_dense} B) on the largest cell (n={guard_n})"
            );
            println!(
                "memory guard: n={guard_n} sparse {guard_sparse} B < dense {guard_dense} B ({:.1}%)",
                100.0 * guard_sparse as f64 / guard_dense as f64
            );
        }
        _ => println!("memory guard: skipped (no dual-measured cell with n >= 1000)"),
    }

    // The grid actually run, compactly, so a record can never claim
    // more scope than it measured (mode "quick" + its two tiny cells
    // is visibly not the full trajectory).
    let grid_run: Vec<Value> = grid()
        .iter()
        .map(|c| json!({"n": c.n, "d": c.d, "k": c.k, "reps": c.reps}))
        .collect();
    let doc = json!({
        "schema": "khop-perf-baseline/v2",
        "git": git_describe(),
        "mode": run_mode(),
        "quick": quick_mode(),
        "large": large_mode(),
        "grid": grid_run,
        "host_cores": Parallelism::available().workers(),
        "geomean_speedup_vs_seed": geomean,
        "geomean_sparse_over_dense_time_small_n": geomean_sparse,
        "metrics_overhead": metrics_overhead.unwrap_or(Value::Null),
        "metrics": probe::reference_metrics_section(),
        "cells": cells,
    });

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    // Quick runs get their own file so a CI-style smoke run can never
    // clobber the committed full-grid trajectory record.
    let path = dir.join(if quick_mode() {
        "BENCH_pipeline_quick.json"
    } else {
        "BENCH_pipeline.json"
    });
    std::fs::write(&path, format!("{doc:#}\n")).expect("write BENCH_pipeline.json");

    // Round-trip sanity: re-read and re-parse what was written so a
    // serialization bug fails loudly (this is the CI check).
    let raw = std::fs::read_to_string(&path).expect("read back BENCH_pipeline.json");
    let parsed: Value = serde_json::from_str(&raw).expect("BENCH_pipeline.json must parse");
    assert_eq!(parsed["schema"], "khop-perf-baseline/v2");
    assert!(
        !parsed["cells"].as_array().expect("cells array").is_empty(),
        "baseline must contain at least one cell"
    );
    println!("wrote {}", path.display());
}
