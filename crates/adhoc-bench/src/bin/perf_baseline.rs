//! `perf_baseline` — wall-clock trajectory of the evaluation engine.
//!
//! Times the per-replicate evaluation phase (all five algorithms on a
//! shared clustering) over a small fixed grid, three ways, on
//! identical pre-generated inputs:
//!
//! * **seed** — a faithful reimplementation of the pre-refactor
//!   dataflow this PR replaced (per-algorithm `BTreeMap` virtual
//!   graphs, one BFS sweep for the NC relation plus another for the
//!   canonical paths, a heap `Vec` per link path, heap-based local
//!   MSTs, complete-link G-MST) — the "before" of the before/after
//!   record;
//! * **run_on** — five independent `pipeline::run_on` calls through
//!   today's label-backed builders (the compatibility wrapper); and
//! * **engine** — one `pipeline::run_all_with` call with a warm
//!   per-thread scratch (the single-sweep engine the harness uses).
//!
//! All three arms must produce identical metrics (checksummed), so the
//! seed arm doubles as a behavioral regression check of the refactor.
//!
//! Writes `results/BENCH_pipeline.json` (override the directory with
//! `KHOP_RESULTS_DIR`) with per-cell wall-clock, replicates/sec,
//! speedups, and the warm label arena's heap footprint
//! (`labels_memory_bytes`, the ROADMAP's dense-layout memory probe),
//! stamped with `git describe`, then reads the file back and
//! re-parses it so CI catches a malformed dump immediately. Subsequent
//! PRs compare their numbers against the committed file to keep a perf
//! trajectory.
//!
//! `--quick` shrinks the grid to seconds for CI.

use adhoc_bench::harness::CellConfig;
use adhoc_bench::{quick_mode, results_dir};
use adhoc_cluster::clustering::{self, Clustering, MemberPolicy};
use adhoc_cluster::pipeline::{self, Algorithm, EvalScratch};
use adhoc_cluster::priority::LowestId;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::Csr;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::{json, Value};
use std::time::Instant;

/// The evaluation dataflow exactly as it stood before the single-sweep
/// engine, reproduced from the seed sources so the baseline is measured
/// in this binary on identical inputs (the original code paths were
/// refactored in place and no longer exist).
mod seed {
    use adhoc_cluster::clustering::Clustering;
    use adhoc_cluster::gateway::GatewaySelection;
    use adhoc_cluster::pipeline::Algorithm;
    use adhoc_graph::bfs::{self, Adjacency, BfsScratch, UNREACHED};
    use adhoc_graph::graph::NodeId;
    use adhoc_graph::lmst::{self, TieWeight};
    use adhoc_graph::mst::{self, WeightedEdge};
    use adhoc_graph::paths;
    use std::collections::{BTreeMap, BTreeSet};

    struct Link {
        a: NodeId,
        b: NodeId,
        path: Vec<NodeId>,
    }

    impl Link {
        fn hops(&self) -> u32 {
            paths::hop_count(&self.path)
        }
        fn weight(&self) -> TieWeight<u32> {
            TieWeight::new(self.hops(), self.a, self.b)
        }
    }

    struct VirtualGraph {
        sets: BTreeMap<NodeId, Vec<NodeId>>,
        links: BTreeMap<(NodeId, NodeId), Link>,
    }

    /// Seed `adjacency::all_within_2k1`: one bounded BFS per head.
    fn nc_sets<G: Adjacency>(g: &G, c: &Clustering) -> BTreeMap<NodeId, Vec<NodeId>> {
        let bound = 2 * c.k + 1;
        let mut scratch = BfsScratch::new(g.node_count());
        let mut sets = BTreeMap::new();
        for &h in &c.heads {
            scratch.run(g, h, bound);
            let mut near: Vec<NodeId> = c
                .heads
                .iter()
                .copied()
                .filter(|&o| o != h && scratch.dist(o) != UNREACHED)
                .collect();
            near.sort_unstable();
            sets.insert(h, near);
        }
        sets
    }

    /// Seed `adjacency::adjacent_heads`: ordered `Vec::insert` per edge.
    fn ac_sets<G: Adjacency>(g: &G, c: &Clustering) -> BTreeMap<NodeId, Vec<NodeId>> {
        let mut sets: BTreeMap<NodeId, Vec<NodeId>> =
            c.heads.iter().map(|&h| (h, Vec::new())).collect();
        for u in (0..g.node_count() as u32).map(NodeId) {
            let hu = c.head_of(u);
            for &v in g.adj(u) {
                if v <= u {
                    continue;
                }
                let hv = c.head_of(v);
                if hu != hv {
                    let su = sets.get_mut(&hu).expect("head present");
                    if let Err(pos) = su.binary_search(&hv) {
                        su.insert(pos, hv);
                    }
                    let sv = sets.get_mut(&hv).expect("head present");
                    if let Err(pos) = sv.binary_search(&hu) {
                        sv.insert(pos, hu);
                    }
                }
            }
        }
        sets
    }

    /// Seed `VirtualGraph::build`: a second BFS sweep for the paths,
    /// one heap-allocated `Vec` per link, `BTreeMap` storage.
    fn build<G: Adjacency>(g: &G, c: &Clustering, nc: bool) -> VirtualGraph {
        let sets = if nc { nc_sets(g, c) } else { ac_sets(g, c) };
        let bound = 2 * c.k + 1;
        let mut links = BTreeMap::new();
        let mut scratch = BfsScratch::new(g.node_count());
        for (&b, partners) in &sets {
            let smaller: Vec<NodeId> = partners.iter().copied().filter(|&a| a < b).collect();
            if smaller.is_empty() {
                continue;
            }
            scratch.run(g, b, bound);
            for a in smaller {
                let path = bfs::lexico_path_from_labels(g, a, b, &scratch)
                    .expect("selected neighbor heads are within 2k+1 hops");
                links.insert((a, b), Link { a, b, path });
            }
        }
        VirtualGraph { sets, links }
    }

    fn selection_from<'a>(
        links: impl IntoIterator<Item = &'a Link>,
        c: &Clustering,
    ) -> GatewaySelection {
        let mut gateways = Vec::new();
        let mut links_used = Vec::new();
        for l in links {
            links_used.push((l.a, l.b));
            for &w in paths::interior(&l.path) {
                if !c.is_head(w) {
                    gateways.push(w);
                }
            }
        }
        gateways.sort_unstable();
        gateways.dedup();
        links_used.sort_unstable();
        links_used.dedup();
        GatewaySelection {
            gateways,
            links_used,
        }
    }

    /// Seed `gateway::lmstga`: heap-based local MST per head.
    fn lmstga(vg: &VirtualGraph, c: &Clustering) -> GatewaySelection {
        let mut kept: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        for (&u, partners) in &vg.sets {
            if partners.is_empty() {
                continue;
            }
            let weight = |a: NodeId, b: NodeId| {
                let key = if a < b { (a, b) } else { (b, a) };
                vg.links.get(&key).map(Link::weight)
            };
            for v in lmst::on_tree_neighbors(u, partners, weight) {
                kept.insert(if u < v { (u, v) } else { (v, u) });
            }
        }
        selection_from(kept.iter().map(|k| &vg.links[k]), c)
    }

    /// Seed `gateway::gmst`: complete links (one unbounded BFS per
    /// head, a path `Vec` per pair), `BTreeMap` pair index, Kruskal.
    fn gmst<G: Adjacency>(g: &G, c: &Clustering) -> GatewaySelection {
        let mut all: Vec<Link> = Vec::new();
        let mut scratch = BfsScratch::new(g.node_count());
        for (i, &b) in c.heads.iter().enumerate() {
            if i == 0 {
                continue;
            }
            scratch.run(g, b, u32::MAX);
            for &a in &c.heads[..i] {
                if let Some(path) = bfs::lexico_path_from_labels(g, a, b, &scratch) {
                    all.push(Link { a, b, path });
                }
            }
        }
        let by_pair: BTreeMap<(NodeId, NodeId), &Link> =
            all.iter().map(|l| ((l.a, l.b), l)).collect();
        let edges: Vec<WeightedEdge<TieWeight<u32>>> = all
            .iter()
            .map(|l| WeightedEdge::new(l.a, l.b, l.weight()))
            .collect();
        let tree = mst::kruskal(g.node_count(), &edges);
        let chosen = tree.iter().map(|e| {
            let key = if e.a < e.b { (e.a, e.b) } else { (e.b, e.a) };
            by_pair[&key]
        });
        selection_from(chosen, c)
    }

    /// Seed `pipeline::run_on`'s gateway phase for one algorithm.
    pub fn evaluate<G: Adjacency>(
        g: &G,
        c: &Clustering,
        alg: Algorithm,
    ) -> GatewaySelection {
        match alg {
            Algorithm::GMst => gmst(g, c),
            Algorithm::NcMesh | Algorithm::NcLmst => {
                let vg = build(g, c, true);
                if alg == Algorithm::NcMesh {
                    selection_from(vg.links.values(), c)
                } else {
                    lmstga(&vg, c)
                }
            }
            Algorithm::AcMesh | Algorithm::AcLmst => {
                let vg = build(g, c, false);
                if alg == Algorithm::AcMesh {
                    selection_from(vg.links.values(), c)
                } else {
                    lmstga(&vg, c)
                }
            }
        }
    }
}

/// One timed grid point.
struct Cell {
    n: usize,
    d: f64,
    k: u32,
    reps: usize,
}

fn grid() -> Vec<Cell> {
    if quick_mode() {
        vec![Cell {
            n: 60,
            d: 6.0,
            k: 2,
            reps: 4,
        }]
    } else {
        vec![
            Cell {
                n: 100,
                d: 6.0,
                k: 2,
                reps: 30,
            },
            Cell {
                n: 200,
                d: 6.0,
                k: 2,
                reps: 30,
            },
            Cell {
                n: 200,
                d: 6.0,
                k: 4,
                reps: 30,
            },
            Cell {
                n: 100,
                d: 10.0,
                k: 3,
                reps: 30,
            },
            Cell {
                n: 200,
                d: 10.0,
                k: 3,
                reps: 30,
            },
        ]
    }
}

/// Deterministic inputs shared by both timed variants.
fn make_inputs(cell: &Cell) -> Vec<(Csr, Clustering)> {
    let cfg = CellConfig::paper(cell.n, cell.d, cell.k);
    (0..cell.reps)
        .map(|i| {
            // Reuse the harness's seeding discipline (base_seed mixed
            // with the cell and replicate index) via a plain StdRng so
            // the inputs stay stable across refactors of the harness.
            let seed = cfg
                .base_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((cell.n as u64) << 32)
                .wrapping_add(u64::from(cell.k) << 16)
                .wrapping_add(i as u64);
            let mut rng = StdRng::seed_from_u64(seed ^ cell.d.to_bits());
            let net = gen::geometric(&GeometricConfig::new(cell.n, 100.0, cell.d), &mut rng);
            let csr = Csr::from_graph(&net.graph);
            let clustering = clustering::cluster(&csr, cell.k, &LowestId, MemberPolicy::IdBased);
            (csr, clustering)
        })
        .collect()
}

/// Checksum over the metrics both variants must agree on.
fn checksum(acc: &mut u64, heads: usize, gateways: usize, cds: usize) {
    *acc = acc
        .wrapping_mul(0x100_0000_01B3)
        .wrapping_add((heads as u64) << 32 | (gateways as u64) << 16 | cds as u64);
}

fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

fn main() {
    // Each arm runs one untimed warmup pass plus `ROUNDS` timed passes
    // over the same inputs; the *fastest* round is reported. Min-time
    // is the standard estimator on noisy shared machines — scheduler
    // preemption only ever inflates a round, so the minimum is the
    // most reproducible approximation of the true cost.
    const ROUNDS: u32 = 7;
    let mut cells = Vec::new();
    for cell in grid() {
        let inputs = make_inputs(&cell);
        let total_reps = cell.reps as f64;

        // Pre-refactor dataflow, reproduced from the seed sources.
        let mut seed_sum = 0u64;
        let mut seed_secs = f64::INFINITY;
        for round in 0..=ROUNDS {
            seed_sum = 0;
            let t = Instant::now();
            for (csr, clustering) in &inputs {
                for alg in Algorithm::ALL {
                    let sel = seed::evaluate(csr, clustering, alg);
                    checksum(
                        &mut seed_sum,
                        clustering.head_count(),
                        sel.gateways.len(),
                        clustering.head_count() + sel.gateways.len(),
                    );
                }
            }
            if round > 0 {
                seed_secs = seed_secs.min(t.elapsed().as_secs_f64());
            }
        }

        // Today's per-algorithm compatibility wrapper.
        let mut run_on_sum = 0u64;
        let mut run_on_secs = f64::INFINITY;
        for round in 0..=ROUNDS {
            run_on_sum = 0;
            let t = Instant::now();
            for (csr, clustering) in &inputs {
                for alg in Algorithm::ALL {
                    let out = pipeline::run_on(csr, alg, clustering);
                    checksum(
                        &mut run_on_sum,
                        clustering.head_count(),
                        out.selection.gateways.len(),
                        out.cds.size(),
                    );
                }
            }
            if round > 0 {
                run_on_secs = run_on_secs.min(t.elapsed().as_secs_f64());
            }
        }

        // Single-sweep engine with a warm scratch.
        let mut engine_sum = 0u64;
        let mut engine_secs = f64::INFINITY;
        let mut scratch = EvalScratch::new();
        for round in 0..=ROUNDS {
            engine_sum = 0;
            let t = Instant::now();
            for (csr, clustering) in &inputs {
                let eval = pipeline::run_all_with(csr, clustering, &mut scratch);
                for alg in Algorithm::ALL {
                    let out = eval.of(alg);
                    checksum(
                        &mut engine_sum,
                        clustering.head_count(),
                        out.selection.gateways.len(),
                        out.cds.size(),
                    );
                }
            }
            if round > 0 {
                engine_secs = engine_secs.min(t.elapsed().as_secs_f64());
            }
        }

        assert_eq!(
            seed_sum, engine_sum,
            "engine and seed metrics diverged on n={} d={} k={}",
            cell.n, cell.d, cell.k
        );
        assert_eq!(run_on_sum, engine_sum, "engine and run_on metrics diverged");

        // Arena footprint of the warm label scratch for this cell — the
        // ROADMAP's dense-vs-sparse layout decision is data-driven off
        // this (dominant term: heads × n × 4 bytes per worker thread).
        let labels_memory_bytes = scratch.labels_memory_bytes();

        let speedup = seed_secs / engine_secs.max(1e-12);
        println!(
            "n={:<4} d={:<4} k={}  reps={:<3} seed {:>8.0} rps | run_on {:>8.0} rps | engine {:>8.0} rps | {:>5.2}x vs seed",
            cell.n,
            cell.d,
            cell.k,
            cell.reps,
            total_reps / seed_secs,
            total_reps / run_on_secs,
            total_reps / engine_secs,
            speedup
        );
        cells.push(json!({
            "n": cell.n,
            "d": cell.d,
            "k": cell.k,
            "reps": cell.reps,
            "seed_secs": seed_secs,
            "run_on_secs": run_on_secs,
            "engine_secs": engine_secs,
            "seed_replicates_per_sec": total_reps / seed_secs,
            "run_on_replicates_per_sec": total_reps / run_on_secs,
            "engine_replicates_per_sec": total_reps / engine_secs,
            "speedup_vs_seed": speedup,
            "speedup_vs_run_on": run_on_secs / engine_secs.max(1e-12),
            "labels_memory_bytes": labels_memory_bytes,
        }));
    }

    let geomean = (cells
        .iter()
        .map(|c| {
            c["speedup_vs_seed"]
                .as_f64()
                .expect("speedup is a number")
                .ln()
        })
        .sum::<f64>()
        / cells.len() as f64)
        .exp();
    println!("geometric-mean evaluation speedup vs seed: {geomean:.2}x");

    let doc = json!({
        "schema": "khop-perf-baseline/v1",
        "git": git_describe(),
        "quick": quick_mode(),
        "geomean_speedup_vs_seed": geomean,
        "cells": cells,
    });

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    // Quick runs get their own file so a CI-style smoke run can never
    // clobber the committed full-grid trajectory record.
    let path = dir.join(if quick_mode() {
        "BENCH_pipeline_quick.json"
    } else {
        "BENCH_pipeline.json"
    });
    std::fs::write(&path, format!("{doc:#}\n")).expect("write BENCH_pipeline.json");

    // Round-trip sanity: re-read and re-parse what was written so a
    // serialization bug fails loudly (this is the CI check).
    let raw = std::fs::read_to_string(&path).expect("read back BENCH_pipeline.json");
    let parsed: Value = serde_json::from_str(&raw).expect("BENCH_pipeline.json must parse");
    assert_eq!(parsed["schema"], "khop-perf-baseline/v1");
    assert!(
        !parsed["cells"].as_array().expect("cells array").is_empty(),
        "baseline must contain at least one cell"
    );
    println!("wrote {}", path.display());
}
