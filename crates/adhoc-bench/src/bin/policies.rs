//! Member-policy ablation (§3's three affiliation rules).
//!
//! The paper lists ID-, distance-, and size-based member affiliation
//! but evaluates only ID-based. This experiment fills that gap:
//! identical topologies and identical clusterheads (the head election
//! is policy-independent), differing only in which cluster each member
//! joins — measuring cluster balance (Jain index), member depth, and
//! the downstream AC-LMST CDS size.
//!
//! Usage: `cargo run --release -p adhoc-bench --bin policies [--quick]`

use adhoc_bench::quick_mode;
use adhoc_bench::stats::summarize;
use adhoc_cluster::analysis;
use adhoc_cluster::clustering::{cluster, MemberPolicy};
use adhoc_cluster::pipeline::{run_on, Algorithm};
use adhoc_cluster::priority::LowestId;
use adhoc_graph::gen::{self, GeometricConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let reps = if quick_mode() { 5 } else { 50 };
    println!(
        "{:<10} {:>3} {:>8} {:>10} {:>10} {:>10}",
        "policy", "k", "jain", "meandepth", "CDS", "maxsize"
    );
    for k in [1u32, 2, 3] {
        for (name, policy) in [
            ("id", MemberPolicy::IdBased),
            ("distance", MemberPolicy::DistanceBased),
            ("size", MemberPolicy::SizeBased),
        ] {
            let mut jain = Vec::new();
            let mut depth = Vec::new();
            let mut cds = Vec::new();
            let mut maxsize = Vec::new();
            for rep in 0..reps {
                let mut rng = StdRng::seed_from_u64(0xF01 + rep as u64);
                let net = gen::geometric(&GeometricConfig::new(100, 100.0, 6.0), &mut rng);
                let c = cluster(&net.graph, k, &LowestId, policy);
                let b = analysis::balance(&c);
                jain.push(b.jain);
                depth.push(b.mean_depth);
                maxsize.push(b.max as f64);
                let out = run_on(&net.graph, Algorithm::AcLmst, &c);
                debug_assert!(out.cds.verify(&net.graph, k).is_ok());
                cds.push(out.cds.size() as f64);
            }
            println!(
                "{name:<10} {k:>3} {:>8.4} {:>10.2} {:>10.2} {:>10.1}",
                summarize(&jain).mean,
                summarize(&depth).mean,
                summarize(&cds).mean,
                summarize(&maxsize).mean,
            );
        }
    }
}
