//! Regenerates **Figure 4**: example cluster graphs from the different
//! gateway selection algorithms on one 100-node, degree-6 random
//! network.
//!
//! The paper's caption says `k = 2` while the body text says "k is 3.
//! There are 7 clusterheads" with gateway counts G-MST 23, NC-Mesh 35,
//! NC-LMST 28, AC-LMST 26 — we render both k values and report the
//! counts; the exact numbers depend on the (unrecoverable) random
//! instance, so the *ordering* is the reproducible claim. SVG
//! snapshots land in `results/`.
//!
//! Usage: `cargo run --release -p adhoc-bench --bin fig4 [seed]`

use adhoc_bench::results_dir;
use adhoc_bench::svg::{render, SvgStyle};
use adhoc_cluster::clustering::{cluster, MemberPolicy};
use adhoc_cluster::pipeline::{run_on, Algorithm};
use adhoc_cluster::priority::LowestId;
use adhoc_graph::gen::{self, GeometricConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2005);
    let mut rng = StdRng::seed_from_u64(seed);
    let net = gen::geometric(&GeometricConfig::new(100, 100.0, 6.0), &mut rng);
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");

    for k in [2u32, 3] {
        let clustering = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
        println!(
            "seed={seed} N=100 D=6 k={k}: {} clusterheads",
            clustering.head_count()
        );
        for alg in [
            Algorithm::GMst,
            Algorithm::NcMesh,
            Algorithm::NcLmst,
            Algorithm::AcLmst,
            Algorithm::AcMesh,
        ] {
            let out = run_on(&net.graph, alg, &clustering);
            out.cds
                .verify(&net.graph, k)
                .unwrap_or_else(|e| panic!("{alg}: {e}"));
            println!(
                "  {:<8} gateways: {:>3}   CDS: {:>3}",
                alg.name(),
                out.selection.gateways.len(),
                out.cds.size()
            );
            // Realized paths for the SVG: re-derive from links_used.
            let links: Vec<_> = match &out.virtual_graph {
                Some(vg) => out
                    .selection
                    .links_used
                    .iter()
                    .map(|&(a, b)| vg.link(a, b).expect("used link").to_owned())
                    .collect(),
                None => {
                    adhoc_cluster::virtual_graph::complete_virtual_links(&net.graph, &clustering)
                        .into_iter()
                        .filter(|l| out.selection.links_used.contains(&(l.a, l.b)))
                        .collect()
                }
            };
            let svg = render(
                &net.graph,
                &net.positions,
                &clustering,
                &out.selection,
                &links,
                &SvgStyle::default(),
            );
            let path = dir.join(format!("fig4_k{}_{}.svg", k, alg.name()));
            std::fs::write(&path, svg).expect("write svg");
        }
    }
    println!("SVG snapshots written to {}", dir.display());
}
