//! Summary statistics for Monte-Carlo estimates.
//!
//! The paper repeats each simulation point "100 times or until the
//! confidence interval is sufficiently small (±1%, for the confidence
//! level of 90%)". [`Summary`] carries exactly that interval.

use serde::{Deserialize, Serialize};

/// Normal-approximation z value for a two-sided 90% confidence level.
pub const Z_90: f64 = 1.6448536269514722;

/// Aggregate of a sample set.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator).
    pub std: f64,
    /// Half-width of the 90% confidence interval of the mean.
    pub half_width: f64,
}

impl Summary {
    /// Whether the interval is within `rel_tol` of the mean (the
    /// paper's ±1% criterion uses `rel_tol = 0.01`). A zero mean with
    /// zero spread also counts as converged.
    pub fn converged(&self, rel_tol: f64) -> bool {
        if self.count < 2 {
            return false;
        }
        if self.mean == 0.0 {
            return self.std == 0.0;
        }
        self.half_width / self.mean.abs() <= rel_tol
    }
}

/// Summarizes `samples` with a 90% normal-approximation interval.
pub fn summarize(samples: &[f64]) -> Summary {
    let count = samples.len();
    if count == 0 {
        return Summary::default();
    }
    let mean = samples.iter().sum::<f64>() / count as f64;
    if count == 1 {
        return Summary {
            count,
            mean,
            std: 0.0,
            half_width: f64::INFINITY,
        };
    }
    let var = samples.iter().map(|&x| (x - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0);
    let std = var.sqrt();
    Summary {
        count,
        mean,
        std,
        half_width: Z_90 * std / (count as f64).sqrt(),
    }
}

/// An online accumulator that merges across worker threads.
#[derive(Clone, Debug, Default)]
pub struct SampleSet {
    samples: Vec<f64>,
}

impl SampleSet {
    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
    }

    /// Absorbs another set (order-insensitive statistics).
    pub fn merge(&mut self, other: SampleSet) {
        self.samples.extend(other.samples);
    }

    /// Current number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Summarizes what has been collected so far.
    pub fn summary(&self) -> Summary {
        summarize(&self.samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        assert_eq!(summarize(&[]).count, 0);
        let s = summarize(&[5.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 5.0);
        assert!(s.half_width.is_infinite());
        assert!(!s.converged(0.01));
    }

    #[test]
    fn known_values() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std with n-1: sqrt(32/7).
        assert!((s.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!(s.half_width > 0.0);
    }

    #[test]
    fn convergence_criterion() {
        // Identical samples: zero spread, converged immediately.
        let s = summarize(&[3.0, 3.0, 3.0]);
        assert!(s.converged(0.01));
        // Wide spread with two samples: not converged at 1%.
        let s = summarize(&[1.0, 100.0]);
        assert!(!s.converged(0.01));
        // All-zero metric counts as converged.
        let s = summarize(&[0.0, 0.0]);
        assert!(s.converged(0.01));
    }

    #[test]
    fn half_width_shrinks_with_samples() {
        let few = summarize(&[1.0, 2.0, 3.0, 4.0]);
        let many: Vec<f64> = (0..64).map(|i| 1.0 + (i % 4) as f64).collect();
        let many = summarize(&many);
        assert!(many.half_width < few.half_width);
    }

    #[test]
    fn sample_set_merge() {
        let mut a = SampleSet::default();
        a.push(1.0);
        a.push(2.0);
        let mut b = SampleSet::default();
        b.push(3.0);
        assert!(!b.is_empty());
        a.merge(b);
        assert_eq!(a.len(), 3);
        assert!((a.summary().mean - 2.0).abs() < 1e-12);
    }
}
