//! Design-choice ablation: canonical (ID-ordered lexicographic)
//! shortest paths vs per-endpoint arbitrary shortest paths.
//!
//! DESIGN.md §6: both endpoints of a virtual link must mark the *same*
//! gateway nodes, which the library guarantees by canonicalizing BFS
//! tie-breaks to the lexicographically smallest path. A distributed
//! implementation that skips that agreement has each endpoint extract
//! a path from its own BFS tree; the two trees need not agree, so both
//! paths' interiors end up marked. This ablation measures the gateway
//! inflation that canonicalization avoids (printed once per group) and
//! benches the cost of both variants.

use adhoc_cluster::adjacency::NeighborRule;
use adhoc_cluster::clustering::{cluster, MemberPolicy};
use adhoc_cluster::gateway;
use adhoc_cluster::priority::LowestId;
use adhoc_cluster::virtual_graph::VirtualGraph;
use adhoc_graph::bfs::BfsScratch;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::graph::NodeId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::hint::black_box;

/// Gateways when each endpoint of every realized link extracts a path
/// from its own BFS parent tree (no cross-endpoint agreement).
fn gateways_without_agreement(
    g: &adhoc_graph::Graph,
    links: &[(NodeId, NodeId)],
    heads: &[NodeId],
    bound: u32,
) -> usize {
    let mut marked: BTreeSet<NodeId> = BTreeSet::new();
    let mut scratch = BfsScratch::new(g.len());
    for &(a, b) in links {
        for (src, dst) in [(a, b), (b, a)] {
            scratch.run(g, src, bound);
            let path = scratch.path_to(dst).expect("link endpoints reachable");
            for &v in &path[1..path.len() - 1] {
                marked.insert(v);
            }
        }
    }
    marked.retain(|v| heads.binary_search(v).is_err());
    marked.len()
}

fn bench_tiebreak(c: &mut Criterion) {
    let k = 2u32;
    let mut group = c.benchmark_group("ablation_tiebreak_k2_D6");
    for n in [100usize, 200] {
        let mut rng = StdRng::seed_from_u64(0x71EB + n as u64);
        let net = gen::geometric(&GeometricConfig::new(n, 100.0, 6.0), &mut rng);
        let clu = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
        let vg = VirtualGraph::build(&net.graph, &clu, NeighborRule::Adjacent);
        let sel = gateway::lmstga(&vg, &clu);
        let canonical = sel.gateway_count();
        let arbitrary = gateways_without_agreement(
            &net.graph,
            &sel.links_used,
            &clu.heads,
            2 * k + 1,
        );
        eprintln!(
            "tiebreak ablation N={n}: canonical gateways = {canonical}, \
             per-endpoint (no agreement) = {arbitrary} \
             (+{:.0}%)",
            100.0 * (arbitrary as f64 - canonical as f64) / canonical.max(1) as f64
        );
        assert!(
            arbitrary >= canonical,
            "per-endpoint paths can never use fewer gateways"
        );

        group.bench_with_input(BenchmarkId::new("canonical", n), &n, |b, _| {
            b.iter(|| {
                let vg = VirtualGraph::build(&net.graph, &clu, NeighborRule::Adjacent);
                black_box(gateway::lmstga(&vg, &clu).gateway_count())
            });
        });
        group.bench_with_input(BenchmarkId::new("per_endpoint", n), &n, |b, _| {
            b.iter(|| {
                black_box(gateways_without_agreement(
                    &net.graph,
                    &sel.links_used,
                    &clu.heads,
                    2 * k + 1,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tiebreak);
criterion_main!(benches);
