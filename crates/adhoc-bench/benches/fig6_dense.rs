//! Figure 6 benchmark: same shape as `fig5_sparse`, on the dense
//! workload (D = 10). Dense graphs have fewer clusters and shorter
//! virtual links, so gateway selection should be cheaper — this bench
//! tracks that.

use adhoc_cluster::clustering::{cluster, MemberPolicy};
use adhoc_cluster::pipeline::{run_on, Algorithm};
use adhoc_cluster::priority::LowestId;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::Csr;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_dense_D10_k2");
    for n in [50usize, 100, 200] {
        let mut rng = StdRng::seed_from_u64(6_000 + n as u64);
        let net = gen::geometric(&GeometricConfig::new(n, 100.0, 10.0), &mut rng);
        let csr = Csr::from_graph(&net.graph);
        let clustering = cluster(&csr, 2, &LowestId, MemberPolicy::IdBased);
        for alg in Algorithm::ALL {
            group.bench_with_input(
                BenchmarkId::new(alg.name(), n),
                &(&csr, &clustering),
                |b, (g, cl)| {
                    b.iter(|| black_box(run_on(*g, alg, cl).cds.size()));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
