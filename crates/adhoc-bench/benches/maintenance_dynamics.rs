//! Dynamics benchmarks: §3.3 repair cost by role, node arrival cost,
//! hierarchy construction, and mobility stepping. These quantify the
//! paper's locality argument — a bystander repair should be orders of
//! magnitude cheaper than re-running the pipeline.

use adhoc_cluster::clustering::{cluster, MemberPolicy};
use adhoc_cluster::hierarchy::Hierarchy;
use adhoc_cluster::pipeline::{run, run_on, Algorithm, PipelineConfig};
use adhoc_cluster::priority::LowestId;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::graph::NodeId;
use adhoc_sim::maintenance::{self, Role};
use adhoc_sim::mobility::{MobileNetwork, WaypointConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_repairs(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(404);
    let net = gen::geometric(&GeometricConfig::new(100, 100.0, 8.0), &mut rng);
    let k = 2;
    let clustering = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
    let out = run_on(&net.graph, Algorithm::AcLmst, &clustering);

    // Find one representative node of each role.
    let mut by_role = std::collections::BTreeMap::new();
    for uid in 0..net.graph.len() as u32 {
        let u = NodeId(uid);
        let role = maintenance::classify(&clustering, &out.selection, u);
        by_role.entry(format!("{role:?}")).or_insert(u);
    }

    let mut group = c.benchmark_group("maintenance_N100_k2");
    for (role, u) in by_role {
        group.bench_function(format!("departure_{role}"), |b| {
            b.iter(|| {
                black_box(maintenance::handle_departure(
                    &net.graph,
                    &clustering,
                    &out.selection,
                    Algorithm::AcLmst,
                    u,
                ))
            });
        });
    }
    group.bench_function("full_pipeline_rerun_for_scale", |b| {
        b.iter(|| black_box(run(&net.graph, Algorithm::AcLmst, &PipelineConfig::new(k))));
    });
    // Classification helper appears in every repair; keep a floor
    // measurement so regressions show.
    let bystander = (0..net.graph.len() as u32)
        .map(NodeId)
        .find(|&u| maintenance::classify(&clustering, &out.selection, u) == Role::Bystander)
        .expect("a bystander exists");
    group.bench_function("classify", |b| {
        b.iter(|| {
            black_box(maintenance::classify(
                &clustering,
                &out.selection,
                bystander,
            ))
        });
    });
    group.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(640);
    let net = gen::geometric(&GeometricConfig::new(200, 100.0, 6.0), &mut rng);
    c.bench_function("hierarchy_3level_N200", |b| {
        b.iter(|| {
            black_box(Hierarchy::build(&net.graph, &[1, 1, 1], MemberPolicy::IdBased).head_counts())
        });
    });
}

fn bench_mobility(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(888);
    let net = gen::geometric(&GeometricConfig::new(150, 100.0, 8.0), &mut rng);
    c.bench_function("mobility_step_N150", |b| {
        let mut mobile = MobileNetwork::new(
            net.positions.clone(),
            net.range,
            WaypointConfig::default_for_side(100.0),
            &mut rng,
        );
        b.iter(|| black_box(mobile.step(1.0, &mut rng).churn()));
    });
}

criterion_group!(benches, bench_repairs, bench_hierarchy, bench_mobility);
criterion_main!(benches);
