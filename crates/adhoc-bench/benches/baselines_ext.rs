//! Benchmarks for the related-work baselines and extensions: cluster
//! vs core vs max-min election cost, Wu/Lou 2.5-hops coverage vs
//! A-NCR, weighted vs hop-based LMSTGA, and the simulated broadcast
//! strategies.

use adhoc_cluster::adjacency::NeighborRule;
use adhoc_cluster::clustering::{cluster, MemberPolicy};
use adhoc_cluster::core_algorithm::core_cluster;
use adhoc_cluster::gateway::{lmstga, lmstga_weighted};
use adhoc_cluster::maxmin::maxmin_cluster;
use adhoc_cluster::pipeline::{run_on, Algorithm};
use adhoc_cluster::priority::LowestId;
use adhoc_cluster::virtual_graph::VirtualGraph;
use adhoc_cluster::wulou;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::graph::NodeId;
use adhoc_sim::broadcast::{simulate, Strategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_election_families(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(61);
    let net = gen::geometric(&GeometricConfig::new(150, 100.0, 6.0), &mut rng);
    let mut group = c.benchmark_group("election_families_N150_D6");
    for k in [1u32, 2, 3] {
        group.bench_with_input(BenchmarkId::new("cluster", k), &k, |b, &k| {
            b.iter(|| {
                black_box(cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased).head_count())
            });
        });
        group.bench_with_input(BenchmarkId::new("core", k), &k, |b, &k| {
            b.iter(|| black_box(core_cluster(&net.graph, k, &LowestId).head_count()));
        });
        group.bench_with_input(BenchmarkId::new("maxmin", k), &k, |b, &k| {
            b.iter(|| black_box(maxmin_cluster(&net.graph, k).head_count()));
        });
    }
    group.finish();
}

fn bench_coverage_rules(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(62);
    let net = gen::geometric(&GeometricConfig::new(150, 100.0, 6.0), &mut rng);
    let clustering = cluster(&net.graph, 1, &LowestId, MemberPolicy::IdBased);
    let mut group = c.benchmark_group("coverage_rules_k1_N150");
    group.bench_function("ancr_adjacent", |b| {
        b.iter(|| {
            black_box(
                adhoc_cluster::adjacency::neighbor_clusterheads(
                    &net.graph,
                    &clustering,
                    NeighborRule::Adjacent,
                )
                .pair_count(),
            )
        });
    });
    group.bench_function("wulou_25hops", |b| {
        b.iter(|| {
            black_box(
                wulou::coverage25(&net.graph, &clustering)
                    .undirected_pairs()
                    .len(),
            )
        });
    });
    group.finish();
}

fn bench_weighted_gateways(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(63);
    let net = gen::geometric(&GeometricConfig::new(120, 100.0, 8.0), &mut rng);
    let clustering = cluster(&net.graph, 2, &LowestId, MemberPolicy::IdBased);
    let costs: Vec<u64> = (0..net.graph.len()).map(|_| rng.gen_range(0..50)).collect();
    let mut group = c.benchmark_group("gateway_weighting_N120_k2");
    group.bench_function("hop_based", |b| {
        let vg = VirtualGraph::build(&net.graph, &clustering, NeighborRule::Adjacent);
        b.iter(|| black_box(lmstga(&vg, &clustering).gateway_count()));
    });
    group.bench_function("energy_weighted", |b| {
        b.iter(|| {
            black_box(
                lmstga_weighted(&net.graph, &clustering, NeighborRule::Adjacent, &costs)
                    .gateway_count(),
            )
        });
    });
    group.finish();
}

fn bench_broadcast(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(64);
    let net = gen::geometric(&GeometricConfig::new(150, 100.0, 8.0), &mut rng);
    let clustering = cluster(&net.graph, 1, &LowestId, MemberPolicy::IdBased);
    let out = run_on(&net.graph, Algorithm::AcLmst, &clustering);
    let mut group = c.benchmark_group("broadcast_N150_k1");
    group.bench_function("blind_flood", |b| {
        b.iter(|| {
            black_box(
                simulate(
                    &net.graph,
                    &clustering,
                    &out.cds,
                    NodeId(0),
                    Strategy::BlindFlood,
                )
                .transmissions,
            )
        });
    });
    group.bench_function("backbone", |b| {
        b.iter(|| {
            black_box(
                simulate(
                    &net.graph,
                    &clustering,
                    &out.cds,
                    NodeId(0),
                    Strategy::Backbone,
                )
                .transmissions,
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_election_families,
    bench_coverage_rules,
    bench_weighted_gateways,
    bench_broadcast
);
criterion_main!(benches);
