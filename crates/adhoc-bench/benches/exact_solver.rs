//! Runtime of the exact branch-and-bound solvers vs the heuristics.
//!
//! Quantifies *why* the paper needs heuristics at all: the exact
//! minimum k-hop CDS search grows super-polynomially with N while the
//! localized pipeline stays near-linear. Also benches the set-cover DS
//! solver (the cheaper lower bound) for contrast.

use adhoc_cluster::exact::{min_khop_cds, min_khop_ds, ExactConfig};
use adhoc_cluster::pipeline::{self, Algorithm, PipelineConfig};
use adhoc_graph::gen::{self, GeometricConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_exact_vs_heuristic(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_vs_heuristic_k1_D5");
    group.sample_size(10);
    for n in [12usize, 16, 20, 24] {
        let mut rng = StdRng::seed_from_u64(0xBE7 + n as u64);
        let net = gen::geometric(&GeometricConfig::new(n, 100.0, 5.0), &mut rng);
        group.bench_with_input(BenchmarkId::new("exact_cds", n), &n, |b, _| {
            b.iter(|| black_box(min_khop_cds(&net.graph, 1, &ExactConfig::default()).size()));
        });
        group.bench_with_input(BenchmarkId::new("exact_ds", n), &n, |b, _| {
            b.iter(|| black_box(min_khop_ds(&net.graph, 1, &ExactConfig::default()).size()));
        });
        group.bench_with_input(BenchmarkId::new("ac_lmst", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    pipeline::run(&net.graph, Algorithm::AcLmst, &PipelineConfig::new(1))
                        .cds
                        .size(),
                )
            });
        });
    }
    group.finish();
}

fn bench_exact_k_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_cds_N20_by_k");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(0xBEE);
    let net = gen::geometric(&GeometricConfig::new(20, 100.0, 5.0), &mut rng);
    for k in 1..=3u32 {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(min_khop_cds(&net.graph, k, &ExactConfig::default()).size()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact_vs_heuristic, bench_exact_k_scaling);
criterion_main!(benches);
