//! Figure 7 benchmark: cost of the AC-LMST pipeline as k grows
//! (N = 150, D = 6). Larger k means fewer clusters but bigger
//! (2k+1)-hop neighborhoods per phase — this bench shows which effect
//! wins.

use adhoc_cluster::clustering::{cluster, MemberPolicy};
use adhoc_cluster::pipeline::{run_on, Algorithm};
use adhoc_cluster::priority::LowestId;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::Csr;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7_150);
    let net = gen::geometric(&GeometricConfig::new(150, 100.0, 6.0), &mut rng);
    let csr = Csr::from_graph(&net.graph);

    let mut group = c.benchmark_group("fig7_k_effect_N150_D6");
    for k in 1..=4u32 {
        group.bench_with_input(BenchmarkId::new("clustering", k), &k, |b, &k| {
            b.iter(|| black_box(cluster(&csr, k, &LowestId, MemberPolicy::IdBased)));
        });
        let clustering = cluster(&csr, k, &LowestId, MemberPolicy::IdBased);
        group.bench_with_input(BenchmarkId::new("AC-LMST-gateways", k), &k, |b, _| {
            b.iter(|| black_box(run_on(&csr, Algorithm::AcLmst, &clustering).cds.size()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
