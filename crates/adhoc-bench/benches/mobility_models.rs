//! Step cost of the three mobility models and of the
//! rebuild-and-recluster loop the stability study runs on top of them.

use adhoc_cluster::clustering::{cluster, MemberPolicy};
use adhoc_cluster::priority::LowestId;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_sim::mobility::{
    DirectionConfig, GaussMarkov, GaussMarkovConfig, MobileNetwork, Mobility, RandomDirection,
    RandomWaypoint, WaypointConfig,
};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let n = 200usize;
    let mut rng = StdRng::seed_from_u64(0x30B);
    let base = gen::geometric(&GeometricConfig::new(n, 100.0, 8.0), &mut rng);

    let mut group = c.benchmark_group("mobility_step_N200");
    group.bench_function("random_waypoint", |b| {
        let mut model = RandomWaypoint::new(n, WaypointConfig::default_for_side(100.0), &mut rng);
        let mut positions = base.positions.clone();
        b.iter(|| {
            model.advance(&mut positions, 1.0, &mut rng);
            black_box(positions[0])
        });
    });
    group.bench_function("random_direction", |b| {
        let mut model = RandomDirection::new(n, DirectionConfig::default_for_side(100.0), &mut rng);
        let mut positions = base.positions.clone();
        b.iter(|| {
            model.advance(&mut positions, 1.0, &mut rng);
            black_box(positions[0])
        });
    });
    group.bench_function("gauss_markov", |b| {
        let mut model = GaussMarkov::new(n, GaussMarkovConfig::default_for_side(100.0), &mut rng);
        let mut positions = base.positions.clone();
        b.iter(|| {
            model.advance(&mut positions, 1.0, &mut rng);
            black_box(positions[0])
        });
    });
    group.bench_function("step_rebuild_recluster_k2", |b| {
        let model = RandomWaypoint::new(n, WaypointConfig::default_for_side(100.0), &mut rng);
        let mut net = MobileNetwork::with_model(base.positions.clone(), base.range, model);
        b.iter(|| {
            net.step(1.0, &mut rng);
            black_box(cluster(net.graph(), 2, &LowestId, MemberPolicy::IdBased).head_count())
        });
    });
    group.finish();
}

fn bench_maintenance_policy(c: &mut Criterion) {
    use adhoc_cluster::pipeline::Algorithm;
    use adhoc_sim::movement::{MaintainedCds, MovementConfig};

    let n = 100usize;
    let mut rng = StdRng::seed_from_u64(0x30C);
    let base = gen::geometric(&GeometricConfig::new(n, 100.0, 10.0), &mut rng);
    let wp = WaypointConfig {
        side: 100.0,
        min_speed: 0.2,
        max_speed: 1.0,
        pause: 2.0,
    };

    let mut group = c.benchmark_group("movement_maintenance_N100_k2");
    group.bench_function("sensitive_step", |b| {
        let model = RandomWaypoint::new(n, wp, &mut rng);
        let mut net = MobileNetwork::with_model(base.positions.clone(), base.range, model);
        let mut m = MaintainedCds::build(net.graph(), MovementConfig::strict(2, Algorithm::AcLmst));
        b.iter(|| {
            // The policy consumes the exact delta the mobile grid
            // reports; cloning + re-diffing the snapshot would bill the
            // policy arm for work it does not need.
            let delta = net.step(1.0, &mut rng);
            black_box(m.step_delta(&delta).cost)
        });
    });
    group.bench_function("rebuild_step", |b| {
        let model = RandomWaypoint::new(n, wp, &mut rng);
        let mut net = MobileNetwork::with_model(base.positions.clone(), base.range, model);
        let cfg = MovementConfig::strict(2, Algorithm::AcLmst);
        b.iter(|| {
            net.step(1.0, &mut rng);
            black_box(MaintainedCds::build(net.graph(), cfg).cds.size())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_models, bench_maintenance_policy);
criterion_main!(benches);
