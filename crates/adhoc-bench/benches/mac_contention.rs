//! Runtime of the contention-MAC simulator vs the ideal-MAC one, and
//! the cost of the broadcast strategies under each.

use adhoc_cluster::clustering::{cluster, MemberPolicy};
use adhoc_cluster::pipeline::{run_on, Algorithm};
use adhoc_cluster::priority::LowestId;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::NodeId;
use adhoc_sim::broadcast::{self, Strategy};
use adhoc_sim::mac::{simulate_with_mac, MacConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_mac(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0x3AC);
    let net = gen::geometric(&GeometricConfig::new(150, 100.0, 10.0), &mut rng);
    let clu = cluster(&net.graph, 1, &LowestId, MemberPolicy::IdBased);
    let out = run_on(&net.graph, Algorithm::AcLmst, &clu);

    let mut group = c.benchmark_group("broadcast_mac_N150_D10_k1");
    for (name, strategy) in [
        ("flood", Strategy::BlindFlood),
        ("backbone", Strategy::Backbone),
    ] {
        group.bench_with_input(BenchmarkId::new("ideal", name), &strategy, |b, &s| {
            b.iter(|| {
                black_box(broadcast::simulate(&net.graph, &clu, &out.cds, NodeId(0), s).transmissions)
            });
        });
        group.bench_with_input(BenchmarkId::new("csma_cw8", name), &strategy, |b, &s| {
            let mut rng = StdRng::seed_from_u64(99);
            b.iter(|| {
                black_box(
                    simulate_with_mac(
                        &net.graph,
                        &clu,
                        &out.cds,
                        NodeId(0),
                        s,
                        &MacConfig::default(),
                        &mut rng,
                    )
                    .transmissions,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mac);
criterion_main!(benches);
