//! §5 overhead benchmark: wall time of the full distributed protocol
//! run (discrete-event simulation, all phases) by k and by algorithm,
//! N = 100, D = 6. Complements `--bin overhead`, which reports the
//! *message* counts of the same runs.

use adhoc_cluster::pipeline::Algorithm;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_sim::protocol::{run_protocol, ProtocolConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_protocol(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(100);
    let net = gen::geometric(&GeometricConfig::new(100, 100.0, 6.0), &mut rng);

    let mut group = c.benchmark_group("protocol_overhead_N100_D6");
    for k in 1..=4u32 {
        group.bench_with_input(BenchmarkId::new("AC-LMST", k), &k, |b, &k| {
            let cfg = ProtocolConfig::new(k, Algorithm::AcLmst);
            b.iter(|| black_box(run_protocol(&net.graph, &cfg).stats.total()));
        });
    }
    // AC-LMST at k = 2 is already covered by the k-sweep above;
    // repeating it here would duplicate the Criterion benchmark ID.
    for alg in [Algorithm::NcMesh, Algorithm::AcMesh, Algorithm::NcLmst] {
        group.bench_with_input(BenchmarkId::new(alg.name(), 2u32), &alg, |b, &alg| {
            let cfg = ProtocolConfig::new(2, alg);
            b.iter(|| black_box(run_protocol(&net.graph, &cfg).stats.total()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
