//! Component microbenchmarks and design-choice ablations:
//!
//! * substrate primitives (BFS, bounded BFS, canonical paths, MST);
//! * member-policy ablation (ID vs distance vs size based);
//! * Graph vs Csr traversal representation ablation;
//! * network generation (connected-instance sampling).

use adhoc_cluster::clustering::{cluster, MemberPolicy};
use adhoc_cluster::priority::LowestId;
use adhoc_graph::bfs::{self, BfsScratch};
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::graph::NodeId;
use adhoc_graph::mst::{kruskal, WeightedEdge};
use adhoc_graph::Csr;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_substrate(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let net = gen::geometric(&GeometricConfig::new(200, 100.0, 6.0), &mut rng);
    let csr = Csr::from_graph(&net.graph);

    let mut group = c.benchmark_group("substrate_N200_D6");
    group.bench_function("bfs_full_graph", |b| {
        b.iter(|| black_box(bfs::distances(&net.graph, NodeId(0))));
    });
    group.bench_function("bfs_full_csr", |b| {
        b.iter(|| black_box(bfs::distances(&csr, NodeId(0))));
    });
    group.bench_function("bfs_bounded_k5_scratch_reuse", |b| {
        let mut scratch = BfsScratch::new(csr.len());
        b.iter(|| {
            scratch.run(&csr, NodeId(0), 5);
            black_box(scratch.visited().len())
        });
    });
    group.bench_function("lexico_shortest_path", |b| {
        b.iter(|| {
            black_box(bfs::lexico_shortest_path(
                &csr,
                NodeId(0),
                NodeId(199),
                u32::MAX,
            ))
        });
    });
    group.bench_function("kruskal_random_weights", |b| {
        let edges: Vec<WeightedEdge<u32>> = net
            .graph
            .edges()
            .map(|(a, b)| WeightedEdge::new(a, b, a.0.wrapping_mul(2654435761).wrapping_add(b.0)))
            .collect();
        b.iter(|| black_box(kruskal(csr.len(), &edges).len()));
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    for (n, d) in [(100usize, 6.0), (200, 6.0), (200, 10.0)] {
        group.bench_with_input(
            BenchmarkId::new("connected_geometric", format!("N{n}_D{d}")),
            &(n, d),
            |b, &(n, d)| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut rng = StdRng::seed_from_u64(seed);
                    black_box(gen::geometric(&GeometricConfig::new(n, 100.0, d), &mut rng).rejected)
                });
            },
        );
    }
    group.finish();

    // Cell-grid vs all-pairs unit-disk construction: the grid is what
    // makes large-N generation (scalability bin) and per-step topology
    // rebuilds (mobility) near-linear.
    let mut group = c.benchmark_group("unit_disk_construction");
    for n in [500usize, 2000] {
        let mut rng = StdRng::seed_from_u64(0xD15C + n as u64);
        let side = 100.0 * (n as f64 / 200.0).sqrt();
        let positions: Vec<adhoc_graph::Point> = (0..n)
            .map(|_| {
                adhoc_graph::Point::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side)
            })
            .collect();
        let r = 15.0;
        group.bench_with_input(BenchmarkId::new("cell_grid", n), &n, |b, _| {
            b.iter(|| black_box(gen::unit_disk_graph(&positions, r).edge_count()));
        });
        group.bench_with_input(BenchmarkId::new("all_pairs", n), &n, |b, _| {
            b.iter(|| black_box(gen::unit_disk_graph_naive(&positions, r).edge_count()));
        });
    }
    group.finish();
}

fn bench_member_policy_ablation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(77);
    let net = gen::geometric(&GeometricConfig::new(150, 100.0, 6.0), &mut rng);
    let csr = Csr::from_graph(&net.graph);
    let mut group = c.benchmark_group("member_policy_ablation_N150_k2");
    for (name, policy) in [
        ("id", MemberPolicy::IdBased),
        ("distance", MemberPolicy::DistanceBased),
        ("size", MemberPolicy::SizeBased),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(cluster(&csr, 2, &LowestId, policy).head_count()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_substrate,
    bench_generation,
    bench_member_policy_ablation
);
criterion_main!(benches);
