//! Figure 5 benchmark: time to compute each algorithm's CDS on the
//! sparse workload (D = 6), at the paper's smallest, middle, and
//! largest N for k = 2. The figure's *data* comes from `--bin fig5`;
//! this bench tracks the cost of regenerating one replicate of each
//! curve point.

use adhoc_cluster::clustering::{cluster, MemberPolicy};
use adhoc_cluster::pipeline::{run_on, Algorithm};
use adhoc_cluster::priority::LowestId;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::Csr;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_sparse_D6_k2");
    for n in [50usize, 100, 200] {
        let mut rng = StdRng::seed_from_u64(5_000 + n as u64);
        let net = gen::geometric(&GeometricConfig::new(n, 100.0, 6.0), &mut rng);
        let csr = Csr::from_graph(&net.graph);
        let clustering = cluster(&csr, 2, &LowestId, MemberPolicy::IdBased);
        for alg in Algorithm::ALL {
            group.bench_with_input(
                BenchmarkId::new(alg.name(), n),
                &(&csr, &clustering),
                |b, (g, cl)| {
                    b.iter(|| black_box(run_on(*g, alg, cl).cds.size()));
                },
            );
        }
        // End-to-end replicate (generation + clustering + all five).
        group.bench_with_input(BenchmarkId::new("full-replicate", n), &n, |b, &n| {
            let cfg = adhoc_bench::harness::CellConfig::paper(n, 6.0, 2);
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                black_box(adhoc_bench::harness::run_replicate(&cfg, i));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
