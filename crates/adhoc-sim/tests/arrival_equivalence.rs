//! Arrival equivalence: [`ChurnEngine::arrive`] must be **bit-for-bit
//! indistinguishable** from cold evaluation, and head-set changes must
//! splice label rows instead of rebuilding the arena.
//!
//! Two property families:
//!
//! * Mixed arrival/departure/mobility sequences, `k` 1..=4, both label
//!   layouts: after every reconcile the engine's labels, NC/AC
//!   relations, all five selections/CDSs, and the compiled route plan
//!   equal a cold `pipeline::run_all` (+ `RoutePlan::compile`) on the
//!   live graph and clustering.
//! * Head gain/loss chains on a path: dense and sparse layouts stay
//!   identical row for row, both equal a cold `HeadLabels::build`, and
//!   `rebuild_count` never moves — a single head gained or lost is a
//!   row splice, not an arena rebuild.

use adhoc_cluster::clustering::Clustering;
use adhoc_cluster::pipeline::{self, Algorithm, EvalScratch, LabelMode};
use adhoc_cluster::routing::RoutePlan;
use adhoc_graph::geom::Point;
use adhoc_graph::graph::NodeId;
use adhoc_graph::labels::HeadLabels;
use adhoc_sim::churn::ChurnEngine;
use adhoc_sim::mobility::{Mobility, RandomWaypoint, WaypointConfig};
use adhoc_sim::movement::MovementConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Full cold-equality check including the compiled route plan: the
/// engine's incrementally maintained state must match a from-scratch
/// evaluation *in the engine's own label layout* — labels row by row,
/// NC/AC relations and paths, every selection and CDS, and the walk
/// the route plan emits for every ordered pair.
fn assert_engine_equals_cold(engine: &ChurnEngine, mode: LabelMode, ctx: &str) {
    let g = engine.graph();
    let clustering: &Clustering = &engine.clustering;
    let mut scratch = EvalScratch::with_mode(mode);
    let cold = pipeline::run_all_with(g, clustering, &mut scratch);

    let warm = engine.labels();
    let cold_labels = scratch.labels();
    assert_eq!(warm.heads(), cold_labels.heads(), "{ctx}: label heads");
    for slot in 0..clustering.heads.len() {
        assert_eq!(
            warm.ball(slot),
            cold_labels.ball(slot),
            "{ctx}: ball of slot {slot}"
        );
        for v in g.nodes() {
            assert_eq!(
                warm.dist(slot, v),
                cold_labels.dist(slot, v),
                "{ctx}: dist slot {slot} node {v:?}"
            );
        }
    }

    let eval = engine.evaluation();
    assert_eq!(
        eval.nc_graph.neighbor_sets, cold.nc_graph.neighbor_sets,
        "{ctx}: NC relation"
    );
    assert_eq!(
        eval.ac_graph.neighbor_sets, cold.ac_graph.neighbor_sets,
        "{ctx}: AC relation"
    );
    for alg in Algorithm::ALL {
        assert_eq!(
            eval.of(alg).selection,
            cold.of(alg).selection,
            "{ctx}: {alg} selection"
        );
        assert_eq!(eval.of(alg).cds, cold.of(alg).cds, "{ctx}: {alg} cds");
    }

    // Route plan: the maintained plan must route every ordered pair
    // exactly like one compiled cold from the same structures (epochs
    // aside — those count publications, not content).
    let cold_plan = RoutePlan::compile(
        g,
        clustering,
        scratch.labels(),
        cold.selected_links(Algorithm::AcLmst),
    );
    let warm_plan = engine.route_plan().expect("routing enabled");
    for u in g.nodes() {
        for v in g.nodes() {
            assert_eq!(
                warm_plan.route(u, v),
                cold_plan.route(u, v),
                "{ctx}: route {u:?} -> {v:?}"
            );
        }
    }
}

/// Row-for-row equality of two label stores over the same head set.
macro_rules! assert_labels_match {
    ($a:expr, $b:expr, $g:expr, $ctx:expr) => {{
        prop_assert_eq!($a.heads(), $b.heads(), "{}: heads", $ctx);
        for slot in 0..$a.heads().len() {
            prop_assert_eq!($a.ball(slot), $b.ball(slot), "{}: ball {}", $ctx, slot);
            for v in $g.nodes() {
                prop_assert_eq!(
                    $a.dist(slot, v),
                    $b.dist(slot, v),
                    "{}: dist slot {} node {:?}",
                    $ctx,
                    slot,
                    v
                );
            }
        }
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// §3.3 arrivals interleaved with departures and mobility steps:
    /// the engine stays bit-for-bit equal to a cold run — labels,
    /// NC/AC, all five selections, and the compiled route plan — in
    /// whichever label layout it was built with. Departed nodes park
    /// far outside the field (radio off); a returnee reappears at its
    /// pre-departure position and arrives with exactly the radio links
    /// the spatial grid sees, so engine and grid stay in lock-step.
    #[test]
    fn arrival_mix_matches_cold_run_all(
        seed in 0u64..10_000,
        k in 1u32..=4,
        layout in 0u32..2,
        ops in proptest::collection::vec((0u32..3, 0u32..64), 4..10),
    ) {
        let n = 45usize;
        let mode = if layout == 0 { LabelMode::Dense } else { LabelMode::Sparse };
        let mut rng = StdRng::seed_from_u64(seed);
        let net = adhoc_graph::gen::geometric(
            &adhoc_graph::gen::GeometricConfig::new(n, 100.0, 7.0),
            &mut rng,
        );
        let mut model = RandomWaypoint::new(
            n,
            WaypointConfig { side: 100.0, min_speed: 0.3, max_speed: 2.5, pause: 0.5 },
            &mut rng,
        );
        let park = |u: NodeId| Point::new(10_000.0 + 1_000.0 * u.index() as f64, 10_000.0);
        let mut grid = adhoc_graph::gen::SpatialGrid::build(&net.positions, net.range);
        let mut engine = ChurnEngine::build_with_labels(
            grid.graph(),
            MovementConfig::strict(k, Algorithm::AcLmst),
            mode,
        );
        engine.enable_routing();
        let mut pos = net.positions.clone();
        let mut home = net.positions.clone();
        let mut gone: Vec<NodeId> = Vec::new();
        for (i, &(op, which)) in ops.iter().enumerate() {
            match op {
                0 => {
                    // Mobility beacon step; switched-off radios stay parked.
                    model.advance(&mut pos, 1.0, &mut rng);
                    for &u in &gone {
                        pos[u.index()] = park(u);
                    }
                    let delta = grid.update(&pos);
                    engine.step_delta(&delta);
                }
                1 => {
                    let u = NodeId(which % n as u32);
                    if engine.is_departed(u) {
                        continue;
                    }
                    home[u.index()] = pos[u.index()];
                    pos[u.index()] = park(u);
                    let delta = grid.update(&pos);
                    prop_assert!(delta.added.is_empty(), "parking only cuts links");
                    engine.depart(u);
                    gone.push(u);
                }
                _ => {
                    if gone.is_empty() {
                        continue;
                    }
                    let u = gone.remove(which as usize % gone.len());
                    pos[u.index()] = home[u.index()];
                    let _delta = grid.update(&pos);
                    let neighbors: Vec<NodeId> = grid.graph().neighbors(u).to_vec();
                    engine.arrive(u, &neighbors);
                }
            }
            prop_assert_eq!(
                engine.graph().edges().collect::<Vec<_>>(),
                grid.graph().edges().collect::<Vec<_>>(),
                "engine and grid topology in lock-step"
            );
            assert_engine_equals_cold(&engine, mode, &format!("k={k} op {i}"));
        }
    }

    /// Head gain/loss chains: departures and re-arrivals on a path
    /// (whose clusterheads sit at fixed positions, so hitting one is
    /// easy) must keep dense and sparse label stores identical row for
    /// row, equal to a cold `HeadLabels::build` on the live graph —
    /// and must never rebuild either arena. A forced head
    /// depart/re-arrive cycle at the end guarantees every case
    /// exercises at least one single-head loss and one single-head
    /// gain through the splice path.
    ///
    /// `k = 1` on paths of ≥32 nodes keeps every edge delta local
    /// (≤3 dirty head balls out of ≥10 heads), below the deliberate
    /// `DIRTY_FRACTION_FALLBACK` rebuild heuristic — so the only way
    /// the counter could move is a head-set change failing to splice,
    /// which is exactly the regression this pins.
    #[test]
    fn headset_chains_splice_rows_dense_matches_sparse(
        n in 32usize..48,
        ops in proptest::collection::vec(0u32..64, 3..8),
    ) {
        let k = 1u32;
        let g = adhoc_graph::gen::path(n);
        let cfg = MovementConfig::strict(k, Algorithm::AcLmst);
        let mut dense = ChurnEngine::build_with_labels(&g, cfg, LabelMode::Dense);
        let mut sparse = ChurnEngine::build_with_labels(&g, cfg, LabelMode::Sparse);
        dense.enable_routing();
        sparse.enable_routing();
        let d0 = dense.labels().rebuild_count();
        let s0 = sparse.labels().rebuild_count();

        // The random chain, then a forced head depart + re-arrive.
        let mut picks: Vec<NodeId> = ops.iter().map(|&p| NodeId(p % n as u32)).collect();
        let head = *dense.clustering.heads.last().expect("a path has heads");
        picks.push(head);
        picks.push(head);
        for (i, &u) in picks.iter().enumerate() {
            let ctx = format!("n={n} k={k} op {i} at {u:?}");
            if dense.is_departed(u) {
                let neighbors: Vec<NodeId> = g
                    .neighbors(u)
                    .iter()
                    .copied()
                    .filter(|&w| !dense.is_departed(w))
                    .collect();
                dense.arrive(u, &neighbors);
                sparse.arrive(u, &neighbors);
            } else {
                dense.depart(u);
                sparse.depart(u);
            }

            // The tentpole guarantee: head-set changes splice rows in
            // place; the arena build counter never moves after init.
            prop_assert_eq!(
                dense.labels().rebuild_count(), d0,
                "{}: dense arena rebuilt", &ctx
            );
            prop_assert_eq!(
                sparse.labels().rebuild_count(), s0,
                "{}: sparse arena rebuilt", &ctx
            );

            // Dense ≡ sparse, and both ≡ a cold build.
            prop_assert_eq!(&dense.clustering.heads, &sparse.clustering.heads, "{}", &ctx);
            for v in dense.graph().nodes() {
                prop_assert_eq!(
                    dense.clustering.head_of(v),
                    sparse.clustering.head_of(v),
                    "{}: head_of {:?}",
                    &ctx,
                    v
                );
            }
            let live = dense.graph();
            assert_labels_match!(dense.labels(), sparse.labels(), live, &ctx);
            let cold = HeadLabels::build(live, &dense.clustering.heads, 2 * k + 1);
            assert_labels_match!(dense.labels(), &cold, live, &ctx);
        }
    }
}
