//! The load-bearing correctness test of the whole reproduction: the
//! distributed message-passing protocol must converge to **exactly**
//! the structure the centralized pipeline computes — same clusterheads,
//! same memberships and distances, same realized virtual links, same
//! gateway set — for every localized algorithm, both member policies,
//! and a spread of (N, D, k).

use adhoc_cluster::clustering::{self, MemberPolicy};
use adhoc_cluster::pipeline::{self, Algorithm, PipelineConfig};
use adhoc_cluster::priority::LowestId;
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_sim::protocol::{run_protocol, ProtocolConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const LOCALIZED: [Algorithm; 4] = [
    Algorithm::NcMesh,
    Algorithm::AcMesh,
    Algorithm::NcLmst,
    Algorithm::AcLmst,
];

fn assert_equivalent(
    g: &adhoc_graph::Graph,
    k: u32,
    policy: MemberPolicy,
    algorithm: Algorithm,
    label: &str,
) {
    let mut cfg = ProtocolConfig::new(k, algorithm);
    cfg.policy = policy;
    let dist = run_protocol(g, &cfg);

    let pcfg = PipelineConfig { k, policy };
    let central = pipeline::run(g, algorithm, &pcfg);

    assert_eq!(
        dist.heads, central.clustering.heads,
        "{label}: clusterheads differ"
    );
    assert_eq!(
        dist.head_of, central.clustering.head_of,
        "{label}: memberships differ"
    );
    assert_eq!(
        dist.dist_to_head, central.clustering.dist_to_head,
        "{label}: member distances differ"
    );
    assert_eq!(
        dist.links_marked, central.selection.links_used,
        "{label}: realized virtual links differ"
    );
    assert_eq!(
        dist.gateways, central.selection.gateways,
        "{label}: gateway sets differ"
    );
}

#[test]
fn distributed_equals_centralized_on_fixed_topologies() {
    for (name, g) in [
        ("path", gen::path(15)),
        ("cycle", gen::cycle(14)),
        ("grid", gen::grid(5, 6)),
        ("star", gen::star(8)),
    ] {
        for k in 1..=3u32 {
            for alg in LOCALIZED {
                let label = format!("{name} k={k} {alg}");
                assert_equivalent(&g, k, MemberPolicy::IdBased, alg, &label);
            }
        }
    }
}

#[test]
fn distributed_equals_centralized_on_random_geometric() {
    let mut rng = StdRng::seed_from_u64(2025);
    for (n, d) in [(60, 6.0), (100, 6.0), (80, 10.0)] {
        let net = gen::geometric(&GeometricConfig::new(n, 100.0, d), &mut rng);
        for k in 1..=4u32 {
            for alg in LOCALIZED {
                let label = format!("N={n} D={d} k={k} {alg}");
                assert_equivalent(&net.graph, k, MemberPolicy::IdBased, alg, &label);
            }
        }
    }
}

#[test]
fn distributed_equals_centralized_distance_policy() {
    let mut rng = StdRng::seed_from_u64(4096);
    let net = gen::geometric(&GeometricConfig::new(90, 100.0, 8.0), &mut rng);
    for k in 1..=3u32 {
        for alg in LOCALIZED {
            let label = format!("distance-policy k={k} {alg}");
            assert_equivalent(&net.graph, k, MemberPolicy::DistanceBased, alg, &label);
        }
    }
}

#[test]
fn distributed_cds_passes_centralized_verifier() {
    let mut rng = StdRng::seed_from_u64(7);
    let net = gen::geometric(&GeometricConfig::new(100, 100.0, 6.0), &mut rng);
    for k in 1..=3u32 {
        for alg in LOCALIZED {
            let run = run_protocol(&net.graph, &ProtocolConfig::new(k, alg));
            let cds = adhoc_cluster::Cds {
                heads: run.heads.clone(),
                gateways: run.gateways.clone(),
            };
            cds.verify(&net.graph, k)
                .unwrap_or_else(|e| panic!("{alg} k={k}: {e}"));
        }
    }
}

#[test]
fn overhead_grows_with_k() {
    // The paper's §5: "Communication overhead increases with the
    // growth of the value of k". Verify the trend on a fixed topology.
    let mut rng = StdRng::seed_from_u64(99);
    let net = gen::geometric(&GeometricConfig::new(120, 100.0, 8.0), &mut rng);
    let mut last = 0u64;
    for k in 1..=4u32 {
        let run = run_protocol(&net.graph, &ProtocolConfig::new(k, Algorithm::AcLmst));
        assert!(
            run.stats.total() > last,
            "total transmissions did not grow at k={k}"
        );
        last = run.stats.total();
    }
}

#[test]
fn clustering_rounds_match() {
    let mut rng = StdRng::seed_from_u64(31337);
    let net = gen::geometric(&GeometricConfig::new(70, 100.0, 6.0), &mut rng);
    for k in 1..=3u32 {
        let run = run_protocol(&net.graph, &ProtocolConfig::new(k, Algorithm::AcMesh));
        let central = clustering::cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
        assert_eq!(
            run.stats.rounds, central.rounds,
            "round counts differ at k={k}"
        );
    }
}
