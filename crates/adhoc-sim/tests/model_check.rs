//! Exhaustive model checking of the reconciliation state machine.
//!
//! The quick sweep runs in the normal test pass (CI's tier-1) and is
//! **exhaustive, not sampled**: every delta interleaving over the
//! (n=5, k=1) universe up to the configured depth, crossed with a
//! crash at every phase boundary, with all four invariants audited in
//! every reached state. The `full_sweep_*` tests extend the same
//! enumeration to n=6 and k=2 with composite deltas and run under
//! `cargo test -- --ignored`.
//!
//! The mutation smoke tests check the checker: deliberately corrupt
//! the engine after each transition and demand a counterexample whose
//! `Display` is a replayable delta + fault script.

use adhoc_cluster::pipeline::Algorithm;
use adhoc_sim::churn::ChurnEngine;
use adhoc_sim::modelcheck::{check, CheckConfig, Universe};
use std::time::Duration;

/// Tier-1 sweep: the (n=5, k=1) path-with-chord universe, every crash
/// point, departures AND arrivals in the alphabet, deep enough that
/// the reachable state space **closes** — the depth-9 and depth-10
/// enumerations reach the same state and transition counts, so the
/// sweep covered every state this universe can ever reach, not a
/// depth-bounded prefix. Must finish without hitting any bound.
#[test]
fn quick_exhaustive_n5_k1() {
    let mut cfg = CheckConfig::quick(Universe::path(5, 1, Algorithm::AcLmst));
    cfg.max_depth = 9;
    let report = check(&cfg);
    eprintln!(
        "n5k1 sweep: {} states, {} transitions, depth {}",
        report.states, report.transitions, report.deepest
    );
    if let Some(cx) = &report.violation {
        panic!("{cx}");
    }
    assert!(
        !report.truncated,
        "quick sweep must be exhaustive, not cut short ({} states)",
        report.states
    );
    // Sanity on coverage: the universe has 6 flippable edges, 3
    // departable nodes, and arrivals for each; a real sweep reaches
    // far more than a handful of states and runs 3 faulted variants
    // per move.
    assert!(report.states > 100, "only {} states reached", report.states);
    assert!(
        report.transitions >= 3 * report.states,
        "{} transitions for {} states",
        report.transitions,
        report.states
    );

    // Closure: one move deeper discovers nothing new — neither states
    // nor transitions — so depth 9 already enumerated the whole
    // reachable space including every depart/arrive cycle.
    cfg.max_depth = 10;
    let deeper = check(&cfg);
    assert!(deeper.violation.is_none() && !deeper.truncated);
    assert_eq!(
        (deeper.states, deeper.transitions),
        (report.states, report.transitions),
        "state space had not closed at depth 9"
    );
}

/// The mesh algorithm exercises different gateway repairs; same
/// universe, shallower (the state space is shared work with the
/// AC-LMST sweep above).
#[test]
fn quick_exhaustive_n5_k1_mesh() {
    let mut cfg = CheckConfig::quick(Universe::path(5, 1, Algorithm::AcMesh));
    cfg.max_depth = 3;
    let report = check(&cfg);
    if let Some(cx) = &report.violation {
        panic!("{cx}");
    }
    assert!(!report.truncated);
}

/// Full sweep, n=6 k=1 with composite deltas (flip pairs, reordered
/// duplicates via self-inverse bursts). `--ignored` tier.
#[test]
#[ignore = "full sweep: run with cargo test -- --ignored"]
fn full_sweep_n6_k1_composite() {
    let mut universe = Universe::path(6, 1, Algorithm::AcLmst);
    universe.composite = true;
    let mut cfg = CheckConfig::quick(universe);
    cfg.max_depth = 4;
    cfg.max_states = 200_000;
    cfg.time_budget = Some(Duration::from_secs(1800));
    let report = check(&cfg);
    if let Some(cx) = &report.violation {
        panic!("{cx}");
    }
}

/// Full sweep at k=2: label balls span the whole 6-node universe, so
/// merge detection and the 2k+1 information radius behave very
/// differently. `--ignored` tier.
#[test]
#[ignore = "full sweep: run with cargo test -- --ignored"]
fn full_sweep_n6_k2() {
    let universe = Universe::path(6, 2, Algorithm::AcLmst);
    let mut cfg = CheckConfig::quick(universe);
    cfg.max_depth = 4;
    cfg.max_states = 200_000;
    cfg.time_budget = Some(Duration::from_secs(1800));
    let report = check(&cfg);
    if let Some(cx) = &report.violation {
        panic!("{cx}");
    }
}

fn corrupt_affiliation(e: &mut ChurnEngine) {
    // Break a repair invariant from outside: claim node 1 is further
    // from its head than k allows (or unsettle a head/departed
    // sentinel — any of these must surface as an I1 violation).
    e.clustering.dist_to_head[1] = e.config().k + 5;
}

fn drop_gateways(e: &mut ChurnEngine) {
    // Sever the maintained backbone without telling the engine: its
    // cached verdict goes stale-true, which I2 must catch.
    e.cds.gateways.clear();
}

/// Mutation smoke test: a checker that cannot catch a broken repair
/// path is worthless. Corrupting the repaired affiliation after every
/// transition must yield a counterexample, and its rendering must be
/// a replayable script (universe header + numbered steps).
#[test]
fn mutation_smoke_broken_affiliation_is_caught() {
    let mut cfg = CheckConfig::quick(Universe::path(5, 1, Algorithm::AcLmst));
    cfg.mutate_after_step = Some(corrupt_affiliation);
    let report = check(&cfg);
    let cx = report
        .violation
        .expect("a corrupted engine must produce a counterexample");
    assert!(cx.violations.iter().any(|v| v.invariant == "I1"));
    let script = cx.to_string();
    assert!(script.contains("universe: n=5 k=1"), "{script}");
    assert!(script.contains("step 1:"), "{script}");
    assert!(script.contains("violated I1"), "{script}");
}

/// Same, breaking the published CDS instead of the clustering: the
/// stale validity verdict must surface as an I2 violation.
#[test]
fn mutation_smoke_severed_backbone_is_caught() {
    let mut cfg = CheckConfig::quick(Universe::path(5, 1, Algorithm::AcLmst));
    cfg.mutate_after_step = Some(drop_gateways);
    let report = check(&cfg);
    let cx = report
        .violation
        .expect("a severed backbone must produce a counterexample");
    assert!(
        cx.violations.iter().any(|v| v.invariant == "I2"),
        "expected an I2 violation, got: {cx}"
    );
}

fn corrupt_node0_when_alive(e: &mut ChurnEngine) {
    // Simulates a broken arrival repair: whenever node 0 is switched
    // on, wreck its affiliation record (a repair that "forgot" to
    // re-home the newcomer). While 0 is departed this is a no-op, so
    // only traces that bring 0 back can trip it.
    if !e.is_departed(adhoc_graph::graph::NodeId(0)) {
        e.clustering.dist_to_head[0] = e.config().k + 5;
    }
}

/// Mutation smoke for the arrival path: in a universe whose only
/// moves are departing and re-arriving node 0, a corruption that
/// fires only while 0 is alive must be reached through an arrival (or
/// a crashed arrival's recovery) and surface as an I1 counterexample
/// whose script names the arrive step.
#[test]
fn mutation_smoke_broken_arrival_repair_is_caught() {
    let mut universe = Universe::path(5, 1, Algorithm::AcLmst);
    universe.flip = Vec::new(); // alphabet: depart 0 / arrive 0 only
    universe.departures = vec![0];
    let mut cfg = CheckConfig::quick(universe);
    cfg.mutate_after_step = Some(corrupt_node0_when_alive);
    let report = check(&cfg);
    let cx = report
        .violation
        .expect("a broken arrival repair must produce a counterexample");
    assert!(
        cx.violations.iter().any(|v| v.invariant == "I1"),
        "expected an I1 violation, got: {cx}"
    );
    let script = cx.to_string();
    assert!(
        script.contains("depart 0") && script.contains("arrive 0"),
        "the script must reach the corruption through an arrival: {script}"
    );
}

/// The arrival alphabet genuinely extends the sweep: with arrivals
/// disabled the same universe reaches strictly fewer states.
#[test]
fn arrivals_extend_the_state_space() {
    let mut with = CheckConfig::quick(Universe::path(4, 1, Algorithm::AcLmst));
    with.max_depth = 4;
    let mut without = with.clone();
    without.universe.arrivals = false;
    let rw = check(&with);
    let ro = check(&without);
    assert!(rw.violation.is_none(), "{}", rw.violation.unwrap());
    assert!(ro.violation.is_none(), "{}", ro.violation.unwrap());
    assert!(
        rw.states > ro.states,
        "arrivals must open new states ({} vs {})",
        rw.states,
        ro.states
    );
}
