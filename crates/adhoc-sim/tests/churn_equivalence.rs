//! Delta-equivalence: the incremental churn engine must be
//! **bit-for-bit indistinguishable** from from-scratch evaluation.
//!
//! After any generated sequence of topology deltas — mobility steps
//! under all three models, node departures, or raw edge flips — the
//! incrementally maintained state must equal a cold
//! `pipeline::run_all` on the final graph and clustering:
//!
//! * head labels (distance rows *and* ball lists),
//! * NC/AC neighbor relations and canonical link paths,
//! * all five gateway selections and CDSs.
//!
//! This is the contract that lets the churn bench compare incremental
//! steps against rebuild-every-step on checksummed-equal structures.

use adhoc_cluster::pipeline::{self, Algorithm};
use adhoc_cluster::clustering::Clustering;
use adhoc_graph::graph::NodeId;
use adhoc_graph::labels::HeadLabels;
use adhoc_sim::churn::ChurnEngine;
use adhoc_sim::mobility::{
    DirectionConfig, GaussMarkov, GaussMarkovConfig, Mobility, RandomDirection, RandomWaypoint,
    WaypointConfig,
};
use adhoc_sim::movement::MovementConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Alive-node clustering invariants plus full evaluation equality
/// against a cold run on the engine's current graph.
fn assert_engine_equals_cold(engine: &ChurnEngine, ctx: &str) {
    let g = engine.graph();
    let clustering: &Clustering = &engine.clustering;

    // Labels: incremental maintenance == cold build, row by row.
    let cold_labels = HeadLabels::build(g, &clustering.heads, 2 * clustering.k + 1);
    let warm = engine.labels();
    assert_eq!(warm.heads(), cold_labels.heads(), "{ctx}: label heads");
    for slot in 0..clustering.heads.len() {
        assert_eq!(
            warm.ball(slot),
            cold_labels.ball(slot),
            "{ctx}: ball of slot {slot}"
        );
        for v in g.nodes() {
            assert_eq!(
                warm.dist(slot, v),
                cold_labels.dist(slot, v),
                "{ctx}: dist slot {slot} node {v:?}"
            );
        }
    }

    // Evaluation: relations, canonical paths, selections, CDSs.
    let cold = pipeline::run_all(g, clustering);
    let eval = engine.evaluation();
    assert_eq!(
        eval.nc_graph.neighbor_sets, cold.nc_graph.neighbor_sets,
        "{ctx}: NC relation"
    );
    assert_eq!(
        eval.ac_graph.neighbor_sets, cold.ac_graph.neighbor_sets,
        "{ctx}: AC relation"
    );
    for (name, a, b) in [
        ("nc", &eval.nc_graph, &cold.nc_graph),
        ("ac", &eval.ac_graph, &cold.ac_graph),
    ] {
        assert_eq!(a.link_count(), b.link_count(), "{ctx}: {name} link count");
        for (l, r) in a.links().zip(b.links()) {
            assert_eq!((l.a, l.b), (r.a, r.b), "{ctx}: {name} pair");
            assert_eq!(l.path, r.path, "{ctx}: {name} path {:?}-{:?}", l.a, l.b);
        }
    }
    for alg in Algorithm::ALL {
        assert_eq!(
            eval.of(alg).selection,
            cold.of(alg).selection,
            "{ctx}: {alg} selection"
        );
        assert_eq!(eval.of(alg).cds, cold.of(alg).cds, "{ctx}: {alg} cds");
    }
}

/// A type-erased mobility advance: `(positions, dt, rng)`.
type Advance = Box<dyn FnMut(&mut Vec<adhoc_graph::Point>, f64, &mut StdRng)>;

/// One mobility model chosen by index, erased behind a closure.
fn advance_model(which: usize, n: usize, side: f64, rng: &mut StdRng) -> Advance {
    match which % 3 {
        0 => {
            let mut m = RandomWaypoint::new(
                n,
                WaypointConfig {
                    side,
                    min_speed: 0.5,
                    max_speed: 3.0,
                    pause: 0.5,
                },
                rng,
            );
            Box::new(move |p, dt, r| m.advance(p, dt, r))
        }
        1 => {
            let mut m = RandomDirection::new(n, DirectionConfig::default_for_side(side), rng);
            Box::new(move |p, dt, r| m.advance(p, dt, r))
        }
        _ => {
            let mut m = GaussMarkov::new(n, GaussMarkovConfig::default_for_side(side), rng);
            Box::new(move |p, dt, r| m.advance(p, dt, r))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mobility-delta sequences under all three models, k 1..=4: the
    /// engine's incremental state tracks a cold `run_all` exactly.
    #[test]
    fn mobility_deltas_match_cold_run_all(
        seed in 0u64..10_000,
        k in 1u32..=4,
        model in 0usize..3,
        steps in 3usize..8,
    ) {
        let n = 45;
        let side = 100.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let positions: Vec<adhoc_graph::Point> = (0..n)
            .map(|_| adhoc_graph::Point::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side))
            .collect();
        let range = 22.0;
        let mut grid = adhoc_graph::gen::SpatialGrid::build(&positions, range);
        let mut advance = advance_model(model, n, side, &mut rng);
        let mut engine = ChurnEngine::build(
            grid.graph(),
            MovementConfig::strict(k, Algorithm::AcLmst),
        );
        let mut pos = positions;
        for step in 0..steps {
            advance(&mut pos, 1.0, &mut rng);
            let delta = grid.update(&pos);
            engine.step_delta(&delta);
            assert_engine_equals_cold(&engine, &format!("model {model} k={k} step {step}"));
        }
    }

    /// Departure sequences (the §3.3 workload as deltas): bystanders,
    /// gateways, and clusterheads leave one by one; the engine stays
    /// bit-for-bit consistent with cold evaluation throughout.
    #[test]
    fn departure_deltas_match_cold_run_all(
        seed in 0u64..10_000,
        k in 1u32..=4,
        departures in proptest::collection::vec(0u32..40, 1..6),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = adhoc_graph::gen::geometric(
            &adhoc_graph::gen::GeometricConfig::new(40, 100.0, 7.0),
            &mut rng,
        );
        let mut engine = ChurnEngine::build(
            &net.graph,
            MovementConfig::strict(k, Algorithm::AcLmst),
        );
        for (i, &uid) in departures.iter().enumerate() {
            let u = NodeId(uid);
            if engine.is_departed(u) {
                continue;
            }
            engine.depart(u);
            assert_engine_equals_cold(&engine, &format!("k={k} departure {i} of {u:?}"));
        }
    }

    /// Raw edge-flip deltas (the adversarial shape mobility never
    /// produces): snapshot reconciliation stays exact.
    #[test]
    fn edge_flip_deltas_match_cold_run_all(
        seed in 0u64..10_000,
        k in 1u32..=3,
        flips in proptest::collection::vec((0u32..30, 0u32..30), 1..20),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = adhoc_graph::gen::geometric(
            &adhoc_graph::gen::GeometricConfig::new(30, 100.0, 6.0),
            &mut rng,
        );
        let mut g = net.graph.clone();
        let mut engine = ChurnEngine::build(
            &g,
            MovementConfig::strict(k, Algorithm::AcLmst),
        );
        for (i, &(a, b)) in flips.iter().enumerate() {
            let (a, b) = (NodeId(a), NodeId(b));
            if a == b {
                continue;
            }
            if g.has_edge(a, b) {
                g.remove_edge(a, b);
            } else {
                g.add_edge(a, b);
            }
            engine.step(&g);
            assert_engine_equals_cold(&engine, &format!("k={k} flip {i}"));
        }
    }
}

/// The mixed workload: drift punctuated by departures — the scenario
/// the churn bench sweeps — in one deterministic integration test.
/// Departed nodes are parked far outside the area (their real radio is
/// off) and pinned there, so the grid topology and the engine's view
/// stay in lock-step.
#[test]
fn mixed_churn_workload_stays_exact() {
    let mut rng = StdRng::seed_from_u64(2024);
    let net = adhoc_graph::gen::geometric(
        &adhoc_graph::gen::GeometricConfig::new(70, 100.0, 8.0),
        &mut rng,
    );
    let mut model = RandomWaypoint::new(
        70,
        WaypointConfig {
            side: 100.0,
            min_speed: 0.3,
            max_speed: 2.0,
            pause: 1.0,
        },
        &mut rng,
    );
    let park = |u: NodeId| adhoc_graph::Point::new(10_000.0 + 1_000.0 * u.index() as f64, 10_000.0);
    let mut grid = adhoc_graph::gen::SpatialGrid::build(&net.positions, net.range);
    let mut engine = ChurnEngine::build(
        grid.graph(),
        MovementConfig::strict(2, Algorithm::AcLmst),
    );
    let mut pos = net.positions.clone();
    let mut gone: Vec<NodeId> = Vec::new();
    for round in 0..12 {
        model.advance(&mut pos, 1.0, &mut rng);
        for &u in &gone {
            pos[u.index()] = park(u); // switched-off radios do not move
        }
        let delta = grid.update(&pos);
        engine.step_delta(&delta);
        assert_engine_equals_cold(&engine, &format!("round {round} move"));
        if round % 4 == 3 {
            let u = NodeId(rng.gen_range(0..70u32));
            if !engine.is_departed(u) {
                pos[u.index()] = park(u);
                let park_delta = grid.update(&pos);
                assert!(park_delta.added.is_empty(), "parking only cuts links");
                // Route the same edge removals through depart() so the
                // engine applies the §3.3 role rules.
                engine.depart(u);
                gone.push(u);
                assert_eq!(
                    engine.graph().edges().collect::<Vec<_>>(),
                    grid.graph().edges().collect::<Vec<_>>(),
                    "engine and grid topology in lock-step"
                );
                assert_engine_equals_cold(&engine, &format!("round {round} departure"));
            }
        }
    }
    assert!(!gone.is_empty());
}
