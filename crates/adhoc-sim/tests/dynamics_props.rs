//! Property-based tests for the dynamic parts of the simulator:
//! movement-sensitive maintenance, the contention MAC, and the
//! mobility models.

use adhoc_cluster::pipeline::Algorithm;
use adhoc_graph::connectivity;
use adhoc_graph::gen;
use adhoc_graph::geom::Point;
use adhoc_graph::graph::{Graph, NodeId};
use adhoc_sim::broadcast::Strategy as FwdStrategy;
use adhoc_sim::mac::{simulate_with_mac, MacConfig};
use adhoc_sim::mobility::{
    DirectionConfig, GaussMarkov, GaussMarkovConfig, Mobility, RandomDirection, RandomWaypoint,
    WaypointConfig,
};
use adhoc_sim::movement::{MaintainedCds, MovementConfig, RepairLevel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random connected graph: random tree plus extra edges.
fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4usize..=max_n)
        .prop_flat_map(|n| {
            let parents: Vec<_> = (1..n).map(|i| 0..i as u32).collect();
            let extra = (0..n as u32, 0..n as u32);
            (Just(n), parents, proptest::collection::vec(extra, 0..n))
        })
        .prop_map(|(n, parents, extra)| {
            let mut g = Graph::new(n);
            for (i, p) in parents.into_iter().enumerate() {
                g.add_edge(NodeId((i + 1) as u32), NodeId(p));
            }
            for (a, b) in extra {
                if a != b && !g.has_edge(NodeId(a), NodeId(b)) {
                    g.add_edge(NodeId(a), NodeId(b));
                }
            }
            g
        })
}

/// A random sequence of edge flips (toggle edge between two random
/// nodes), applied only when the result stays connected.
fn apply_flips(g: &mut Graph, flips: &[(u32, u32)]) -> usize {
    let n = g.len() as u32;
    let mut applied = 0;
    for &(a, b) in flips {
        let (a, b) = (NodeId(a % n), NodeId(b % n));
        if a == b {
            continue;
        }
        if g.has_edge(a, b) {
            g.remove_edge(a, b);
            if connectivity::is_connected(&*g) {
                applied += 1;
            } else {
                g.add_edge(a, b); // revert: keep the graph connected
            }
        } else {
            g.add_edge(a, b);
            applied += 1;
        }
    }
    applied
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The maintained structure verifies as a k-hop CDS after every
    /// batch of random (connectivity-preserving) topology changes.
    #[test]
    fn maintained_cds_valid_under_random_edge_flips(
        g in arb_connected_graph(25),
        k in 1u32..3,
        flips in proptest::collection::vec((0u32..25, 0u32..25), 1..30),
        batches in 1usize..4,
    ) {
        let mut g = g;
        let mut m = MaintainedCds::build(&g, MovementConfig::strict(k, Algorithm::AcLmst));
        let chunk = flips.len().div_ceil(batches);
        for batch in flips.chunks(chunk) {
            apply_flips(&mut g, batch);
            let r = m.step(&g);
            prop_assert!(r.valid, "invalid after {:?}-level repair", r.level);
            prop_assert!(m.cds.verify(&g, k).is_ok());
            prop_assert!(m.clustering.verify_coverage(&g).is_ok());
        }
    }

    /// Repair level None must mean the structure was genuinely intact:
    /// stepping twice in a row with no topology change does nothing.
    #[test]
    fn maintenance_is_idempotent(g in arb_connected_graph(25), k in 1u32..3) {
        let mut m = MaintainedCds::build(&g, MovementConfig::strict(k, Algorithm::AcLmst));
        let heads = m.clustering.heads.clone();
        let cds = m.cds.clone();
        for _ in 0..2 {
            let r = m.step(&g);
            prop_assert_eq!(r.level, RepairLevel::None);
            prop_assert_eq!(r.cost, 0);
        }
        prop_assert_eq!(m.clustering.heads, heads);
        prop_assert_eq!(m.cds, cds);
    }

    /// Contention-MAC accounting invariants: per-node transmission
    /// bounds, collision/delivery consistency, and determinism.
    #[test]
    fn mac_accounting_invariants(
        g in arb_connected_graph(25),
        k in 1u32..3,
        cw in 1u32..16,
        seed in 0u64..1000,
    ) {
        use adhoc_cluster::clustering::{cluster, MemberPolicy};
        use adhoc_cluster::pipeline::run_on;
        use adhoc_cluster::priority::LowestId;
        let n = g.len();
        let c = cluster(&g, k, &LowestId, MemberPolicy::IdBased);
        let out = run_on(&g, Algorithm::AcLmst, &c);
        let cfg = MacConfig { cw, max_slots: 1 << 18 };
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            simulate_with_mac(&g, &c, &out.cds, NodeId(0), FwdStrategy::BlindFlood, &cfg, &mut rng)
        };
        let r = run(seed);
        // Every node transmits at most once in a blind flood.
        prop_assert!(r.transmissions <= n as u64);
        prop_assert!(r.delivered >= 1 && r.delivered <= n);
        prop_assert_eq!(r.complete, r.delivered == n);
        // Deterministic under the same seed.
        let r2 = run(seed);
        prop_assert_eq!(r.transmissions, r2.transmissions);
        prop_assert_eq!(r.collisions, r2.collisions);
        prop_assert_eq!(r.delivered, r2.delivered);

        // Backbone copies carry budgets 0..=k, and a node re-transmits
        // only for a strictly larger budget, so per-node transmissions
        // are bounded by k+1.
        let mut rng = StdRng::seed_from_u64(seed);
        let b = simulate_with_mac(&g, &c, &out.cds, NodeId(0), FwdStrategy::Backbone, &cfg, &mut rng);
        prop_assert!(b.transmissions <= (n as u64) * (k as u64 + 1));
    }

    /// Mobility models never move a node outside the deployment area,
    /// for arbitrary step-size sequences.
    #[test]
    fn mobility_models_respect_bounds(
        seed in 0u64..500,
        dts in proptest::collection::vec(0.01f64..7.0, 1..25),
    ) {
        let side = 50.0;
        let n = 12;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut positions: Vec<Point> = (0..n)
            .map(|i| Point::new(
                (i as f64 * 7.3) % side,
                (i as f64 * 3.7) % side,
            ))
            .collect();
        let mut direction = RandomDirection::new(n, DirectionConfig::default_for_side(side), &mut rng);
        let mut gm = GaussMarkov::new(n, GaussMarkovConfig::default_for_side(side), &mut rng);
        let mut gm_positions = positions.clone();
        for &dt in &dts {
            direction.advance(&mut positions, dt, &mut rng);
            gm.advance(&mut gm_positions, dt, &mut rng);
            for p in positions.iter().chain(&gm_positions) {
                prop_assert!(p.x >= 0.0 && p.x <= side);
                prop_assert!(p.y >= 0.0 && p.y <= side);
            }
        }
    }

    /// All three models keep every position inside the deployment
    /// square under *long* runs and edge-case step sizes — `dt = 0`
    /// (a beacon fires with no time passing) and very large `dt`
    /// (hundreds of leg/waypoint renewals in one call). Random
    /// waypoint is included here: its positions interpolate toward
    /// in-square targets, and this pins that no renewal overshoots.
    #[test]
    fn mobility_models_bounded_under_long_runs_and_extreme_dt(
        seed in 0u64..300,
        side in 20.0f64..120.0,
        extreme in 150.0f64..600.0,
    ) {
        let n = 10;
        let mut rng = StdRng::seed_from_u64(seed);
        let start: Vec<Point> = (0..n)
            .map(|i| Point::new((i as f64 * 11.17) % side, (i as f64 * 5.3) % side))
            .collect();
        let mut wp = RandomWaypoint::new(
            n,
            WaypointConfig { side, min_speed: 0.5, max_speed: 6.0, pause: 0.3 },
            &mut rng,
        );
        let mut dir = RandomDirection::new(n, DirectionConfig {
            side,
            min_speed: 0.5,
            max_speed: 6.0,
            min_leg: 0.5,
            max_leg: 4.0,
        }, &mut rng);
        let mut gm = GaussMarkov::new(n, GaussMarkovConfig::default_for_side(side), &mut rng);
        let mut wp_pos = start.clone();
        let mut dir_pos = start.clone();
        let mut gm_pos = start;
        // dt = 0 must be a universal no-op.
        let frozen = (wp_pos.clone(), dir_pos.clone(), gm_pos.clone());
        wp.advance(&mut wp_pos, 0.0, &mut rng);
        dir.advance(&mut dir_pos, 0.0, &mut rng);
        gm.advance(&mut gm_pos, 0.0, &mut rng);
        prop_assert_eq!(&frozen.0, &wp_pos);
        prop_assert_eq!(&frozen.1, &dir_pos);
        prop_assert_eq!(&frozen.2, &gm_pos);
        // A long run of unit steps followed by one extreme step.
        for step in 0..80 {
            let dt = if step == 79 { extreme } else { 1.0 };
            wp.advance(&mut wp_pos, dt, &mut rng);
            dir.advance(&mut dir_pos, dt, &mut rng);
            gm.advance(&mut gm_pos, dt, &mut rng);
            for (name, positions) in
                [("waypoint", &wp_pos), ("direction", &dir_pos), ("gauss-markov", &gm_pos)]
            {
                for p in positions.iter() {
                    prop_assert!(
                        p.x >= 0.0 && p.x <= side && p.y >= 0.0 && p.y <= side,
                        "{} escaped to ({}, {}) at dt {}, side {}",
                        name, p.x, p.y, dt, side
                    );
                }
            }
        }
    }

    /// Quasi-UDG pipelines remain correct for arbitrary gray-zone
    /// probabilities (geometry-free theorems).
    #[test]
    fn quasi_udg_pipeline_correct(seed in 0u64..200, p_gray in 0.0f64..=1.0) {
        use adhoc_cluster::clustering::{cluster, MemberPolicy};
        use adhoc_cluster::pipeline::run_on;
        use adhoc_cluster::priority::LowestId;
        let mut rng = StdRng::seed_from_u64(seed);
        let net = gen::quasi_geometric(
            &gen::GeometricConfig::new(40, 100.0, 6.0),
            1.4,
            p_gray,
            &mut rng,
        );
        let k = 2;
        let c = cluster(&net.graph, k, &LowestId, MemberPolicy::IdBased);
        prop_assert!(c.verify(&net.graph).is_ok());
        let out = run_on(&net.graph, Algorithm::AcLmst, &c);
        prop_assert!(out.cds.verify(&net.graph, k).is_ok());
    }
}
