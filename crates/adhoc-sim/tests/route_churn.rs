//! Churn-aware route serving: the [`ChurnEngine`]'s maintained
//! [`RoutePlan`] must stay **content-equal** (manual `PartialEq` over
//! every table; the publication epoch is deliberately excluded) to a
//! plan compiled from scratch on the engine's current graph,
//! clustering, labels, and backbone — through mobility deltas,
//! bystander/gateway/head departures, and full rebuilds alike.

use adhoc_cluster::pipeline::{self, Algorithm, EvalScratch};
use adhoc_cluster::routing::{walk_hops, RoutePlan};
use adhoc_graph::gen::{self, GeometricConfig};
use adhoc_graph::graph::NodeId;
use adhoc_sim::churn::ChurnEngine;
use adhoc_sim::mobility::{MobileNetwork, RandomWaypoint, WaypointConfig};
use adhoc_sim::movement::MovementConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Compiles the reference plan from the engine's current state,
/// independently of its maintained one.
fn fresh_plan(engine: &ChurnEngine) -> RoutePlan {
    let mut scratch = EvalScratch::new();
    let eval = pipeline::run_all_with(engine.graph(), &engine.clustering, &mut scratch);
    RoutePlan::compile(
        engine.graph(),
        &engine.clustering,
        scratch.labels(),
        eval.selected_links(engine.config().algorithm),
    )
}

fn assert_plan_current(engine: &ChurnEngine, ctx: &str) {
    let maintained = engine.route_plan().expect("routing enabled");
    let fresh = fresh_plan(engine);
    assert_eq!(maintained, &fresh, "{ctx}: maintained plan diverged");
}

#[test]
fn maintained_plan_tracks_mobility_steps() {
    let mut rng = StdRng::seed_from_u64(41);
    let net = gen::geometric(&GeometricConfig::new(80, 100.0, 8.0), &mut rng);
    let cfg = WaypointConfig {
        side: 100.0,
        min_speed: 0.5,
        max_speed: 2.0,
        pause: 1.0,
    };
    let model = RandomWaypoint::new(80, cfg, &mut rng);
    let mut mobile = MobileNetwork::with_model(net.positions.clone(), net.range, model);
    let mut engine = ChurnEngine::build(
        mobile.graph(),
        MovementConfig::tolerant(2, Algorithm::AcLmst, 1),
    );
    engine.enable_routing();
    assert_plan_current(&engine, "initial");
    for step in 0..20 {
        let delta = mobile.step(0.5, &mut rng);
        engine.step_delta(&delta);
        assert_plan_current(&engine, &format!("mobility step {step}"));
    }
}

#[test]
fn maintained_plan_survives_departures() {
    let mut rng = StdRng::seed_from_u64(17);
    let net = gen::geometric(&GeometricConfig::new(60, 100.0, 8.0), &mut rng);
    let mut engine = ChurnEngine::build(
        &net.graph,
        MovementConfig::strict(2, Algorithm::AcMesh),
    );
    engine.enable_routing();
    for uid in [7u32, 30, 51, 12] {
        engine.depart(NodeId(uid));
        assert_plan_current(&engine, &format!("departure of {uid}"));
        // The departed node must be unroutable from the served plan.
        let plan = engine.route_plan().unwrap();
        assert!(plan.route(NodeId(uid), NodeId(0)).is_none());
    }
}

#[test]
fn served_routes_are_valid_after_churn() {
    let mut rng = StdRng::seed_from_u64(23);
    let net = gen::geometric(&GeometricConfig::new(70, 100.0, 8.0), &mut rng);
    let cfg = WaypointConfig {
        side: 100.0,
        min_speed: 1.0,
        max_speed: 3.0,
        pause: 0.5,
    };
    let model = RandomWaypoint::new(70, cfg, &mut rng);
    let mut mobile = MobileNetwork::with_model(net.positions.clone(), net.range, model);
    let mut engine = ChurnEngine::build(
        mobile.graph(),
        MovementConfig::tolerant(2, Algorithm::AcLmst, 1),
    );
    engine.enable_routing();
    for _ in 0..10 {
        let delta = mobile.step(0.5, &mut rng);
        engine.step_delta(&delta);
        let plan = engine.route_plan().unwrap();
        for _ in 0..15 {
            let u = NodeId(rng.gen_range(0..70u32));
            let v = NodeId(rng.gen_range(0..70u32));
            if let Some(walk) = plan.route(u, v) {
                // Served walks follow *current* radio edges.
                assert!(
                    adhoc_cluster::routing::is_valid_walk(engine.graph(), &walk),
                    "{u:?}->{v:?}: {walk:?}"
                );
                assert_eq!(walk[0], u);
                assert_eq!(*walk.last().unwrap(), v);
                assert!(walk_hops(&walk) as usize <= engine.graph().len() * 2);
            }
        }
    }
}

/// Routing stays off (and free) until explicitly enabled.
#[test]
fn routing_is_opt_in() {
    let g = gen::path(9);
    let mut engine = ChurnEngine::build(&g, MovementConfig::strict(1, Algorithm::AcLmst));
    assert!(engine.route_plan().is_none());
    engine.depart(NodeId(4));
    assert!(engine.route_plan().is_none());
    engine.enable_routing();
    assert!(engine.route_plan().is_some());
}
