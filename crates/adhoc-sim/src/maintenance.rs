//! Dynamic maintenance: the §3.3 local-fix rules for a disappearing
//! node.
//!
//! The paper's discussion section prescribes, for a node that
//! "disappears" (switch-off, crash, or moving out of range):
//!
//! * **non-clusterhead, non-gateway** — nothing needs to be done;
//! * **gateway** — only the corresponding clusterhead(s) re-run the
//!   gateway selection process (a *local fix*);
//! * **clusterhead** — the clusterhead selection process is re-applied
//!   (to the orphaned cluster).
//!
//! This module implements those rules over the centralized structures
//! and *measures their locality*: how many nodes the repair had to
//! touch, compared with the full re-run a naive implementation would
//! do. One honest extension beyond the paper: a departing node can
//! silently break another member's only ≤k-hop path to that member's
//! head — and property testing showed the broken member can belong to
//! a *different* cluster than the departed node (affiliation is by
//! distance, not geodesic ownership). All repair rules therefore
//! re-check the departed node's pre-departure k-ball (still a local
//! operation) and escalate to re-affiliation when needed
//! (`RepairReport::escalated`).
//!
//! This module is the **stateless** §3.3 reference implementation; its
//! repair primitives (orphan re-join, local lowest-ID election, broken
//! mate detection) are shared with — and live in — the stateful
//! incremental engine of [`crate::churn`], where a departure is
//! processed as just another topology delta with warm label state.

use crate::churn;
use adhoc_cluster::cds::Cds;
use adhoc_cluster::clustering::Clustering;
use adhoc_cluster::gateway::GatewaySelection;
use adhoc_cluster::pipeline::{self, Algorithm};
use adhoc_graph::bfs::BfsScratch;
use adhoc_graph::connectivity;
use adhoc_graph::graph::{Graph, NodeId};

/// The role a node played before departing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Plain member: neither clusterhead nor gateway.
    Bystander,
    /// A marked gateway node.
    Gateway,
    /// A clusterhead.
    Clusterhead,
}

/// Classifies `u` against the current structures.
pub fn classify(clustering: &Clustering, selection: &GatewaySelection, u: NodeId) -> Role {
    if clustering.is_head(u) {
        Role::Clusterhead
    } else if selection.gateways.binary_search(&u).is_ok() {
        Role::Gateway
    } else {
        Role::Bystander
    }
}

/// What a repair did and what it cost.
#[derive(Clone, Debug)]
pub struct RepairReport {
    /// The departed node's former role.
    pub role: Role,
    /// Nodes the repair had to involve (election contests, gateway
    /// re-selection balls, re-affiliating members). Bystander repairs
    /// touch nobody.
    pub touched: Vec<NodeId>,
    /// Whether the optimistic paper rule had to be escalated because a
    /// cluster-mate lost its ≤k-hop connection to its head.
    pub escalated: bool,
    /// Repaired clustering (the departed node is excluded: its
    /// `head_of` entry is a sentinel and it is in no cluster).
    pub clustering: Clustering,
    /// Repaired gateway selection.
    pub selection: GatewaySelection,
    /// Repaired CDS.
    pub cds: Cds,
    /// Whether the residual network is still connected (if not, no
    /// repair can restore a single CDS and the structures cover the
    /// departed node's component-wise best effort).
    pub residual_connected: bool,
}

use crate::churn::GONE;

/// Applies the §3.3 rule for the departure of `u`.
///
/// `g` must be the topology *before* departure; the function isolates
/// `u` internally. `algorithm` selects which gateway pipeline the
/// repair re-runs where required (G-MST is allowed: its "local fix" is
/// by definition a global recomputation, which the report's `touched`
/// honestly shows).
///
/// # Panics
/// Panics if `u` departed already (no edges and not in any cluster).
pub fn handle_departure(
    g: &Graph,
    clustering: &Clustering,
    selection: &GatewaySelection,
    algorithm: Algorithm,
    u: NodeId,
) -> RepairReport {
    let role = classify(clustering, selection, u);
    let mut residual = g.clone();
    residual.isolate(u);
    let residual_connected = alive_connected(&residual, clustering, u);

    match role {
        Role::Bystander => repair_bystander(
            g,
            &residual,
            clustering,
            selection,
            algorithm,
            u,
            residual_connected,
        ),
        Role::Gateway => repair_gateway(
            g,
            &residual,
            clustering,
            selection,
            algorithm,
            u,
            residual_connected,
        ),
        Role::Clusterhead => {
            repair_clusterhead(g, &residual, clustering, algorithm, u, residual_connected)
        }
    }
}

/// Connectivity of the graph ignoring the departing node and any node
/// that already departed earlier (recorded by the `GONE` sentinel in
/// the clustering), so failure-injection chains compose.
fn alive_connected(residual: &Graph, clustering: &Clustering, departed: NodeId) -> bool {
    let alive: Vec<NodeId> = residual
        .nodes()
        .filter(|&v| v != departed && clustering.head_of[v.index()] != GONE)
        .collect();
    connectivity::is_subset_connected(residual, &alive)
}

/// Members whose ≤k-hop head path broke when `departed` left — the
/// shared k-ball-local detection of [`crate::churn::broken_mates`]
/// (which recovers the pre-departure k-ball from the departed node's
/// former neighbor list, so only the residual graph is probed).
fn broken_mates(
    old_graph: &Graph,
    residual: &Graph,
    clustering: &Clustering,
    departed: NodeId,
) -> Vec<NodeId> {
    churn::broken_mates(residual, old_graph.neighbors(departed), clustering, departed)
}

fn strip_departed(clustering: &Clustering, departed: NodeId) -> Clustering {
    let mut c = clustering.clone();
    c.head_of[departed.index()] = GONE;
    c.dist_to_head[departed.index()] = 0;
    c
}

/// Re-affiliates `orphans` (members that lost their head or their
/// ≤k-hop path): each joins the nearest surviving head within k hops
/// (ID tie-break, [`churn::rejoin_one`]); those with none elect heads
/// among themselves with iterative lowest-ID contests restricted to
/// orphans ([`churn::elect_orphans`]).
///
/// Returns the set of nodes whose state changed.
fn reaffiliate(residual: &Graph, clustering: &mut Clustering, orphans: &[NodeId]) -> Vec<NodeId> {
    let mut touched: Vec<NodeId> = orphans.to_vec();
    let mut undecided: Vec<NodeId> = Vec::new();
    let mut scratch = BfsScratch::new(residual.len());

    // Try joining surviving clusters first (the cheap path).
    for &v in orphans {
        let (_, joined) = churn::rejoin_one(residual, clustering, v, &mut scratch);
        if !joined {
            undecided.push(v);
        }
    }
    // Remaining orphans: local lowest-ID election among themselves.
    let (winners, _) = churn::elect_orphans(residual, clustering, undecided, &mut scratch);
    touched.extend(winners);
    touched.sort_unstable();
    touched.dedup();
    touched
}

/// Re-runs the gateway phase on the residual graph for the (possibly
/// repaired) clustering, excluding the departed node from any path.
/// One `pipeline::run_on` call — the same entry point every other
/// consumer uses (the per-algorithm dispatch used to be duplicated
/// here).
fn rerun_gateways(
    residual: &Graph,
    clustering: &Clustering,
    algorithm: Algorithm,
    departed: NodeId,
) -> GatewaySelection {
    // The departed node is isolated, so no shortest path can use it;
    // the standard pipeline applies, on a clustering that no longer
    // contains it.
    let pruned = prune_clustering_for_pipeline(clustering, departed);
    pipeline::run_on(residual, algorithm, &pruned).selection
}

/// The pipeline helpers iterate `head_of` densely, so give the
/// departed node a harmless self-mapping that cannot create adjacency
/// (it has no edges) and is not a head.
fn prune_clustering_for_pipeline(clustering: &Clustering, departed: NodeId) -> Clustering {
    let mut c = clustering.clone();
    if departed.index() < c.head_of.len() && c.head_of[departed.index()] == GONE {
        // Point it at an arbitrary existing head; with zero edges it
        // can neither become a border node nor appear on any path.
        c.head_of[departed.index()] = c.heads[0];
    }
    c
}

#[allow(clippy::too_many_arguments)]
fn repair_bystander(
    old_graph: &Graph,
    residual: &Graph,
    clustering: &Clustering,
    selection: &GatewaySelection,
    algorithm: Algorithm,
    u: NodeId,
    residual_connected: bool,
) -> RepairReport {
    let broken = broken_mates(old_graph, residual, clustering, u);
    let mut new_clustering = strip_departed(clustering, u);
    if broken.is_empty() {
        // The paper's rule verbatim: nothing to do.
        let cds = Cds {
            heads: new_clustering.heads.clone(),
            gateways: selection.gateways.clone(),
        };
        return RepairReport {
            role: Role::Bystander,
            touched: Vec::new(),
            escalated: false,
            clustering: new_clustering,
            selection: selection.clone(),
            cds,
            residual_connected,
        };
    }
    // Escalation: some mates lost their head; re-affiliate them and
    // re-run gateways (their cluster boundaries changed).
    let mut touched = reaffiliate(residual, &mut new_clustering, &broken);
    let new_selection = rerun_gateways(residual, &new_clustering, algorithm, u);
    touched.extend(new_clustering.heads.iter().copied());
    touched.sort_unstable();
    touched.dedup();
    let cds = Cds {
        heads: new_clustering.heads.clone(),
        gateways: new_selection.gateways.clone(),
    };
    RepairReport {
        role: Role::Bystander,
        touched,
        escalated: true,
        clustering: new_clustering,
        selection: new_selection,
        cds,
        residual_connected,
    }
}

#[allow(clippy::too_many_arguments)]
fn repair_gateway(
    old_graph: &Graph,
    residual: &Graph,
    clustering: &Clustering,
    selection: &GatewaySelection,
    algorithm: Algorithm,
    u: NodeId,
    residual_connected: bool,
) -> RepairReport {
    let broken = broken_mates(old_graph, residual, clustering, u);
    let escalated = !broken.is_empty();
    let mut new_clustering = strip_departed(clustering, u);
    let mut touched = if escalated {
        reaffiliate(residual, &mut new_clustering, &broken)
    } else {
        Vec::new()
    };
    // §3.3: "only the corresponding clusterhead needs to re-run the
    // gateway selection process". The epicenter is the endpoint pair
    // of every realized link whose canonical path ran through `u`;
    // links are realized along canonical shortest paths, so we can
    // re-derive each path on the pre-departure graph.
    let affected_heads: Vec<NodeId> = selection
        .links_used
        .iter()
        .filter(|&&(a, b)| {
            let path = adhoc_graph::bfs::lexico_shortest_path(old_graph, a, b, u32::MAX)
                .expect("realized links connect their endpoints");
            adhoc_graph::paths::interior(&path).contains(&u)
        })
        .flat_map(|&(a, b)| [a, b])
        .collect();
    let new_selection = rerun_gateways(residual, &new_clustering, algorithm, u);
    touched.extend(affected_heads);
    touched.extend(new_selection.gateways.iter().copied());
    touched.sort_unstable();
    touched.dedup();
    let cds = Cds {
        heads: new_clustering.heads.clone(),
        gateways: new_selection.gateways.clone(),
    };
    RepairReport {
        role: Role::Gateway,
        touched,
        escalated,
        clustering: new_clustering,
        selection: new_selection,
        cds,
        residual_connected,
    }
}

fn repair_clusterhead(
    old_graph: &Graph,
    residual: &Graph,
    clustering: &Clustering,
    algorithm: Algorithm,
    u: NodeId,
    residual_connected: bool,
) -> RepairReport {
    // Orphans: the departed head's whole cluster, plus any *other*
    // cluster's member whose ≤k head-path ran through the departed
    // node (same locality argument as `broken_mates`).
    let mut orphans: Vec<NodeId> = clustering
        .cluster_of(u)
        .into_iter()
        .filter(|&v| v != u)
        .collect();
    orphans.extend(broken_mates(old_graph, residual, clustering, u));
    orphans.sort_unstable();
    orphans.dedup();
    let mut new_clustering = strip_departed(clustering, u);
    // Remove u from the head list.
    let pos = new_clustering.heads.binary_search(&u).expect("was a head");
    new_clustering.heads.remove(pos);
    let mut touched = reaffiliate(residual, &mut new_clustering, &orphans);
    let new_selection = rerun_gateways(residual, &new_clustering, algorithm, u);
    touched.extend(new_clustering.heads.iter().copied());
    touched.sort_unstable();
    touched.dedup();
    let cds = Cds {
        heads: new_clustering.heads.clone(),
        gateways: new_selection.gateways.clone(),
    };
    RepairReport {
        role: Role::Clusterhead,
        touched,
        escalated: false,
        clustering: new_clustering,
        selection: new_selection,
        cds,
        residual_connected,
    }
}

/// How an arriving node was absorbed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArrivalOutcome {
    /// Joined an existing cluster at the given head and distance.
    Joined {
        /// The adopting clusterhead.
        head: NodeId,
        /// Hop distance to it.
        dist: u32,
    },
    /// No head within `k` hops: the newcomer became its own head.
    BecameHead,
}

/// §3.3's dual of a departure: a node switches **on**. `g_after` must
/// already contain `u`'s new radio links; `clustering`/`selection`
/// describe the structure built before `u` appeared (any stale entry
/// for `u` itself is overwritten). The newcomer joins the nearest
/// clusterhead within `k` hops (ID tie-break) or, if none is in
/// range, declares itself a head — then the gateway phase re-runs,
/// since new links can create new adjacent cluster pairs.
///
/// This is the **stateless one-shot** reference; the incremental
/// engine applies the same rule statefully via
/// [`ChurnEngine::arrive`](crate::churn::ChurnEngine::arrive), where
/// the arrival delta flows through observe/repair/publish and a head
/// election splices (not rebuilds) the label arena.
pub fn handle_arrival(
    g_after: &Graph,
    clustering: &Clustering,
    algorithm: Algorithm,
    u: NodeId,
) -> (ArrivalOutcome, RepairReport) {
    let mut new_clustering = clustering.clone();
    // Drop any stale head role the newcomer held.
    if let Ok(pos) = new_clustering.heads.binary_search(&u) {
        new_clustering.heads.remove(pos);
    }
    new_clustering.head_of[u.index()] = GONE;
    let touched = reaffiliate(g_after, &mut new_clustering, &[u]);
    let outcome = if new_clustering.head_of[u.index()] == u {
        ArrivalOutcome::BecameHead
    } else {
        ArrivalOutcome::Joined {
            head: new_clustering.head_of[u.index()],
            dist: new_clustering.dist_to_head[u.index()],
        }
    };
    let new_selection = rerun_gateways(g_after, &new_clustering, algorithm, GONE_PLACEHOLDER);
    let cds = Cds {
        heads: new_clustering.heads.clone(),
        gateways: new_selection.gateways.clone(),
    };
    let alive: Vec<NodeId> = g_after.nodes().collect();
    let residual_connected = connectivity::is_subset_connected(g_after, &alive);
    let report = RepairReport {
        role: Role::Bystander,
        touched,
        escalated: false,
        clustering: new_clustering,
        selection: new_selection,
        cds,
        residual_connected,
    };
    (outcome, report)
}

/// A node ID that never exists, for the "no departed node" case of
/// [`rerun_gateways`] during arrivals.
const GONE_PLACEHOLDER: NodeId = NodeId(u32::MAX - 1);

/// Validates repaired structures on the residual graph, skipping the
/// departed node(s): heads k-hop-dominate every surviving node and the
/// CDS induces a connected subgraph (when the residual graph is
/// connected). Accepts a slice so failure-injection chains can skip
/// every node that has departed so far.
pub fn repaired_structures_valid(
    residual_graph: &Graph,
    report: &RepairReport,
    departed: &[NodeId],
) -> bool {
    let k = report.clustering.k;
    let dist = connectivity::distance_to_set(residual_graph, &report.cds.heads);
    for v in residual_graph.nodes() {
        if departed.contains(&v) {
            continue;
        }
        if dist[v.index()] > k {
            return false;
        }
    }
    if report.residual_connected {
        let nodes = report.cds.nodes();
        if !connectivity::is_subset_connected(residual_graph, &nodes) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_cluster::clustering::{cluster, MemberPolicy};
    use adhoc_cluster::pipeline::{run_on, Algorithm};
    use adhoc_cluster::priority::LowestId;
    use adhoc_graph::gen;

    fn setup(g: &Graph, k: u32, algorithm: Algorithm) -> (Clustering, GatewaySelection) {
        let c = cluster(g, k, &LowestId, MemberPolicy::IdBased);
        let out = run_on(g, algorithm, &c);
        (c, out.selection)
    }

    #[test]
    fn classify_roles() {
        let g = gen::path(9);
        let (c, sel) = setup(&g, 1, Algorithm::AcLmst);
        assert_eq!(classify(&c, &sel, NodeId(0)), Role::Clusterhead);
        assert_eq!(classify(&c, &sel, NodeId(1)), Role::Gateway);
        // On path(9) k=1 every odd node is a gateway; build a richer
        // graph for a true bystander below.
        let g2 = gen::star(5);
        let (c2, sel2) = setup(&g2, 1, Algorithm::AcLmst);
        assert_eq!(classify(&c2, &sel2, NodeId(3)), Role::Bystander);
    }

    #[test]
    fn bystander_departure_touches_nobody() {
        // Star with head 0: leaf 3 leaves, nothing should change.
        let g = gen::star(5);
        let (c, sel) = setup(&g, 1, Algorithm::AcLmst);
        let r = handle_departure(&g, &c, &sel, Algorithm::AcLmst, NodeId(3));
        assert_eq!(r.role, Role::Bystander);
        assert!(!r.escalated);
        assert!(r.touched.is_empty());
        assert!(r.residual_connected);
        let mut residual = g.clone();
        residual.isolate(NodeId(3));
        assert!(repaired_structures_valid(&residual, &r, &[NodeId(3)]));
    }

    #[test]
    fn gateway_departure_repairs_locally() {
        // Two clusters joined by two parallel 2-hop bridges: losing
        // one gateway must switch to the other bridge.
        //   head 0 - 2 - 1 head   and   0 - 3 - 1.
        let g = Graph::from_edges(4, &[(0, 2), (2, 1), (0, 3), (3, 1)]);
        let (c, sel) = setup(&g, 1, Algorithm::AcMesh);
        assert_eq!(sel.gateways, vec![NodeId(2)]); // canonical path picks 2
        let r = handle_departure(&g, &c, &sel, Algorithm::AcMesh, NodeId(2));
        assert_eq!(r.role, Role::Gateway);
        assert_eq!(r.selection.gateways, vec![NodeId(3)]);
        let mut residual = g.clone();
        residual.isolate(NodeId(2));
        assert!(repaired_structures_valid(&residual, &r, &[NodeId(2)]));
    }

    #[test]
    fn clusterhead_departure_reelects() {
        // Path 0-1-2-3-4, k=1: heads 0,2,4. Remove head 2; members
        // {1,3} must re-affiliate (1 joins 0, 3 joins 4).
        let g = gen::path(5);
        let (c, sel) = setup(&g, 1, Algorithm::AcLmst);
        let r = handle_departure(&g, &c, &sel, Algorithm::AcLmst, NodeId(2));
        assert_eq!(r.role, Role::Clusterhead);
        assert!(!r.clustering.heads.contains(&NodeId(2)));
        assert_eq!(r.clustering.head_of(NodeId(1)), NodeId(0));
        assert_eq!(r.clustering.head_of(NodeId(3)), NodeId(4));
        // Removing the middle of a path disconnects it.
        assert!(!r.residual_connected);
        let mut residual = g.clone();
        residual.isolate(NodeId(2));
        assert!(repaired_structures_valid(&residual, &r, &[NodeId(2)]));
    }

    #[test]
    fn clusterhead_departure_can_spawn_new_head() {
        // Star head 0 with leaves 1..=4 (k=1). Remove head 0: orphans
        // have no surviving head in range and elect the lowest ID
        // among themselves per component. The residual graph is
        // disconnected (four isolated leaves), so each leaf becomes
        // its own head.
        let g = gen::star(5);
        let (c, sel) = setup(&g, 1, Algorithm::AcLmst);
        let r = handle_departure(&g, &c, &sel, Algorithm::AcLmst, NodeId(0));
        assert_eq!(r.role, Role::Clusterhead);
        assert!(!r.residual_connected);
        assert_eq!(
            r.clustering.heads,
            vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
    }

    #[test]
    fn bystander_escalation_when_mate_path_breaks() {
        // k=2 cluster: head 0 - 1 - 2 (member 2 reaches head only
        // through 1). A second branch 0 - 3 keeps things connected...
        // but 2's only path to 0 runs through 1, and 2-3 edge gives an
        // alternative that is 3 hops (too far for k=2? 2-3-0 is 2
        // hops). Use: 0-1, 1-2, 2-3, 3-0? Then removing 1 leaves
        // 2-3-0 (2 hops, fine, no escalation). For a real break:
        //   0-1, 1-2 and 2-5, 5-6, 6-0: alt path is 3 hops > k=2.
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 5), (5, 6), (6, 0), (0, 4), (4, 3)]);
        let c = cluster(&g, 2, &LowestId, MemberPolicy::IdBased);
        // All nodes within 2 hops of 0? 3 is at 2 via 4. 5 is at 2 via
        // 6? d(5,0)=2 (5-6-0). So single cluster, head 0.
        assert_eq!(c.heads, vec![NodeId(0)]);
        let out = run_on(&g, Algorithm::AcLmst, &c);
        // Node 1 is a bystander (no other cluster => no gateways).
        assert!(out.selection.gateways.is_empty());
        let r = handle_departure(&g, &c, &out.selection, Algorithm::AcLmst, NodeId(1));
        assert_eq!(r.role, Role::Bystander);
        // 2's shortest path to 0 is now 3 hops: escalation.
        assert!(r.escalated);
        assert!(r.touched.contains(&NodeId(2)));
        let mut residual = g.clone();
        residual.isolate(NodeId(1));
        assert!(repaired_structures_valid(&residual, &r, &[NodeId(1)]));
    }

    #[test]
    fn arrival_joins_nearest_head() {
        // Path 0-1-2-3-4 (k=1, heads 0,2,4) plus a new node 5 that
        // switches on adjacent to 1: it must join head 0 at 2 hops?
        // No — k=1, d(5,0)=2 > 1, d(5,2)=2 > 1: no head in range, so
        // it becomes a head itself. Attach it to 2's neighbor instead:
        // adjacent to 2 -> joins 2 at distance 1.
        let g0 = gen::path(5);
        let (c, _sel) = setup(&g0, 1, Algorithm::AcLmst);
        let mut g = g0.clone();
        let u = g.add_node();
        g.add_edge(u, NodeId(2));
        let (outcome, report) = handle_arrival_with_extended(&g, &c, u);
        assert_eq!(
            outcome,
            ArrivalOutcome::Joined {
                head: NodeId(2),
                dist: 1
            }
        );
        assert!(report.touched.contains(&u));
        assert!(repaired_structures_valid(&g, &report, &[GONE_PLACEHOLDER]));
    }

    #[test]
    fn arrival_without_reachable_head_becomes_head() {
        let g0 = gen::path(3); // heads {0, 2} at k=1
        let (c, _sel) = setup(&g0, 1, Algorithm::AcLmst);
        // First arrival: u attaches to head 2 and joins it.
        let mut g1 = g0.clone();
        let u = g1.add_node();
        g1.add_edge(NodeId(2), u);
        let (o1, r1) = handle_arrival_with_extended(&g1, &c, u);
        assert!(matches!(o1, ArrivalOutcome::Joined { head, .. } if head == NodeId(2)));
        // Second arrival: v hangs off u; nearest head is 2 hops away,
        // beyond k=1, so v must become a head itself.
        let mut g2 = g1.clone();
        let v = g2.add_node();
        g2.add_edge(u, v);
        let (o2, r2) = handle_arrival_with_extended(&g2, &r1.clustering, v);
        assert_eq!(o2, ArrivalOutcome::BecameHead);
        assert!(r2.clustering.heads.contains(&v));
        assert!(repaired_structures_valid(&g2, &r2, &[GONE_PLACEHOLDER]));
    }

    /// Extends the old clustering's arrays to the grown graph before
    /// delegating to [`handle_arrival`] (test helper for add_node
    /// scenarios).
    fn handle_arrival_with_extended(
        g_after: &Graph,
        old: &Clustering,
        u: NodeId,
    ) -> (ArrivalOutcome, RepairReport) {
        let mut c = old.clone();
        while c.head_of.len() < g_after.len() {
            c.head_of.push(NodeId(u32::MAX));
            c.dist_to_head.push(0);
        }
        handle_arrival(g_after, &c, Algorithm::AcLmst, u)
    }

    #[test]
    fn repairs_valid_on_random_networks() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(55);
        for k in 1..=2u32 {
            let net = gen::geometric(&gen::GeometricConfig::new(60, 100.0, 8.0), &mut rng);
            let (c, sel) = setup(&net.graph, k, Algorithm::AcLmst);
            for uid in [5u32, 20, 40] {
                let u = NodeId(uid);
                let r = handle_departure(&net.graph, &c, &sel, Algorithm::AcLmst, u);
                let mut residual = net.graph.clone();
                residual.isolate(u);
                assert!(
                    repaired_structures_valid(&residual, &r, &[u]),
                    "repair after {u:?} (role {:?}) invalid",
                    r.role
                );
            }
        }
    }
}
