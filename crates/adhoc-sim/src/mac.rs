//! A contention MAC layer: slotted CSMA with receiver-side collisions.
//!
//! §4 of the paper "ignore\[s\] practical details such as collision and
//! contention, assuming that an ideal MAC layer protocol will take care
//! of them". This module removes that assumption so its effect can be
//! measured: broadcasts become *unacknowledged* frames that are lost at
//! a receiver whenever two of its neighbors transmit in the same slot
//! (the protocol interference model), and senders defer under a random
//! backoff with one-slot carrier sensing.
//!
//! The headline ablation reruns the paper's motivating application —
//! network-wide broadcast, blind flood vs CDS backbone
//! ([`crate::broadcast::Strategy`]) — under contention. The expected
//! qualitative outcome, which the tests pin down, is exactly the §1
//! motivation: the flood's larger transmitter population causes more
//! collisions (the "broadcast storm"), while the clustered backbone
//! keeps most of its delivery ratio because far fewer nodes contend.
//!
//! Model, per slot:
//!
//! 1. every node whose pending frame's backoff reaches zero *senses* the
//!    channel: if any neighbor transmitted in the previous slot, it
//!    defers and redraws its backoff (slotted CSMA with one-slot
//!    memory); otherwise it transmits this slot;
//! 2. a node `r` receives a frame iff **exactly one** of its neighbors
//!    transmitted in the slot; two or more → one collision event at `r`
//!    and all copies are lost (broadcast frames carry no ACK, so lost
//!    copies are never retransmitted — as in 802.11 broadcast);
//! 3. a successfully received new frame is handed to the forwarding
//!    strategy, which may enqueue a retransmission with a fresh random
//!    backoff in `[1, cw]`.
//!
//! All randomness comes from the caller's seeded RNG, and nodes are
//! processed in ID order, so runs are reproducible.
//!
//! ```
//! use adhoc_sim::mac::{simulate_with_mac, MacConfig};
//! use adhoc_sim::broadcast::Strategy;
//! use adhoc_cluster::pipeline::{self, Algorithm, PipelineConfig};
//! use adhoc_graph::{gen, NodeId};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let g = gen::grid(5, 6);
//! let out = pipeline::run(&g, Algorithm::AcLmst, &PipelineConfig::new(1));
//! let mut rng = StdRng::seed_from_u64(1);
//! let r = simulate_with_mac(&g, &out.clustering, &out.cds, NodeId(0),
//!                           Strategy::Backbone, &MacConfig::default(), &mut rng);
//! assert!(r.delivered >= 1);
//! assert_eq!(r.delivery_ratio(30), r.delivered as f64 / 30.0);
//! ```

use crate::broadcast::Strategy;
use adhoc_cluster::cds::Cds;
use adhoc_cluster::clustering::Clustering;
use adhoc_graph::bfs::Adjacency;
use adhoc_graph::graph::NodeId;
use rand::Rng;

/// Contention-MAC parameters.
#[derive(Clone, Copy, Debug)]
pub struct MacConfig {
    /// Contention window: forwarding backoffs are drawn uniformly from
    /// `1..=cw`. `cw = 1` means "transmit in the next slot" (maximum
    /// contention); larger windows trade latency for fewer collisions.
    pub cw: u32,
    /// Safety cap on simulated slots (guards against pathological
    /// defer loops; generously above any realistic completion time).
    pub max_slots: u64,
}

impl Default for MacConfig {
    fn default() -> Self {
        MacConfig {
            cw: 8,
            max_slots: 1 << 20,
        }
    }
}

/// Outcome of one broadcast under the contention MAC.
#[derive(Clone, Debug)]
pub struct MacReport {
    /// Frames put on the air.
    pub transmissions: u64,
    /// Receiver-side collision events (a slot in which ≥ 2 neighbors of
    /// the same receiver transmitted).
    pub collisions: u64,
    /// Nodes that received the message.
    pub delivered: usize,
    /// Slot in which the last delivery happened.
    pub latency_slots: u64,
    /// Whether every node was reached.
    pub complete: bool,
}

impl MacReport {
    /// Fraction of nodes reached, in `[0, 1]`.
    pub fn delivery_ratio(&self, n: usize) -> f64 {
        if n == 0 {
            1.0
        } else {
            self.delivered as f64 / n as f64
        }
    }
}

/// A frame waiting at a node for its backoff to expire.
#[derive(Clone, Copy, Debug)]
struct Pending {
    budget: u32,
    backoff: u32,
}

/// Per-node forwarding state shared by both strategies (mirrors the
/// budget-monotone rules of [`crate::broadcast`]).
struct Forwarding {
    received: Vec<bool>,
    has_sent: Vec<bool>,
    sent_budget: Vec<u32>,
}

impl Forwarding {
    fn new(n: usize) -> Self {
        Forwarding {
            received: vec![false; n],
            has_sent: vec![false; n],
            sent_budget: vec![0; n],
        }
    }

    /// Decides whether `at` should (re)transmit after hearing a copy
    /// with `budget`, returning the forwarded budget if so. Identical
    /// decision logic to the ideal-MAC simulator, so any difference in
    /// outcomes is attributable to the MAC alone.
    fn decide(
        &mut self,
        strategy: Strategy,
        clustering: &Clustering,
        in_cds: &[bool],
        at: NodeId,
        budget: u32,
        k: u32,
    ) -> Option<u32> {
        let i = at.index();
        match strategy {
            Strategy::BlindFlood => {
                if self.has_sent[i] {
                    None
                } else {
                    self.has_sent[i] = true;
                    Some(0)
                }
            }
            Strategy::Backbone => {
                if in_cds[i] {
                    let fwd = if clustering.is_head(at) {
                        k
                    } else {
                        budget.saturating_sub(1)
                    };
                    if !self.has_sent[i] || fwd > self.sent_budget[i] {
                        self.has_sent[i] = true;
                        self.sent_budget[i] = fwd;
                        Some(fwd)
                    } else {
                        None
                    }
                } else if budget > 1 {
                    let fwd = budget - 1;
                    if !self.has_sent[i] || fwd > self.sent_budget[i] {
                        self.has_sent[i] = true;
                        self.sent_budget[i] = fwd;
                        Some(fwd)
                    } else {
                        None
                    }
                } else {
                    None
                }
            }
        }
    }
}

/// Simulates one broadcast from `source` under the contention MAC.
///
/// `clustering`/`cds` play the same role as in
/// [`crate::broadcast::simulate`] (ignored for blind flooding). The
/// RNG drives backoff draws only.
pub fn simulate_with_mac<G: Adjacency, R: Rng + ?Sized>(
    g: &G,
    clustering: &Clustering,
    cds: &Cds,
    source: NodeId,
    strategy: Strategy,
    cfg: &MacConfig,
    rng: &mut R,
) -> MacReport {
    assert!(cfg.cw >= 1, "contention window must be at least 1");
    let n = g.node_count();
    let k = clustering.k;
    let in_cds = {
        let mut mask = vec![false; n];
        for v in cds.nodes() {
            mask[v.index()] = true;
        }
        mask
    };
    let mut fwd = Forwarding::new(n);
    let mut pending: Vec<Option<Pending>> = vec![None; n];
    let mut report = MacReport {
        transmissions: 0,
        collisions: 0,
        delivered: 0,
        latency_slots: 0,
        complete: false,
    };

    fwd.received[source.index()] = true;
    fwd.has_sent[source.index()] = true;
    report.delivered = 1;
    let src_budget = match strategy {
        Strategy::BlindFlood => 0,
        Strategy::Backbone => k,
    };
    fwd.sent_budget[source.index()] = src_budget;
    // The source owns the channel at slot 0 — no contention yet.
    pending[source.index()] = Some(Pending {
        budget: src_budget,
        backoff: 0,
    });

    let mut tx_prev: Vec<bool> = vec![false; n]; // carrier sense memory
    let mut tx_now: Vec<bool> = vec![false; n];
    let mut outstanding = 1usize;

    for slot in 0..cfg.max_slots {
        if outstanding == 0 {
            break;
        }
        // Phase 1: backoff countdown, carrier sense, transmit decision.
        tx_now.iter_mut().for_each(|t| *t = false);
        let mut budgets: Vec<u32> = Vec::new();
        let mut senders: Vec<NodeId> = Vec::new();
        for (i, slot_pending) in pending.iter_mut().enumerate() {
            let Some(p) = slot_pending.as_mut() else {
                continue;
            };
            if p.backoff > 0 {
                p.backoff -= 1;
                continue;
            }
            // Carrier sense: defer if a neighbor was on the air in the
            // previous slot.
            let busy = g.adj(NodeId(i as u32)).iter().any(|w| tx_prev[w.index()]);
            if busy {
                p.backoff = rng.gen_range(1..=cfg.cw);
                continue;
            }
            tx_now[i] = true;
            senders.push(NodeId(i as u32));
            budgets.push(p.budget);
            *slot_pending = None;
            outstanding -= 1;
            report.transmissions += 1;
        }

        // Phase 2: per-receiver delivery / collision resolution.
        if !senders.is_empty() {
            // A receiver hears exactly the transmitting subset of its
            // neighborhood. Count transmitting neighbors per receiver.
            // (Index loop: `i` addresses four parallel per-node arrays.)
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                let mut heard: Option<u32> = None;
                let mut count = 0u32;
                for w in g.adj(NodeId(i as u32)) {
                    if tx_now[w.index()] {
                        count += 1;
                        if count > 1 {
                            break;
                        }
                        let si = senders
                            .binary_search(w)
                            .expect("senders sorted by construction");
                        heard = Some(budgets[si]);
                    }
                }
                if count > 1 {
                    report.collisions += 1;
                    continue;
                }
                let Some(budget) = heard else { continue };
                if !fwd.received[i] {
                    fwd.received[i] = true;
                    report.delivered += 1;
                    report.latency_slots = slot;
                }
                let at = NodeId(i as u32);
                if let Some(out) = fwd.decide(strategy, clustering, &in_cds, at, budget, k) {
                    let backoff = rng.gen_range(1..=cfg.cw);
                    // A larger-budget copy supersedes a queued one.
                    pending[i] = match pending[i] {
                        Some(old) if old.budget >= out => Some(old),
                        Some(_) => Some(Pending {
                            budget: out,
                            backoff,
                        }),
                        None => {
                            outstanding += 1;
                            Some(Pending {
                                budget: out,
                                backoff,
                            })
                        }
                    };
                }
            }
        }
        std::mem::swap(&mut tx_prev, &mut tx_now);
    }

    report.complete = report.delivered == n;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_cluster::clustering::{cluster, MemberPolicy};
    use adhoc_cluster::pipeline::{run_on, Algorithm};
    use adhoc_cluster::priority::LowestId;
    use adhoc_graph::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(g: &adhoc_graph::Graph, k: u32) -> (Clustering, Cds) {
        let c = cluster(g, k, &LowestId, MemberPolicy::IdBased);
        let out = run_on(g, Algorithm::AcLmst, &c);
        (c, out.cds)
    }

    #[test]
    fn path_flood_is_collision_free() {
        // On a path, at most one *new* transmitter is active per slot
        // reachable wavefront, so cw = 1 flooding never collides and
        // reaches everyone.
        let g = gen::path(9);
        let (c, cds) = setup(&g, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let r = simulate_with_mac(
            &g,
            &c,
            &cds,
            NodeId(0),
            Strategy::BlindFlood,
            &MacConfig { cw: 1, max_slots: 1 << 16 },
            &mut rng,
        );
        assert!(r.complete);
        assert_eq!(r.collisions, 0);
        assert_eq!(r.transmissions, 9);
    }

    #[test]
    fn star_flood_collides_at_the_center() {
        // All leaves hear the center in slot 0 and then contend; with
        // cw = 1 they all fire together in slot 2 (slot 1 is sensed
        // busy... the center transmitted in slot 0, so leaves defer at
        // slot 1 only if a neighbor transmitted in slot 0 — it did).
        // Either way the center must see a collision.
        let g = gen::star(8);
        let (c, cds) = setup(&g, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let r = simulate_with_mac(
            &g,
            &c,
            &cds,
            NodeId(0),
            Strategy::BlindFlood,
            &MacConfig { cw: 1, max_slots: 1 << 16 },
            &mut rng,
        );
        assert!(r.complete); // all leaves heard slot 0 directly
        assert!(r.collisions > 0, "expected contention at the hub");
    }

    #[test]
    fn wider_window_reduces_collisions_on_average() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = gen::geometric(&gen::GeometricConfig::new(120, 100.0, 10.0), &mut rng);
        let (c, cds) = setup(&net.graph, 1);
        let avg = |cw: u32, rng: &mut StdRng| {
            let mut total = 0u64;
            for _ in 0..10 {
                let r = simulate_with_mac(
                    &net.graph,
                    &c,
                    &cds,
                    NodeId(0),
                    Strategy::BlindFlood,
                    &MacConfig { cw, max_slots: 1 << 18 },
                    rng,
                );
                total += r.collisions;
            }
            total
        };
        let narrow = avg(1, &mut rng);
        let wide = avg(32, &mut rng);
        assert!(
            wide < narrow,
            "cw=32 collisions {wide} not below cw=1 collisions {narrow}"
        );
    }

    #[test]
    fn backbone_transmits_less_than_flood_under_mac() {
        let mut rng = StdRng::seed_from_u64(11);
        let net = gen::geometric(&gen::GeometricConfig::new(150, 100.0, 10.0), &mut rng);
        let (c, cds) = setup(&net.graph, 1);
        let run = |strategy, rng: &mut StdRng| {
            let mut tx = 0u64;
            let mut col = 0u64;
            for _ in 0..10 {
                let r = simulate_with_mac(
                    &net.graph,
                    &c,
                    &cds,
                    NodeId(0),
                    strategy,
                    &MacConfig::default(),
                    rng,
                );
                tx += r.transmissions;
                col += r.collisions;
            }
            (tx, col)
        };
        let (flood_tx, flood_col) = run(Strategy::BlindFlood, &mut rng);
        let (bb_tx, bb_col) = run(Strategy::Backbone, &mut rng);
        assert!(bb_tx < flood_tx, "backbone tx {bb_tx} >= flood tx {flood_tx}");
        assert!(
            bb_col < flood_col,
            "backbone collisions {bb_col} >= flood {flood_col}"
        );
    }

    #[test]
    fn single_node_and_trivial_graphs() {
        let g = adhoc_graph::Graph::new(1);
        let (c, cds) = setup(&g, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let r = simulate_with_mac(
            &g,
            &c,
            &cds,
            NodeId(0),
            Strategy::Backbone,
            &MacConfig::default(),
            &mut rng,
        );
        assert!(r.complete);
        assert_eq!(r.transmissions, 1);
        assert_eq!(r.collisions, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = gen::geometric(&gen::GeometricConfig::new(80, 100.0, 8.0), &mut rng);
        let (c, cds) = setup(&net.graph, 2);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = simulate_with_mac(
                &net.graph,
                &c,
                &cds,
                NodeId(0),
                Strategy::Backbone,
                &MacConfig::default(),
                &mut rng,
            );
            (r.transmissions, r.collisions, r.delivered, r.latency_slots)
        };
        assert_eq!(run(42), run(42));
        // Different seeds may differ (no assertion that they must, but
        // the config should produce *some* variation across many seeds;
        // weak check on a pair).
        let _ = run(43);
    }

    #[test]
    fn delivery_ratio_bounds() {
        let mut rng = StdRng::seed_from_u64(17);
        let net = gen::geometric(&gen::GeometricConfig::new(100, 100.0, 8.0), &mut rng);
        let (c, cds) = setup(&net.graph, 1);
        for strategy in [Strategy::BlindFlood, Strategy::Backbone] {
            let r = simulate_with_mac(
                &net.graph,
                &c,
                &cds,
                NodeId(0),
                strategy,
                &MacConfig::default(),
                &mut rng,
            );
            let ratio = r.delivery_ratio(net.graph.len());
            assert!(ratio > 0.0 && ratio <= 1.0);
            assert!(r.delivered >= 1);
            assert_eq!(r.complete, r.delivered == net.graph.len());
        }
        assert_eq!(
            MacReport {
                transmissions: 0,
                collisions: 0,
                delivered: 0,
                latency_slots: 0,
                complete: false
            }
            .delivery_ratio(0),
            1.0
        );
    }

    #[test]
    #[should_panic(expected = "contention window")]
    fn zero_window_rejected() {
        let g = gen::path(3);
        let (c, cds) = setup(&g, 1);
        let mut rng = StdRng::seed_from_u64(0);
        simulate_with_mac(
            &g,
            &c,
            &cds,
            NodeId(0),
            Strategy::BlindFlood,
            &MacConfig { cw: 0, max_slots: 16 },
            &mut rng,
        );
    }
}
