//! The unified incremental maintenance engine ("churn engine").
//!
//! Before this module, the stack had **two parallel repair
//! implementations that shared no code**: `maintenance` re-ran whole
//! pipeline phases after a single §3.3 departure, and `movement`
//! re-swept every clusterhead's neighborhood every step to reconcile
//! with continuous drift. Both paid full price for local damage.
//!
//! [`ChurnEngine`] collapses them onto one incremental stack:
//!
//! * a **departure** is just a [`TopologyDelta`] removing one node's
//!   edges ([`ChurnEngine::depart`]);
//! * a **movement step** is a positional delta
//!   ([`ChurnEngine::step_delta`], produced by
//!   [`MobileNetwork::step`](crate::mobility::MobileNetwork::step)'s
//!   spatial grid, or diffed from a snapshot by [`ChurnEngine::step`]);
//! * an **arrival** is a [`TopologyDelta`] re-attaching a departed
//!   node to its alive neighbors ([`ChurnEngine::arrive`]): the
//!   newcomer joins the nearest head within `k` hops or elects
//!   locally, and the label arena gains at most one spliced row.
//!
//! # The reconciliation state machine
//!
//! Every delta flows through an explicit three-phase controller whose
//! intermediate state is a first-class value ([`ReconcileState`]), so
//! execution can be suspended and resumed at any phase boundary — and
//! crashed there, which the model checker in [`crate::modelcheck`]
//! exploits:
//!
//! ```text
//!            begin_delta / begin_depart
//!                      │
//!                      ▼
//!    ┌─────────── OBSERVE ────────────┐  advance_labels (dirty-head
//!    │  delta applied, labels swept,  │  bounded BFS), orphan / merge
//!    │  damage detected — clustering, │  / head-loss detection read
//!    │  CDS, eval, plan all untouched │  off the refreshed labels
//!    └──────────────┬────────────────-┘
//!                   ▼   ReconcileState::Observed
//!    ┌─────────── REPAIR ─────────────┐  RepairLevel policy: rejoin
//!    │  clustering mutated (rejoins,  │  orphans, elect stranded,
//!    │  elections, head removal) —    │  re-elect globally on merges
//!    │  eval / CDS / plan untouched   │  — the charged node-rounds
//!    └──────────────┬────────────────-┘
//!                   ▼   ReconcileState::Repaired
//!    ┌─────────── PUBLISH ────────────┐  evaluation refresh, validity
//!    │  eval refreshed, verdicts      │  verdict, route plan swapped
//!    │  recomputed, pending plan      │  atomically + epoch bump —
//!    │  swapped in atomically         │  queries never see a torn mix
//!    └──────────────┬────────────────-┘
//!                   ▼   ReconcileState::Done(StepReport)
//! ```
//!
//! The served [`RoutePlan`] only ever changes in the final instant of
//! publish: during observe and repair (and after a crash, until
//! [`ChurnEngine::recover`]) queries keep reading the pre-step plan.
//! A crash between phases leaves the engine flagged in-flight
//! ([`ChurnEngine::in_flight`]); [`ChurnEngine::recover`] restores
//! consistency with a full rebuild. [`FaultPlan`] injects such crashes
//! deterministically for the model checker.
//!
//! Each delta flows through `pipeline::advance_labels` (bounded BFS for
//! **dirty** heads only), the [`RepairLevel`] policy reads the refreshed
//! labels to find orphaned members and merged heads, shared repair
//! primitives fix what broke, and `pipeline::update_all_after` refreshes
//! only the affected virtual links and selections. The maintained
//! evaluation is **bit-for-bit identical** to a from-scratch
//! `pipeline::run_all` on the current graph (pinned by the
//! `churn_equivalence` proptest and checked exhaustively as invariant
//! I1 in [`crate::invariants`]), while the existing [`RepairLevel`]
//! policy and node-round cost accounting ride on top unchanged.
//!
//! The `movement::MaintainedCds` name remains as an alias of this
//! engine; `maintenance::handle_departure` and
//! `maintenance::handle_arrival` stay as the stateless §3.3 reference
//! implementations, built from the same crate-private repair
//! primitives (`rejoin_one`, `elect_orphans`, `broken_mates`).

use crate::invariants;
use crate::message::MessageKind;
use crate::movement::{MovementConfig, RepairLevel, StepReport};
use crate::stats::Phase;
use crate::trace::{Trace, TraceEvent};
use adhoc_cluster::cds::Cds;
use adhoc_cluster::clustering::{cluster, Clustering, MemberPolicy};
use adhoc_cluster::pipeline::{self, EvalScratch, EvaluationOutput, LabelAdvance};
use adhoc_cluster::priority::LowestId;
use adhoc_cluster::routing::{InterMode, RoutePlan};
use adhoc_graph::bfs::BfsScratch;
use adhoc_graph::connectivity;
use adhoc_graph::delta::TopologyDelta;
use adhoc_graph::graph::{Graph, NodeId};
use adhoc_graph::labels::{LabelMode, LabelStore};
use adhoc_graph::obs::Metrics;
use adhoc_graph::par::Parallelism;

/// Sentinel head for a node that is not in any cluster (departed).
pub(crate) const GONE: NodeId = NodeId(u32::MAX);

/// One operation of a [`ChurnEngine::reconcile_batch`] — a multi-node
/// delta expressed as the ordered list of departures and arrivals it
/// is composed of.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchOp {
    /// Depart this (currently alive) node.
    Depart(NodeId),
    /// Re-attach this (currently departed) node to the subset of these
    /// neighbors that is alive when the op executes.
    Arrive(NodeId, Vec<NodeId>),
}

/// What to do with orphans that have **no** clusterhead within `k`
/// hops after a repair attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StrandedPolicy {
    /// Movement policy: coverage loss means it is time to re-elect
    /// globally ("least cluster change").
    FullRebuild,
    /// §3.3 departure rule: the stranded orphans elect heads among
    /// themselves with iterative lowest-ID contests (a *local* fix).
    Elect,
}

/// A phase boundary of the reconciliation state machine — the two
/// points where execution can be suspended, resumed, or crashed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PhaseBoundary {
    /// After **observe**: labels advanced and damage detected, but the
    /// clustering, CDS, evaluation, and route plan are all pre-step.
    Observed,
    /// After **repair**: the clustering is mutated (rejoins, elections,
    /// head removal), but the evaluation, verdicts, and route plan are
    /// still pre-step.
    Repaired,
}

/// Deterministic crash injection for one reconcile: the engine drops
/// its in-flight [`ReconcileState`] at the named boundary, exactly as
/// if the maintainer process died there. Used by the model checker to
/// cross every delta interleaving with every crash point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    crash_after: Option<PhaseBoundary>,
}

impl FaultPlan {
    /// No injected faults: the reconcile runs to completion.
    pub fn none() -> Self {
        FaultPlan { crash_after: None }
    }

    /// Crash (abandon the in-flight state) right after `boundary`.
    pub fn crash_after(boundary: PhaseBoundary) -> Self {
        FaultPlan {
            crash_after: Some(boundary),
        }
    }

    fn crashes_after(&self, boundary: PhaseBoundary) -> bool {
        self.crash_after == Some(boundary)
    }
}

/// Resumable intermediate state of one reconcile. Produced by
/// [`ChurnEngine::begin_delta`] / [`ChurnEngine::begin_depart`],
/// advanced one phase at a time by [`ChurnEngine::resume`], finished
/// by [`ChurnEngine::finish`].
///
/// Dropping a non-`Done` state without resuming models a crash: the
/// engine stays flagged [`ChurnEngine::in_flight`] until
/// [`ChurnEngine::recover`] restores consistency.
#[derive(Debug)]
pub enum ReconcileState {
    /// Observe finished; repair is next.
    Observed(Box<Observation>),
    /// Repair finished; publish is next.
    Repaired(Box<Repaired>),
    /// The reconcile completed with this report.
    Done(StepReport),
}

/// What the observe phase saw (opaque; feed it back via
/// [`ChurnEngine::resume`]).
#[derive(Debug)]
pub struct Observation {
    delta: TopologyDelta,
    /// `None` for a head departure: the head set is about to change,
    /// so the label arena was deliberately not advanced.
    advance: Option<LabelAdvance>,
    dirty_heads: usize,
    orphans: Vec<NodeId>,
    merged_head_pairs: usize,
    fresh_dist: Vec<(NodeId, u32)>,
    policy: StrandedPolicy,
    departed_head: Option<NodeId>,
}

/// What the repair phase did (opaque; feed it back via
/// [`ChurnEngine::resume`]).
#[derive(Debug)]
pub struct Repaired {
    delta: TopologyDelta,
    outcome: RepairOutcome,
}

/// Incremental-path repair summary carried into publish.
#[derive(Debug)]
struct Patch {
    advance: LabelAdvance,
    dirty_heads: usize,
    heads_changed: bool,
    level: RepairLevel,
    orphans: usize,
    /// Detected-but-unrepaired merges (nonzero only under a capped
    /// policy; an uncapped engine escalates to re-election instead).
    merged: usize,
    cost: usize,
}

#[derive(Debug)]
enum RepairOutcome {
    /// Head set survived (or grew by a local election): publish
    /// refreshes incrementally and patches the plan.
    Patch(Patch),
    /// Global re-election already performed (merged heads, stranded
    /// orphans under the movement policy, or an escalation): publish
    /// pays the full price.
    Rebuilt {
        /// Orphans detected before the rebuild (report bookkeeping).
        orphans: usize,
        /// Merged head pairs that triggered it (0 otherwise).
        merged: usize,
    },
    /// §3.3 head loss: the departed head was removed and its orphans
    /// re-joined/elected locally; publish pays the full evaluation but
    /// the report keeps the local repair's accrued cost.
    HeadLoss {
        /// Orphans the departure produced.
        orphans: usize,
        /// Node-rounds accrued by rejoins and elections.
        cost: usize,
    },
}

/// A connected k-hop clustering, its gateway CDS, and the full
/// five-algorithm evaluation, kept alive under topology churn at
/// incremental cost.
///
/// The engine owns its view of the topology. Reconcile it with
/// [`Self::step`] (snapshot; the delta is diffed), advance it with
/// [`Self::step_delta`] (exact delta, e.g. from a
/// [`SpatialGrid`](adhoc_graph::gen::SpatialGrid)), remove a node
/// with [`Self::depart`], or bring a departed node back with
/// [`Self::arrive`] — arrivals are first-class reconciles that flow
/// through the same observe/repair/publish machine (the stateless
/// one-shot `maintenance::handle_arrival` remains as the §3.3
/// reference implementation).
///
/// All of those are convenience drivers over the explicit state
/// machine ([`Self::begin_delta`], [`Self::begin_depart`],
/// [`Self::resume`], [`Self::finish`]); fault-injecting variants
/// ([`Self::step_delta_faulted`], [`Self::depart_faulted`]) crash at a
/// chosen [`PhaseBoundary`] instead.
#[derive(Clone, Debug)]
pub struct ChurnEngine {
    cfg: MovementConfig,
    /// Current clustering (heads + affiliations; departed nodes carry a
    /// sentinel head and belong to no cluster).
    pub clustering: Clustering,
    /// Current maintained CDS (heads + gateways). Per the lazy repair
    /// policy it adopts refreshed gateways only when a repair level
    /// says the old ones broke.
    pub cds: Cds,
    graph: Graph,
    departed: Vec<bool>,
    eval: EvaluationOutput,
    scratch: EvalScratch,
    /// Orphan k-ball probes (the charged part of re-affiliation).
    bfs: BfsScratch,
    /// Verification verdict of the last reconciled state, so a step
    /// that provably cannot have changed it costs no connectivity
    /// sweep.
    last_valid: bool,
    /// Connectivity verdict of the maintained CDS's induced subgraph
    /// at the last point it was computed. Reusable while neither the
    /// CDS nor any edge between two of its nodes changes.
    last_backbone_ok: bool,
    /// Compiled route plan over the maintained algorithm's backbone,
    /// kept current under churn once [`Self::enable_routing`] turns
    /// serving on. Only replaced in the last instant of the publish
    /// phase (atomic swap + epoch bump) — never mutated in place while
    /// a reconcile is in flight.
    route_plan: Option<RoutePlan>,
    /// Inter-head layout policy every (re)compiled plan is built under
    /// (set by [`Self::enable_routing_with_inter`]).
    inter_mode: InterMode,
    /// Publication counter stamped onto every swapped-in plan.
    plan_epoch: u64,
    /// Set while a reconcile has run observe (and possibly repair) but
    /// not publish. A crash leaves it set; [`Self::recover`] clears it.
    in_flight: Option<PhaseBoundary>,
    /// Observability handle ([`Metrics::disabled`] by default): the
    /// per-phase reconcile spans, damage counters, and publish events
    /// report into it, and [`Self::set_metrics`] shares it with the
    /// scratch so the pipeline's label/eval metrics land in the same
    /// registry.
    metrics: Metrics,
    /// Attached trace, if any: reconcile phase transitions are
    /// recorded into it as [`Phase::Reconcile`] events alongside
    /// whatever protocol traffic the caller already logged.
    trace: Option<Trace>,
    /// Reconcile sequence number, the "time" stamped onto traced phase
    /// transitions (the engine has no simulated clock).
    trace_seq: u64,
}

impl ChurnEngine {
    /// Builds the initial structure on `g` (full pipeline run), with
    /// the label arena in [`LabelMode::Auto`].
    pub fn build(g: &Graph, cfg: MovementConfig) -> Self {
        Self::build_with_labels(g, cfg, LabelMode::Auto)
    }

    /// As [`Self::build`], with an explicit label layout policy for
    /// the maintained arena (`khop churn --labels` drives this).
    pub fn build_with_labels(g: &Graph, cfg: MovementConfig, labels: LabelMode) -> Self {
        let clustering = cluster(g, cfg.k, &LowestId, MemberPolicy::IdBased);
        let mut scratch = EvalScratch::with_mode(labels);
        let eval = pipeline::run_all_with(g, &clustering, &mut scratch);
        let cds = eval.of(cfg.algorithm).cds.clone();
        let mut engine = ChurnEngine {
            cfg,
            clustering,
            cds,
            graph: g.clone(),
            departed: vec![false; g.len()],
            eval,
            scratch,
            bfs: BfsScratch::new(g.len()),
            last_valid: true,
            last_backbone_ok: true,
            route_plan: None,
            inter_mode: InterMode::Auto,
            plan_epoch: 0,
            in_flight: None,
            metrics: Metrics::disabled(),
            trace: None,
            trace_seq: 0,
        };
        engine.refresh_validity();
        engine
    }

    /// Turns route serving on: compiles a [`RoutePlan`] over the
    /// maintained algorithm's backbone and keeps it current through
    /// every subsequent step, departure, and rebuild. The maintained
    /// plan is always identical to one compiled from scratch on the
    /// engine's current state (pinned by the `route_churn` tests).
    pub fn enable_routing(&mut self) {
        self.enable_routing_with_inter(InterMode::Auto);
    }

    /// As [`Self::enable_routing`], with an explicit inter-head layout
    /// policy for the maintained plan (`khop route --inter` drives
    /// this); the policy survives every recompile the maintainer does.
    pub fn enable_routing_with_inter(&mut self, inter: InterMode) {
        self.inter_mode = inter;
        let plan = self.compile_plan();
        self.install_plan(plan);
    }

    /// The maintained route plan (`None` until
    /// [`Self::enable_routing`]).
    pub fn route_plan(&self) -> Option<&RoutePlan> {
        self.route_plan.as_ref()
    }

    /// Compiles a plan from the engine's current evaluation (does not
    /// install it — that is publish's atomic swap).
    fn compile_plan(&self) -> RoutePlan {
        RoutePlan::compile_metered(
            &self.graph,
            &self.clustering,
            self.scratch.labels(),
            self.eval.selected_links(self.cfg.algorithm),
            self.inter_mode,
            self.scratch.parallelism(),
            &self.metrics,
        )
    }

    /// The worker-pool policy the engine's label sweeps, plan
    /// compiles, and repairs run under (defaults to the environment's
    /// [`Parallelism::from_env`] via [`EvalScratch`]).
    pub fn workers(&self) -> Parallelism {
        self.scratch.parallelism()
    }

    /// Sets the worker-pool policy for every subsequent label sweep,
    /// plan compile, and repair. Worker counts never change results —
    /// every parallel path is bit-identical to serial — so this is
    /// purely a throughput knob (`khop churn --workers` drives it).
    pub fn set_workers(&mut self, par: Parallelism) {
        self.scratch.set_workers(par);
    }

    /// Attaches an observability handle: every subsequent reconcile
    /// reports per-phase spans (`reconcile.observe_ns` /
    /// `reconcile.repair_ns` / `reconcile.publish_ns`), damage counts
    /// and histograms, escalation/publish events — and, because the
    /// handle is shared with the engine's [`EvalScratch`], the
    /// pipeline's label-sweep and eval metrics land in the same
    /// registry. Pass [`Metrics::disabled`] to turn reporting back off
    /// (the default; every report is then a one-branch no-op).
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.scratch.set_metrics(metrics.clone());
        self.metrics = metrics;
    }

    /// The attached observability handle (disabled unless
    /// [`Self::set_metrics`] installed a live one).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Attaches a bounded [`Trace`]: each reconcile phase start is
    /// recorded as a [`Phase::Reconcile`] event
    /// ([`MessageKind::ReconcileObserve`] / `ReconcileRepair` /
    /// `ReconcilePublish`), stamped with the reconcile sequence number
    /// as its time and the `NodeId(u32::MAX)` sentinel as its origin
    /// (a phase transition has no single transmitting node). Replaces
    /// any prior trace.
    pub fn attach_trace(&mut self, trace: Trace) {
        self.trace = Some(trace);
    }

    /// The attached trace, if any.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Detaches and returns the trace (e.g. to serialize it after a
    /// run).
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Records a reconcile phase transition into the attached trace
    /// (no-op without one). Observe transitions open a new reconcile,
    /// advancing the sequence stamp.
    fn trace_phase(&mut self, kind: MessageKind) {
        if kind == MessageKind::ReconcileObserve {
            self.trace_seq += 1;
        }
        let seq = self.trace_seq;
        if let Some(t) = self.trace.as_mut() {
            t.record(TraceEvent {
                time: seq,
                phase: Phase::Reconcile,
                kind,
                from: GONE,
            });
        }
    }

    /// Atomically publishes `plan`: bumps the epoch, stamps it, swaps
    /// it in. The single point where [`Self::route_plan`] changes.
    fn install_plan(&mut self, mut plan: RoutePlan) {
        self.plan_epoch += 1;
        plan.set_epoch(self.plan_epoch);
        self.metrics.inc("plan.published");
        self.metrics.event("plan.publish", self.plan_epoch);
        self.route_plan = Some(plan);
    }

    /// Recompiles and publishes the maintained route plan from the
    /// engine's current evaluation (head-set changes invalidate the
    /// plan's slot layout; localized steps patch a pending clone via
    /// [`RoutePlan::apply_delta`] instead).
    fn republish_plan(&mut self) {
        if self.route_plan.is_some() {
            let plan = self.compile_plan();
            self.install_plan(plan);
        }
    }

    /// The configured policy.
    pub fn config(&self) -> &MovementConfig {
        &self.cfg
    }

    /// The engine's current view of the topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The maintained five-algorithm evaluation — always bit-for-bit
    /// what `pipeline::run_all` would compute on the current graph and
    /// clustering.
    pub fn evaluation(&self) -> &EvaluationOutput {
        &self.eval
    }

    /// The incrementally maintained head labels (dense or sparse per
    /// the layout the engine was built with).
    pub fn labels(&self) -> &LabelStore {
        self.scratch.labels()
    }

    /// Whether `u` has departed.
    pub fn is_departed(&self, u: NodeId) -> bool {
        self.departed[u.index()]
    }

    /// The last reconcile's validity verdict (whether the maintained
    /// structure verifies as a k-hop CDS over the surviving nodes).
    pub fn is_valid(&self) -> bool {
        self.last_valid
    }

    /// Whether the surviving (non-departed) nodes induce a connected
    /// subgraph — validity can only be demanded when they do.
    pub fn alive_connected(&self) -> bool {
        let alive: Vec<NodeId> = self
            .graph
            .nodes()
            .filter(|&v| !self.departed[v.index()])
            .collect();
        connectivity::is_subset_connected(&self.graph, &alive)
    }

    /// The boundary an interrupted reconcile stopped at, if one is in
    /// flight (a crash injected by [`FaultPlan`], or a suspended state
    /// machine whose [`ReconcileState`] the caller still holds).
    pub fn in_flight(&self) -> Option<PhaseBoundary> {
        self.in_flight
    }

    /// Restores consistency after a crash: if a reconcile is in
    /// flight, pays a full rebuild (re-election, evaluation, verdicts,
    /// plan republication) and clears the flag. Returns the rebuild's
    /// report, or `None` if nothing was in flight.
    pub fn recover(&mut self) -> Option<StepReport> {
        self.in_flight?;
        let report = self.full_rebuild(0, 0);
        self.in_flight = None;
        Some(report)
    }

    /// Reconciles the structure with a new topology snapshot, choosing
    /// the cheapest sufficient repair. Returns what was done.
    ///
    /// # Panics
    /// Panics if the node count changed (the engine's node set is
    /// fixed; departures isolate) or a reconcile is in flight.
    pub fn step(&mut self, g: &Graph) -> StepReport {
        assert_eq!(g.len(), self.graph.len(), "the engine's node set is fixed");
        assert!(self.in_flight.is_none(), "a reconcile is in flight; recover() first");
        let delta = TopologyDelta::between(&self.graph, g);
        // `clone_from` reuses the adjacency allocations already held.
        self.graph.clone_from(g);
        let state = self.observe(delta, StrandedPolicy::FullRebuild, None);
        self.finish(state)
    }

    /// As [`Self::step`], but fed the exact edge delta (no snapshot
    /// diffing; this is what delta producers like the mobility grid
    /// drive).
    pub fn step_delta(&mut self, delta: &TopologyDelta) -> StepReport {
        let state = self.begin_delta(delta);
        self.finish(state)
    }

    /// As [`Self::step_delta`], with deterministic crash injection:
    /// returns `Err(boundary)` if the fault plan crashed the reconcile
    /// there (the engine is then [`Self::in_flight`] and must
    /// [`Self::recover`] before the next reconcile).
    pub fn step_delta_faulted(
        &mut self,
        delta: &TopologyDelta,
        faults: FaultPlan,
    ) -> Result<StepReport, PhaseBoundary> {
        let state = self.begin_delta(delta);
        self.drive(state, faults)
    }

    /// §3.3 departure of `u` through the incremental engine: exactly a
    /// delta removing `u`'s edges, plus the role-aware repair rule —
    /// bystanders cost nothing, a gateway's loss disconnects the
    /// maintained CDS and triggers only the gateway refresh, and a
    /// departing clusterhead orphans its members, who re-join surviving
    /// heads or elect locally among themselves.
    ///
    /// # Panics
    /// Panics if `u` departed already or a reconcile is in flight.
    pub fn depart(&mut self, u: NodeId) -> StepReport {
        let state = self.begin_depart(u);
        self.finish(state)
    }

    /// As [`Self::depart`], with deterministic crash injection (see
    /// [`Self::step_delta_faulted`]).
    pub fn depart_faulted(
        &mut self,
        u: NodeId,
        faults: FaultPlan,
    ) -> Result<StepReport, PhaseBoundary> {
        let state = self.begin_depart(u);
        self.drive(state, faults)
    }

    /// §3.3 arrival of `u` through the incremental engine: exactly a
    /// delta re-attaching the (previously departed) node to its alive
    /// `neighbors`, plus the newcomer rule — join the nearest
    /// clusterhead within `k` hops (distance, then head ID) or, when
    /// none is in range, elect locally. The label arena gains at most
    /// one spliced row; nothing is rebuilt wholesale.
    ///
    /// # Panics
    /// Panics if `u` is already present, a neighbor is departed or
    /// `u` itself, or a reconcile is in flight.
    pub fn arrive(&mut self, u: NodeId, neighbors: &[NodeId]) -> StepReport {
        let state = self.begin_arrive(u, neighbors);
        self.finish(state)
    }

    /// As [`Self::arrive`], with deterministic crash injection (see
    /// [`Self::step_delta_faulted`]).
    pub fn arrive_faulted(
        &mut self,
        u: NodeId,
        neighbors: &[NodeId],
        faults: FaultPlan,
    ) -> Result<StepReport, PhaseBoundary> {
        let state = self.begin_arrive(u, neighbors);
        self.drive(state, faults)
    }

    /// Drives one batched reconcile over a multi-node delta: every op
    /// runs its full observe/repair/publish reconcile **except** that
    /// the maintained route plan is suspended for the duration and
    /// republished exactly once at the end — one plan compile for the
    /// whole batch instead of one per op.
    ///
    /// The plan never feeds any observe/repair/publish *decision*
    /// (it is pure output), so the final clustering, labels,
    /// evaluation, CDS, verdicts, and the per-op [`StepReport`]s are
    /// bit-identical to running the same ops as individual reconciles
    /// — and the final plan content-equals the sequential one (pinned
    /// by the `batch_reconcile_matches_sequential` test). Only the
    /// epoch differs: one publish instead of `ops.len()`.
    ///
    /// [`BatchOp::Arrive`] neighbors are filtered against the departed
    /// set *at execution time*, matching the flash-crowd semantics of
    /// [`crate::adversary::heal`]: a crowd returning together
    /// reconstructs its internal edges pair by pair as the batch
    /// progresses.
    ///
    /// # Panics
    /// As [`Self::depart`] / [`Self::arrive`] for the offending op.
    pub fn reconcile_batch(&mut self, ops: &[BatchOp]) -> Vec<StepReport> {
        let suspended = self.route_plan.take();
        let mut reports = Vec::with_capacity(ops.len());
        for op in ops {
            match op {
                BatchOp::Depart(u) => reports.push(self.depart(*u)),
                BatchOp::Arrive(u, neighbors) => {
                    let alive: Vec<NodeId> = neighbors
                        .iter()
                        .copied()
                        .filter(|&w| !self.departed[w.index()])
                        .collect();
                    reports.push(self.arrive(*u, &alive));
                }
            }
        }
        if suspended.is_some() {
            let plan = self.compile_plan();
            self.install_plan(plan);
        }
        reports
    }

    // -----------------------------------------------------------------
    // The explicit state machine.
    // -----------------------------------------------------------------

    /// Runs the **observe** phase for an edge delta: applies it to the
    /// owned graph, advances the label arena, and detects damage.
    /// Nothing downstream (clustering, CDS, evaluation, plan) changes.
    ///
    /// # Panics
    /// Panics if a reconcile is already in flight.
    pub fn begin_delta(&mut self, delta: &TopologyDelta) -> ReconcileState {
        assert!(self.in_flight.is_none(), "a reconcile is in flight; recover() first");
        delta.apply_to(&mut self.graph);
        self.observe(delta.clone(), StrandedPolicy::FullRebuild, None)
    }

    /// Runs the **observe** phase for the departure of `u` (the delta
    /// isolating it, plus the §3.3 role-aware damage detection).
    ///
    /// # Panics
    /// Panics if `u` departed already or a reconcile is in flight.
    pub fn begin_depart(&mut self, u: NodeId) -> ReconcileState {
        assert!(self.in_flight.is_none(), "a reconcile is in flight; recover() first");
        assert!(!self.departed[u.index()], "{u:?} departed already");
        let delta = TopologyDelta::isolating(&self.graph, u);
        self.departed[u.index()] = true;
        if !self.clustering.is_head(u) {
            delta.apply_to(&mut self.graph);
            self.clustering.head_of[u.index()] = GONE;
            self.clustering.dist_to_head[u.index()] = 0;
            return self.observe(delta, StrandedPolicy::Elect, None);
        }
        delta.apply_to(&mut self.graph);
        self.observe_head_loss(u, delta)
    }

    /// Runs the **observe** phase for the arrival of `u`: the delta
    /// attaching it to `neighbors` flows through the same label
    /// advance and damage detection as any other delta, with the
    /// newcomer seeded into the orphan set so repair applies §3.3's
    /// join-or-elect rule.
    ///
    /// # Panics
    /// Panics if `u` is already present, a neighbor is departed or
    /// `u` itself, or a reconcile is in flight.
    pub fn begin_arrive(&mut self, u: NodeId, neighbors: &[NodeId]) -> ReconcileState {
        assert!(self.in_flight.is_none(), "a reconcile is in flight; recover() first");
        assert!(self.departed[u.index()], "{u:?} is already present");
        let mut delta = TopologyDelta::new();
        for &w in neighbors {
            assert_ne!(w, u, "arrival edge from {u:?} to itself");
            assert!(
                !self.departed[w.index()],
                "arrival edge to departed node {w:?}"
            );
            delta.push_added(u, w);
        }
        delta.normalize();
        self.departed[u.index()] = false;
        self.clustering.head_of[u.index()] = GONE;
        self.clustering.dist_to_head[u.index()] = 0;
        delta.apply_to(&mut self.graph);
        self.observe(delta, StrandedPolicy::Elect, Some(u))
    }

    /// Advances a suspended reconcile by exactly one phase. Feeding a
    /// `Done` state back is a no-op.
    ///
    /// # Panics
    /// Panics if `state` is stale — i.e. it does not match the phase
    /// the engine is actually suspended at (e.g. the engine recovered
    /// from a crash since the state was produced).
    pub fn resume(&mut self, state: ReconcileState) -> ReconcileState {
        match state {
            ReconcileState::Observed(obs) => {
                assert_eq!(
                    self.in_flight,
                    Some(PhaseBoundary::Observed),
                    "stale reconcile state"
                );
                self.repair(*obs)
            }
            ReconcileState::Repaired(rep) => {
                assert_eq!(
                    self.in_flight,
                    Some(PhaseBoundary::Repaired),
                    "stale reconcile state"
                );
                self.publish(*rep)
            }
            done @ ReconcileState::Done(_) => done,
        }
    }

    /// Drives a suspended reconcile through its remaining phases.
    pub fn finish(&mut self, mut state: ReconcileState) -> StepReport {
        loop {
            match state {
                ReconcileState::Done(report) => return report,
                live => state = self.resume(live),
            }
        }
    }

    /// Drives `state` to completion unless `faults` crashes it at a
    /// phase boundary first (the in-flight state is then abandoned, as
    /// a dying maintainer would).
    fn drive(
        &mut self,
        mut state: ReconcileState,
        faults: FaultPlan,
    ) -> Result<StepReport, PhaseBoundary> {
        loop {
            match state {
                ReconcileState::Done(report) => return Ok(report),
                ReconcileState::Observed(_) if faults.crashes_after(PhaseBoundary::Observed) => {
                    return Err(PhaseBoundary::Observed);
                }
                ReconcileState::Repaired(_) if faults.crashes_after(PhaseBoundary::Repaired) => {
                    return Err(PhaseBoundary::Repaired);
                }
                live => state = self.resume(live),
            }
        }
    }

    /// Observe: advance the label arena over the already-applied
    /// `delta` (bounded BFS for dirty heads only) and detect damage —
    /// orphaned members, merged head pairs. Pure detection: repairs
    /// happen in the next phase. A `newcomer` (an arriving node with
    /// no affiliation yet) is seeded straight into the orphan set so
    /// repair re-homes it via the §3.3 join-or-elect rule.
    fn observe(
        &mut self,
        delta: TopologyDelta,
        policy: StrandedPolicy,
        newcomer: Option<NodeId>,
    ) -> ReconcileState {
        let k = self.cfg.k;
        if delta.is_empty() && newcomer.is_none() {
            // Nothing moved: the previous verdict stands verbatim — an
            // idle beacon costs O(1), no connectivity sweeps.
            self.metrics.inc("reconcile.noop");
            return ReconcileState::Done(StepReport {
                level: RepairLevel::None,
                orphans: 0,
                merged_head_pairs: 0,
                cost: 0,
                valid: self.last_valid,
                dirty_heads: 0,
            });
        }
        self.trace_phase(MessageKind::ReconcileObserve);
        let _observe = self.metrics.span("reconcile.observe_ns");
        self.metrics.inc("reconcile.count");

        let advance =
            pipeline::advance_labels(&self.graph, &self.clustering, &delta, &mut self.scratch);
        let dirty_heads = advance.dirty_count(self.clustering.heads.len());

        let mut orphans = Vec::new();
        let mut fresh_dist = Vec::new();
        let mut merged_head_pairs = 0usize;
        // A delta no head ball absorbed leaves every label row — and
        // with it every ≤2k+1-hop distance the policy reads —
        // bit-identical, so the orphan and merge verdicts are exactly
        // last step's end state: none (every step ends with all alive
        // members within k of their head and no merged pair, or it
        // escalated to a full rebuild that restored both). The whole
        // detection pass is skipped; the evaluation still refreshes
        // in publish because the global G-MST baseline can read
        // component structure outside the balls.
        if !advance.untouched() {
            // Policy detection off the labels: orphaned members (lost
            // their ≤k-hop head path) and merged head pairs. These
            // reads ride on the beacons a distributed realization
            // already exchanges, so they are not charged (same stance
            // as the old engine).
            let labels = self.scratch.labels();
            for v in self.graph.nodes() {
                if self.departed[v.index()] || self.clustering.is_head(v) || Some(v) == newcomer {
                    continue;
                }
                let h = self.clustering.head_of(v);
                if h == GONE {
                    // Knowingly stranded by a capped repair policy
                    // (no head was within k and the cap forbade an
                    // election): retry re-homing. Untouched deltas
                    // may skip this scan — no label ball changed, so
                    // no head moved within reach either.
                    orphans.push(v);
                    continue;
                }
                match labels.slot(h) {
                    Some(slot) => {
                        let d = labels.dist(slot, v);
                        if d > k {
                            orphans.push(v);
                        } else {
                            fresh_dist.push((v, d));
                        }
                    }
                    None => {
                        // An affiliation pointing at an unlabeled head
                        // means clustering and labels disagree — a
                        // checkable inconsistency, not an abort: treat
                        // the member as orphaned so repair re-homes it.
                        invariants::soft_check(false, "affiliation head is labeled");
                        orphans.push(v);
                    }
                }
            }
            // Merge detection reads only the **dirty** rows: a pair can
            // newly fall within merge distance only if its head-to-head
            // distance shrank, which requires (at least) one endpoint's
            // row to have absorbed the delta — and every completed step
            // ends merge-free (fresh elections place heads more than k
            // apart, and a detected merge escalates to re-election), so
            // clean-pair verdicts carry over. A dirty pair is counted
            // once, by whichever dirty slot scans it first.
            let heads = &self.clustering.heads;
            match &advance {
                LabelAdvance::Incremental { dirty } => {
                    for &slot in dirty {
                        for (other_slot, &other) in heads.iter().enumerate() {
                            if other_slot == slot
                                || (other_slot < slot
                                    && dirty.binary_search(&other_slot).is_ok())
                            {
                                continue;
                            }
                            if labels.dist(slot, other) <= self.cfg.merge_distance {
                                merged_head_pairs += 1;
                            }
                        }
                    }
                }
                LabelAdvance::Rebuilt => {
                    for (slot, _) in heads.iter().enumerate() {
                        for &other in &heads[slot + 1..] {
                            if labels.dist(slot, other) <= self.cfg.merge_distance {
                                merged_head_pairs += 1;
                            }
                        }
                    }
                }
            }
        }
        if let Some(u) = newcomer {
            orphans.push(u);
            orphans.sort_unstable();
        }
        self.metrics.record("reconcile.dirty_heads", dirty_heads as u64);
        self.metrics.add("reconcile.orphans", orphans.len() as u64);
        self.metrics
            .add("reconcile.merged_head_pairs", merged_head_pairs as u64);
        self.in_flight = Some(PhaseBoundary::Observed);
        ReconcileState::Observed(Box::new(Observation {
            delta,
            advance: Some(advance),
            dirty_heads,
            orphans,
            merged_head_pairs,
            fresh_dist,
            policy,
            departed_head: None,
        }))
    }

    /// Observe for a **head** departure: the head set is about to
    /// change, so the label arena is left alone (publish pays the full
    /// evaluation), and the damage set is the departed head's members
    /// plus the broken mates derived from the isolating delta — no
    /// pre-departure graph snapshot needed.
    fn observe_head_loss(&mut self, u: NodeId, delta: TopologyDelta) -> ReconcileState {
        self.trace_phase(MessageKind::ReconcileObserve);
        let _observe = self.metrics.span("reconcile.observe_ns");
        self.metrics.inc("reconcile.count");
        self.metrics.inc("reconcile.head_loss");
        let mut former: Vec<NodeId> = delta
            .removed
            .iter()
            .map(|&(a, b)| if a == u { b } else { a })
            .collect();
        former.sort_unstable();
        let mut orphans: Vec<NodeId> = self
            .graph
            .nodes()
            .filter(|&v| v != u && self.clustering.head_of(v) == u)
            .collect();
        orphans.extend(broken_mates(&self.graph, &former, &self.clustering, u));
        orphans.sort_unstable();
        orphans.dedup();
        self.metrics.add("reconcile.orphans", orphans.len() as u64);
        self.in_flight = Some(PhaseBoundary::Observed);
        ReconcileState::Observed(Box::new(Observation {
            delta,
            advance: None,
            dirty_heads: 0,
            orphans,
            merged_head_pairs: 0,
            fresh_dist: Vec::new(),
            policy: StrandedPolicy::Elect,
            departed_head: Some(u),
        }))
    }

    /// Repair: mutate the clustering per the [`RepairLevel`] policy —
    /// record refreshed distances, rejoin orphans, elect stranded
    /// ones, re-elect globally on merges, drop a departed head. The
    /// evaluation, CDS, verdicts, and route plan stay pre-step.
    fn repair(&mut self, obs: Observation) -> ReconcileState {
        self.trace_phase(MessageKind::ReconcileRepair);
        let _repair = self.metrics.span("reconcile.repair_ns");
        let Observation {
            delta,
            advance,
            dirty_heads,
            orphans,
            merged_head_pairs,
            fresh_dist,
            policy,
            departed_head,
        } = obs;

        let outcome = if let Some(u) = departed_head {
            // §3.3 head loss: drop the head, re-join its orphans to
            // surviving heads, let the stranded elect locally.
            match self.clustering.heads.binary_search(&u) {
                Ok(pos) => {
                    self.clustering.heads.remove(pos);
                }
                Err(_) => {
                    // A departing head missing from the head list is a
                    // clustering inconsistency; removal is already
                    // done, so repair proceeds.
                    invariants::soft_check(false, "departing head is listed in the head set");
                }
            }
            self.clustering.head_of[u.index()] = GONE;
            self.clustering.dist_to_head[u.index()] = 0;
            let mut cost = 0usize;
            let mut stranded = Vec::new();
            if self.cfg.max_level >= RepairLevel::Reaffiliate {
                for &v in &orphans {
                    let (probed, joined) =
                        rejoin_one(&self.graph, &mut self.clustering, v, &mut self.bfs);
                    cost += probed;
                    if !joined {
                        stranded.push(v);
                    }
                }
            } else {
                // Cap below Reaffiliate: no re-homing at all. Every
                // orphan is detached — the vanished head's members
                // because its label row is about to be spliced out,
                // the broken mates because their recorded ≤k distance
                // may no longer hold (the plan compiler rejects stale
                // affiliations rather than serving them).
                stranded.extend(orphans.iter().copied());
            }
            if self.cfg.max_level >= RepairLevel::Full {
                let (_, probes) =
                    elect_orphans(&self.graph, &mut self.clustering, stranded, &mut self.bfs);
                cost += probes;
            } else {
                for v in stranded {
                    self.strand(v);
                }
            }
            RepairOutcome::HeadLoss {
                orphans: orphans.len(),
                cost,
            }
        } else if merged_head_pairs > 0 && self.cfg.max_level >= RepairLevel::Full {
            // Two heads drifted within merge distance: least cluster
            // change says re-elect globally (refreshed member
            // distances are pointless — the head set is replaced).
            self.reelect();
            RepairOutcome::Rebuilt {
                orphans: orphans.len(),
                merged: merged_head_pairs,
            }
        } else {
            for &(v, d) in &fresh_dist {
                self.clustering.dist_to_head[v.index()] = d;
            }
            let mut level = RepairLevel::None;
            let mut cost = 0usize;
            let mut heads_changed = false;
            let mut rebuild = false;
            if !orphans.is_empty() && self.cfg.max_level < RepairLevel::Reaffiliate {
                // Capped below any repair: orphans are detached, not
                // re-homed (the plan compiler rejects stale >k
                // affiliations, and routing honestly loses them).
                for &v in &orphans {
                    self.strand(v);
                }
            } else if !orphans.is_empty() {
                // Re-affiliate each orphan to the nearest head within k
                // hops (distance, then head ID). The k-ball probe is
                // the charged node-round cost, exactly as before.
                level = RepairLevel::Reaffiliate;
                let mut stranded = Vec::new();
                for &v in &orphans {
                    let (probed, joined) =
                        rejoin_one(&self.graph, &mut self.clustering, v, &mut self.bfs);
                    cost += probed;
                    if !joined {
                        stranded.push(v);
                    }
                }
                if !stranded.is_empty() && self.cfg.max_level < RepairLevel::Full {
                    // The cap forbids the election (or re-election)
                    // the stranded set calls for; park them instead.
                    for v in stranded {
                        self.strand(v);
                    }
                } else if !stranded.is_empty() {
                    match policy {
                        StrandedPolicy::FullRebuild => {
                            // Coverage loss: least-cluster-change says
                            // this is the moment to re-elect.
                            self.reelect();
                            rebuild = true;
                        }
                        StrandedPolicy::Elect => {
                            let (_, probes) = elect_orphans(
                                &self.graph,
                                &mut self.clustering,
                                stranded,
                                &mut self.bfs,
                            );
                            cost += probes;
                            level = RepairLevel::Full;
                            heads_changed = true;
                        }
                    }
                }
            }
            if rebuild {
                RepairOutcome::Rebuilt {
                    orphans: orphans.len(),
                    merged: 0,
                }
            } else {
                let advance = advance.unwrap_or(LabelAdvance::Rebuilt);
                RepairOutcome::Patch(Patch {
                    advance,
                    dirty_heads,
                    heads_changed,
                    level,
                    orphans: orphans.len(),
                    merged: merged_head_pairs,
                    cost,
                })
            }
        };
        self.in_flight = Some(PhaseBoundary::Repaired);
        ReconcileState::Repaired(Box::new(Repaired { delta, outcome }))
    }

    /// Publish: refresh the evaluation, recompute the validity
    /// verdicts, and — in the final instant — swap the pending route
    /// plan in atomically with an epoch bump. Until that swap, queries
    /// keep reading the pre-step plan.
    fn publish(&mut self, rep: Repaired) -> ReconcileState {
        self.trace_phase(MessageKind::ReconcilePublish);
        let _publish = self.metrics.span("reconcile.publish_ns");
        let Repaired { delta, outcome } = rep;
        let report = match outcome {
            RepairOutcome::Rebuilt { orphans, merged } => self.publish_rebuilt(orphans, merged),
            RepairOutcome::HeadLoss { orphans, cost } => {
                // Observe left the arena untouched (`advance: None`),
                // so the splice both repairs the surviving rows over
                // the isolating delta and drops the departed head's
                // row (plus opens rows for any locally elected
                // replacements) — no wholesale rebuild.
                let splice = pipeline::advance_labels_headset(
                    &self.graph,
                    &self.clustering,
                    &delta,
                    &mut self.scratch,
                );
                let (eval, _) = pipeline::update_all_after_headset(
                    &self.graph,
                    &self.clustering,
                    &splice,
                    &mut self.scratch,
                );
                self.eval = eval;
                self.cds = self.eval.of(self.cfg.algorithm).cds.clone();
                let cost = cost + self.information_cost();
                self.refresh_validity();
                self.republish_plan();
                StepReport {
                    // The head drop itself is forced; the *elective*
                    // part (stranded members electing replacements)
                    // is what a capped policy withholds.
                    level: RepairLevel::Full.min(self.cfg.max_level),
                    orphans,
                    merged_head_pairs: 0,
                    cost,
                    valid: self.last_valid,
                    dirty_heads: splice.dirty_count(self.clustering.heads.len()),
                }
            }
            RepairOutcome::Patch(patch) => self.publish_patch(&delta, patch),
        };
        self.metrics
            .add("reconcile.cost_node_rounds", report.cost as u64);
        self.metrics.record("reconcile.cost", report.cost as u64);
        if report.level >= RepairLevel::Full {
            self.metrics.inc("reconcile.level_full");
        }
        self.in_flight = None;
        ReconcileState::Done(report)
    }

    /// Publish tail of the incremental path: evaluation refresh,
    /// pending-plan preparation, verdict reuse, escalations, atomic
    /// swap.
    fn publish_patch(&mut self, delta: &TopologyDelta, patch: Patch) -> StepReport {
        let Patch {
            advance,
            mut dirty_heads,
            heads_changed,
            mut level,
            orphans,
            merged,
            mut cost,
        } = patch;

        // Refresh the maintained evaluation: incremental row reuse when
        // the head set survived; a **row splice** when a local election
        // grew it (observe already advanced every surviving row over
        // the delta, so the splice only opens rows for the new heads —
        // the arena is never rebuilt wholesale for a local head gain).
        if heads_changed {
            let splice = pipeline::advance_labels_headset(
                &self.graph,
                &self.clustering,
                &TopologyDelta::new(),
                &mut self.scratch,
            );
            let (eval, _) = pipeline::update_all_after_headset(
                &self.graph,
                &self.clustering,
                &splice,
                &mut self.scratch,
            );
            self.eval = eval;
            dirty_heads = splice.dirty_count(self.clustering.heads.len());
        } else {
            let (eval, _) = pipeline::update_all_after(
                &self.graph,
                &self.clustering,
                &advance,
                &self.eval,
                &mut self.scratch,
            );
            self.eval = eval;
        }

        // Prepare the pending plan without touching the served one:
        // localized deltas patch a clone's ascent rows and backbone
        // tables; label rebuilds and elections compile fresh (the
        // dirty set is unknown or the slot layout changed).
        let pending: Option<RoutePlan> = match &self.route_plan {
            None => None,
            Some(current) => Some(if heads_changed {
                self.compile_plan()
            } else {
                match &advance {
                    LabelAdvance::Incremental { dirty } => {
                        let mut plan = current.clone();
                        plan.apply_delta_metered(
                            &self.graph,
                            &self.clustering,
                            self.scratch.labels(),
                            delta,
                            dirty,
                            self.eval.selected_links(self.cfg.algorithm),
                            self.scratch.parallelism(),
                            &self.metrics,
                        );
                        plan
                    }
                    LabelAdvance::Rebuilt => self.compile_plan(),
                }
            }),
        };

        // Backbone check: the maintained CDS must still induce a
        // connected subgraph. A departed gateway shows up here too —
        // its isolated node disconnects the old CDS, and the refreshed
        // selection is adopted, which is §3.3's "re-run the gateway
        // selection". The induced subgraph only changes when a changed
        // edge joins two CDS nodes, so the standing per-step sweep is
        // replaced by verdict reuse: deltas that never touch the
        // backbone — the common case under localized churn, and every
        // ball-untouched delta whose endpoints avoid stale gateways —
        // cost no connectivity traversal at all.
        let mut backbone_ok;
        if heads_changed {
            // A local election changed the head set, so the maintained
            // CDS must follow it — the lazy gateway-adoption policy
            // only applies while the head set is stable. (Before this
            // adoption the stale CDS could not dominate the elected
            // head, and every election escalated into a global
            // rebuild, defeating the local repair.)
            self.cds = self.eval.of(self.cfg.algorithm).cds.clone();
            // Every head re-collects its 2k+1 ball.
            cost += self.information_cost();
            backbone_ok = connectivity::is_subset_connected(&self.graph, &self.cds.nodes());
        } else {
            backbone_ok = if self.backbone_touched(delta) {
                connectivity::is_subset_connected(&self.graph, &self.cds.nodes())
            } else {
                self.last_backbone_ok
            };
            if !backbone_ok && self.cfg.max_level >= RepairLevel::Gateways {
                level = level.max(RepairLevel::Gateways);
                self.cds = self.eval.of(self.cfg.algorithm).cds.clone();
                // Every head re-collects its 2k+1 ball.
                cost += self.information_cost();
                backbone_ok = connectivity::is_subset_connected(&self.graph, &self.cds.nodes());
            }
        }
        self.last_backbone_ok = backbone_ok;
        let valid = backbone_ok && self.dominated();
        self.last_valid = valid;
        if !valid && self.alive_connected() && self.cfg.max_level >= RepairLevel::Full {
            // A repair on a connected graph must succeed; if it somehow
            // did not, escalate (the pending plan is discarded — the
            // rebuild republishes a fresh one). A capped policy is not
            // entitled to the escalation: it keeps serving the
            // degraded plan and reports `valid: false`.
            self.metrics.inc("reconcile.escalations");
            self.metrics.event("reconcile.escalation", self.trace_seq);
            return self.full_rebuild(orphans, 0);
        }
        if let Some(plan) = pending {
            self.install_plan(plan);
        }
        StepReport {
            level,
            orphans,
            merged_head_pairs: merged,
            cost,
            valid,
            dirty_heads,
        }
    }

    /// Parks `v` on the departed sentinel: a capped repair policy
    /// could not (or was not allowed to) re-home it, so it is
    /// knowingly unaffiliated — unroutable in the published plan, and
    /// retried by observe whenever a later delta touches a label ball.
    fn strand(&mut self, v: NodeId) {
        self.clustering.head_of[v.index()] = GONE;
        self.clustering.dist_to_head[v.index()] = 0;
    }

    /// Re-elects the clustering from scratch on the current graph and
    /// strips departed nodes (a fresh election gives each isolated
    /// departed node a singleton cluster — removed right after, which
    /// is exactly the §3.3 outcome for switched-off nodes).
    fn reelect(&mut self) {
        let mut clustering = cluster(&self.graph, self.cfg.k, &LowestId, MemberPolicy::IdBased);
        for u in self.graph.nodes() {
            if self.departed[u.index()] {
                if let Ok(pos) = clustering.heads.binary_search(&u) {
                    clustering.heads.remove(pos);
                }
                clustering.head_of[u.index()] = GONE;
                clustering.dist_to_head[u.index()] = 0;
            }
        }
        self.clustering = clustering;
    }

    /// Publish tail of a global rebuild: full evaluation, fresh CDS,
    /// full-price cost accounting, fresh verdicts, plan republication.
    fn publish_rebuilt(&mut self, orphans: usize, merged: usize) -> StepReport {
        self.metrics.inc("reconcile.full_rebuild");
        self.metrics
            .event("reconcile.rebuild", self.clustering.heads.len() as u64);
        self.eval = pipeline::run_all_with(&self.graph, &self.clustering, &mut self.scratch);
        self.cds = self.eval.of(self.cfg.algorithm).cds.clone();
        let alive = self.departed.iter().filter(|&&d| !d).count();
        let cost = alive + self.information_cost();
        self.refresh_validity();
        self.republish_plan();
        StepReport {
            level: RepairLevel::Full,
            orphans,
            merged_head_pairs: merged,
            cost,
            valid: self.last_valid,
            dirty_heads: self.clustering.heads.len(),
        }
    }

    /// Global re-election plus full republication (the movement
    /// policy's `Full` level, also the crash-recovery path).
    fn full_rebuild(&mut self, orphans: usize, merged: usize) -> StepReport {
        self.reelect();
        self.publish_rebuilt(orphans, merged)
    }

    /// Charged cost of the gateway phase: every head's `2k+1`-hop ball.
    /// Read off the maintained label arena (whose balls are exactly
    /// those neighborhoods) instead of re-running BFS.
    fn information_cost(&self) -> usize {
        let labels = self.scratch.labels();
        (0..self.clustering.heads.len())
            .map(|slot| labels.ball(slot).len())
            .sum()
    }

    /// The cost the rebuild-every-step baseline would pay on `g` (used
    /// by the comparison experiments; `g` may be a snapshot the engine
    /// has not reconciled with yet, so this probes it directly).
    pub fn rebuild_cost(&self, g: &Graph) -> usize {
        let mut scratch = BfsScratch::new(g.len());
        g.len()
            + self
                .clustering
                .heads
                .iter()
                .map(|&h| {
                    scratch.run(g, h, 2 * self.cfg.k + 1);
                    scratch.visited().len()
                })
                .sum::<usize>()
    }

    /// Whether any changed edge joins two nodes of the maintained CDS
    /// — the only way a delta can alter the CDS's induced subgraph,
    /// and therefore the only deltas that can flip the backbone
    /// connectivity verdict.
    fn backbone_touched(&self, delta: &TopologyDelta) -> bool {
        let in_cds = |v: NodeId| {
            self.cds.heads.binary_search(&v).is_ok()
                || self.cds.gateways.binary_search(&v).is_ok()
        };
        delta
            .added
            .iter()
            .chain(delta.removed.iter())
            .any(|&(a, b)| in_cds(a) && in_cds(b))
    }

    /// Full-price k-hop domination sweep over the maintained CDS's
    /// heads (multi-source BFS; departed nodes exempt).
    fn dominated_sweep(&self) -> bool {
        let dist = connectivity::distance_to_set(&self.graph, &self.cds.heads);
        self.graph
            .nodes()
            .all(|v| self.departed[v.index()] || dist[v.index()] <= self.cfg.k)
    }

    /// k-hop domination verdict of the maintained CDS. When the CDS
    /// carries the *current* head set, domination holds by
    /// construction — every reconcile ends with each alive member's
    /// label distance to its head verified or repaired to ≤ k, and a
    /// head covers itself — so the sweep is only paid while a lazily
    /// kept CDS still references a pre-election head set. Debug builds
    /// re-verify the construction argument on every call (routed
    /// through [`invariants::soft_check`] so the model checker records
    /// a violation instead of aborting).
    fn dominated(&self) -> bool {
        // The construction argument needs the full repair policy: a
        // capped engine knowingly strands members, so it always pays
        // the sweep and reports the damage honestly.
        if self.cds.heads == self.clustering.heads && self.cfg.max_level == RepairLevel::Full {
            invariants::soft_check(
                self.dominated_sweep(),
                "a reconciled step must leave every alive node within k of a head",
            );
            return true;
        }
        self.dominated_sweep()
    }

    /// Recomputes both verification verdicts at full price. Called
    /// whenever the CDS is replaced wholesale (build, departures with
    /// head loss, full rebuilds); incremental steps keep the verdicts
    /// current via [`Self::backbone_touched`]-gated reuse instead.
    fn refresh_validity(&mut self) {
        self.last_backbone_ok =
            connectivity::is_subset_connected(&self.graph, &self.cds.nodes());
        self.last_valid = self.last_backbone_ok && self.dominated();
    }
}

// ---------------------------------------------------------------------
// Shared repair primitives — used by the engine above and by the
// stateless §3.3 implementation in `maintenance`.
// ---------------------------------------------------------------------

/// Re-joins orphan `v` to the nearest surviving clusterhead within `k`
/// hops (distance, then head ID — the deterministic policy the
/// clustering itself uses), recording the exact distance. Returns the
/// size of the k-ball probe (the charged node-rounds) and whether a
/// head was found.
pub(crate) fn rejoin_one(
    g: &Graph,
    clustering: &mut Clustering,
    v: NodeId,
    scratch: &mut BfsScratch,
) -> (usize, bool) {
    scratch.run(g, v, clustering.k);
    let probed = scratch.visited().len();
    let best = scratch
        .visited()
        .iter()
        .filter(|&&h| clustering.is_head(h) && h != v)
        .map(|&h| (scratch.dist(h), h))
        .min();
    match best {
        Some((d, h)) => {
            clustering.head_of[v.index()] = h;
            clustering.dist_to_head[v.index()] = d;
            (probed, true)
        }
        None => (probed, false),
    }
}

/// §3.3's local election: orphans with no surviving head within `k`
/// hops elect heads among themselves with iterative lowest-ID contests
/// restricted to the undecided set. Returns the elected heads and the
/// total k-ball probe size (charged node-rounds).
pub(crate) fn elect_orphans(
    g: &Graph,
    clustering: &mut Clustering,
    mut undecided: Vec<NodeId>,
    scratch: &mut BfsScratch,
) -> (Vec<NodeId>, usize) {
    let mut elected = Vec::new();
    let mut probes = 0usize;
    while !undecided.is_empty() {
        undecided.sort_unstable();
        let mut winners = Vec::new();
        for &v in &undecided {
            scratch.run(g, v, clustering.k);
            probes += scratch.visited().len();
            let wins = scratch
                .visited()
                .iter()
                .all(|&w| w == v || !undecided.contains(&w) || w > v);
            if wins {
                winners.push(v);
            }
        }
        assert!(!winners.is_empty(), "smallest orphan always wins");
        let mut next = Vec::new();
        for &v in &undecided {
            if winners.contains(&v) {
                clustering.head_of[v.index()] = v;
                clustering.dist_to_head[v.index()] = 0;
                let pos = clustering.heads.binary_search(&v).unwrap_err();
                clustering.heads.insert(pos, v);
                continue;
            }
            scratch.run(g, v, clustering.k);
            probes += scratch.visited().len();
            let best = winners
                .iter()
                .filter(|&&h| scratch.dist(h) != adhoc_graph::bfs::UNREACHED)
                .map(|&h| (scratch.dist(h), h))
                .min();
            match best {
                Some((d, h)) => {
                    clustering.head_of[v.index()] = h;
                    clustering.dist_to_head[v.index()] = d;
                }
                None => next.push(v),
            }
        }
        undecided = next;
        elected.extend(winners);
    }
    (elected, probes)
}

/// Finds members whose ≤k-hop connection to their head broke when
/// `departed` left.
///
/// Only nodes within `k` hops of `departed` *before* the departure can
/// be affected (any head-path through `departed` gives its owner
/// `d(owner, departed) < k`), and crucially the affected members can
/// belong to **any** cluster, not just the departed node's — its
/// radio links may have carried other clusters' head-paths.
///
/// The pre-departure k-ball is recovered **without a pre-departure
/// graph snapshot**: a shortest pre-departure path from `departed` is
/// simple, so after its first hop it avoids `departed` and lives
/// entirely in `residual`. Hence
/// `d_old(departed, v) = 1 + min over former neighbors w of
/// d_residual(w, v)` for every `v ≠ departed`, and one multi-source
/// BFS from `former_neighbors` (`departed`'s neighbors before the
/// isolating delta) bounded at `k − 1` hops enumerates exactly the old
/// ball.
pub(crate) fn broken_mates(
    residual: &Graph,
    former_neighbors: &[NodeId],
    clustering: &Clustering,
    departed: NodeId,
) -> Vec<NodeId> {
    let mut scratch = BfsScratch::new(residual.len());
    let candidates: Vec<NodeId> = if clustering.k == 0 {
        Vec::new()
    } else {
        scratch.run_multi(residual, former_neighbors, clustering.k - 1);
        scratch
            .visited()
            .iter()
            .copied()
            .filter(|&v| v != departed && !clustering.is_head(v))
            .collect()
    };
    let mut reach_cache: std::collections::BTreeMap<NodeId, Vec<bool>> = Default::default();
    let mut broken = Vec::new();
    for v in candidates {
        let h = clustering.head_of(v);
        if h == GONE || h == departed {
            continue;
        }
        let reach = reach_cache.entry(h).or_insert_with(|| {
            scratch.run(residual, h, clustering.k);
            let mut ok = vec![false; residual.len()];
            for &w in scratch.visited() {
                ok[w.index()] = true;
            }
            ok
        });
        if !reach[v.index()] {
            broken.push(v);
        }
    }
    broken.sort_unstable();
    broken
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_cluster::pipeline::Algorithm;
    use adhoc_graph::gen::{self, GeometricConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn geometric(seed: u64, n: usize, d: f64) -> gen::GeometricNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        gen::geometric(&GeometricConfig::new(n, 100.0, d), &mut rng)
    }

    /// The engine's maintained evaluation equals a from-scratch
    /// `run_all` on the current graph after every kind of event.
    fn assert_engine_consistent(engine: &ChurnEngine, ctx: &str) {
        let fresh = pipeline::run_all(engine.graph(), &engine.clustering);
        let a = engine.evaluation();
        assert_eq!(
            a.nc_graph.neighbor_sets, fresh.nc_graph.neighbor_sets,
            "{ctx}: nc sets"
        );
        for (l, r) in a.nc_graph.links().zip(fresh.nc_graph.links()) {
            assert_eq!(l.path, r.path, "{ctx}: nc path");
        }
        for alg in Algorithm::ALL {
            assert_eq!(a.of(alg).selection, fresh.of(alg).selection, "{ctx}: {alg}");
        }
    }

    /// A metered engine reports per-phase reconcile metrics and
    /// records phase transitions into an attached trace; count-type
    /// metrics are exact reconcile facts.
    #[test]
    fn metered_reconcile_reports_phases_and_traces() {
        let net = geometric(91, 50, 8.0);
        let mut e = ChurnEngine::build(&net.graph, MovementConfig::strict(2, Algorithm::AcLmst));
        e.enable_routing();
        let m = Metrics::enabled();
        e.set_metrics(m.clone());
        e.attach_trace(Trace::with_capacity(64));
        let steps = [NodeId(7), NodeId(21), NodeId(33)];
        for &u in &steps {
            e.depart(u);
        }
        let snap = m.snapshot();
        assert_eq!(snap.counter("reconcile.count"), Some(steps.len() as u64));
        // Every depart publishes a plan (routing is on), and routing
        // was enabled before metering, so plan publishes == departs.
        assert_eq!(snap.counter("plan.published"), Some(steps.len() as u64));
        for h in ["reconcile.observe_ns", "reconcile.repair_ns", "reconcile.publish_ns"] {
            let hist = snap.histogram(h).unwrap_or_else(|| panic!("{h} missing"));
            assert_eq!(hist.count, steps.len() as u64, "{h}");
        }
        assert!(snap.events.iter().any(|ev| ev.name == "plan.publish"));
        let trace = e.take_trace().expect("trace attached");
        assert_eq!(trace.len(), 3 * steps.len(), "3 phase marks per reconcile");
        assert!(trace
            .events()
            .iter()
            .all(|ev| ev.phase == Phase::Reconcile && ev.from == GONE));
        assert_eq!(
            trace.phase_span(Phase::Reconcile),
            Some((1, steps.len() as u64))
        );
        assert_engine_consistent(&e, "metered departures");
    }

    #[test]
    fn bystander_departure_is_free() {
        let g = gen::star(6);
        let mut e = ChurnEngine::build(&g, MovementConfig::strict(1, Algorithm::AcLmst));
        let r = e.depart(NodeId(3));
        assert_eq!(r.level, RepairLevel::None);
        assert_eq!(r.cost, 0);
        assert_eq!(r.orphans, 0);
        assert!(r.valid);
        assert!(e.is_departed(NodeId(3)));
        assert_engine_consistent(&e, "bystander departure");
    }

    #[test]
    fn gateway_departure_switches_bridge() {
        // Two clusters joined by two parallel 2-hop bridges: losing
        // one gateway must switch to the other bridge.
        let g = Graph::from_edges(4, &[(0, 2), (2, 1), (0, 3), (3, 1)]);
        let mut e = ChurnEngine::build(&g, MovementConfig::strict(1, Algorithm::AcMesh));
        assert_eq!(e.cds.gateways, vec![NodeId(2)]);
        let r = e.depart(NodeId(2));
        assert_eq!(r.level, RepairLevel::Gateways);
        assert_eq!(e.cds.gateways, vec![NodeId(3)]);
        assert!(r.valid);
        assert_engine_consistent(&e, "gateway departure");
    }

    #[test]
    fn head_departure_reaffiliates_members() {
        // Path 0-1-2-3-4, k=1: heads 0,2,4 (node 1 joins the lower-ID
        // head 0). Remove head 2: its one member 3 must re-join 4.
        let g = gen::path(5);
        let mut e = ChurnEngine::build(&g, MovementConfig::strict(1, Algorithm::AcLmst));
        let r = e.depart(NodeId(2));
        assert_eq!(r.level, RepairLevel::Full);
        assert_eq!(r.orphans, 1);
        assert!(!e.clustering.heads.contains(&NodeId(2)));
        assert_eq!(e.clustering.head_of(NodeId(1)), NodeId(0));
        assert_eq!(e.clustering.head_of(NodeId(3)), NodeId(4));
        // Removing the middle of a path disconnects the survivors.
        assert!(!r.valid);
        assert_engine_consistent(&e, "head departure");
    }

    #[test]
    fn head_departure_can_elect_new_heads() {
        // Star head 0 with leaves (k=1): orphaned leaves have no
        // surviving head in range and each elects itself (isolated).
        let g = gen::star(5);
        let mut e = ChurnEngine::build(&g, MovementConfig::strict(1, Algorithm::AcLmst));
        let r = e.depart(NodeId(0));
        assert_eq!(r.level, RepairLevel::Full);
        assert_eq!(
            e.clustering.heads,
            vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
        assert_engine_consistent(&e, "head departure with election");
    }

    #[test]
    fn departure_chain_stays_consistent() {
        let net = geometric(77, 60, 8.0);
        let mut e = ChurnEngine::build(&net.graph, MovementConfig::strict(2, Algorithm::AcLmst));
        for uid in [5u32, 20, 40, 11, 33] {
            let r = e.depart(NodeId(uid));
            assert!(r.valid || !e.alive_connected());
            assert_engine_consistent(&e, &format!("chain departure {uid}"));
        }
    }

    #[test]
    fn stranded_departure_orphan_elects_locally() {
        // 0-1-2 with k=1: heads {0, 2}, 1 affiliated to 0. Removing
        // edges one at a time: departure of head 0 leaves 1 next to
        // head 2 — then departure of 2 strands 1, which elects itself.
        let g = gen::path(3);
        let mut e = ChurnEngine::build(&g, MovementConfig::strict(1, Algorithm::AcLmst));
        e.depart(NodeId(0));
        assert_eq!(e.clustering.head_of(NodeId(1)), NodeId(2));
        let r = e.depart(NodeId(2));
        assert_eq!(r.level, RepairLevel::Full);
        assert_eq!(e.clustering.heads, vec![NodeId(1)]);
        assert_engine_consistent(&e, "stranded election");
    }

    /// A capped policy under-repairs *honestly*: stranded members are
    /// parked on the departed sentinel (unroutable, not stale), the
    /// validity verdict reports `false`, and nothing panics — the
    /// resilience bench leans on exactly this to measure what each
    /// §3.3 rule is worth.
    #[test]
    fn capped_policy_strands_instead_of_electing() {
        let g = gen::star(5);
        let cfg = MovementConfig::strict(1, Algorithm::AcLmst).capped(RepairLevel::Reaffiliate);
        let mut e = ChurnEngine::build(&g, cfg);
        e.enable_routing();
        let r = e.depart(NodeId(0));
        // The head drop is forced, but the election the stranded
        // leaves call for is withheld by the cap.
        assert_eq!(r.level, RepairLevel::Reaffiliate);
        assert!(!r.valid);
        assert!(e.clustering.heads.is_empty());
        for leaf in 1..5 {
            assert_eq!(e.clustering.head_of(NodeId(leaf)), GONE);
        }
        // The published plan degrades instead of lying: no affiliation,
        // no route.
        let plan = e.route_plan().expect("routing enabled");
        assert!(plan.route(NodeId(1), NodeId(2)).is_none());
        // A later arrival still cannot create heads under the cap; the
        // engine keeps limping without escalating.
        let r = e.arrive(NodeId(0), &[NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
        assert!(!r.valid);
        assert_eq!(e.clustering.head_of(NodeId(0)), GONE);
    }

    /// The Gateways cap stops short of re-election but above
    /// re-affiliation: orphans re-home to surviving heads, yet a
    /// backbone break that only an election could fix stays broken
    /// (and is reported as such).
    #[test]
    fn capped_gateways_reaffiliates_but_never_reelects() {
        let g = gen::path(5);
        let cfg = MovementConfig::strict(1, Algorithm::AcLmst).capped(RepairLevel::Gateways);
        let mut e = ChurnEngine::build(&g, cfg);
        // Head 2 departs: member 3 re-joins head 4 (allowed), the
        // survivors are disconnected so validity is honestly false.
        let r = e.depart(NodeId(2));
        assert_eq!(r.level, RepairLevel::Gateways);
        assert_eq!(e.clustering.head_of(NodeId(3)), NodeId(4));
        assert!(!r.valid);
        // Its return reconnects the survivors, but with k = 1 no head
        // is within reach and the cap forbids electing one: the
        // newcomer is parked, the head set untouched, and the verdict
        // stays honestly false (an uncapped engine reaches Full here).
        let heads_before = e.clustering.heads.clone();
        let r = e.arrive(NodeId(2), &[NodeId(1), NodeId(3)]);
        assert!(!r.valid);
        assert_eq!(e.clustering.heads, heads_before);
        assert_eq!(e.clustering.head_of(NodeId(2)), GONE);
        // Members 1 and 3 kept their ≤k affiliations through it all.
        assert_eq!(e.clustering.head_of(NodeId(1)), NodeId(0));
        assert_eq!(e.clustering.head_of(NodeId(3)), NodeId(4));
    }

    /// §3.3 arrival, join case: the newcomer re-attaches and joins the
    /// nearest head (distance, then head ID) — and neither the
    /// departure nor the arrival rebuilds the label arena (the rows
    /// are delta-advanced and spliced; pinned by `rebuild_count`).
    #[test]
    fn arrival_rejoins_nearest_head() {
        let g = gen::path(21);
        let mut e = ChurnEngine::build(&g, MovementConfig::strict(1, Algorithm::AcLmst));
        e.enable_routing();
        let built_rebuilds = e.labels().rebuild_count();
        e.depart(NodeId(5));
        let r = e.arrive(NodeId(5), &[NodeId(4), NodeId(6)]);
        // Node 5 is the only bridge between heads 4 and 6, so its
        // return re-connects the backbone through the gateway refresh.
        assert_eq!(r.level, RepairLevel::Gateways);
        assert_eq!(r.orphans, 1);
        assert!(r.cost > 0, "the newcomer's k-ball probe is charged");
        assert!(!e.is_departed(NodeId(5)));
        // Tie between heads 4 and 6 at distance 1 breaks to the lower ID.
        assert_eq!(e.clustering.head_of(NodeId(5)), NodeId(4));
        assert_eq!(
            e.labels().rebuild_count(),
            built_rebuilds,
            "bystander departure + arrival must splice, not rebuild"
        );
        assert_engine_consistent(&e, "arrival rejoin");
    }

    /// §3.3 arrival, election case: a newcomer with no head within k
    /// elects itself — the head gain is published as a **row splice**
    /// (no label-arena rebuild), and the head-loss departure before it
    /// also splices the departed row out.
    #[test]
    fn arrival_elects_when_no_head_in_range() {
        let g = gen::path(21);
        let mut e = ChurnEngine::build(&g, MovementConfig::strict(1, Algorithm::AcLmst));
        e.enable_routing();
        let built_rebuilds = e.labels().rebuild_count();
        let heads_before = e.clustering.heads.clone();
        let rd = e.depart(NodeId(20)); // a head: its row is spliced out
        assert_eq!(rd.level, RepairLevel::Full);
        assert!(!e.clustering.heads.contains(&NodeId(20)));
        assert_engine_consistent(&e, "head departure before arrival");
        // Re-attached one hop past head 18's range: nothing to join.
        let r = e.arrive(NodeId(20), &[NodeId(19)]);
        assert_eq!(r.level, RepairLevel::Full);
        assert_eq!(e.clustering.heads, heads_before);
        assert_eq!(e.clustering.head_of(NodeId(20)), NodeId(20));
        assert_eq!(
            e.labels().rebuild_count(),
            built_rebuilds,
            "head loss and head gain must splice rows, not rebuild the arena"
        );
        assert_engine_consistent(&e, "arrival election");
    }

    /// An arrival with no neighbors (isolated newcomer) still elects
    /// itself through the full reconcile, and crash injection at each
    /// boundary leaves the pre-step plan served until recovery.
    #[test]
    fn isolated_arrival_and_faulted_arrival() {
        let g = gen::path(2);
        let mut e = ChurnEngine::build(&g, MovementConfig::strict(1, Algorithm::AcLmst));
        e.enable_routing();
        e.depart(NodeId(1));
        let r = e.arrive(NodeId(1), &[]);
        assert_eq!(e.clustering.head_of(NodeId(1)), NodeId(1));
        assert!(e.clustering.heads.contains(&NodeId(1)));
        assert!(r.orphans == 1);
        assert_engine_consistent(&e, "isolated arrival");

        e.depart(NodeId(1));
        let pre_plan = e.route_plan().unwrap().clone();
        let err = e
            .arrive_faulted(NodeId(1), &[NodeId(0)], FaultPlan::crash_after(PhaseBoundary::Observed))
            .unwrap_err();
        assert_eq!(err, PhaseBoundary::Observed);
        assert_eq!(e.route_plan().unwrap(), &pre_plan, "crash must not publish");
        e.recover().expect("was in flight");
        assert!(!e.is_departed(NodeId(1)));
        assert_engine_consistent(&e, "recovery after crashed arrival");
    }

    /// Arrivals on sparse labels walk the same trajectory as dense.
    #[test]
    fn sparse_arrival_matches_dense() {
        let net = geometric(42, 60, 8.0);
        let cfg = MovementConfig::strict(2, Algorithm::AcLmst);
        let mut dense = ChurnEngine::build_with_labels(&net.graph, cfg, LabelMode::Dense);
        let mut sparse = ChurnEngine::build_with_labels(&net.graph, cfg, LabelMode::Sparse);
        for &uid in &[7u32, 23, 41] {
            let u = NodeId(uid);
            let rd = dense.depart(u);
            let rs = sparse.depart(u);
            assert_eq!(rd.level, rs.level);
            let neighbors: Vec<NodeId> = net
                .graph
                .neighbors(u)
                .iter()
                .copied()
                .filter(|w| !dense.is_departed(*w))
                .collect();
            let rd = dense.arrive(u, &neighbors);
            let rs = sparse.arrive(u, &neighbors);
            assert_eq!(rd.level, rs.level, "arrive {uid}");
            assert_eq!(rd.cost, rs.cost, "arrive {uid}");
            assert_eq!(rd.dirty_heads, rs.dirty_heads, "arrive {uid}");
            assert_eq!(dense.clustering.head_of, sparse.clustering.head_of);
            assert_eq!(dense.cds, sparse.cds);
        }
        assert_engine_consistent(&dense, "dense after arrivals");
        assert_engine_consistent(&sparse, "sparse after arrivals");
    }

    #[test]
    fn movement_steps_track_run_all() {
        use crate::mobility::{MobileNetwork, WaypointConfig};
        let mut rng = StdRng::seed_from_u64(9);
        let net = geometric(9, 80, 8.0);
        let cfg = WaypointConfig {
            side: 100.0,
            min_speed: 0.3,
            max_speed: 1.5,
            pause: 1.0,
        };
        let model = crate::mobility::RandomWaypoint::new(80, cfg, &mut rng);
        let mut mobile = MobileNetwork::with_model(net.positions.clone(), net.range, model);
        let mut e =
            ChurnEngine::build(mobile.graph(), MovementConfig::strict(2, Algorithm::AcLmst));
        for step in 0..25 {
            let delta = mobile.step(1.0, &mut rng);
            let r = e.step_delta(&delta);
            assert!(r.dirty_heads <= e.clustering.heads.len());
            assert_engine_consistent(&e, &format!("movement step {step}"));
        }
    }

    /// An engine on sparse labels must walk the same trajectory —
    /// reports, clusterings, CDSs, evaluations — as one on dense
    /// labels.
    #[test]
    fn sparse_label_engine_matches_dense() {
        use crate::mobility::{MobileNetwork, WaypointConfig};
        let net = geometric(31, 70, 8.0);
        let cfg = MovementConfig::tolerant(2, Algorithm::AcLmst, 1);
        let mut dense = ChurnEngine::build_with_labels(&net.graph, cfg, LabelMode::Dense);
        let mut sparse = ChurnEngine::build_with_labels(&net.graph, cfg, LabelMode::Sparse);
        assert!(!dense.labels().is_sparse());
        assert!(sparse.labels().is_sparse());
        let mut rng = StdRng::seed_from_u64(31);
        let wp = WaypointConfig {
            side: 100.0,
            min_speed: 0.5,
            max_speed: 2.0,
            pause: 1.0,
        };
        let model = crate::mobility::RandomWaypoint::new(70, wp, &mut rng);
        let mut mobile = MobileNetwork::with_model(net.positions.clone(), net.range, model);
        for step in 0..20 {
            let delta = mobile.step(0.5, &mut rng);
            let rd = dense.step_delta(&delta);
            let rs = sparse.step_delta(&delta);
            assert_eq!(rd.level, rs.level, "step {step}");
            assert_eq!(rd.cost, rs.cost, "step {step}");
            assert_eq!(rd.valid, rs.valid, "step {step}");
            assert_eq!(rd.dirty_heads, rs.dirty_heads, "step {step}");
            assert_eq!(dense.clustering.head_of, sparse.clustering.head_of, "step {step}");
            assert_eq!(dense.cds, sparse.cds, "step {step}");
            for slot in 0..dense.clustering.heads.len() {
                assert_eq!(dense.labels().ball(slot), sparse.labels().ball(slot));
            }
        }
        assert_engine_consistent(&sparse, "sparse engine final state");
    }

    /// The reused verification verdicts must always equal what a
    /// from-scratch `Cds::verify` says — the contract behind skipping
    /// the per-step connectivity sweeps.
    #[test]
    fn reused_validity_verdict_matches_direct_verification() {
        use crate::mobility::{MobileNetwork, WaypointConfig};
        let net = geometric(57, 80, 7.0);
        let mut e = ChurnEngine::build(&net.graph, MovementConfig::tolerant(2, Algorithm::AcMesh, 1));
        let mut rng = StdRng::seed_from_u64(57);
        let wp = WaypointConfig {
            side: 100.0,
            min_speed: 0.5,
            max_speed: 2.5,
            pause: 0.5,
        };
        let model = crate::mobility::RandomWaypoint::new(80, wp, &mut rng);
        let mut mobile = MobileNetwork::with_model(net.positions.clone(), net.range, model);
        for step in 0..30 {
            let delta = mobile.step(0.5, &mut rng);
            let r = e.step_delta(&delta);
            assert_eq!(
                r.valid,
                e.cds.verify(e.graph(), 2).is_ok(),
                "step {step}: reported validity diverged from direct verification"
            );
        }
    }

    #[test]
    fn step_snapshot_and_step_delta_agree() {
        let net = geometric(13, 50, 8.0);
        let mut g = net.graph.clone();
        let cfg = MovementConfig::strict(2, Algorithm::AcLmst);
        let mut by_snapshot = ChurnEngine::build(&g, cfg);
        let mut by_delta = ChurnEngine::build(&g, cfg);
        let mut delta = TopologyDelta::new();
        g.remove_edge(NodeId(0), g.neighbors(NodeId(0))[0]);
        delta.push_removed(NodeId(0), by_delta.graph().neighbors(NodeId(0))[0]);
        if !g.has_edge(NodeId(3), NodeId(40)) {
            g.add_edge(NodeId(3), NodeId(40));
            delta.push_added(NodeId(3), NodeId(40));
        }
        delta.normalize();
        let ra = by_snapshot.step(&g);
        let rb = by_delta.step_delta(&delta);
        assert_eq!(ra.level, rb.level);
        assert_eq!(ra.cost, rb.cost);
        assert_eq!(by_snapshot.clustering.head_of, by_delta.clustering.head_of);
        assert_eq!(by_snapshot.cds, by_delta.cds);
    }

    /// Departing the last remaining head leaves a consistent engine
    /// with an empty head set over the (all-departed) graph.
    #[test]
    fn depart_last_remaining_head() {
        let g = gen::path(2);
        let mut e = ChurnEngine::build(&g, MovementConfig::strict(1, Algorithm::AcLmst));
        e.enable_routing();
        assert_eq!(e.clustering.heads, vec![NodeId(0)]);
        e.depart(NodeId(1)); // the member first
        let r = e.depart(NodeId(0)); // then the last head
        assert_eq!(r.level, RepairLevel::Full);
        assert_eq!(r.orphans, 0);
        assert!(e.clustering.heads.is_empty());
        assert!(r.valid, "an empty CDS over an all-departed graph verifies");
        assert!(e.route_plan().unwrap().route(NodeId(0), NodeId(1)).is_none());
        assert_engine_consistent(&e, "last head departure");
    }

    /// Departures that reduce the graph to isolated singletons: every
    /// surviving node ends as its own head, and the engine stays
    /// consistent at each stage.
    #[test]
    fn departures_reduce_graph_to_isolated_nodes() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let mut e = ChurnEngine::build(&g, MovementConfig::strict(1, Algorithm::AcLmst));
        e.enable_routing();
        e.depart(NodeId(0)); // the head: 1 and 2 re-home (1 elects, 2 joins)
        assert_engine_consistent(&e, "triangle head departure");
        e.depart(NodeId(1));
        assert_eq!(e.clustering.heads, vec![NodeId(2)]);
        assert_engine_consistent(&e, "second departure");
        let r = e.depart(NodeId(2));
        assert!(e.clustering.heads.is_empty());
        assert!(r.valid);
        assert!(e.graph().nodes().all(|v| e.graph().neighbors(v).is_empty()));
        assert_engine_consistent(&e, "fully isolated");
    }

    /// A delta listing the same edge twice (producer saw it from both
    /// endpoints) normalizes to one change; a self-inverse delta
    /// (remove + re-add the same edge) is a net topology no-op but
    /// still flows through the full observe/repair/publish machine.
    #[test]
    fn duplicated_and_self_inverse_deltas() {
        let net = geometric(5, 30, 9.0);
        let mut e = ChurnEngine::build(&net.graph, MovementConfig::strict(2, Algorithm::AcLmst));
        let (a, b) = net.graph.edges().next().unwrap();

        // Duplicated entries collapse under normalize.
        let mut dup = TopologyDelta::new();
        dup.push_removed(a, b);
        dup.push_removed(b, a);
        dup.normalize();
        assert_eq!(dup.removed.len(), 1);
        e.step_delta(&dup);
        assert_engine_consistent(&e, "duplicated delta");

        // Self-inverse: removed and re-added in one burst. The graph
        // is unchanged, but the dirty-head machinery still runs.
        let mut back = TopologyDelta::new();
        back.push_added(a, b);
        e.step_delta(&back);
        let mut selfinv = TopologyDelta::new();
        selfinv.push_removed(a, b);
        selfinv.push_added(a, b);
        selfinv.normalize();
        let before = e.graph().clone();
        let r = e.step_delta(&selfinv);
        assert_eq!(
            TopologyDelta::between(&before, e.graph()),
            TopologyDelta::new(),
            "self-inverse delta must leave the topology unchanged"
        );
        assert!(r.valid || !e.alive_connected());
        assert_engine_consistent(&e, "self-inverse delta");
    }

    /// Crashing at either phase boundary leaves the pre-step plan
    /// served (never a torn hybrid) and `recover()` restores full
    /// consistency.
    #[test]
    fn crash_and_recover_at_each_boundary() {
        for boundary in [PhaseBoundary::Observed, PhaseBoundary::Repaired] {
            let net = geometric(21, 40, 8.0);
            let mut e =
                ChurnEngine::build(&net.graph, MovementConfig::strict(2, Algorithm::AcLmst));
            e.enable_routing();
            let pre_plan = e.route_plan().unwrap().clone();
            let mut delta = TopologyDelta::new();
            let (a, b) = net.graph.edges().next().unwrap();
            delta.push_removed(a, b);
            let err = e
                .step_delta_faulted(&delta, FaultPlan::crash_after(boundary))
                .unwrap_err();
            assert_eq!(err, boundary);
            assert_eq!(e.in_flight(), Some(boundary));
            // I3 at the crash: the served plan is still the pre-step one.
            assert_eq!(e.route_plan().unwrap(), &pre_plan, "torn plan at {boundary:?}");
            let report = e.recover().expect("was in flight");
            assert_eq!(report.level, RepairLevel::Full);
            assert!(e.in_flight().is_none());
            assert!(e.recover().is_none(), "recover is idempotent");
            assert_engine_consistent(&e, &format!("recovery after crash at {boundary:?}"));
        }
    }

    /// Suspending at every boundary and resuming must land in exactly
    /// the state an uninterrupted step produces.
    #[test]
    fn suspended_reconcile_matches_uninterrupted() {
        let net = geometric(33, 40, 8.0);
        let mut direct = ChurnEngine::build(&net.graph, MovementConfig::strict(2, Algorithm::AcLmst));
        let mut phased = ChurnEngine::build(&net.graph, MovementConfig::strict(2, Algorithm::AcLmst));
        direct.enable_routing();
        phased.enable_routing();
        let (a, b) = net.graph.edges().next().unwrap();
        let mut delta = TopologyDelta::new();
        delta.push_removed(a, b);
        let rd = direct.step_delta(&delta);

        let pre_plan = phased.route_plan().unwrap().clone();
        let mut state = phased.begin_delta(&delta);
        // Suspended after observe: clustering and plan untouched.
        assert_eq!(phased.in_flight(), Some(PhaseBoundary::Observed));
        assert_eq!(phased.route_plan().unwrap(), &pre_plan);
        state = phased.resume(state);
        // Suspended after repair: plan still untouched.
        assert_eq!(phased.in_flight(), Some(PhaseBoundary::Repaired));
        assert_eq!(phased.route_plan().unwrap(), &pre_plan);
        let rp = phased.finish(state);

        assert_eq!(rd.level, rp.level);
        assert_eq!(rd.cost, rp.cost);
        assert_eq!(rd.valid, rp.valid);
        assert_eq!(rd.dirty_heads, rp.dirty_heads);
        assert_eq!(direct.clustering.head_of, phased.clustering.head_of);
        assert_eq!(direct.cds, phased.cds);
        assert_eq!(direct.route_plan().unwrap(), phased.route_plan().unwrap());
        assert!(phased.in_flight().is_none());
    }

    /// `reconcile_batch` is a pure batching optimisation: per-op
    /// reports and every piece of engine state (clustering, CDS,
    /// served plan content) match running the same ops one at a time
    /// — only plan-compile work is amortised.
    #[test]
    fn batch_reconcile_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(91);
        for round in 0..6 {
            let net = geometric(400 + round, 50, 8.0);
            let cfg = MovementConfig::strict(2, Algorithm::AcLmst);
            let mut seq = ChurnEngine::build(&net.graph, cfg);
            let mut bat = ChurnEngine::build(&net.graph, cfg);
            seq.enable_routing();
            bat.enable_routing();

            // A mixed op stream: random departures, then some of the
            // departed return with their original neighbor lists
            // (possibly referencing still-departed peers — the batch
            // path must filter exactly like the sequential one).
            let mut ops = Vec::new();
            let mut gone = Vec::new();
            for _ in 0..6 {
                let u = NodeId(rng.gen_range(0..50u32));
                if !gone.contains(&u) {
                    gone.push(u);
                    ops.push(BatchOp::Depart(u));
                }
            }
            for &u in gone.iter().take(3) {
                ops.push(BatchOp::Arrive(u, net.graph.neighbors(u).to_vec()));
            }

            let seq_reports: Vec<StepReport> = ops
                .iter()
                .map(|op| match op {
                    BatchOp::Depart(u) => seq.depart(*u),
                    BatchOp::Arrive(u, nbrs) => {
                        let alive: Vec<NodeId> = nbrs
                            .iter()
                            .copied()
                            .filter(|&w| !seq.is_departed(w))
                            .collect();
                        seq.arrive(*u, &alive)
                    }
                })
                .collect();
            let bat_reports = bat.reconcile_batch(&ops);

            assert_eq!(seq_reports.len(), bat_reports.len());
            for (i, (s, b)) in seq_reports.iter().zip(&bat_reports).enumerate() {
                assert_eq!(s.level, b.level, "round {round} op {i}: level");
                assert_eq!(s.orphans, b.orphans, "round {round} op {i}: orphans");
                assert_eq!(
                    s.merged_head_pairs, b.merged_head_pairs,
                    "round {round} op {i}: merges"
                );
                assert_eq!(s.cost, b.cost, "round {round} op {i}: cost");
                assert_eq!(s.valid, b.valid, "round {round} op {i}: valid");
                assert_eq!(s.dirty_heads, b.dirty_heads, "round {round} op {i}: dirty");
            }
            assert_eq!(
                TopologyDelta::between(seq.graph(), bat.graph()),
                TopologyDelta::new(),
                "round {round}: graphs diverged"
            );
            assert_eq!(seq.clustering.heads, bat.clustering.heads, "round {round}");
            assert_eq!(seq.clustering.head_of, bat.clustering.head_of, "round {round}");
            assert_eq!(
                seq.clustering.dist_to_head, bat.clustering.dist_to_head,
                "round {round}"
            );
            assert_eq!(seq.cds, bat.cds, "round {round}: cds");
            // Plan equality ignores the epoch (the one thing batching
            // legitimately changes: one publish instead of many).
            assert_eq!(
                seq.route_plan().unwrap(),
                bat.route_plan().unwrap(),
                "round {round}: served plan"
            );
            assert_engine_consistent(&bat, &format!("round {round} batched"));
        }
    }

    /// Every publish bumps the served plan's epoch; crashes do not.
    #[test]
    fn plan_epoch_is_monotonic() {
        let g = gen::path(6);
        let mut e = ChurnEngine::build(&g, MovementConfig::strict(1, Algorithm::AcLmst));
        e.enable_routing();
        let e0 = e.route_plan().unwrap().epoch();
        let mut delta = TopologyDelta::new();
        delta.push_removed(NodeId(4), NodeId(5));
        e.step_delta(&delta);
        let e1 = e.route_plan().unwrap().epoch();
        assert!(e1 > e0);
        let mut back = TopologyDelta::new();
        back.push_added(NodeId(4), NodeId(5));
        let _ = e.step_delta_faulted(&back, FaultPlan::crash_after(PhaseBoundary::Observed));
        assert_eq!(e.route_plan().unwrap().epoch(), e1, "crash must not publish");
        e.recover();
        assert!(e.route_plan().unwrap().epoch() > e1);
    }
}
