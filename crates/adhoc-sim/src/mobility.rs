//! Node mobility models and topology rebuilds.
//!
//! The paper motivates small `k` by topology churn ("in ad hoc
//! networks, network topology changes frequently") and leaves a
//! movement-sensitive maintenance policy as future work. This module
//! provides the movement substrate for those experiments, behind the
//! [`Mobility`] trait:
//!
//! * [`RandomWaypoint`] — the classic MANET benchmark model: pick a
//!   uniform waypoint, travel at a per-trip random speed, pause, repeat;
//! * [`RandomDirection`] — travel in a uniform random direction for an
//!   exponential-ish (uniform) leg duration, reflecting off the area
//!   boundary; avoids random waypoint's well-known center-density bias;
//! * [`GaussMarkov`] — temporally correlated speed/heading (AR(1) with
//!   memory `alpha`), so velocity changes smoothly instead of jumping
//!   per leg.
//!
//! All models preserve the invariant that positions stay inside the
//! deployment square.

use adhoc_graph::gen::SpatialGrid;
use adhoc_graph::geom::Point;
use adhoc_graph::graph::Graph;
use rand::Rng;

pub use adhoc_graph::delta::TopologyDelta;

/// A mobility process: advances node positions by `dt` time units.
pub trait Mobility {
    /// Moves every node, updating `positions` in place.
    fn advance<R: Rng + ?Sized>(&mut self, positions: &mut [Point], dt: f64, rng: &mut R);
}

/// Random-waypoint parameters.
#[derive(Clone, Copy, Debug)]
pub struct WaypointConfig {
    /// Side of the square deployment area.
    pub side: f64,
    /// Minimum trip speed (distance units per time unit), > 0.
    pub min_speed: f64,
    /// Maximum trip speed.
    pub max_speed: f64,
    /// Pause duration at each waypoint, in time units.
    pub pause: f64,
}

impl WaypointConfig {
    /// A typical MANET setting scaled to the paper's 100×100 area.
    pub fn default_for_side(side: f64) -> Self {
        WaypointConfig {
            side,
            min_speed: 1.0,
            max_speed: 5.0,
            pause: 2.0,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct NodeMotion {
    target: Point,
    speed: f64,
    pause_left: f64,
}

/// A random-waypoint mobility process over a set of node positions.
#[derive(Clone, Debug)]
pub struct RandomWaypoint {
    cfg: WaypointConfig,
    motions: Vec<NodeMotion>,
}

impl RandomWaypoint {
    /// Initializes motion state for `n` nodes (each immediately en
    /// route to a fresh waypoint).
    ///
    /// # Panics
    /// Panics on degenerate speeds.
    pub fn new<R: Rng + ?Sized>(n: usize, cfg: WaypointConfig, rng: &mut R) -> Self {
        assert!(
            cfg.min_speed > 0.0 && cfg.max_speed >= cfg.min_speed,
            "speeds must satisfy 0 < min <= max"
        );
        let motions = (0..n)
            .map(|_| NodeMotion {
                target: random_point(cfg.side, rng),
                speed: rng.gen_range(cfg.min_speed..=cfg.max_speed),
                pause_left: 0.0,
            })
            .collect();
        RandomWaypoint { cfg, motions }
    }

    /// Advances every node by `dt` time units, updating `positions` in
    /// place. Nodes that reach their waypoint pause, then head to a new
    /// one.
    ///
    /// # Panics
    /// Panics if `positions.len()` differs from the initialized count.
    pub fn step<R: Rng + ?Sized>(&mut self, positions: &mut [Point], dt: f64, rng: &mut R) {
        assert_eq!(positions.len(), self.motions.len());
        for (pos, m) in positions.iter_mut().zip(self.motions.iter_mut()) {
            let mut left = dt;
            while left > 0.0 {
                if m.pause_left > 0.0 {
                    let used = m.pause_left.min(left);
                    m.pause_left -= used;
                    left -= used;
                    continue;
                }
                let to_target = pos.distance(&m.target);
                let reach = m.speed * left;
                if reach >= to_target {
                    // Arrive, pause, then re-target.
                    *pos = m.target;
                    left -= if m.speed > 0.0 {
                        to_target / m.speed
                    } else {
                        left
                    };
                    m.pause_left = self.cfg.pause;
                    m.target = random_point(self.cfg.side, rng);
                    m.speed = rng.gen_range(self.cfg.min_speed..=self.cfg.max_speed);
                } else {
                    let f = reach / to_target;
                    pos.x += (m.target.x - pos.x) * f;
                    pos.y += (m.target.y - pos.y) * f;
                    left = 0.0;
                }
            }
        }
    }
}

impl Mobility for RandomWaypoint {
    fn advance<R: Rng + ?Sized>(&mut self, positions: &mut [Point], dt: f64, rng: &mut R) {
        self.step(positions, dt, rng);
    }
}

fn random_point<R: Rng + ?Sized>(side: f64, rng: &mut R) -> Point {
    Point::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side)
}

/// Reflects `x` into `[0, side]` (mirror at both walls) and flips the
/// corresponding velocity sign when a reflection happened.
fn reflect(x: &mut f64, v: &mut f64, side: f64) {
    if *x < 0.0 {
        *x = -*x;
        *v = -*v;
    }
    if *x > side {
        *x = 2.0 * side - *x;
        *v = -*v;
    }
    // One reflection suffices for the step sizes the models produce;
    // clamp defensively against extreme dt.
    *x = x.clamp(0.0, side);
}

/// Random-direction parameters.
#[derive(Clone, Copy, Debug)]
pub struct DirectionConfig {
    /// Side of the square deployment area.
    pub side: f64,
    /// Minimum leg speed, > 0.
    pub min_speed: f64,
    /// Maximum leg speed.
    pub max_speed: f64,
    /// Leg duration bounds (uniform), > 0.
    pub min_leg: f64,
    /// Upper leg duration bound.
    pub max_leg: f64,
}

impl DirectionConfig {
    /// Defaults matched to [`WaypointConfig::default_for_side`] speeds.
    pub fn default_for_side(side: f64) -> Self {
        DirectionConfig {
            side,
            min_speed: 1.0,
            max_speed: 5.0,
            min_leg: 2.0,
            max_leg: 10.0,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Leg {
    vx: f64,
    vy: f64,
    time_left: f64,
}

/// The random-direction model: straight legs in uniform directions,
/// reflecting off the boundary. Unlike random waypoint it keeps the
/// spatial node distribution (asymptotically) uniform.
#[derive(Clone, Debug)]
pub struct RandomDirection {
    cfg: DirectionConfig,
    legs: Vec<Leg>,
}

impl RandomDirection {
    /// Initializes `n` nodes, each on a fresh leg.
    ///
    /// # Panics
    /// Panics on degenerate speeds or leg durations.
    pub fn new<R: Rng + ?Sized>(n: usize, cfg: DirectionConfig, rng: &mut R) -> Self {
        assert!(
            cfg.min_speed > 0.0 && cfg.max_speed >= cfg.min_speed,
            "speeds must satisfy 0 < min <= max"
        );
        assert!(
            cfg.min_leg > 0.0 && cfg.max_leg >= cfg.min_leg,
            "leg durations must satisfy 0 < min <= max"
        );
        let legs = (0..n).map(|_| Self::fresh_leg(&cfg, rng)).collect();
        RandomDirection { cfg, legs }
    }

    fn fresh_leg<R: Rng + ?Sized>(cfg: &DirectionConfig, rng: &mut R) -> Leg {
        let theta = rng.gen::<f64>() * std::f64::consts::TAU;
        let speed = rng.gen_range(cfg.min_speed..=cfg.max_speed);
        Leg {
            vx: speed * theta.cos(),
            vy: speed * theta.sin(),
            time_left: rng.gen_range(cfg.min_leg..=cfg.max_leg),
        }
    }
}

impl Mobility for RandomDirection {
    fn advance<R: Rng + ?Sized>(&mut self, positions: &mut [Point], dt: f64, rng: &mut R) {
        assert_eq!(positions.len(), self.legs.len());
        for (pos, leg) in positions.iter_mut().zip(self.legs.iter_mut()) {
            let mut left = dt;
            while left > 0.0 {
                let used = leg.time_left.min(left);
                pos.x += leg.vx * used;
                pos.y += leg.vy * used;
                reflect(&mut pos.x, &mut leg.vx, self.cfg.side);
                reflect(&mut pos.y, &mut leg.vy, self.cfg.side);
                leg.time_left -= used;
                left -= used;
                if leg.time_left <= 0.0 {
                    *leg = Self::fresh_leg(&self.cfg, rng);
                }
            }
        }
    }
}

/// Gauss-Markov parameters.
#[derive(Clone, Copy, Debug)]
pub struct GaussMarkovConfig {
    /// Side of the square deployment area.
    pub side: f64,
    /// Memory parameter in `[0, 1]`: `1` = constant velocity, `0` =
    /// memoryless (new speed/heading each step).
    pub alpha: f64,
    /// Long-run mean speed, > 0.
    pub mean_speed: f64,
    /// Standard deviation of the speed innovation.
    pub speed_sigma: f64,
    /// Standard deviation of the heading innovation (radians).
    pub heading_sigma: f64,
    /// Update interval: velocity is re-sampled every `tick` time units.
    pub tick: f64,
}

impl GaussMarkovConfig {
    /// A moderately correlated default (`alpha = 0.85`).
    pub fn default_for_side(side: f64) -> Self {
        GaussMarkovConfig {
            side,
            alpha: 0.85,
            mean_speed: 3.0,
            speed_sigma: 1.0,
            heading_sigma: 0.4,
            tick: 1.0,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct VelocityState {
    speed: f64,
    heading: f64,
}

/// The Gauss-Markov model: speed and heading follow AR(1) processes, so
/// consecutive velocities are correlated (`alpha` controls how much).
#[derive(Clone, Debug)]
pub struct GaussMarkov {
    cfg: GaussMarkovConfig,
    states: Vec<VelocityState>,
    /// Per-node long-run mean heading; steered toward the area center
    /// when a node reflects, preventing boundary clinging.
    mean_heading: Vec<f64>,
}

impl GaussMarkov {
    /// Initializes `n` nodes at mean speed with uniform headings.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `[0, 1]` or speeds/tick degenerate.
    pub fn new<R: Rng + ?Sized>(n: usize, cfg: GaussMarkovConfig, rng: &mut R) -> Self {
        assert!((0.0..=1.0).contains(&cfg.alpha), "alpha must be in [0, 1]");
        assert!(cfg.mean_speed > 0.0, "mean speed must be positive");
        assert!(cfg.tick > 0.0, "tick must be positive");
        let states = (0..n)
            .map(|_| VelocityState {
                speed: cfg.mean_speed,
                heading: rng.gen::<f64>() * std::f64::consts::TAU,
            })
            .collect();
        let mean_heading = (0..n)
            .map(|_| rng.gen::<f64>() * std::f64::consts::TAU)
            .collect();
        GaussMarkov {
            cfg,
            states,
            mean_heading,
        }
    }

    /// A standard-normal draw (Box-Muller; two uniforms per call keeps
    /// the stream deterministic and allocation-free).
    fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Mobility for GaussMarkov {
    fn advance<R: Rng + ?Sized>(&mut self, positions: &mut [Point], dt: f64, rng: &mut R) {
        assert_eq!(positions.len(), self.states.len());
        let cfg = self.cfg;
        let a = cfg.alpha;
        let comp = (1.0 - a * a).max(0.0).sqrt();
        for ((pos, st), mh) in positions
            .iter_mut()
            .zip(self.states.iter_mut())
            .zip(self.mean_heading.iter_mut())
        {
            let mut left = dt;
            while left > 0.0 {
                let used = cfg.tick.min(left);
                let mut vx = st.speed * st.heading.cos();
                let mut vy = st.speed * st.heading.sin();
                pos.x += vx * used;
                pos.y += vy * used;
                let bounced_x = pos.x < 0.0 || pos.x > cfg.side;
                let bounced_y = pos.y < 0.0 || pos.y > cfg.side;
                reflect(&mut pos.x, &mut vx, cfg.side);
                reflect(&mut pos.y, &mut vy, cfg.side);
                if bounced_x || bounced_y {
                    st.heading = vy.atan2(vx);
                    // Re-aim the mean heading at the area center so the
                    // AR(1) drift pulls away from the wall.
                    *mh = (cfg.side / 2.0 - pos.y).atan2(cfg.side / 2.0 - pos.x);
                }
                // AR(1) updates.
                st.speed = a * st.speed
                    + (1.0 - a) * cfg.mean_speed
                    + comp * cfg.speed_sigma * Self::gaussian(rng);
                st.speed = st.speed.max(0.0);
                st.heading = a * st.heading
                    + (1.0 - a) * *mh
                    + comp * cfg.heading_sigma * Self::gaussian(rng);
                left -= used;
            }
        }
    }
}

/// Compares two unit-disk snapshots edge by edge (convenience alias of
/// [`TopologyDelta::between`], kept for callers that only hold
/// snapshots; [`MobileNetwork::step`] produces the delta incrementally
/// without any diffing).
pub fn topology_delta(before: &Graph, after: &Graph) -> TopologyDelta {
    TopologyDelta::between(before, after)
}

/// A mobile network: positions, a fixed transmission range, and the
/// induced unit-disk topology, advanced by a [`Mobility`] model
/// (random waypoint by default).
///
/// The topology lives in a [`SpatialGrid`], so each [`Self::step`]
/// updates the adjacency **incrementally** from the moved positions
/// (`O(moved · local density)`) and returns the exact edge churn as a
/// [`TopologyDelta`] — the input the incremental maintenance engine
/// (`adhoc_sim::churn`) consumes.
#[derive(Clone, Debug)]
pub struct MobileNetwork<M: Mobility = RandomWaypoint> {
    grid: SpatialGrid,
    /// Position scratch the mobility model advances each step (the
    /// grid owns the committed positions).
    next_positions: Vec<Point>,
    model: M,
}

impl MobileNetwork<RandomWaypoint> {
    /// Wraps an initial deployment in a random-waypoint process.
    pub fn new<R: Rng + ?Sized>(
        positions: Vec<Point>,
        range: f64,
        cfg: WaypointConfig,
        rng: &mut R,
    ) -> Self {
        let model = RandomWaypoint::new(positions.len(), cfg, rng);
        Self::with_model(positions, range, model)
    }
}

impl<M: Mobility> MobileNetwork<M> {
    /// Wraps an initial deployment in an arbitrary mobility model.
    pub fn with_model(positions: Vec<Point>, range: f64, model: M) -> Self {
        MobileNetwork {
            next_positions: positions.clone(),
            grid: SpatialGrid::build(&positions, range),
            model,
        }
    }

    /// Current connectivity graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        self.grid.graph()
    }

    /// Current node positions.
    #[inline]
    pub fn positions(&self) -> &[Point] {
        self.grid.positions()
    }

    /// Common transmission range.
    #[inline]
    pub fn range(&self) -> f64 {
        self.grid.range()
    }

    /// Moves every node by `dt`, updates the topology incrementally,
    /// and reports the exact edge churn.
    pub fn step<R: Rng + ?Sized>(&mut self, dt: f64, rng: &mut R) -> TopologyDelta {
        self.next_positions.copy_from_slice(self.grid.positions());
        self.model.advance(&mut self.next_positions, dt, rng);
        self.grid.update(&self.next_positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_graph::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn positions_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = WaypointConfig::default_for_side(100.0);
        let mut positions: Vec<Point> = (0..20)
            .map(|_| Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0))
            .collect();
        let mut wp = RandomWaypoint::new(20, cfg, &mut rng);
        for _ in 0..200 {
            wp.step(&mut positions, 1.0, &mut rng);
            for p in &positions {
                assert!(p.x >= 0.0 && p.x <= 100.0);
                assert!(p.y >= 0.0 && p.y <= 100.0);
            }
        }
    }

    #[test]
    fn movement_bounded_by_max_speed() {
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = WaypointConfig {
            side: 100.0,
            min_speed: 1.0,
            max_speed: 3.0,
            pause: 0.0,
        };
        let mut positions = vec![Point::new(50.0, 50.0); 5];
        let mut wp = RandomWaypoint::new(5, cfg, &mut rng);
        let before = positions.clone();
        let dt = 2.0;
        wp.step(&mut positions, dt, &mut rng);
        for (b, a) in before.iter().zip(&positions) {
            // A node may chain several trips within dt; total distance
            // traveled is still at most max_speed * dt (+ float slop).
            assert!(b.distance(a) <= cfg.max_speed * dt + 1e-9);
        }
    }

    #[test]
    fn pause_halts_motion() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = WaypointConfig {
            side: 10.0,
            min_speed: 100.0, // reach waypoint almost immediately
            max_speed: 100.0,
            pause: 1e6, // then pause ~forever
        };
        let mut positions = vec![Point::new(5.0, 5.0)];
        let mut wp = RandomWaypoint::new(1, cfg, &mut rng);
        wp.step(&mut positions, 1.0, &mut rng); // arrives, starts pausing
        let frozen = positions[0];
        wp.step(&mut positions, 10.0, &mut rng);
        assert_eq!(positions[0], frozen);
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn bad_speeds_panic() {
        let mut rng = StdRng::seed_from_u64(0);
        RandomWaypoint::new(
            1,
            WaypointConfig {
                side: 10.0,
                min_speed: 5.0,
                max_speed: 1.0,
                pause: 0.0,
            },
            &mut rng,
        );
    }

    #[test]
    fn topology_delta_counts() {
        use adhoc_graph::graph::NodeId;
        let a = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        let b = Graph::from_edges(4, &[(1, 2), (2, 3)]);
        let d = topology_delta(&a, &b);
        assert_eq!(d.added, vec![(NodeId(2), NodeId(3))]);
        assert_eq!(d.removed, vec![(NodeId(0), NodeId(1))]);
        assert_eq!(d.churn(), 2);
        assert_eq!(topology_delta(&a, &a).churn(), 0);
    }

    /// The incrementally maintained mobile topology equals a from-
    /// scratch unit-disk rebuild after every step, and the reported
    /// delta is exactly the edge difference.
    #[test]
    fn mobile_network_topology_matches_rebuild() {
        let mut rng = StdRng::seed_from_u64(91);
        let positions: Vec<Point> = (0..60)
            .map(|_| Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0))
            .collect();
        let mut net = MobileNetwork::new(
            positions,
            20.0,
            WaypointConfig::default_for_side(100.0),
            &mut rng,
        );
        for _ in 0..15 {
            let before = net.graph().clone();
            let delta = net.step(1.0, &mut rng);
            let oracle = gen::unit_disk_graph(net.positions(), net.range());
            assert_eq!(
                net.graph().edges().collect::<Vec<_>>(),
                oracle.edges().collect::<Vec<_>>()
            );
            assert_eq!(delta, topology_delta(&before, &oracle));
        }
    }

    #[test]
    fn random_direction_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(21);
        let cfg = DirectionConfig::default_for_side(100.0);
        let mut positions: Vec<Point> = (0..25)
            .map(|_| Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0))
            .collect();
        let mut model = RandomDirection::new(25, cfg, &mut rng);
        for _ in 0..300 {
            model.advance(&mut positions, 1.0, &mut rng);
            for p in &positions {
                assert!(p.x >= 0.0 && p.x <= 100.0, "x = {}", p.x);
                assert!(p.y >= 0.0 && p.y <= 100.0, "y = {}", p.y);
            }
        }
    }

    #[test]
    fn random_direction_moves_nodes() {
        let mut rng = StdRng::seed_from_u64(22);
        let cfg = DirectionConfig::default_for_side(100.0);
        let mut positions = vec![Point::new(50.0, 50.0); 10];
        let before = positions.clone();
        let mut model = RandomDirection::new(10, cfg, &mut rng);
        model.advance(&mut positions, 5.0, &mut rng);
        let moved = positions
            .iter()
            .zip(&before)
            .filter(|(a, b)| a.distance(b) > 1e-9)
            .count();
        assert_eq!(moved, 10, "random direction has no pauses");
    }

    #[test]
    #[should_panic(expected = "leg durations")]
    fn random_direction_bad_legs_panic() {
        let mut rng = StdRng::seed_from_u64(0);
        RandomDirection::new(
            1,
            DirectionConfig {
                side: 10.0,
                min_speed: 1.0,
                max_speed: 2.0,
                min_leg: 5.0,
                max_leg: 1.0,
            },
            &mut rng,
        );
    }

    #[test]
    fn gauss_markov_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(23);
        let cfg = GaussMarkovConfig::default_for_side(100.0);
        let mut positions: Vec<Point> = (0..25)
            .map(|_| Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0))
            .collect();
        let mut model = GaussMarkov::new(25, cfg, &mut rng);
        for _ in 0..300 {
            model.advance(&mut positions, 1.0, &mut rng);
            for p in &positions {
                assert!(p.x >= 0.0 && p.x <= 100.0, "x = {}", p.x);
                assert!(p.y >= 0.0 && p.y <= 100.0, "y = {}", p.y);
            }
        }
    }

    #[test]
    fn gauss_markov_alpha_one_keeps_speed_constant() {
        let mut rng = StdRng::seed_from_u64(24);
        let cfg = GaussMarkovConfig {
            side: 1000.0,
            alpha: 1.0, // full memory: velocity never changes (until a wall)
            mean_speed: 2.0,
            speed_sigma: 5.0,
            heading_sigma: 5.0,
            tick: 1.0,
        };
        let mut positions = vec![Point::new(500.0, 500.0)];
        let mut model = GaussMarkov::new(1, cfg, &mut rng);
        let before = positions[0];
        model.advance(&mut positions, 3.0, &mut rng);
        // Far from walls, three ticks at constant speed 2 ⇒ distance 6.
        assert!((before.distance(&positions[0]) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn gauss_markov_velocity_correlation_increases_with_alpha() {
        // Smoothness metric: mean per-tick displacement-direction
        // change. High alpha must turn less than low alpha.
        let turn = |alpha: f64| {
            let mut rng = StdRng::seed_from_u64(77);
            let cfg = GaussMarkovConfig {
                side: 10_000.0, // effectively wall-free
                alpha,
                mean_speed: 3.0,
                speed_sigma: 1.0,
                heading_sigma: 0.5,
                tick: 1.0,
            };
            let mut positions = vec![Point::new(5000.0, 5000.0); 20];
            let mut model = GaussMarkov::new(20, cfg, &mut rng);
            let mut prev = positions.clone();
            let mut headings: Vec<f64> = vec![f64::NAN; 20];
            let mut total = 0.0;
            let mut count = 0usize;
            for _ in 0..100 {
                model.advance(&mut positions, 1.0, &mut rng);
                for i in 0..20 {
                    let dx = positions[i].x - prev[i].x;
                    let dy = positions[i].y - prev[i].y;
                    if dx.hypot(dy) > 1e-12 {
                        let h = dy.atan2(dx);
                        if headings[i].is_finite() {
                            let mut dh = (h - headings[i]).abs();
                            if dh > std::f64::consts::PI {
                                dh = std::f64::consts::TAU - dh;
                            }
                            total += dh;
                            count += 1;
                        }
                        headings[i] = h;
                    }
                }
                prev.clone_from(&positions);
            }
            total / count as f64
        };
        assert!(
            turn(0.95) < turn(0.1),
            "alpha=0.95 should turn less than alpha=0.1"
        );
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn gauss_markov_bad_alpha_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        GaussMarkov::new(
            1,
            GaussMarkovConfig {
                alpha: 1.5,
                ..GaussMarkovConfig::default_for_side(10.0)
            },
            &mut rng,
        );
    }

    #[test]
    fn mobile_network_with_alternative_models() {
        let mut rng = StdRng::seed_from_u64(31);
        let positions: Vec<Point> = (0..30)
            .map(|_| Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0))
            .collect();
        let model = RandomDirection::new(30, DirectionConfig::default_for_side(100.0), &mut rng);
        let mut net = MobileNetwork::with_model(positions.clone(), 25.0, model);
        let mut churn = 0;
        for _ in 0..20 {
            churn += net.step(5.0, &mut rng).churn();
        }
        assert!(churn > 0);
        net.graph().check_invariants().unwrap();

        let model = GaussMarkov::new(30, GaussMarkovConfig::default_for_side(100.0), &mut rng);
        let mut net = MobileNetwork::with_model(positions, 25.0, model);
        let mut churn = 0;
        for _ in 0..20 {
            churn += net.step(5.0, &mut rng).churn();
        }
        assert!(churn > 0);
        net.graph().check_invariants().unwrap();
    }

    #[test]
    fn reflect_maps_into_range_and_flips_velocity() {
        let mut x = -3.0;
        let mut v = -1.0;
        reflect(&mut x, &mut v, 10.0);
        assert_eq!((x, v), (3.0, 1.0));
        let mut x = 12.0;
        let mut v = 2.0;
        reflect(&mut x, &mut v, 10.0);
        assert_eq!((x, v), (8.0, -2.0));
        let mut x = 5.0;
        let mut v = 1.0;
        reflect(&mut x, &mut v, 10.0);
        assert_eq!((x, v), (5.0, 1.0));
    }

    #[test]
    fn mobile_network_steps_and_reports_churn() {
        let mut rng = StdRng::seed_from_u64(77);
        let positions: Vec<Point> = (0..40)
            .map(|_| Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0))
            .collect();
        let mut net = MobileNetwork::new(
            positions,
            25.0,
            WaypointConfig::default_for_side(100.0),
            &mut rng,
        );
        let mut total_churn = 0;
        for _ in 0..20 {
            total_churn += net.step(5.0, &mut rng).churn();
        }
        assert!(total_churn > 0, "forty mobile nodes must churn some edges");
        net.graph().check_invariants().unwrap();
    }
}
