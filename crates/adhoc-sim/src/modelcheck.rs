//! Exhaustive small-universe model checking of the churn engine.
//!
//! The reconciliation state machine ([`crate::churn`]) claims four
//! invariants ([`crate::invariants`]) at every reachable state — not
//! just along the random trajectories the property tests sample. This
//! module checks that claim the way a protocol verifier would:
//! enumerate **every** interleaving of topology deltas over a small
//! universe (n ≤ 6, k ≤ 2), cross each delta with **every** crash
//! point ([`FaultPlan`] at each phase boundary, plus no fault), run
//! the engine transition, and check all four invariants in the
//! resulting state. Reached states are deduplicated by a structural
//! fingerprint so the exploration is a breadth-first search of the
//! actual state graph, not a tree of redundant paths.
//!
//! Universes are deliberately tiny: the invariants quantify over all
//! node pairs, cold rebuilds, and route queries, so each state check
//! is a full equivalence audit. The paper's own argument (§3.3) is
//! per-event and local; exhausting a 5-node universe with every
//! 1-edge and 2-edge delta, every departure and arrival order, and
//! every crash point covers the argument's entire case split — head
//! loss, gateway loss, bystander loss, merge, strand, disconnect,
//! join-on-return, elect-on-return — many times over.
//!
//! On violation the checker stops and returns a [`Counterexample`]
//! whose `Display` is a **replayable script**: the universe header,
//! the exact delta + fault of every step from the initial state, and
//! the violated invariant. Paste it into a regression test verbatim.

use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

use crate::churn::{ChurnEngine, FaultPlan, PhaseBoundary};
use crate::invariants::{self, Violation};
use crate::movement::MovementConfig;
use adhoc_cluster::pipeline::Algorithm;
use adhoc_cluster::routing::RoutePlan;
use adhoc_graph::delta::TopologyDelta;
use adhoc_graph::graph::{Graph, NodeId};

/// The closed world a check explores: a fixed node set, an initial
/// topology, and the alphabet of deltas the adversary may play.
#[derive(Clone, Debug)]
pub struct Universe {
    /// Node count (keep ≤ 6: every state pays a full cold-rebuild
    /// equivalence audit).
    pub n: usize,
    /// Clustering radius.
    pub k: u32,
    /// Maintained gateway algorithm.
    pub algorithm: Algorithm,
    /// Initial edge set.
    pub initial_edges: Vec<(u32, u32)>,
    /// Edges the adversary may flip (add if absent, remove if
    /// present) — one per step, or two per step when `composite` is
    /// on.
    pub flip: Vec<(u32, u32)>,
    /// Nodes the adversary may switch off (§3.3 departures).
    pub departures: Vec<u32>,
    /// Also play §3.3 arrivals: a departed node from `departures` may
    /// switch back **on**, re-attaching to its alive neighbors from
    /// `initial_edges` (the radio links geometry would restore). Every
    /// arrival runs the full reconcile, including the head-set row
    /// splice when the newcomer elects itself.
    pub arrivals: bool,
    /// Also play composite deltas: pairs of flips in one delta, and
    /// self-inverse deltas (remove + re-add the same edge in one
    /// burst — a topology no-op that still exercises the machine).
    pub composite: bool,
    /// Compile and maintain a route plan (exercises I3 end to end).
    pub routing: bool,
}

impl Universe {
    /// A path universe: nodes 0..n-1 in a line, every path edge
    /// flippable, plus one chord making and breaking a cycle; the two
    /// ends and the middle may depart — and come back (arrivals are in
    /// the alphabet by default).
    pub fn path(n: usize, k: u32, algorithm: Algorithm) -> Self {
        assert!(n >= 3, "a path universe needs at least 3 nodes");
        let initial: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let mut flip = initial.clone();
        flip.push((0, n as u32 - 1)); // the cycle chord
        Universe {
            n,
            k,
            algorithm,
            initial_edges: initial,
            flip,
            departures: vec![0, n as u32 / 2, n as u32 - 1],
            arrivals: true,
            composite: false,
            routing: true,
        }
    }

    fn build_engine(&self) -> ChurnEngine {
        let g = Graph::from_edges(self.n, &self.initial_edges);
        let mut engine = ChurnEngine::build(&g, MovementConfig::strict(self.k, self.algorithm));
        if self.routing {
            engine.enable_routing();
        }
        engine
    }
}

/// Exploration bounds and hooks.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// The universe to exhaust.
    pub universe: Universe,
    /// Maximum number of adversary steps from the initial state.
    /// Exploration to this depth is still *exhaustive*: every delta
    /// sequence of at most this length is covered (modulo state
    /// dedup, which only removes provably redundant suffixes).
    pub max_depth: usize,
    /// Abort (and mark the report truncated) after this many distinct
    /// states.
    pub max_states: usize,
    /// Abort (and mark the report truncated) when exceeded.
    pub time_budget: Option<Duration>,
    /// Empty-delta fixpoint probes per visited state (invariant I2's
    /// stability clause). 0 disables.
    pub stability_steps: usize,
    /// Mutation-testing hook: corrupt the engine after every
    /// transition. A correct checker must then produce a
    /// counterexample (see the `mutation_smoke` test).
    pub mutate_after_step: Option<fn(&mut ChurnEngine)>,
}

impl CheckConfig {
    /// Defaults sized for debug-build test runs: depth 4, generous
    /// state cap, one-minute budget, one stability probe per state.
    pub fn quick(universe: Universe) -> Self {
        CheckConfig {
            universe,
            max_depth: 4,
            max_states: 100_000,
            time_budget: Some(Duration::from_secs(120)),
            stability_steps: 1,
            mutate_after_step: None,
        }
    }
}

/// One adversary move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Flip one edge (add if absent, remove if present).
    Flip(u32, u32),
    /// Flip two distinct edges in a single delta.
    FlipPair((u32, u32), (u32, u32)),
    /// Remove and re-add the same (present) edge in a single delta.
    SelfInverse(u32, u32),
    /// Switch a node off.
    Depart(u32),
    /// Switch a departed node back on (§3.3 arrival), re-attaching it
    /// to its alive initial-topology neighbors.
    Arrive(u32),
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Flip(a, b) => write!(f, "flip {a}-{b}"),
            Action::FlipPair((a, b), (c, d)) => write!(f, "flip {a}-{b} + flip {c}-{d}"),
            Action::SelfInverse(a, b) => write!(f, "self-inverse {a}-{b}"),
            Action::Depart(u) => write!(f, "depart {u}"),
            Action::Arrive(u) => write!(f, "arrive {u}"),
        }
    }
}

/// One step of a counterexample trace: the move, the delta it
/// produced, and the injected crash (if any — a crashed step is
/// always followed by `recover()` before the next move).
#[derive(Clone, Debug)]
pub struct TraceStep {
    /// The adversary move.
    pub action: Action,
    /// The concrete edge delta the move produced (empty for `Depart`,
    /// whose delta is the isolating one).
    pub delta: TopologyDelta,
    /// The crash injected at this step, if any.
    pub fault: Option<PhaseBoundary>,
}

/// A violated invariant plus the exact script that reaches it.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The universe the script runs in.
    pub universe: Universe,
    /// The moves from the initial state, in order.
    pub trace: Vec<TraceStep>,
    /// Every invariant violation observed in the final state.
    pub violations: Vec<Violation>,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counterexample (replayable script):")?;
        writeln!(
            f,
            "  universe: n={} k={} algorithm={} routing={}",
            self.universe.n, self.universe.k, self.universe.algorithm, self.universe.routing
        )?;
        writeln!(f, "  initial edges: {:?}", self.universe.initial_edges)?;
        for (i, step) in self.trace.iter().enumerate() {
            write!(f, "  step {}: {}", i + 1, step.action)?;
            if !step.delta.added.is_empty() || !step.delta.removed.is_empty() {
                write!(
                    f,
                    "  (delta: +{:?} -{:?})",
                    step.delta.added, step.delta.removed
                )?;
            }
            match step.fault {
                Some(b) => writeln!(f, "  [crash after {b:?}, then recover]")?,
                None => writeln!(f)?,
            }
        }
        for v in &self.violations {
            writeln!(f, "  violated {v}")?;
        }
        Ok(())
    }
}

/// What an exploration covered.
#[derive(Clone, Debug)]
pub struct Report {
    /// Distinct states visited (after fingerprint dedup).
    pub states: usize,
    /// Engine transitions executed (state × action × fault).
    pub transitions: usize,
    /// Deepest step count reached.
    pub deepest: usize,
    /// True when a bound (states or time) cut the exploration short.
    /// A report with `truncated == false` covered **every** reachable
    /// state up to `max_depth` moves.
    pub truncated: bool,
    /// The first violation found, if any (exploration stops on it).
    pub violation: Option<Counterexample>,
}

/// Structural fingerprint of an engine state — everything durable the
/// invariants quantify over. The route plan is excluded: I1 pins it to
/// a pure function of the rest, so including it would only split
/// states the invariants already prove equivalent. The epoch is
/// excluded for the same reason (it is a publication counter, not
/// state).
fn fingerprint(e: &ChurnEngine) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    let g = e.graph();
    for (a, b) in g.edges() {
        (a.index() as u64, b.index() as u64).hash(&mut h);
    }
    0xB0u8.hash(&mut h);
    for v in g.nodes() {
        e.is_departed(v).hash(&mut h);
        e.clustering.head_of[v.index()].index().hash(&mut h);
        e.clustering.dist_to_head[v.index()].hash(&mut h);
    }
    0xB1u8.hash(&mut h);
    for &hd in &e.clustering.heads {
        hd.index().hash(&mut h);
    }
    0xB2u8.hash(&mut h);
    for &hd in &e.cds.heads {
        hd.index().hash(&mut h);
    }
    for &gw in &e.cds.gateways {
        gw.index().hash(&mut h);
    }
    e.is_valid().hash(&mut h);
    h.finish()
}

fn enabled_actions(u: &Universe, e: &ChurnEngine) -> Vec<Action> {
    let alive = |x: u32| !e.is_departed(NodeId(x));
    let mut out = Vec::new();
    for &(a, b) in &u.flip {
        if alive(a) && alive(b) {
            out.push(Action::Flip(a, b));
        }
    }
    if u.composite {
        for (i, &(a, b)) in u.flip.iter().enumerate() {
            for &(c, d) in &u.flip[i + 1..] {
                if alive(a) && alive(b) && alive(c) && alive(d) {
                    out.push(Action::FlipPair((a, b), (c, d)));
                }
            }
        }
        for &(a, b) in &u.flip {
            if alive(a) && alive(b) && e.graph().has_edge(NodeId(a), NodeId(b)) {
                out.push(Action::SelfInverse(a, b));
            }
        }
    }
    for &d in &u.departures {
        if alive(d) {
            out.push(Action::Depart(d));
        } else if u.arrivals {
            out.push(Action::Arrive(d));
        }
    }
    out
}

/// The attach edges an [`Action::Arrive`] produces: the arriving
/// node's `initial_edges` neighbors that are currently alive.
fn arrival_neighbors(u: &Universe, e: &ChurnEngine, node: u32) -> Vec<NodeId> {
    u.initial_edges
        .iter()
        .filter_map(|&(a, b)| {
            if a == node {
                Some(NodeId(b))
            } else if b == node {
                Some(NodeId(a))
            } else {
                None
            }
        })
        .filter(|&w| !e.is_departed(w))
        .collect()
}

fn flip_into(delta: &mut TopologyDelta, g: &Graph, a: u32, b: u32) {
    if g.has_edge(NodeId(a), NodeId(b)) {
        delta.push_removed(NodeId(a), NodeId(b));
    } else {
        delta.push_added(NodeId(a), NodeId(b));
    }
}

fn action_delta(action: Action, u: &Universe, e: &ChurnEngine) -> TopologyDelta {
    let g = e.graph();
    let mut delta = TopologyDelta::new();
    match action {
        Action::Flip(a, b) => flip_into(&mut delta, g, a, b),
        Action::FlipPair((a, b), (c, d)) => {
            flip_into(&mut delta, g, a, b);
            flip_into(&mut delta, g, c, d);
        }
        Action::SelfInverse(a, b) => {
            delta.push_removed(NodeId(a), NodeId(b));
            delta.push_added(NodeId(a), NodeId(b));
        }
        Action::Depart(_) => {}
        Action::Arrive(n) => {
            for w in arrival_neighbors(u, e, n) {
                delta.push_added(NodeId(n), w);
            }
        }
    }
    delta.normalize();
    delta
}

/// Runs one engine transition (step or departure, with optional crash
/// and mandatory recovery) and audits every invariant in the state it
/// lands in. Returns the violations, if any.
fn transition(
    engine: &mut ChurnEngine,
    action: Action,
    delta: &TopologyDelta,
    fault: Option<PhaseBoundary>,
    cfg: &CheckConfig,
) -> Vec<Violation> {
    let pre_plan: Option<RoutePlan> = engine.route_plan().cloned();
    let pre_graph = engine.graph().clone();
    let (mut violations, soft) = invariants::capturing(|| {
        let mut violations = Vec::new();
        let faults = match fault {
            Some(b) => FaultPlan::crash_after(b),
            None => FaultPlan::none(),
        };
        let outcome = match action {
            Action::Depart(u) => engine.depart_faulted(NodeId(u), faults),
            Action::Arrive(u) => {
                // The attach list is re-derived from the recorded delta
                // so a replayed counterexample uses the exact edges.
                let neighbors: Vec<NodeId> = delta
                    .added
                    .iter()
                    .map(|&(a, b)| if a == NodeId(u) { b } else { a })
                    .collect();
                engine.arrive_faulted(NodeId(u), &neighbors, faults)
            }
            _ => engine.step_delta_faulted(delta, faults),
        };
        match outcome {
            Ok(report) => {
                if report.valid != engine.is_valid() {
                    violations.push(Violation {
                        invariant: "I2",
                        detail: "report verdict disagrees with engine verdict".into(),
                    });
                }
                let delta_empty = matches!(action, Action::Flip(..) | Action::FlipPair(..))
                    && delta.is_empty();
                violations.extend(invariants::check_cost_accounting(
                    &report,
                    delta_empty,
                    engine.clustering.heads.len(),
                ));
            }
            Err(boundary) => {
                // I3 at the crash point: the served plan must still be
                // the pre-step one, byte for byte.
                violations.extend(invariants::check_query_consistency(
                    engine,
                    pre_plan.as_ref(),
                    std::slice::from_ref(&pre_graph),
                ));
                if engine.in_flight() != Some(boundary) {
                    violations.push(Violation {
                        invariant: "I3",
                        detail: format!("crash at {boundary:?} not flagged in-flight"),
                    });
                }
                if engine.recover().is_none() {
                    violations.push(Violation {
                        invariant: "I2",
                        detail: "recover() found nothing in flight after a crash".into(),
                    });
                }
            }
        }
        if let Some(mutate) = cfg.mutate_after_step {
            mutate(engine);
        }
        violations.extend(invariants::check_equivalence(engine));
        violations.extend(invariants::check_convergence(engine, cfg.stability_steps));
        violations.extend(invariants::check_query_consistency(
            engine,
            pre_plan.as_ref(),
            std::slice::from_ref(&pre_graph),
        ));
        violations
    });
    violations.extend(soft.into_iter().map(|s| Violation {
        invariant: "soft",
        detail: s,
    }));
    violations
}

/// Exhausts the universe: BFS over reachable engine states, every
/// enabled action × every fault at every state, all invariants checked
/// after every transition. Stops at the first violation.
pub fn check(cfg: &CheckConfig) -> Report {
    let start = Instant::now();
    let universe = &cfg.universe;
    let faults: &[Option<PhaseBoundary>] = &[
        None,
        Some(PhaseBoundary::Observed),
        Some(PhaseBoundary::Repaired),
    ];

    let root = universe.build_engine();
    let mut report = Report {
        states: 0,
        transitions: 0,
        deepest: 0,
        truncated: false,
        violation: None,
    };

    // Audit the initial state before exploring from it.
    let (root_violations, soft) = invariants::capturing(|| invariants::check_all(&root));
    let mut root_violations = root_violations;
    root_violations.extend(soft.into_iter().map(|s| Violation {
        invariant: "soft",
        detail: s,
    }));
    if !root_violations.is_empty() {
        report.violation = Some(Counterexample {
            universe: universe.clone(),
            trace: Vec::new(),
            violations: root_violations,
        });
        return report;
    }

    let mut visited: HashSet<u64> = HashSet::new();
    visited.insert(fingerprint(&root));
    let mut frontier: VecDeque<(ChurnEngine, Vec<TraceStep>)> = VecDeque::new();
    frontier.push_back((root, Vec::new()));
    report.states = 1;

    while let Some((state, trace)) = frontier.pop_front() {
        if trace.len() >= cfg.max_depth {
            continue;
        }
        for action in enabled_actions(universe, &state) {
            let delta = action_delta(action, universe, &state);
            for &fault in faults {
                if let Some(budget) = cfg.time_budget {
                    if start.elapsed() > budget {
                        report.truncated = true;
                        return report;
                    }
                }
                let mut next = state.clone();
                let violations = transition(&mut next, action, &delta, fault, cfg);
                report.transitions += 1;
                let mut step_trace = trace.clone();
                step_trace.push(TraceStep {
                    action,
                    delta: delta.clone(),
                    fault,
                });
                report.deepest = report.deepest.max(step_trace.len());
                if !violations.is_empty() {
                    report.violation = Some(Counterexample {
                        universe: universe.clone(),
                        trace: step_trace,
                        violations,
                    });
                    return report;
                }
                if visited.insert(fingerprint(&next)) {
                    if report.states >= cfg.max_states {
                        report.truncated = true;
                        return report;
                    }
                    report.states += 1;
                    frontier.push_back((next, step_trace));
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tiniest universe end to end: mostly a smoke test that the
    /// checker terminates and dedups (the integration suite runs the
    /// real sweeps).
    #[test]
    fn three_node_universe_is_clean() {
        let mut cfg = CheckConfig::quick(Universe::path(3, 1, Algorithm::AcLmst));
        cfg.max_depth = 3;
        let report = check(&cfg);
        assert!(report.violation.is_none(), "{}", report.violation.unwrap());
        assert!(!report.truncated);
        assert!(report.states > 1);
        assert!(report.transitions > report.states);
    }

    #[test]
    fn fingerprint_distinguishes_departures() {
        let u = Universe::path(3, 1, Algorithm::AcLmst);
        let a = u.build_engine();
        let mut b = u.build_engine();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        b.depart(NodeId(2));
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }
}
