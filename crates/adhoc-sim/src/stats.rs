//! Message and time accounting.

use crate::engine::Time;
use crate::message::MessageKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Protocol phases, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Phase {
    NeighborDiscovery,
    Clustering,
    ClusterHello,
    HeadAnnounce,
    DistVector,
    Adjacency,
    SetExchange,
    GatewayMarking,
    /// Post-protocol maintenance: the churn engine's
    /// observe/repair/publish reconcile loop (traced, never part of
    /// the distributed protocol's message rounds).
    Reconcile,
}

impl Phase {
    /// All phases in order.
    pub const ALL: [Phase; 9] = [
        Phase::NeighborDiscovery,
        Phase::Clustering,
        Phase::ClusterHello,
        Phase::HeadAnnounce,
        Phase::DistVector,
        Phase::Adjacency,
        Phase::SetExchange,
        Phase::GatewayMarking,
        Phase::Reconcile,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::NeighborDiscovery => "neighbor-discovery",
            Phase::Clustering => "clustering",
            Phase::ClusterHello => "cluster-hello",
            Phase::HeadAnnounce => "head-announce",
            Phase::DistVector => "dist-vector",
            Phase::Adjacency => "adjacency",
            Phase::SetExchange => "set-exchange",
            Phase::GatewayMarking => "gateway-marking",
            Phase::Reconcile => "reconcile",
        }
    }
}

/// Per-run accounting: transmissions by phase and by message kind,
/// plus the simulated makespan.
///
/// One *transmission* is one node keying its radio once — a broadcast
/// to all neighbors counts 1, a unicast hop counts 1. This is the unit
/// the paper's future-work discussion ("communication overhead
/// increases with the growth of the value of k") cares about.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Stats {
    per_phase: BTreeMap<Phase, u64>,
    per_kind: BTreeMap<MessageKind, u64>,
    /// Ticks from start to the end of the last phase.
    pub makespan: Time,
    /// Clustering rounds executed.
    pub rounds: u32,
}

impl Stats {
    /// Records one transmission.
    pub fn record(&mut self, phase: Phase, kind: MessageKind) {
        *self.per_phase.entry(phase).or_insert(0) += 1;
        *self.per_kind.entry(kind).or_insert(0) += 1;
    }

    /// Transmissions in `phase`.
    pub fn phase_total(&self, phase: Phase) -> u64 {
        self.per_phase.get(&phase).copied().unwrap_or(0)
    }

    /// Transmissions of `kind`.
    pub fn kind_total(&self, kind: MessageKind) -> u64 {
        self.per_kind.get(&kind).copied().unwrap_or(0)
    }

    /// All transmissions.
    pub fn total(&self) -> u64 {
        self.per_phase.values().sum()
    }

    /// A compact multi-line report.
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "total transmissions: {}", self.total());
        let _ = writeln!(
            out,
            "makespan: {} ticks, {} rounds",
            self.makespan, self.rounds
        );
        for p in Phase::ALL {
            let t = self.phase_total(p);
            if t > 0 {
                let _ = writeln!(out, "  {:<20} {t}", p.name());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = Stats::default();
        s.record(Phase::Clustering, MessageKind::Contend);
        s.record(Phase::Clustering, MessageKind::Declare);
        s.record(Phase::GatewayMarking, MessageKind::MarkToken);
        assert_eq!(s.phase_total(Phase::Clustering), 2);
        assert_eq!(s.phase_total(Phase::Adjacency), 0);
        assert_eq!(s.kind_total(MessageKind::Contend), 1);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn report_mentions_active_phases_only() {
        let mut s = Stats::default();
        s.record(Phase::NeighborDiscovery, MessageKind::Hello);
        let r = s.report();
        assert!(r.contains("total transmissions: 1"));
        assert!(r.contains("neighbor-discovery"));
        assert!(!r.contains("set-exchange"));
    }
}
