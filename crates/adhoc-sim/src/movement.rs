//! Movement-sensitive maintenance of the connected k-hop clustering —
//! the policy the paper's §5 leaves as future work.
//!
//! §3.3 handles a node that *disappears*; under continuous movement the
//! structure instead degrades gradually: members drift out of their
//! head's k-ball, gateway paths stretch until the backbone disconnects,
//! and clusterheads drift toward each other until the k-hop
//! independence that bounds the cluster count is gone. Re-running the
//! whole pipeline every beacon period fixes all of that at full price;
//! this module repairs *only what movement actually broke*, choosing
//! the cheapest sufficient level each step:
//!
//! * [`RepairLevel::None`] — the structure still verifies; do nothing.
//! * [`RepairLevel::Reaffiliate`] — some members lost their ≤k-hop path
//!   to their head; each re-joins the nearest surviving head (ID
//!   tie-break). Heads and gateways are untouched.
//! * [`RepairLevel::Gateways`] — the CDS no longer induces a connected
//!   subgraph; the gateway phase re-runs on the *unchanged* clusterhead
//!   set (§3.3's "re-run the gateway selection process", triggered by
//!   movement instead of departure).
//! * [`RepairLevel::Full`] — re-election is unavoidable: a member has
//!   no head within `k` hops, or two heads drifted within
//!   `merge_distance` hops of each other (the k-hop generalization of
//!   the "least cluster change" rule of Chiang et al., which re-elects
//!   only on coverage loss or head adjacency).
//!
//! Every step is charged a cost in *node-rounds* — the number of nodes
//! that would have had to transmit/recompute in a distributed
//! realization — so the policy can be compared against the
//! rebuild-every-step baseline quantitatively (`bin/movement` in
//! `adhoc-bench` regenerates that comparison).
//!
//! The engine behind this policy is the unified incremental
//! maintenance stack of [`crate::churn`]: a movement step is a
//! [`TopologyDelta`](adhoc_graph::delta::TopologyDelta), only the
//! clusterheads whose `2k+1` ball the delta touched are re-swept, and
//! the evaluation refresh reuses every clean head's labels and
//! canonical paths (`pipeline::update_all`). [`MaintainedCds`] is that
//! engine under its historical name.
//!
//! ```
//! use adhoc_sim::movement::{MaintainedCds, MovementConfig, RepairLevel};
//! use adhoc_cluster::pipeline::Algorithm;
//! use adhoc_graph::gen;
//!
//! let g = gen::grid(4, 6);
//! let mut m = MaintainedCds::build(&g, MovementConfig::strict(2, Algorithm::AcLmst));
//! // Nothing moved: the policy verifies and does nothing.
//! let report = m.step(&g);
//! assert_eq!(report.level, RepairLevel::None);
//! assert_eq!(report.cost, 0);
//! ```

use adhoc_cluster::pipeline::Algorithm;

/// The movement-sensitive maintenance engine — the
/// [`ChurnEngine`](crate::churn::ChurnEngine) under the name this
/// module has always exported.
pub use crate::churn::ChurnEngine as MaintainedCds;

/// Tuning knobs of the movement-sensitive policy.
#[derive(Clone, Copy, Debug)]
pub struct MovementConfig {
    /// Clustering radius `k`.
    pub k: u32,
    /// Gateway algorithm used by rebuilds and gateway repairs.
    pub algorithm: Algorithm,
    /// Two clusterheads within this many hops of each other trigger a
    /// full re-election. The paper's invariant is pairwise distance
    /// ≥ k+1, so `merge_distance = k` enforces it strictly; smaller
    /// values tolerate drift and re-elect less often.
    pub merge_distance: u32,
    /// The most expensive repair the engine may run. [`RepairLevel::Full`]
    /// (the default) is the always-repairing policy every equivalence
    /// invariant is stated for; lower caps deliberately under-repair so
    /// the resilience bench can measure what each §3.3 rule is worth.
    /// A capped engine is honest about the damage it leaves behind:
    /// members it cannot re-home are parked on the departed sentinel
    /// (unroutable, retried whenever a later delta touches a label
    /// ball), the validity verdict reports `false`, and the published
    /// route plan degrades instead of lying.
    pub max_level: RepairLevel,
}

impl MovementConfig {
    /// Strict policy: re-elect as soon as the paper's k-hop
    /// independence is violated.
    pub fn strict(k: u32, algorithm: Algorithm) -> Self {
        MovementConfig {
            k,
            algorithm,
            merge_distance: k,
            max_level: RepairLevel::Full,
        }
    }

    /// Tolerant policy: heads may approach to within `merge_distance`
    /// (< k) hops before a re-election is forced.
    ///
    /// # Panics
    /// Panics if `merge_distance > k`.
    pub fn tolerant(k: u32, algorithm: Algorithm, merge_distance: u32) -> Self {
        assert!(merge_distance <= k, "merge distance beyond k is meaningless");
        MovementConfig {
            k,
            algorithm,
            merge_distance,
            max_level: RepairLevel::Full,
        }
    }

    /// Caps the repair policy at `max_level` (see
    /// [`MovementConfig::max_level`]).
    pub fn capped(mut self, max_level: RepairLevel) -> Self {
        self.max_level = max_level;
        self
    }
}

/// The repair level a maintenance step chose.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RepairLevel {
    /// Structure still valid; nothing done.
    None,
    /// Members re-affiliated to surviving heads.
    Reaffiliate,
    /// Gateway phase re-run on the unchanged head set.
    Gateways,
    /// Full re-clustering.
    Full,
}

impl RepairLevel {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            RepairLevel::None => "none",
            RepairLevel::Reaffiliate => "reaffiliate",
            RepairLevel::Gateways => "gateways",
            RepairLevel::Full => "full",
        }
    }

    /// Parses a [`Self::name`] back to the level (CLI flags).
    pub fn parse(s: &str) -> Option<RepairLevel> {
        match s {
            "none" => Some(RepairLevel::None),
            "reaffiliate" => Some(RepairLevel::Reaffiliate),
            "gateways" => Some(RepairLevel::Gateways),
            "full" => Some(RepairLevel::Full),
            _ => None,
        }
    }
}

/// What one maintenance step did.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// The chosen repair level.
    pub level: RepairLevel,
    /// Members that had lost their ≤k-hop head path.
    pub orphans: usize,
    /// Head pairs found within `merge_distance` hops (0 unless the step
    /// escalated to a full rebuild for that reason, or a capped policy
    /// left a detected merge in place).
    pub merged_head_pairs: usize,
    /// Cost in node-rounds (see module docs).
    pub cost: usize,
    /// Whether the post-repair structure verifies as a k-hop CDS over
    /// the surviving nodes (false only when the network itself is
    /// disconnected).
    pub valid: bool,
    /// Clusterheads whose `2k+1` ball the step's topology delta
    /// touched — the heads the incremental engine re-swept (equals the
    /// head count when the engine fell back to a full evaluation).
    pub dirty_heads: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::{MobileNetwork, WaypointConfig};
    use adhoc_graph::connectivity;
    use adhoc_graph::gen::{self, GeometricConfig};
    use adhoc_graph::graph::{Graph, NodeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geometric(seed: u64, n: usize, d: f64) -> gen::GeometricNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        gen::geometric(&GeometricConfig::new(n, 100.0, d), &mut rng)
    }

    #[test]
    fn no_change_means_no_repair() {
        let net = geometric(1, 80, 8.0);
        let mut m = MaintainedCds::build(&net.graph, MovementConfig::strict(2, Algorithm::AcLmst));
        let r = m.step(&net.graph);
        assert_eq!(r.level, RepairLevel::None);
        assert_eq!(r.cost, 0);
        assert_eq!(r.orphans, 0);
        assert!(r.valid);
    }

    #[test]
    fn structure_stays_valid_under_waypoint_motion() {
        let mut rng = StdRng::seed_from_u64(42);
        let net = geometric(42, 100, 10.0);
        let cfg = WaypointConfig {
            side: 100.0,
            min_speed: 0.2,
            max_speed: 1.0,
            pause: 1.0,
        };
        let model = crate::mobility::RandomWaypoint::new(100, cfg, &mut rng);
        let mut mobile = MobileNetwork::with_model(net.positions.clone(), net.range, model);
        let mut m =
            MaintainedCds::build(mobile.graph(), MovementConfig::strict(2, Algorithm::AcLmst));
        let mut seen_nontrivial = false;
        for _ in 0..40 {
            mobile.step(1.0, &mut rng);
            let r = m.step(mobile.graph());
            if r.level != RepairLevel::None {
                seen_nontrivial = true;
            }
            if connectivity::is_connected(mobile.graph()) {
                assert!(r.valid, "maintained CDS invalid on a connected graph");
                m.cds.verify(mobile.graph(), 2).unwrap();
                m.clustering.verify_coverage(mobile.graph()).unwrap();
            }
        }
        assert!(seen_nontrivial, "40 mobile steps should need some repair");
    }

    #[test]
    fn orphan_triggers_reaffiliation_not_rebuild() {
        // k = 1 on 0-2, 0-3, 3-1, 1-4, 4-5: lowest-ID elects heads
        // {0, 1, 5} with 2 affiliated to 0. Node 2 then "moves": its
        // link to 0 breaks and one to 1 appears. Its head is out of
        // reach (orphan) but head 1 is adjacent, so re-affiliation
        // alone repairs the structure — no re-election, no gateway
        // change.
        let mut g = Graph::from_edges(6, &[(0, 2), (0, 3), (3, 1), (1, 4), (4, 5)]);
        let mut m = MaintainedCds::build(&g, MovementConfig::strict(1, Algorithm::AcLmst));
        assert_eq!(m.clustering.heads, vec![NodeId(0), NodeId(1), NodeId(5)]);
        assert_eq!(m.clustering.head_of(NodeId(2)), NodeId(0));
        g.remove_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(1), NodeId(2));
        let r = m.step(&g);
        assert_eq!(r.level, RepairLevel::Reaffiliate);
        assert_eq!(r.orphans, 1);
        assert!(r.valid);
        assert_eq!(m.clustering.head_of(NodeId(2)), NodeId(1));
    }

    #[test]
    fn backbone_break_triggers_gateway_repair() {
        // Two clusters joined by two parallel member paths; break the
        // one the gateways use — heads keep their members but the CDS
        // disconnects, so only the gateway phase re-runs.
        //   0-1-2-3  and 0-4-5-3 (k=1 heads: 0 and 3)
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (5, 3)]);
        let mut m = MaintainedCds::build(&g, MovementConfig::strict(1, Algorithm::AcLmst));
        let heads = m.clustering.heads.clone();
        let gw_before: Vec<NodeId> = m.cds.gateways.clone();
        assert!(!gw_before.is_empty());
        // Remove an interior edge of the gateway path.
        let mut g2 = g.clone();
        let (a, b) = {
            // The realized path passes through the lower-ID branch
            // (1, 2); break it in the middle.
            (NodeId(1), NodeId(2))
        };
        assert!(g2.remove_edge(a, b));
        let r = m.step(&g2);
        assert!(
            r.level == RepairLevel::Gateways || r.level == RepairLevel::Reaffiliate,
            "unexpected level {:?}",
            r.level
        );
        assert!(r.valid);
        assert_eq!(m.clustering.heads, heads, "heads must not change");
        m.cds.verify(&g2, 1).unwrap();
    }

    #[test]
    fn head_merge_forces_full_rebuild() {
        // Two k=2 clusters far apart, then a shortcut edge brings the
        // heads within 2 hops: strict policy must re-elect.
        let g = gen::path(12);
        let mut m = MaintainedCds::build(&g, MovementConfig::strict(2, Algorithm::AcLmst));
        let heads = m.clustering.heads.clone();
        assert!(heads.len() >= 2);
        let mut g2 = g.clone();
        // Connect the two heads directly.
        g2.add_edge(heads[0], heads[1]);
        let r = m.step(&g2);
        assert_eq!(r.level, RepairLevel::Full);
        assert!(r.merged_head_pairs >= 1);
        assert!(r.valid);
        m.clustering.verify(&g2).unwrap();
    }

    #[test]
    fn tolerant_policy_defers_merges() {
        let g = gen::path(12);
        let strict = MaintainedCds::build(&g, MovementConfig::strict(2, Algorithm::AcLmst));
        let heads = strict.clustering.heads.clone();
        let mut g2 = g.clone();
        g2.add_edge(heads[0], heads[1]);
        // merge_distance = 0 never fires on distance-1 adjacency? No:
        // distance 1 > 0, so the tolerant policy accepts it.
        let mut tolerant =
            MaintainedCds::build(&g, MovementConfig::tolerant(2, Algorithm::AcLmst, 0));
        let r = tolerant.step(&g2);
        assert_ne!(r.level, RepairLevel::Full);
        assert!(r.valid, "structure must still verify as a 2-hop CDS");
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn tolerant_beyond_k_panics() {
        MovementConfig::tolerant(2, Algorithm::AcLmst, 3);
    }

    #[test]
    fn movement_policy_cheaper_than_rebuild() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = geometric(7, 100, 10.0);
        let cfg = WaypointConfig {
            side: 100.0,
            min_speed: 0.1,
            max_speed: 0.5,
            pause: 2.0,
        };
        let model = crate::mobility::RandomWaypoint::new(100, cfg, &mut rng);
        let mut mobile = MobileNetwork::with_model(net.positions.clone(), net.range, model);
        let mut m =
            MaintainedCds::build(mobile.graph(), MovementConfig::strict(2, Algorithm::AcLmst));
        let mut policy_cost = 0usize;
        let mut rebuild_cost = 0usize;
        for _ in 0..30 {
            mobile.step(1.0, &mut rng);
            rebuild_cost += m.rebuild_cost(mobile.graph());
            policy_cost += m.step(mobile.graph()).cost;
        }
        assert!(
            policy_cost < rebuild_cost / 2,
            "movement-sensitive cost {policy_cost} not well below rebuild {rebuild_cost}"
        );
    }

    #[test]
    fn levels_order_and_names() {
        assert!(RepairLevel::None < RepairLevel::Reaffiliate);
        assert!(RepairLevel::Reaffiliate < RepairLevel::Gateways);
        assert!(RepairLevel::Gateways < RepairLevel::Full);
        assert_eq!(RepairLevel::Gateways.name(), "gateways");
        assert_eq!(RepairLevel::None.name(), "none");
    }
}
