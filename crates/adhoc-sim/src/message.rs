//! Protocol messages.
//!
//! Every variant corresponds to one over-the-air transmission kind in
//! the distributed realization of the paper's Algorithm `AC-LMST`
//! (lines 1–11) plus the clustering preamble. Flooded messages carry a
//! TTL and are forwarded at most once per node; unicast messages are
//! routed hop by hop using distance labels learned from earlier
//! phases.

use adhoc_graph::graph::NodeId;

/// A clusterhead-election key carried in `Contend` messages: the
/// primary priority value plus the originator ID tie-break (see
/// `adhoc_cluster::priority::PriorityKey`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct WireKey {
    /// Primary priority (lower wins).
    pub primary: u64,
    /// Originator ID tie-break.
    pub id: NodeId,
}

/// One protocol message.
#[derive(Clone, Debug)]
pub enum Message {
    /// Phase 0 — 1-hop neighbor discovery.
    Hello,
    /// Clustering — an undecided node advertises its election key to
    /// its k-hop neighborhood (flooded, TTL-limited).
    Contend {
        /// Originating node.
        origin: NodeId,
        /// Its election key.
        key: WireKey,
        /// Remaining hops.
        ttl: u32,
        /// Election round the contest belongs to.
        round: u32,
    },
    /// Clustering — a contest winner declares itself clusterhead
    /// (flooded k hops).
    Declare {
        /// The new clusterhead.
        origin: NodeId,
        /// Remaining hops.
        ttl: u32,
        /// Hops traveled so far (receiver distance = hops + 1).
        hops: u32,
        /// Election round.
        round: u32,
    },
    /// Post-clustering — each node announces its cluster affiliation
    /// to its 1-hop neighbors.
    ClusterHello {
        /// The sender's clusterhead.
        head: NodeId,
        /// The sender's hop distance to that head.
        dist: u32,
    },
    /// Neighbor clusterhead discovery — each head floods its identity
    /// `2k+1` hops so every nearby node (and head) learns its distance
    /// to it (paper line 1: "broadcast within 2k+1 hops").
    HeadAnnounce {
        /// The announcing clusterhead.
        origin: NodeId,
        /// Remaining hops.
        ttl: u32,
        /// Hops traveled so far.
        hops: u32,
    },
    /// Each node shares its learned head-distance vector with its
    /// 1-hop neighbors; this is what lets unicast walks pick the
    /// canonical (smallest-ID decreasing-distance) next hop.
    DistVector {
        /// `(head, distance)` pairs known to the sender, ascending.
        dists: Vec<(NodeId, u32)>,
    },
    /// A border node reports an adjacent cluster pair to its own head
    /// (unicast toward the head), implementing distributed A-NCR.
    AdjacencyReport {
        /// The head this report is being routed to.
        to_head: NodeId,
        /// The adjacent cluster's head observed at the border.
        other_head: NodeId,
    },
    /// A head floods its selected neighbor clusterhead set and virtual
    /// distances so peer heads can build their local MSTs (paper line
    /// 7: "broadcast set S and distance to every one in S").
    SetInfo {
        /// The head describing its set.
        origin: NodeId,
        /// `(neighbor head, virtual distance)` pairs, ascending.
        set: Vec<(NodeId, u32)>,
        /// Remaining hops.
        ttl: u32,
    },
    /// A head that selected virtual link `(a, b)` but is its *larger*
    /// endpoint asks the smaller endpoint to start the canonical
    /// marking walk (unicast toward `a`).
    MarkRequest {
        /// Smaller link endpoint (walk initiator).
        a: NodeId,
        /// Larger link endpoint (walk target).
        b: NodeId,
    },
    /// The gateway-marking token walking the canonical shortest path
    /// from `a` to `b`; every interior node it visits marks itself a
    /// gateway (paper line 11: "set nodes on pi as gateway nodes").
    MarkToken {
        /// Smaller link endpoint.
        a: NodeId,
        /// Larger link endpoint (walk target).
        b: NodeId,
    },
}

impl Message {
    /// Short label used by the statistics tables.
    pub fn kind(&self) -> MessageKind {
        match self {
            Message::Hello => MessageKind::Hello,
            Message::Contend { .. } => MessageKind::Contend,
            Message::Declare { .. } => MessageKind::Declare,
            Message::ClusterHello { .. } => MessageKind::ClusterHello,
            Message::HeadAnnounce { .. } => MessageKind::HeadAnnounce,
            Message::DistVector { .. } => MessageKind::DistVector,
            Message::AdjacencyReport { .. } => MessageKind::AdjacencyReport,
            Message::SetInfo { .. } => MessageKind::SetInfo,
            Message::MarkRequest { .. } => MessageKind::MarkRequest,
            Message::MarkToken { .. } => MessageKind::MarkToken,
        }
    }
}

/// Message category for accounting.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
#[allow(missing_docs)]
pub enum MessageKind {
    Hello,
    Contend,
    Declare,
    ClusterHello,
    HeadAnnounce,
    DistVector,
    AdjacencyReport,
    SetInfo,
    MarkRequest,
    MarkToken,
    /// Reconcile-loop phase transition: observe started (traced by the
    /// churn engine, not a radio transmission).
    ReconcileObserve,
    /// Reconcile-loop phase transition: repair started.
    ReconcileRepair,
    /// Reconcile-loop phase transition: publish started.
    ReconcilePublish,
}

impl MessageKind {
    /// All kinds, for iteration in reports.
    pub const ALL: [MessageKind; 13] = [
        MessageKind::Hello,
        MessageKind::Contend,
        MessageKind::Declare,
        MessageKind::ClusterHello,
        MessageKind::HeadAnnounce,
        MessageKind::DistVector,
        MessageKind::AdjacencyReport,
        MessageKind::SetInfo,
        MessageKind::MarkRequest,
        MessageKind::MarkToken,
        MessageKind::ReconcileObserve,
        MessageKind::ReconcileRepair,
        MessageKind::ReconcilePublish,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MessageKind::Hello => "hello",
            MessageKind::Contend => "contend",
            MessageKind::Declare => "declare",
            MessageKind::ClusterHello => "cluster-hello",
            MessageKind::HeadAnnounce => "head-announce",
            MessageKind::DistVector => "dist-vector",
            MessageKind::AdjacencyReport => "adjacency-report",
            MessageKind::SetInfo => "set-info",
            MessageKind::MarkRequest => "mark-request",
            MessageKind::MarkToken => "mark-token",
            MessageKind::ReconcileObserve => "reconcile-observe",
            MessageKind::ReconcileRepair => "reconcile-repair",
            MessageKind::ReconcilePublish => "reconcile-publish",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_one_to_one() {
        let msgs = [
            Message::Hello,
            Message::Contend {
                origin: NodeId(0),
                key: WireKey {
                    primary: 0,
                    id: NodeId(0),
                },
                ttl: 1,
                round: 0,
            },
            Message::Declare {
                origin: NodeId(0),
                ttl: 1,
                hops: 0,
                round: 0,
            },
            Message::ClusterHello {
                head: NodeId(0),
                dist: 0,
            },
            Message::HeadAnnounce {
                origin: NodeId(0),
                ttl: 1,
                hops: 0,
            },
            Message::DistVector { dists: vec![] },
            Message::AdjacencyReport {
                to_head: NodeId(0),
                other_head: NodeId(1),
            },
            Message::SetInfo {
                origin: NodeId(0),
                set: vec![],
                ttl: 1,
            },
            Message::MarkRequest {
                a: NodeId(0),
                b: NodeId(1),
            },
            Message::MarkToken {
                a: NodeId(0),
                b: NodeId(1),
            },
        ];
        let kinds: Vec<_> = msgs.iter().map(Message::kind).collect();
        // The Reconcile* kinds are trace-only markers, not wire
        // messages — every *wire* kind maps one-to-one.
        assert_eq!(kinds.as_slice(), &MessageKind::ALL[..msgs.len()]);
        for k in MessageKind::ALL {
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn wire_key_orders_like_priority_key() {
        let a = WireKey {
            primary: 1,
            id: NodeId(9),
        };
        let b = WireKey {
            primary: 1,
            id: NodeId(2),
        };
        assert!(b < a);
        let c = WireKey {
            primary: 0,
            id: NodeId(99),
        };
        assert!(c < b);
    }
}
