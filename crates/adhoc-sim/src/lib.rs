//! Discrete-event simulation of the connected k-hop clustering
//! protocol.
//!
//! The paper evaluates its algorithms "on a custom simulator" with an
//! ideal MAC layer (collisions and contention are assumed away). This
//! crate is that simulator, rebuilt:
//!
//! * [`engine`] — a deterministic discrete-event queue (time, sequence)
//!   with unit-latency ideal-MAC broadcast semantics.
//! * [`message`] / [`stats`] — the protocol's wire messages and
//!   per-phase transmission accounting.
//! * [`protocol`] — per-node state machines executing the paper's
//!   Algorithm `AC-LMST` (and the NC/Mesh variants) purely by message
//!   passing; converges to exactly the structure the centralized
//!   pipeline in `adhoc-cluster` computes, which the integration tests
//!   assert.
//! * [`mac`] — a contention MAC (slotted CSMA, receiver-side
//!   collisions) for ablating the paper's ideal-MAC assumption.
//! * [`mobility`] — mobility models (random waypoint, random
//!   direction, Gauss-Markov) over an incrementally maintained
//!   spatial-grid topology that reports per-step edge deltas.
//! * [`churn`] — the unified incremental maintenance engine: topology
//!   deltas flow through an explicit observe/repair/publish state
//!   machine (suspendable and crash-injectable at every phase
//!   boundary), with departures, arrivals, and movement steps as
//!   three faces of the same delta workload.
//! * [`adversary`] — attack and recovery workload generators over the
//!   engine: targeted head/hub removal, correlated regional outages,
//!   mass partition, and flash-crowd arrival bursts, for the
//!   resilience bench's degradation and repair-latency curves.
//! * [`invariants`] — the engine's correctness argument as executable
//!   checks: equivalence with cold rebuilds, convergence of the
//!   validity verdict, torn-free query consistency, honest cost
//!   accounting; failures are returned, not panicked, so checkers can
//!   print counterexamples.
//! * [`modelcheck`] — an exhaustive small-universe model checker:
//!   every delta interleaving × every crash point over tiny graphs,
//!   all four invariants checked at every reachable state, with
//!   replayable counterexample scripts.
//! * [`maintenance`] — the stateless §3.3 local-fix rules for node
//!   disappearance and arrival (nothing / local gateway re-selection /
//!   cluster re-election / join-or-elect), built on the shared repair
//!   primitives of [`churn`].
//! * [`movement`] — the movement-sensitive maintenance policy of the
//!   paper's §5 future work: cheapest-sufficient repairs under motion
//!   (the [`churn::ChurnEngine`] behind its historical name).
//! * [`energy`] — a transmission energy model and clusterhead rotation
//!   with residual-energy priority.
//!
//! # Example
//!
//! ```
//! use adhoc_sim::protocol::{run_protocol, ProtocolConfig};
//! use adhoc_cluster::pipeline::Algorithm;
//! use adhoc_graph::gen;
//!
//! let g = gen::grid(4, 5);
//! let run = run_protocol(&g, &ProtocolConfig::new(2, Algorithm::AcLmst));
//! println!("{} heads, {} gateways, {} transmissions",
//!          run.heads.len(), run.gateways.len(), run.stats.total());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod broadcast;
pub mod churn;
pub mod energy;
pub mod engine;
pub mod invariants;
pub mod mac;
pub mod maintenance;
pub mod modelcheck;
pub mod message;
pub mod mobility;
pub mod movement;
pub mod protocol;
pub mod stats;
pub mod trace;

pub use protocol::{run_protocol, DistributedRun, ProtocolConfig};
pub use stats::{Phase, Stats};
