//! Energy accounting and power-aware clusterhead rotation.
//!
//! §3.3: "One way for power-aware design is to rotate the role of
//! clusterhead to prolong the average lifespan of each node, assuming
//! that a clusterhead consumes more energy than a regular node.
//! Therefore, residual energy level instead of lowest ID can be used
//! as node priority in the clustering process." This module implements
//! exactly that experiment: repeated clustering epochs with per-role
//! energy drain, comparing the static lowest-ID policy against
//! residual-energy rotation.

use adhoc_cluster::clustering::{self, Clustering, MemberPolicy};
use adhoc_cluster::gateway::GatewaySelection;
use adhoc_cluster::pipeline::{self, Algorithm};
use adhoc_cluster::priority::{LowestId, ResidualEnergy};
use adhoc_graph::graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Per-epoch energy costs by role, in abstract energy units.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Initial battery of every node.
    pub initial: u64,
    /// Drain of a clusterhead per epoch (aggregation, coordination).
    pub head_cost: u64,
    /// Drain of a gateway per epoch (relaying between clusters).
    pub gateway_cost: u64,
    /// Drain of a plain member per epoch.
    pub member_cost: u64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // Head ≈ 5x member, gateway ≈ 3x member: typical relative
        // magnitudes for coordination/relay duty cycles.
        EnergyModel {
            initial: 1_000,
            head_cost: 50,
            gateway_cost: 30,
            member_cost: 10,
        }
    }
}

/// Which election policy an epoch uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RotationPolicy {
    /// Re-elect with lowest ID every epoch (no rotation: the same
    /// nodes stay clusterheads until they die).
    StaticLowestId,
    /// Re-elect with residual energy as priority every epoch (§3.3).
    ResidualEnergy,
}

/// Outcome of a rotation experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LifetimeReport {
    /// Epoch at which the first node died (1-based), or `None` if
    /// everything survived `max_epochs`.
    pub first_death_epoch: Option<u32>,
    /// Alive-node counts after each epoch.
    pub alive_curve: Vec<usize>,
    /// How many epochs changed at least one clusterhead relative to
    /// the previous epoch.
    pub head_changes: u32,
    /// Minimum residual energy across alive nodes at the end.
    pub min_residual: u64,
    /// Mean residual energy across alive nodes at the end.
    pub mean_residual: f64,
}

/// Runs `max_epochs` clustering epochs on `g` under `policy`,
/// draining energy per role each epoch. Dead nodes are isolated from
/// the topology; the experiment continues on the survivors.
pub fn run_lifetime(
    g: &Graph,
    k: u32,
    algorithm: Algorithm,
    model: &EnergyModel,
    policy: RotationPolicy,
    max_epochs: u32,
) -> LifetimeReport {
    let mut topo = g.clone();
    let mut levels = vec![model.initial; g.len()];
    let mut alive = vec![true; g.len()];
    let mut first_death = None;
    let mut alive_curve = Vec::with_capacity(max_epochs as usize);
    let mut head_changes = 0u32;
    let mut prev_heads: Option<Vec<NodeId>> = None;

    for epoch in 1..=max_epochs {
        let (clustering, selection) = cluster_epoch(&topo, k, algorithm, policy, &levels);
        // Restrict the head list to alive nodes for the change metric
        // (dead nodes are isolated and become trivial self-heads).
        let heads: Vec<NodeId> = clustering
            .heads
            .iter()
            .copied()
            .filter(|h| alive[h.index()])
            .collect();
        if let Some(prev) = &prev_heads {
            if *prev != heads {
                head_changes += 1;
            }
        }
        prev_heads = Some(heads);

        // Drain.
        for u in (0..g.len() as u32).map(NodeId) {
            if !alive[u.index()] {
                continue;
            }
            let cost = if clustering.is_head(u) {
                model.head_cost
            } else if selection.gateways.binary_search(&u).is_ok() {
                model.gateway_cost
            } else {
                model.member_cost
            };
            let lv = &mut levels[u.index()];
            *lv = lv.saturating_sub(cost);
            if *lv == 0 {
                alive[u.index()] = false;
                topo.isolate(u);
                if first_death.is_none() {
                    first_death = Some(epoch);
                }
            }
        }
        alive_curve.push(alive.iter().filter(|&&a| a).count());
    }

    let residuals: Vec<u64> = (0..g.len())
        .filter(|&i| alive[i])
        .map(|i| levels[i])
        .collect();
    let min_residual = residuals.iter().copied().min().unwrap_or(0);
    let mean_residual = if residuals.is_empty() {
        0.0
    } else {
        residuals.iter().sum::<u64>() as f64 / residuals.len() as f64
    };
    LifetimeReport {
        first_death_epoch: first_death,
        alive_curve,
        head_changes,
        min_residual,
        mean_residual,
    }
}

fn cluster_epoch(
    topo: &Graph,
    k: u32,
    algorithm: Algorithm,
    policy: RotationPolicy,
    levels: &[u64],
) -> (Clustering, GatewaySelection) {
    let clustering = match policy {
        RotationPolicy::StaticLowestId => {
            clustering::cluster(topo, k, &LowestId, MemberPolicy::IdBased)
        }
        RotationPolicy::ResidualEnergy => {
            let pri = ResidualEnergy::new(levels.to_vec());
            clustering::cluster(topo, k, &pri, MemberPolicy::IdBased)
        }
    };
    let out = pipeline::run_on(topo, algorithm, &clustering);
    (clustering, out.selection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_graph::gen;

    #[test]
    fn rotation_spreads_head_duty() {
        // On a cycle everything is symmetric: rotation must change
        // heads across epochs, static lowest-ID must not.
        let g = gen::cycle(12);
        let model = EnergyModel::default();
        let rot = run_lifetime(
            &g,
            1,
            Algorithm::AcLmst,
            &model,
            RotationPolicy::ResidualEnergy,
            6,
        );
        let stat = run_lifetime(
            &g,
            1,
            Algorithm::AcLmst,
            &model,
            RotationPolicy::StaticLowestId,
            6,
        );
        assert!(rot.head_changes > 0, "rotation never rotated");
        assert_eq!(stat.head_changes, 0, "static policy changed heads");
    }

    #[test]
    fn rotation_extends_first_death() {
        let g = gen::cycle(12);
        // Aggressive drain so deaths happen within the horizon.
        let model = EnergyModel {
            initial: 300,
            head_cost: 50,
            gateway_cost: 30,
            member_cost: 10,
        };
        let epochs = 40;
        let rot = run_lifetime(
            &g,
            1,
            Algorithm::AcLmst,
            &model,
            RotationPolicy::ResidualEnergy,
            epochs,
        );
        let stat = run_lifetime(
            &g,
            1,
            Algorithm::AcLmst,
            &model,
            RotationPolicy::StaticLowestId,
            epochs,
        );
        let rd = rot.first_death_epoch.unwrap_or(epochs + 1);
        let sd = stat.first_death_epoch.unwrap_or(epochs + 1);
        assert!(
            rd > sd,
            "rotation first death {rd} not later than static {sd}"
        );
    }

    #[test]
    fn alive_curve_is_monotone_nonincreasing() {
        let g = gen::grid(4, 4);
        let model = EnergyModel {
            initial: 120,
            head_cost: 60,
            gateway_cost: 40,
            member_cost: 20,
        };
        let rep = run_lifetime(
            &g,
            2,
            Algorithm::NcMesh,
            &model,
            RotationPolicy::StaticLowestId,
            10,
        );
        for w in rep.alive_curve.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert!(rep.first_death_epoch.is_some());
    }

    #[test]
    fn no_deaths_with_generous_batteries() {
        let g = gen::grid(3, 3);
        let model = EnergyModel {
            initial: 1_000_000,
            ..EnergyModel::default()
        };
        let rep = run_lifetime(
            &g,
            1,
            Algorithm::AcMesh,
            &model,
            RotationPolicy::ResidualEnergy,
            5,
        );
        assert_eq!(rep.first_death_epoch, None);
        assert_eq!(rep.alive_curve.last(), Some(&9));
        assert!(rep.min_residual > 0);
        assert!(rep.mean_residual > 0.0);
    }
}
