//! Distributed, message-level realization of the paper's algorithms.
//!
//! Every step of Algorithm `AC-LMST` (and its NC / Mesh variants) is
//! executed by per-node state machines exchanging [`Message`]s through
//! the ideal-MAC event engine — no node ever reads another node's
//! state. The phases:
//!
//! 1. **Neighbor discovery** — 1-hop `Hello`s.
//! 2. **Clustering** — iterative k-hop contests: undecided nodes flood
//!    `Contend` keys k hops; contest winners flood `Declare`; undecided
//!    receivers join per the member policy. Repeats until all joined.
//! 3. **Cluster hello** — nodes announce their affiliation 1 hop.
//! 4. **Head announce** — heads flood identity `2k+1` hops; everyone
//!    learns hop distances to nearby heads (paper line 1–2).
//! 5. **Dist vector** — nodes share learned head distances with
//!    neighbors (enables canonical next-hop routing).
//! 6. **Adjacency (A-NCR, AC only)** — border nodes report adjacent
//!    cluster pairs to their heads (paper line 3).
//! 7. **Set exchange (LMST only)** — heads flood their neighbor-set
//!    and virtual distances `2k+1` hops (paper line 7–8).
//! 8. **Gateway marking** — heads select partners (all of `S` for
//!    Mesh, LMST on-tree neighbors for LMSTGA) and send marking tokens
//!    along canonical shortest paths; token relays become gateways
//!    (paper lines 9–11).
//!
//! The outcome is bit-for-bit identical to the centralized pipeline in
//! `adhoc-cluster` (the integration tests assert this), while also
//! accounting for every transmission.

use crate::engine::EventQueue;
use crate::message::{Message, WireKey};
use crate::stats::{Phase, Stats};
use adhoc_cluster::clustering::MemberPolicy;
use adhoc_cluster::pipeline::Algorithm;
use adhoc_graph::graph::{Graph, NodeId};
use adhoc_graph::lmst;
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of a protocol run.
#[derive(Clone, Debug)]
pub struct ProtocolConfig {
    /// Clustering radius `k >= 1`.
    pub k: u32,
    /// Member affiliation policy. `SizeBased` requires global cluster
    /// sizes and has no localized realization, so it is rejected.
    pub policy: MemberPolicy,
    /// Which gateway algorithm to execute. `GMst` is centralized by
    /// definition and is rejected.
    pub algorithm: Algorithm,
    /// Optional custom election keys (defaults to lowest-ID).
    pub keys: Option<Vec<WireKey>>,
    /// When `Some(cap)`, record up to `cap` transmissions in a
    /// [`Trace`](crate::trace::Trace) returned with the run.
    pub trace_capacity: Option<usize>,
}

impl ProtocolConfig {
    /// Lowest-ID, ID-based-membership configuration (the paper's
    /// simulation setup) for the given `k` and algorithm.
    pub fn new(k: u32, algorithm: Algorithm) -> Self {
        ProtocolConfig {
            k,
            policy: MemberPolicy::IdBased,
            algorithm,
            keys: None,
            trace_capacity: None,
        }
    }
}

/// The outcome of a distributed run.
#[derive(Clone, Debug)]
pub struct DistributedRun {
    /// Elected clusterheads, ascending.
    pub heads: Vec<NodeId>,
    /// Every node's clusterhead.
    pub head_of: Vec<NodeId>,
    /// Every node's hop distance to its head.
    pub dist_to_head: Vec<u32>,
    /// Nodes that marked themselves gateways, ascending.
    pub gateways: Vec<NodeId>,
    /// Virtual links that were realized, `(a, b)` with `a < b`.
    pub links_marked: Vec<(NodeId, NodeId)>,
    /// Transmission and time accounting.
    pub stats: Stats,
    /// Transmission trace, when requested via
    /// [`ProtocolConfig::trace_capacity`].
    pub trace: Option<crate::trace::Trace>,
}

#[derive(Clone, Debug)]
enum Event {
    Deliver {
        to: NodeId,
        from: NodeId,
        msg: Message,
    },
    Barrier(Barrier),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Barrier {
    AfterHello,
    ContendDone(u32),
    DeclareDone(u32),
    AfterClusterHello,
    AfterAnnounce,
    AfterDistVector,
    AfterAdjacency,
    AfterSetInfo,
    AfterMarking,
}

#[derive(Clone, Debug, Default)]
struct Node {
    alive: bool,
    neighbors: Vec<NodeId>, // learned from Hello, sorted
    head: Option<NodeId>,
    dist_to_head: u32,
    // Clustering round state.
    contend_seen: BTreeSet<NodeId>,
    heard_keys: Vec<WireKey>,
    declare_seen: BTreeSet<NodeId>,
    heard_declares: Vec<(NodeId, u32)>,
    // Post-clustering knowledge.
    neighbor_cluster: BTreeMap<NodeId, (NodeId, u32)>,
    head_dists: BTreeMap<NodeId, u32>, // learned from HeadAnnounce
    neighbor_head_dists: BTreeMap<NodeId, BTreeMap<NodeId, u32>>,
    // Head-only state.
    adjacent: BTreeSet<NodeId>,
    my_set: Vec<(NodeId, u32)>,
    peer_sets: BTreeMap<NodeId, Vec<(NodeId, u32)>>,
    set_seen: BTreeSet<NodeId>,
    mark_initiated: BTreeSet<(NodeId, NodeId)>,
    is_gateway: bool,
}

struct Simulator<'g> {
    graph: &'g Graph,
    cfg: ProtocolConfig,
    nodes: Vec<Node>,
    queue: EventQueue<Event>,
    stats: Stats,
    trace: Option<crate::trace::Trace>,
    phase: Phase,
    rounds: u32,
    finished: bool,
}

impl<'g> Simulator<'g> {
    fn new(graph: &'g Graph, cfg: ProtocolConfig) -> Self {
        assert!(cfg.k >= 1, "k must be at least 1");
        assert!(
            cfg.policy != MemberPolicy::SizeBased,
            "SizeBased affiliation needs global sizes; no localized \
             realization exists"
        );
        assert!(
            cfg.algorithm != Algorithm::GMst,
            "G-MST is centralized by definition; use adhoc_cluster::gateway::gmst"
        );
        if let Some(keys) = &cfg.keys {
            assert_eq!(keys.len(), graph.len(), "one key per node");
        }
        let nodes = (0..graph.len())
            .map(|_| Node {
                alive: true,
                ..Node::default()
            })
            .collect();
        let trace = cfg.trace_capacity.map(crate::trace::Trace::with_capacity);
        Simulator {
            graph,
            cfg,
            nodes,
            queue: EventQueue::new(),
            stats: Stats::default(),
            trace,
            phase: Phase::NeighborDiscovery,
            rounds: 0,
            finished: false,
        }
    }

    fn key_of(&self, u: NodeId) -> WireKey {
        match &self.cfg.keys {
            Some(keys) => keys[u.index()],
            None => WireKey { primary: 0, id: u },
        }
    }

    fn record_tx(&mut self, from: NodeId, kind: crate::message::MessageKind) {
        self.stats.record(self.phase, kind);
        if let Some(trace) = &mut self.trace {
            trace.record(crate::trace::TraceEvent {
                time: self.queue.now(),
                phase: self.phase,
                kind,
                from,
            });
        }
    }

    /// One radio transmission: delivered to every alive graph neighbor
    /// one tick later.
    fn broadcast(&mut self, from: NodeId, msg: Message) {
        self.record_tx(from, msg.kind());
        for &to in self.graph.neighbors(from) {
            if self.nodes[to.index()].alive {
                self.queue.schedule(
                    1,
                    Event::Deliver {
                        to,
                        from,
                        msg: msg.clone(),
                    },
                );
            }
        }
    }

    /// One unicast hop (same cost model: one transmission).
    fn unicast(&mut self, from: NodeId, to: NodeId, msg: Message) {
        debug_assert!(self.graph.neighbors(from).contains(&to));
        self.record_tx(from, msg.kind());
        self.queue.schedule(1, Event::Deliver { to, from, msg });
    }

    /// Canonical next hop from `at` toward `target_head`: the
    /// smallest-ID alive neighbor whose announced distance to the head
    /// is one less than ours. Mirrors
    /// `adhoc_graph::bfs::lexico_path_from_labels`.
    fn next_hop_toward(&self, at: NodeId, target_head: NodeId) -> NodeId {
        let node = &self.nodes[at.index()];
        let my_d = *node
            .head_dists
            .get(&target_head)
            .unwrap_or_else(|| panic!("{at:?} has no distance label for {target_head:?}"));
        debug_assert!(my_d > 0, "already at the target");
        for &y in &node.neighbors {
            if let Some(v) = node.neighbor_head_dists.get(&y) {
                if v.get(&target_head) == Some(&(my_d - 1)) {
                    return y;
                }
            }
        }
        panic!("no decreasing-distance neighbor from {at:?} toward {target_head:?}");
    }

    fn alive_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|v| self.nodes[v.index()].alive)
            .collect()
    }

    fn undecided_ids(&self) -> Vec<NodeId> {
        self.alive_ids()
            .into_iter()
            .filter(|v| self.nodes[v.index()].head.is_none())
            .collect()
    }

    // ---- phase starters -------------------------------------------------

    fn start(&mut self) {
        self.phase = Phase::NeighborDiscovery;
        for u in self.alive_ids() {
            self.broadcast(u, Message::Hello);
        }
        self.queue.schedule(2, Event::Barrier(Barrier::AfterHello));
    }

    fn start_round(&mut self) {
        self.rounds += 1;
        let round = self.rounds;
        self.phase = Phase::Clustering;
        for u in self.undecided_ids() {
            let key = self.key_of(u);
            let k = self.cfg.k;
            self.broadcast(
                u,
                Message::Contend {
                    origin: u,
                    key,
                    ttl: k,
                    round,
                },
            );
        }
        self.queue.schedule(
            u64::from(self.cfg.k) + 1,
            Event::Barrier(Barrier::ContendDone(round)),
        );
    }

    fn contest_and_declare(&mut self, round: u32) {
        for u in self.undecided_ids() {
            let my_key = self.key_of(u);
            let wins = self.nodes[u.index()]
                .heard_keys
                .iter()
                .all(|&other| my_key < other);
            if wins {
                let node = &mut self.nodes[u.index()];
                node.head = Some(u);
                node.dist_to_head = 0;
                let k = self.cfg.k;
                self.broadcast(
                    u,
                    Message::Declare {
                        origin: u,
                        ttl: k,
                        hops: 0,
                        round,
                    },
                );
            }
        }
        self.queue.schedule(
            u64::from(self.cfg.k) + 1,
            Event::Barrier(Barrier::DeclareDone(round)),
        );
    }

    fn join_and_continue(&mut self) {
        for u in self.undecided_ids() {
            let node = &mut self.nodes[u.index()];
            if node.heard_declares.is_empty() {
                continue;
            }
            let (h, d) = match self.cfg.policy {
                MemberPolicy::IdBased => *node
                    .heard_declares
                    .iter()
                    .min_by_key(|&&(h, _)| h)
                    .expect("nonempty"),
                MemberPolicy::DistanceBased => *node
                    .heard_declares
                    .iter()
                    .min_by_key(|&&(h, d)| (d, h))
                    .expect("nonempty"),
                MemberPolicy::SizeBased => unreachable!("rejected at construction"),
            };
            node.head = Some(h);
            node.dist_to_head = d;
        }
        for node in &mut self.nodes {
            node.contend_seen.clear();
            node.heard_keys.clear();
            node.declare_seen.clear();
            node.heard_declares.clear();
        }
        if !self.undecided_ids().is_empty() {
            assert!(
                self.rounds <= self.nodes.len() as u32,
                "clustering failed to converge"
            );
            self.start_round();
        } else {
            self.start_cluster_hello();
        }
    }

    fn start_cluster_hello(&mut self) {
        self.phase = Phase::ClusterHello;
        for u in self.alive_ids() {
            let node = &self.nodes[u.index()];
            let head = node.head.expect("all nodes decided");
            let dist = node.dist_to_head;
            self.broadcast(u, Message::ClusterHello { head, dist });
        }
        self.queue
            .schedule(2, Event::Barrier(Barrier::AfterClusterHello));
    }

    fn start_head_announce(&mut self) {
        self.phase = Phase::HeadAnnounce;
        let ttl = 2 * self.cfg.k + 1;
        for u in self.alive_ids() {
            if self.nodes[u.index()].head == Some(u) {
                self.nodes[u.index()].head_dists.insert(u, 0);
                self.broadcast(
                    u,
                    Message::HeadAnnounce {
                        origin: u,
                        ttl,
                        hops: 0,
                    },
                );
            }
        }
        self.queue
            .schedule(u64::from(ttl) + 1, Event::Barrier(Barrier::AfterAnnounce));
    }

    fn start_dist_vector(&mut self) {
        self.phase = Phase::DistVector;
        for u in self.alive_ids() {
            let dists: Vec<(NodeId, u32)> = self.nodes[u.index()]
                .head_dists
                .iter()
                .map(|(&h, &d)| (h, d))
                .collect();
            self.broadcast(u, Message::DistVector { dists });
        }
        self.queue
            .schedule(2, Event::Barrier(Barrier::AfterDistVector));
    }

    fn needs_adjacency(&self) -> bool {
        matches!(self.cfg.algorithm, Algorithm::AcMesh | Algorithm::AcLmst)
    }

    fn needs_set_exchange(&self) -> bool {
        matches!(self.cfg.algorithm, Algorithm::NcLmst | Algorithm::AcLmst)
    }

    fn start_adjacency(&mut self) {
        self.phase = Phase::Adjacency;
        for u in self.alive_ids() {
            let node = &self.nodes[u.index()];
            let my_head = node.head.expect("decided");
            // Distinct foreign heads among my 1-hop neighbors.
            let others: BTreeSet<NodeId> = node
                .neighbor_cluster
                .values()
                .map(|&(h, _)| h)
                .filter(|&h| h != my_head)
                .collect();
            for other in others {
                if u == my_head {
                    self.nodes[u.index()].adjacent.insert(other);
                } else {
                    let hop = self.next_hop_toward(u, my_head);
                    self.unicast(
                        u,
                        hop,
                        Message::AdjacencyReport {
                            to_head: my_head,
                            other_head: other,
                        },
                    );
                }
            }
        }
        self.queue.schedule(
            u64::from(self.cfg.k) + 2,
            Event::Barrier(Barrier::AfterAdjacency),
        );
    }

    /// Computes each head's neighbor clusterhead set `S` per the
    /// algorithm's rule (paper line 3) from purely local knowledge.
    fn compute_sets(&mut self) {
        let use_adjacent = self.needs_adjacency();
        for u in self.alive_ids() {
            if self.nodes[u.index()].head != Some(u) {
                continue;
            }
            let node = &mut self.nodes[u.index()];
            let set: Vec<(NodeId, u32)> = if use_adjacent {
                node.adjacent
                    .iter()
                    .map(|&h| {
                        let d = *node
                            .head_dists
                            .get(&h)
                            .expect("adjacent head within 2k+1 announced");
                        (h, d)
                    })
                    .collect()
            } else {
                node.head_dists
                    .iter()
                    .filter(|&(&h, _)| h != u)
                    .map(|(&h, &d)| (h, d))
                    .collect()
            };
            node.my_set = set;
        }
    }

    fn start_set_exchange(&mut self) {
        self.phase = Phase::SetExchange;
        let ttl = 2 * self.cfg.k + 1;
        for u in self.alive_ids() {
            if self.nodes[u.index()].head != Some(u) {
                continue;
            }
            let set = self.nodes[u.index()].my_set.clone();
            self.broadcast(
                u,
                Message::SetInfo {
                    origin: u,
                    set,
                    ttl,
                },
            );
        }
        self.queue
            .schedule(u64::from(ttl) + 1, Event::Barrier(Barrier::AfterSetInfo));
    }

    fn start_marking(&mut self) {
        self.phase = Phase::GatewayMarking;
        let heads: Vec<NodeId> = self
            .alive_ids()
            .into_iter()
            .filter(|&u| self.nodes[u.index()].head == Some(u))
            .collect();
        for u in heads {
            let selected: Vec<NodeId> = match self.cfg.algorithm {
                Algorithm::NcMesh | Algorithm::AcMesh => self.nodes[u.index()]
                    .my_set
                    .iter()
                    .map(|&(h, _)| h)
                    .collect(),
                Algorithm::NcLmst | Algorithm::AcLmst => {
                    let node = &self.nodes[u.index()];
                    let partners: Vec<NodeId> = node.my_set.iter().map(|&(h, _)| h).collect();
                    if partners.is_empty() {
                        Vec::new()
                    } else {
                        lmst::on_tree_neighbors(u, &partners, |a, b| self.virtual_weight(u, a, b))
                    }
                }
                Algorithm::GMst => unreachable!(),
            };
            for v in selected {
                let (a, b) = if u < v { (u, v) } else { (v, u) };
                if u == a {
                    self.initiate_mark(a, b);
                } else {
                    // Ask the smaller endpoint to start the canonical
                    // walk; routed toward `a` along decreasing labels.
                    let hop = self.next_hop_toward(u, a);
                    self.unicast(u, hop, Message::MarkRequest { a, b });
                }
            }
        }
        let span = u64::from(2 * self.cfg.k + 1);
        self.queue
            .schedule(2 * span + 2, Event::Barrier(Barrier::AfterMarking));
    }

    /// The local weight oracle a head `u` uses for its LMST: the
    /// virtual link `a—b` exists iff `b` is in `a`'s advertised set
    /// (symmetric by construction), with the advertised hop distance
    /// and ID tie-breaking as weight.
    fn virtual_weight(&self, u: NodeId, a: NodeId, b: NodeId) -> Option<lmst::TieWeight<u32>> {
        let set_of = |h: NodeId| -> Option<&[(NodeId, u32)]> {
            if h == u {
                Some(&self.nodes[u.index()].my_set)
            } else {
                self.nodes[u.index()].peer_sets.get(&h).map(Vec::as_slice)
            }
        };
        let sa = set_of(a)?;
        let d = sa.iter().find(|&&(h, _)| h == b).map(|&(_, d)| d)?;
        Some(lmst::TieWeight::new(d, a, b))
    }

    fn initiate_mark(&mut self, a: NodeId, b: NodeId) {
        if !self.nodes[a.index()].mark_initiated.insert((a, b)) {
            return; // already walking this link
        }
        let hop = self.next_hop_toward(a, b);
        self.unicast(a, hop, Message::MarkToken { a, b });
    }

    // ---- event dispatch -------------------------------------------------

    fn handle_deliver(&mut self, to: NodeId, from: NodeId, msg: Message) {
        if !self.nodes[to.index()].alive {
            return;
        }
        match msg {
            Message::Hello => {
                let node = &mut self.nodes[to.index()];
                if let Err(pos) = node.neighbors.binary_search(&from) {
                    node.neighbors.insert(pos, from);
                }
            }
            Message::Contend {
                origin,
                key,
                ttl,
                round,
            } => {
                let node = &mut self.nodes[to.index()];
                if origin == to || !node.contend_seen.insert(origin) {
                    return;
                }
                if node.head.is_none() {
                    node.heard_keys.push(key);
                }
                if ttl > 1 {
                    self.broadcast(
                        to,
                        Message::Contend {
                            origin,
                            key,
                            ttl: ttl - 1,
                            round,
                        },
                    );
                }
            }
            Message::Declare {
                origin,
                ttl,
                hops,
                round,
            } => {
                let node = &mut self.nodes[to.index()];
                if origin == to || !node.declare_seen.insert(origin) {
                    return;
                }
                let dist = hops + 1;
                if node.head.is_none() {
                    node.heard_declares.push((origin, dist));
                }
                if ttl > 1 {
                    self.broadcast(
                        to,
                        Message::Declare {
                            origin,
                            ttl: ttl - 1,
                            hops: dist,
                            round,
                        },
                    );
                }
            }
            Message::ClusterHello { head, dist } => {
                self.nodes[to.index()]
                    .neighbor_cluster
                    .insert(from, (head, dist));
            }
            Message::HeadAnnounce { origin, ttl, hops } => {
                let node = &mut self.nodes[to.index()];
                if origin == to || node.head_dists.contains_key(&origin) {
                    return;
                }
                let dist = hops + 1;
                node.head_dists.insert(origin, dist);
                if ttl > 1 {
                    self.broadcast(
                        to,
                        Message::HeadAnnounce {
                            origin,
                            ttl: ttl - 1,
                            hops: dist,
                        },
                    );
                }
            }
            Message::DistVector { dists } => {
                self.nodes[to.index()]
                    .neighbor_head_dists
                    .insert(from, dists.into_iter().collect());
            }
            Message::AdjacencyReport {
                to_head,
                other_head,
            } => {
                if to == to_head {
                    self.nodes[to.index()].adjacent.insert(other_head);
                } else {
                    let hop = self.next_hop_toward(to, to_head);
                    self.unicast(
                        to,
                        hop,
                        Message::AdjacencyReport {
                            to_head,
                            other_head,
                        },
                    );
                }
            }
            Message::SetInfo { origin, set, ttl } => {
                let node = &mut self.nodes[to.index()];
                if origin == to || !node.set_seen.insert(origin) {
                    return;
                }
                node.peer_sets.insert(origin, set.clone());
                if ttl > 1 {
                    self.broadcast(
                        to,
                        Message::SetInfo {
                            origin,
                            set,
                            ttl: ttl - 1,
                        },
                    );
                }
            }
            Message::MarkRequest { a, b } => {
                if to == a {
                    self.initiate_mark(a, b);
                } else {
                    let hop = self.next_hop_toward(to, a);
                    self.unicast(to, hop, Message::MarkRequest { a, b });
                }
            }
            Message::MarkToken { a, b } => {
                if to == b {
                    return; // walk complete
                }
                // Interior node: become a gateway (heads stay heads).
                if self.nodes[to.index()].head != Some(to) {
                    self.nodes[to.index()].is_gateway = true;
                }
                let hop = self.next_hop_toward(to, b);
                self.unicast(to, hop, Message::MarkToken { a, b });
            }
        }
    }

    fn handle_barrier(&mut self, barrier: Barrier) {
        match barrier {
            Barrier::AfterHello => self.start_round(),
            Barrier::ContendDone(round) => self.contest_and_declare(round),
            Barrier::DeclareDone(_) => self.join_and_continue(),
            Barrier::AfterClusterHello => self.start_head_announce(),
            Barrier::AfterAnnounce => self.start_dist_vector(),
            Barrier::AfterDistVector => {
                if self.needs_adjacency() {
                    self.start_adjacency();
                } else {
                    self.compute_sets();
                    if self.needs_set_exchange() {
                        self.start_set_exchange();
                    } else {
                        self.start_marking();
                    }
                }
            }
            Barrier::AfterAdjacency => {
                self.compute_sets();
                if self.needs_set_exchange() {
                    self.start_set_exchange();
                } else {
                    self.start_marking();
                }
            }
            Barrier::AfterSetInfo => self.start_marking(),
            Barrier::AfterMarking => self.finished = true,
        }
    }

    fn run(mut self) -> DistributedRun {
        self.start();
        while !self.finished {
            let (_, event) = self
                .queue
                .pop()
                .expect("event queue drained before the final barrier");
            match event {
                Event::Deliver { to, from, msg } => self.handle_deliver(to, from, msg),
                Event::Barrier(b) => self.handle_barrier(b),
            }
        }
        self.stats.makespan = self.queue.now();
        self.stats.rounds = self.rounds;

        let n = self.nodes.len();
        let mut heads = Vec::new();
        let mut head_of = vec![NodeId(u32::MAX); n];
        let mut dist_to_head = vec![0u32; n];
        let mut gateways = Vec::new();
        let mut links: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let u = NodeId(i as u32);
            if !node.alive {
                continue;
            }
            let h = node.head.expect("protocol completed");
            head_of[i] = h;
            dist_to_head[i] = node.dist_to_head;
            if h == u {
                heads.push(u);
            }
            if node.is_gateway {
                gateways.push(u);
            }
            links.extend(node.mark_initiated.iter().copied());
        }
        DistributedRun {
            heads,
            head_of,
            dist_to_head,
            gateways,
            links_marked: links.into_iter().collect(),
            stats: self.stats,
            trace: self.trace,
        }
    }
}

/// Executes the distributed protocol on `g` and returns the converged
/// structure plus transmission statistics.
///
/// # Panics
/// Panics on `k == 0`, `MemberPolicy::SizeBased`, or
/// `Algorithm::GMst` (see [`ProtocolConfig`]), and if `g` is
/// disconnected across alive nodes (routing labels would be missing).
pub fn run_protocol(g: &Graph, cfg: &ProtocolConfig) -> DistributedRun {
    Simulator::new(g, cfg.clone()).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_graph::gen;

    #[test]
    fn path_k1_matches_hand_computation() {
        let g = gen::path(9);
        let run = run_protocol(&g, &ProtocolConfig::new(1, Algorithm::AcLmst));
        assert_eq!(
            run.heads,
            vec![NodeId(0), NodeId(2), NodeId(4), NodeId(6), NodeId(8)]
        );
        assert_eq!(
            run.gateways,
            vec![NodeId(1), NodeId(3), NodeId(5), NodeId(7)]
        );
        assert_eq!(run.links_marked.len(), 4);
        assert!(run.stats.total() > 0);
        // Heads are elected one per round along the path: 0,2,4,6,8.
        assert_eq!(run.stats.rounds, 5);
    }

    #[test]
    fn single_node_network() {
        let g = Graph::new(1);
        let run = run_protocol(&g, &ProtocolConfig::new(2, Algorithm::AcMesh));
        assert_eq!(run.heads, vec![NodeId(0)]);
        assert!(run.gateways.is_empty());
    }

    #[test]
    fn star_elects_center_cluster() {
        let g = gen::star(6);
        let run = run_protocol(&g, &ProtocolConfig::new(1, Algorithm::NcMesh));
        assert_eq!(run.heads, vec![NodeId(0)]);
        assert!(run.gateways.is_empty());
        assert!(run.links_marked.is_empty());
    }

    #[test]
    #[should_panic(expected = "SizeBased")]
    fn size_based_rejected() {
        let g = gen::path(3);
        let mut cfg = ProtocolConfig::new(1, Algorithm::AcLmst);
        cfg.policy = MemberPolicy::SizeBased;
        run_protocol(&g, &cfg);
    }

    #[test]
    #[should_panic(expected = "centralized")]
    fn gmst_rejected() {
        let g = gen::path(3);
        run_protocol(&g, &ProtocolConfig::new(1, Algorithm::GMst));
    }

    #[test]
    fn custom_keys_change_election() {
        // Give node 4 (path middle) the best key: it must win round 1.
        let g = gen::path(5);
        let mut cfg = ProtocolConfig::new(2, Algorithm::AcMesh);
        cfg.keys = Some(
            (0..5u32)
                .map(|i| WireKey {
                    primary: if i == 4 { 0 } else { 100 + u64::from(i) },
                    id: NodeId(i),
                })
                .collect(),
        );
        let run = run_protocol(&g, &cfg);
        assert!(run.heads.contains(&NodeId(4)));
    }

    #[test]
    fn message_counts_populate_expected_phases() {
        let g = gen::path(9);
        let run = run_protocol(&g, &ProtocolConfig::new(1, Algorithm::AcLmst));
        use crate::stats::Phase;
        assert_eq!(run.stats.phase_total(Phase::NeighborDiscovery), 9);
        assert!(run.stats.phase_total(Phase::Clustering) > 0);
        assert_eq!(run.stats.phase_total(Phase::ClusterHello), 9);
        assert!(run.stats.phase_total(Phase::HeadAnnounce) > 0);
        assert_eq!(run.stats.phase_total(Phase::DistVector), 9);
        assert!(run.stats.phase_total(Phase::Adjacency) > 0);
        assert!(run.stats.phase_total(Phase::SetExchange) > 0);
        assert!(run.stats.phase_total(Phase::GatewayMarking) > 0);
    }

    #[test]
    fn mesh_skips_set_exchange_and_nc_skips_adjacency() {
        use crate::stats::Phase;
        let g = gen::path(9);
        let mesh = run_protocol(&g, &ProtocolConfig::new(1, Algorithm::NcMesh));
        assert_eq!(mesh.stats.phase_total(Phase::SetExchange), 0);
        assert_eq!(mesh.stats.phase_total(Phase::Adjacency), 0);
        let ac = run_protocol(&g, &ProtocolConfig::new(1, Algorithm::AcMesh));
        assert!(ac.stats.phase_total(Phase::Adjacency) > 0);
        assert_eq!(ac.stats.phase_total(Phase::SetExchange), 0);
    }

    #[test]
    fn trace_capture_matches_stats() {
        let g = gen::path(9);
        let mut cfg = ProtocolConfig::new(1, Algorithm::AcLmst);
        cfg.trace_capacity = Some(100_000);
        let run = run_protocol(&g, &cfg);
        let trace = run.trace.expect("trace requested");
        assert_eq!(trace.len() as u64, run.stats.total());
        assert_eq!(trace.dropped(), 0);
        // Phase spans are ordered like the protocol's phases.
        use crate::stats::Phase;
        let hello = trace.phase_span(Phase::NeighborDiscovery).unwrap();
        let marking = trace.phase_span(Phase::GatewayMarking).unwrap();
        assert!(hello.1 <= marking.0);
        // Without the flag, no trace is produced.
        let bare = run_protocol(&g, &ProtocolConfig::new(1, Algorithm::AcLmst));
        assert!(bare.trace.is_none());
    }

    #[test]
    fn deterministic_across_runs() {
        let g = gen::grid(4, 5);
        let a = run_protocol(&g, &ProtocolConfig::new(2, Algorithm::AcLmst));
        let b = run_protocol(&g, &ProtocolConfig::new(2, Algorithm::AcLmst));
        assert_eq!(a.heads, b.heads);
        assert_eq!(a.gateways, b.gateways);
        assert_eq!(a.stats.total(), b.stats.total());
    }
}
