//! Protocol execution traces.
//!
//! A trace is an ordered record of transmissions — who sent which kind
//! of message, when, in which phase. Traces make the distributed runs
//! auditable (e.g. "which floods dominate the k=4 overhead?") and
//! power the `distributed_trace` example and debugging.
//!
//! The capacity-bounded storage is [`adhoc_graph::obs::Ring`] — the
//! same bounded event log the observability core uses — so the
//! capacity/dropped bookkeeping lives in exactly one place. Beyond the
//! original message events, the churn engine records **reconcile phase
//! transitions** ([`Phase::Reconcile`] with the
//! `MessageKind::Reconcile*` kinds) into an attached trace, so one log
//! interleaves protocol traffic with the maintenance loop's
//! observe/repair/publish activity.
//!
//! [`Phase::Reconcile`]: crate::stats::Phase::Reconcile

use crate::engine::Time;
use crate::message::MessageKind;
use crate::stats::Phase;
use adhoc_graph::graph::NodeId;
use adhoc_graph::obs::Ring;
use serde::{Deserialize, Serialize};

/// One recorded transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulated time of the transmission.
    pub time: Time,
    /// Protocol phase it belongs to.
    pub phase: Phase,
    /// Message kind.
    pub kind: MessageKind,
    /// Transmitting node.
    pub from: NodeId,
}

/// A bounded transmission log.
///
/// Capacity-bounded so tracing a large run cannot exhaust memory; once
/// full, further events are counted but not stored
/// ([`Trace::dropped`]). The bound is enforced by the shared
/// [`Ring`] — this type only adds the trace-specific queries.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    ring: Ring<TraceEvent>,
}

impl Trace {
    /// Creates a trace storing at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            ring: Ring::new(capacity),
        }
    }

    /// Records an event (or counts it as dropped when full).
    pub fn record(&mut self, e: TraceEvent) {
        self.ring.push(e);
    }

    /// Stored events, in transmission order.
    pub fn events(&self) -> &[TraceEvent] {
        self.ring.items()
    }

    /// Events not stored because the trace was full.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Events of one node, in order.
    pub fn by_node(&self, u: NodeId) -> Vec<&TraceEvent> {
        self.events().iter().filter(|e| e.from == u).collect()
    }

    /// `(first, last)` transmission times of a phase, if any occurred.
    pub fn phase_span(&self, phase: Phase) -> Option<(Time, Time)> {
        let mut it = self.events().iter().filter(|e| e.phase == phase);
        let first = it.next()?.time;
        let last = it.next_back().map_or(first, |e| e.time);
        Some((first, last))
    }
}

/// Wire-compatible with the pre-ring derived form:
/// `{events, capacity, dropped}`.
impl Serialize for Trace {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("events".to_string(), self.events().to_value()),
            ("capacity".to_string(), self.ring.capacity().to_value()),
            ("dropped".to_string(), self.dropped().to_value()),
        ])
    }
}

impl Deserialize for Trace {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::DeError::expected("Trace object"))?;
        let events = Vec::<TraceEvent>::from_value(serde::__get_field(obj, "events")?)?;
        let capacity = usize::from_value(serde::__get_field(obj, "capacity")?)?;
        let dropped = u64::from_value(serde::__get_field(obj, "dropped")?)?;
        Ok(Trace {
            ring: Ring::from_parts(events, capacity, dropped),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: Time, from: u32, phase: Phase) -> TraceEvent {
        TraceEvent {
            time,
            phase,
            kind: MessageKind::Hello,
            from: NodeId(from),
        }
    }

    #[test]
    fn record_and_query() {
        let mut t = Trace::with_capacity(10);
        t.record(ev(0, 1, Phase::NeighborDiscovery));
        t.record(ev(1, 2, Phase::Clustering));
        t.record(ev(3, 1, Phase::Clustering));
        assert_eq!(t.len(), 3);
        assert_eq!(t.by_node(NodeId(1)).len(), 2);
        assert_eq!(t.phase_span(Phase::Clustering), Some((1, 3)));
        assert_eq!(t.phase_span(Phase::SetExchange), None);
        assert!(!t.is_empty());
    }

    #[test]
    fn capacity_bound_drops() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.record(ev(i, 0, Phase::NeighborDiscovery));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn single_event_phase_span() {
        let mut t = Trace::with_capacity(4);
        t.record(ev(7, 3, Phase::GatewayMarking));
        assert_eq!(t.phase_span(Phase::GatewayMarking), Some((7, 7)));
    }

    #[test]
    fn serde_preserves_ring_state() {
        let mut t = Trace::with_capacity(2);
        for i in 0..4 {
            t.record(ev(i, i as u32, Phase::Clustering));
        }
        let v = Serialize::to_value(&t);
        // Same wire shape as the old derived form.
        assert!(v.get("events").is_some());
        assert_eq!(v.get("capacity").and_then(|c| c.as_u64()), Some(2));
        assert_eq!(v.get("dropped").and_then(|d| d.as_u64()), Some(2));
        let back: Trace = Deserialize::from_value(&v).expect("roundtrip");
        assert_eq!(back.events(), t.events());
        assert_eq!(back.dropped(), 2);
        // The rebuilt ring keeps enforcing the original capacity.
        let mut back = back;
        back.record(ev(9, 9, Phase::Clustering));
        assert_eq!(back.dropped(), 3);
    }
}
