//! Protocol execution traces.
//!
//! A trace is an ordered record of transmissions — who sent which kind
//! of message, when, in which phase. Traces make the distributed runs
//! auditable (e.g. "which floods dominate the k=4 overhead?") and
//! power the `distributed_trace` example and debugging.

use crate::engine::Time;
use crate::message::MessageKind;
use crate::stats::Phase;
use adhoc_graph::graph::NodeId;
use serde::{Deserialize, Serialize};

/// One recorded transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulated time of the transmission.
    pub time: Time,
    /// Protocol phase it belongs to.
    pub phase: Phase,
    /// Message kind.
    pub kind: MessageKind,
    /// Transmitting node.
    pub from: NodeId,
}

/// A bounded transmission log.
///
/// Capacity-bounded so tracing a large run cannot exhaust memory; once
/// full, further events are counted but not stored
/// ([`Trace::dropped`]).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace storing at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event (or counts it as dropped when full).
    pub fn record(&mut self, e: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(e);
        } else {
            self.dropped += 1;
        }
    }

    /// Stored events, in transmission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events not stored because the trace was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Events of one node, in order.
    pub fn by_node(&self, u: NodeId) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.from == u).collect()
    }

    /// `(first, last)` transmission times of a phase, if any occurred.
    pub fn phase_span(&self, phase: Phase) -> Option<(Time, Time)> {
        let mut it = self.events.iter().filter(|e| e.phase == phase);
        let first = it.next()?.time;
        let last = it.next_back().map_or(first, |e| e.time);
        Some((first, last))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: Time, from: u32, phase: Phase) -> TraceEvent {
        TraceEvent {
            time,
            phase,
            kind: MessageKind::Hello,
            from: NodeId(from),
        }
    }

    #[test]
    fn record_and_query() {
        let mut t = Trace::with_capacity(10);
        t.record(ev(0, 1, Phase::NeighborDiscovery));
        t.record(ev(1, 2, Phase::Clustering));
        t.record(ev(3, 1, Phase::Clustering));
        assert_eq!(t.len(), 3);
        assert_eq!(t.by_node(NodeId(1)).len(), 2);
        assert_eq!(t.phase_span(Phase::Clustering), Some((1, 3)));
        assert_eq!(t.phase_span(Phase::SetExchange), None);
        assert!(!t.is_empty());
    }

    #[test]
    fn capacity_bound_drops() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.record(ev(i, 0, Phase::NeighborDiscovery));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn single_event_phase_span() {
        let mut t = Trace::with_capacity(4);
        t.record(ev(7, 3, Phase::GatewayMarking));
        assert_eq!(t.phase_span(Phase::GatewayMarking), Some((7, 7)));
    }
}
