//! A minimal deterministic discrete-event engine.
//!
//! Events are ordered by `(time, sequence)`: two events at the same
//! simulated time fire in the order they were scheduled, so a run is a
//! pure function of its inputs. The protocol layer builds synchronized
//! phases on top by scheduling barrier events after the last possible
//! delivery of a phase.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time, in abstract ticks. One tick is one ideal-MAC
/// broadcast latency (the paper assumes an ideal MAC layer, so every
/// broadcast reaches all neighbors exactly one tick later, free of
/// collisions).
pub type Time = u64;

#[derive(Debug)]
struct Entry<E> {
    time: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic future-event list.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    now: Time,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `payload` to fire `delay` ticks from now.
    pub fn schedule(&mut self, delay: Time, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Schedules `payload` at an absolute time.
    ///
    /// # Panics
    /// Panics if `time` is in the past.
    pub fn schedule_at(&mut self, time: Time, payload: E) {
        assert!(time >= self.now, "cannot schedule into the past");
        self.heap.push(Reverse(Entry {
            time,
            seq: self.seq,
            payload,
        }));
        self.seq += 1;
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let Reverse(entry) = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    /// Whether any events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5, "c");
        q.schedule(1, "a");
        q.schedule(3, "b");
        assert_eq!(q.pop(), Some((1, "a")));
        assert_eq!(q.pop(), Some((3, "b")));
        assert_eq!(q.pop(), Some((5, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        q.schedule(2, "first");
        q.schedule(2, "second");
        q.schedule(2, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(4, ());
        q.schedule(2, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 2);
        q.pop();
        assert_eq!(q.now(), 4);
    }

    #[test]
    fn relative_scheduling_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(10, "x");
        q.pop();
        q.schedule(1, "y");
        assert_eq!(q.pop(), Some((11, "y")));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5, ());
        q.pop();
        q.schedule_at(2, ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, 1);
        q.schedule(1, 2);
        assert_eq!(q.len(), 2);
        q.pop();
        assert!(!q.is_empty());
    }
}
