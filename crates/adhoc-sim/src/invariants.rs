//! Executable invariants of the reconciliation state machine.
//!
//! The churn engine's correctness argument is four properties, each of
//! which this module turns into a checkable function over the engine's
//! **public** state (the checks never reach into private fields, so
//! they hold exactly as much as an external observer could demand):
//!
//! * **I1 — equivalence** ([`check_equivalence`]): the maintained
//!   labels, evaluation (NC graph, virtual links, all five
//!   selections), and compiled route plan are bit-for-bit what a cold
//!   rebuild on the current graph and clustering produces. Incremental
//!   maintenance is an optimization, never an approximation.
//! * **I2 — convergence** ([`check_convergence`]): the engine's
//!   validity verdict equals what direct verification of the
//!   maintained CDS says; invalidity only ever persists while the
//!   surviving nodes are disconnected (where no CDS can verify); and
//!   empty deltas are fixpoints — they cost nothing and preserve the
//!   verdict.
//! * **I3 — query consistency** ([`check_query_consistency`]): the
//!   served route plan is never torn. Mid-reconcile (or after a
//!   crash) queries read exactly the pre-step plan; after publish the
//!   epoch has advanced monotonically; and every route the served
//!   plan answers is a valid walk on at least one recent graph with
//!   the queried endpoints.
//! * **I4 — cost accounting** ([`check_cost_accounting`]): charged
//!   node-rounds are non-negative (by type) and zero **iff** the
//!   delta was empty — with the honest caveat that only the "empty ⇒
//!   zero" direction plus "bystander-only deltas may legally cost
//!   zero" is decidable from a report, so the converse is checked as
//!   "zero cost ⇒ no orphans and no repair level"; and the dirty-head
//!   count never exceeds the head count.
//!
//! Checks return [`Violation`] lists rather than panicking, so the
//! model checker ([`crate::modelcheck`]) can print a replayable
//! counterexample instead of aborting mid-enumeration.
//!
//! # Soft checks
//!
//! The engine's internal `debug_assert!`-style sanity conditions are
//! routed through [`soft_check`]. Normally a failed soft check is a
//! debug assertion (loud in tests, free in release); inside a
//! [`capturing`] scope it is *recorded* instead, so a deliberately
//! corrupted engine (mutation testing) yields a counterexample rather
//! than an abort.

use std::cell::{Cell, RefCell};
use std::fmt;

use crate::churn::ChurnEngine;
use crate::movement::{RepairLevel, StepReport};
use adhoc_cluster::pipeline::{self, Algorithm};
use adhoc_cluster::routing::{self, RoutePlan};
use adhoc_graph::connectivity;
use adhoc_graph::delta::TopologyDelta;
use adhoc_graph::graph::{Graph, NodeId};
use adhoc_graph::labels::LabelStore;

thread_local! {
    static CAPTURING: Cell<bool> = const { Cell::new(false) };
    static SOFT_VIOLATIONS: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// A failed invariant: which one, and what exactly disagreed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Invariant identifier (`"I1"`..`"I4"`, or `"soft"` for a
    /// captured internal sanity check).
    pub invariant: &'static str,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

impl Violation {
    fn new(invariant: &'static str, detail: impl Into<String>) -> Self {
        Violation {
            invariant,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// Checks an internal sanity condition. Outside a [`capturing`] scope
/// this is a `debug_assert!`; inside one, a failure is recorded (and
/// execution continues) so callers receive a checkable violation
/// instead of an abort. Returns `cond`.
pub fn soft_check(cond: bool, what: &str) -> bool {
    if !cond {
        if CAPTURING.with(|c| c.get()) {
            SOFT_VIOLATIONS.with(|v| v.borrow_mut().push(what.to_string()));
        } else {
            debug_assert!(cond, "invariant violated: {what}");
        }
    }
    cond
}

/// Runs `f` with soft-check capturing enabled and returns its result
/// together with every soft violation recorded during the call.
/// Nested capture scopes are flattened (the outermost collects).
pub fn capturing<R>(f: impl FnOnce() -> R) -> (R, Vec<String>) {
    struct Guard {
        was: bool,
    }
    impl Drop for Guard {
        fn drop(&mut self) {
            CAPTURING.with(|c| c.set(self.was));
        }
    }
    let guard = Guard {
        was: CAPTURING.with(|c| c.replace(true)),
    };
    let out = f();
    drop(guard);
    let recorded = if CAPTURING.with(|c| c.get()) {
        Vec::new() // nested scope: let the outermost collect
    } else {
        SOFT_VIOLATIONS.with(|v| std::mem::take(&mut *v.borrow_mut()))
    };
    (out, recorded)
}

fn label_mismatch(maintained: &LabelStore, fresh: &LabelStore) -> Option<String> {
    if maintained.heads() != fresh.heads() {
        return Some(format!(
            "label head rows {:?} != fresh {:?}",
            maintained.heads(),
            fresh.heads()
        ));
    }
    if maintained.bound() != fresh.bound() {
        return Some(format!(
            "label bound {} != fresh {}",
            maintained.bound(),
            fresh.bound()
        ));
    }
    for slot in 0..maintained.heads().len() {
        let mut a: Vec<NodeId> = maintained.ball(slot).to_vec();
        let mut b: Vec<NodeId> = fresh.ball(slot).to_vec();
        a.sort_unstable();
        b.sort_unstable();
        if a != b {
            return Some(format!("slot {slot} ball {a:?} != fresh {b:?}"));
        }
        for &v in &a {
            let (dm, df) = (maintained.dist(slot, v), fresh.dist(slot, v));
            if dm != df {
                return Some(format!("slot {slot} dist to {v:?}: {dm} != fresh {df}"));
            }
        }
    }
    None
}

/// **I1 — equivalence.** The maintained labels, evaluation, and route
/// plan equal a cold rebuild on the engine's current graph and
/// clustering; departed nodes carry the departure sentinel and alive
/// members sit within `k` of their recorded head at their recorded
/// distance.
pub fn check_equivalence(engine: &ChurnEngine) -> Vec<Violation> {
    let mut out = Vec::new();
    let g = engine.graph();
    let clustering = &engine.clustering;
    let k = engine.config().k;

    // Affiliation sanity: heads self-affiliated, departed nodes out of
    // every cluster, alive members within k at the recorded distance.
    for v in g.nodes() {
        let h = clustering.head_of(v);
        if engine.is_departed(v) {
            if h != NodeId(u32::MAX) || clustering.dist_to_head[v.index()] != 0 {
                out.push(Violation::new(
                    "I1",
                    format!("departed {v:?} still affiliated to {h:?}"),
                ));
            }
            if clustering.heads.binary_search(&v).is_ok() {
                out.push(Violation::new("I1", format!("departed {v:?} listed as head")));
            }
            continue;
        }
        if clustering.is_head(v) {
            if h != v || clustering.dist_to_head[v.index()] != 0 {
                out.push(Violation::new("I1", format!("head {v:?} not self-affiliated")));
            }
            continue;
        }
        let d = clustering.dist_to_head[v.index()];
        if d > k {
            out.push(Violation::new(
                "I1",
                format!("member {v:?} recorded {d} > k hops from {h:?}"),
            ));
        }
    }

    // Labels ≡ cold rebuild (same layout, same bound).
    let maintained = engine.labels();
    let mut fresh = if maintained.is_sparse() {
        LabelStore::sparse()
    } else {
        LabelStore::dense()
    };
    fresh.rebuild(g, &clustering.heads, maintained.bound());
    if let Some(why) = label_mismatch(maintained, &fresh) {
        out.push(Violation::new("I1", why));
    }

    // Evaluation ≡ cold run_all.
    let fresh_eval = pipeline::run_all(g, clustering);
    let eval = engine.evaluation();
    if eval.nc_graph.neighbor_sets != fresh_eval.nc_graph.neighbor_sets {
        out.push(Violation::new("I1", "NC neighbor sets diverged from run_all"));
    }
    for (l, r) in eval.nc_graph.links().zip(fresh_eval.nc_graph.links()) {
        if l.path != r.path {
            out.push(Violation::new("I1", "NC virtual-link path diverged from run_all"));
            break;
        }
    }
    for alg in Algorithm::ALL {
        if eval.of(alg).selection != fresh_eval.of(alg).selection {
            out.push(Violation::new(
                "I1",
                format!("{alg} selection diverged from run_all"),
            ));
        }
    }

    // Served plan ≡ fresh compile (content equality; epoch excluded).
    // Skipped mid-flight: publish has not run, so the served plan is
    // deliberately the pre-step one (that is I3's business).
    if engine.in_flight().is_none() {
        if let Some(plan) = engine.route_plan() {
            let fresh_plan = RoutePlan::compile(
                g,
                clustering,
                engine.labels(),
                eval.selected_links(engine.config().algorithm),
            );
            if *plan != fresh_plan {
                out.push(Violation::new("I1", "served route plan != fresh compile"));
            }
        }
    }
    out
}

/// **I2 — convergence.** The engine's verdict equals direct
/// verification of the maintained CDS; invalidity is only tolerated
/// while the surviving nodes are disconnected; and `stability_steps`
/// empty deltas are fixpoints (verdict preserved, zero cost) — checked
/// on a clone, so the engine itself is untouched.
pub fn check_convergence(engine: &ChurnEngine, stability_steps: usize) -> Vec<Violation> {
    let mut out = Vec::new();
    if engine.in_flight().is_some() {
        // Mid-reconcile state is exempt: verdicts are pre-step by
        // design until publish (or recover) runs.
        return out;
    }
    // Direct verification, departure-aware: `Cds::verify` demands
    // domination of *every* node, but departed (switched-off) nodes
    // are exempt — they are exactly the nodes the structure no longer
    // serves. Backbone connectivity is unchanged.
    let g = engine.graph();
    let k = engine.config().k;
    let backbone = connectivity::is_subset_connected(g, &engine.cds.nodes());
    let dist = connectivity::distance_to_set(g, &engine.cds.heads);
    let dominated = g
        .nodes()
        .all(|v| engine.is_departed(v) || dist[v.index()] <= k);
    let direct = backbone && dominated;
    if engine.is_valid() != direct {
        out.push(Violation::new(
            "I2",
            format!(
                "verdict {} but direct verification says {direct} (backbone {backbone}, dominated {dominated})",
                engine.is_valid(),
            ),
        ));
    }
    if !engine.is_valid() && engine.alive_connected() {
        out.push(Violation::new(
            "I2",
            "invalid on a connected survivor set: repair must have converged",
        ));
    }
    if stability_steps > 0 {
        let mut probe = engine.clone();
        let verdict = probe.is_valid();
        for i in 0..stability_steps {
            let r = probe.step_delta(&TopologyDelta::new());
            if r.cost != 0 || r.level != RepairLevel::None || r.valid != verdict {
                out.push(Violation::new(
                    "I2",
                    format!("empty delta #{i} not a fixpoint: {r:?}"),
                ));
                break;
            }
        }
    }
    out
}

/// **I3 — query consistency.** Mid-reconcile the served plan is
/// content-identical to the pre-step plan (`pre_plan`); once
/// publication completed, the epoch advanced monotonically. Every
/// route the served plan answers over alive node pairs is a walk with
/// the queried endpoints that is valid on at least one of
/// `recent_graphs` (the graphs of the last few reconciled states) — a
/// query raced against maintenance may see one plan generation old,
/// but never a torn mix of two.
pub fn check_query_consistency(
    engine: &ChurnEngine,
    pre_plan: Option<&RoutePlan>,
    recent_graphs: &[Graph],
) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(served) = engine.route_plan() else {
        return out;
    };
    if let Some(pre) = pre_plan {
        if engine.in_flight().is_some() {
            if served != pre {
                out.push(Violation::new(
                    "I3",
                    "mid-reconcile plan differs from the pre-step plan (torn publish)",
                ));
            }
        } else if served.epoch() < pre.epoch() {
            out.push(Violation::new(
                "I3",
                format!(
                    "plan epoch moved backwards: {} -> {}",
                    pre.epoch(),
                    served.epoch()
                ),
            ));
        }
    }
    let g = engine.graph();
    for u in g.nodes() {
        for v in g.nodes() {
            if u == v || engine.is_departed(u) || engine.is_departed(v) {
                continue;
            }
            if let Some(walk) = served.route(u, v) {
                let endpoints_ok = walk.first() == Some(&u) && walk.last() == Some(&v);
                let valid_somewhere = recent_graphs.iter().any(|rg| routing::is_valid_walk(rg, &walk))
                    || routing::is_valid_walk(g, &walk);
                if !endpoints_ok || !valid_somewhere {
                    out.push(Violation::new(
                        "I3",
                        format!("route {u:?}->{v:?} = {walk:?} invalid on every recent graph"),
                    ));
                }
            }
        }
    }
    out
}

/// **I4 — cost accounting.** Costs are non-negative by construction
/// (`usize`); an empty delta reports zero cost, zero orphans, zero
/// dirty heads, and no repair; zero cost implies no orphans were
/// charged and no repair level was reached (the decidable converse —
/// a nonzero delta may legally cost zero when only bystander edges
/// moved); and the dirty-head count never exceeds the head count.
pub fn check_cost_accounting(
    report: &StepReport,
    delta_was_empty: bool,
    head_count: usize,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if delta_was_empty
        && (report.cost != 0
            || report.orphans != 0
            || report.dirty_heads != 0
            || report.level != RepairLevel::None)
    {
        out.push(Violation::new(
            "I4",
            format!("empty delta charged work: {report:?}"),
        ));
    }
    if report.cost == 0 && report.level > RepairLevel::Reaffiliate && head_count > 0 {
        // Gateway refreshes and rebuilds charge every remaining head's
        // 2k+1 ball (each contains at least the head itself), so zero
        // cost at those levels is only possible when no head survived.
        out.push(Violation::new(
            "I4",
            format!("repair level {:?} reported at zero cost", report.level),
        ));
    }
    if report.dirty_heads > head_count {
        out.push(Violation::new(
            "I4",
            format!(
                "dirty_heads {} exceeds head count {head_count}",
                report.dirty_heads
            ),
        ));
    }
    out
}

/// Runs every invariant that is decidable from the engine alone
/// (I1 + I2 without stability probing) — the convenience entry the
/// quick tests use between steps.
pub fn check_all(engine: &ChurnEngine) -> Vec<Violation> {
    let mut out = check_equivalence(engine);
    out.extend(check_convergence(engine, 0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::ChurnEngine;
    use crate::movement::MovementConfig;
    use adhoc_graph::gen;

    #[test]
    fn healthy_engine_passes_all_invariants() {
        let g = gen::grid(3, 4);
        let mut e = ChurnEngine::build(&g, MovementConfig::strict(1, Algorithm::AcLmst));
        e.enable_routing();
        assert_eq!(check_all(&e), vec![]);
        assert_eq!(check_convergence(&e, 2), vec![]);
        let pre = e.route_plan().unwrap().clone();
        assert_eq!(
            check_query_consistency(&e, Some(&pre), std::slice::from_ref(&g)),
            vec![]
        );
    }

    #[test]
    fn corrupted_affiliation_is_reported_not_aborted() {
        let g = gen::path(5);
        let mut e = ChurnEngine::build(&g, MovementConfig::strict(1, Algorithm::AcLmst));
        // Sabotage: point a member at a head 2 hops away under k=1.
        e.clustering.dist_to_head[1] = 2;
        let violations = check_equivalence(&e);
        assert!(
            violations.iter().any(|v| v.invariant == "I1"),
            "corruption must surface as an I1 violation: {violations:?}"
        );
    }

    #[test]
    fn soft_checks_record_under_capture_and_return_result() {
        let ((), recorded) = capturing(|| {
            soft_check(true, "fine");
            soft_check(false, "broken once");
            soft_check(false, "broken twice");
        });
        assert_eq!(recorded, vec!["broken once", "broken twice"]);
        // A later capture starts clean.
        let ((), recorded) = capturing(|| ());
        assert!(recorded.is_empty());
    }

    #[test]
    fn cost_accounting_flags_phantom_work() {
        let report = StepReport {
            level: RepairLevel::Full,
            orphans: 3,
            merged_head_pairs: 0,
            cost: 5,
            valid: true,
            dirty_heads: 1,
        };
        assert!(!check_cost_accounting(&report, true, 4).is_empty());
        assert!(check_cost_accounting(&report, false, 4).is_empty());
        let mut over = report.clone();
        over.dirty_heads = 9;
        assert!(!check_cost_accounting(&over, false, 4).is_empty());
    }
}
